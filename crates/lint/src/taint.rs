//! R021 — untrusted spill bytes must be sanitized before sizing memory.
//!
//! Sources come from `lint.toml [taint-sources]` (`.read`,
//! `.read_exact`, `Self::fill` in this workspace); bytes they produce
//! stay tainted through `from_le_bytes`/`as` decoding and arithmetic
//! until a sanitizer (`.min`, `try_into`, or a configured call) or a
//! dominating comparison against an untainted bound launders them. A
//! tainted integer reaching an allocation-size sink (`with_capacity`,
//! `resize`, `reserve`, `set_len`, configured `[taint-sinks]`) or a
//! slice index is a finding.
//!
//! On top of the configured sources a small fixed point (≤3 rounds)
//! discovers *dynamic* sources: same-unit functions whose return value
//! is tainted under the current source set. This catches one level of
//! `fn read_len(&mut self) -> usize { … self.fill(&mut b)? … }`
//! wrappers without whole-program analysis.
//!
//! Known under-approximation: `match` bindings (`Ok(n) => …`) are not
//! visible to the loss-tolerant parser, so taint does not flow through
//! them; the workspace's hot decode paths use `let`-bound decodes,
//! which are.

use crate::ast::Expr;
use crate::callgraph::UnitFile;
use crate::dataflow::{
    chain_text, for_each_instr, frames, render, walk_no_closures, walk_value, AbsVal, Engine, Frame,
    TaintSpec,
};
use crate::rules::Finding;

/// Methods whose integer argument sizes an allocation.
const SINK_METHODS: &[&str] = &[
    "with_capacity",
    "resize",
    "reserve",
    "reserve_exact",
    "set_len",
];

/// Path calls whose first argument sizes an allocation.
const SINK_PATHS: &[&str] = &["Vec::with_capacity", "VecDeque::with_capacity"];

/// Run R021 over one crate unit. `spec` gains `dynamic_sources` as a
/// side effect (the caller shares it with other rules' engines).
pub fn check_r021(files: &[UnitFile], spec: &mut TaintSpec, out: &mut Vec<Finding>) {
    discover_dynamic_sources(files, spec);
    let engine = Engine { spec };
    for uf in files {
        if uf.is_test {
            continue;
        }
        for frame in frames(&uf.file) {
            if frame.is_test {
                continue;
            }
            let flow = engine.run(&frame.cfg, &Default::default());
            for_each_instr(&frame, &flow, &mut |instr, state| {
                let Some(value) = instr.value else { return };
                walk_value(value, &mut |x| {
                    sink_args(x, spec).map(|(what, args, line, col)| {
                        for arg in args {
                            let v = engine.eval(arg, state);
                            if !v.tainted {
                                continue;
                            }
                            out.push(Finding {
                                rule: "R021".to_string(),
                                path: uf.path.clone(),
                                line,
                                col,
                                message: format!(
                                    "`{}` flows into {what} in `{}` without a \
                                     cap/`min`/`try_into` sanitizer — an attacker \
                                     controlling spill bytes controls the size — {}",
                                    render(arg),
                                    frame.qual,
                                    taint_chain(arg, state, &v)
                                ),
                            });
                        }
                    });
                });
            });
        }
    }
}

/// If `x` is a sink, return (description, size args, line, col).
fn sink_args<'a>(
    x: &'a Expr,
    spec: &TaintSpec,
) -> Option<(String, Vec<&'a Expr>, u32, u32)> {
    match x {
        Expr::Method {
            name, args, line, col, ..
        } => {
            let builtin = SINK_METHODS.contains(&name.as_str());
            let configured = spec
                .sinks
                .iter()
                .any(|e| e.strip_prefix('.').is_some_and(|m| m == name));
            if (builtin || configured) && !args.is_empty() {
                // Only the size argument matters: first for all builtins
                // (`resize(new_len, value)` — the fill value is inert).
                Some((format!("`{name}`"), vec![&args[0]], *line, *col))
            } else {
                None
            }
        }
        Expr::Call {
            callee, args, line, col, ..
        } => {
            let builtin = SINK_PATHS
                .iter()
                .any(|e| callee == e || callee.ends_with(&format!("::{e}")));
            let configured = spec.sinks.iter().any(|e| {
                !e.starts_with('.') && (callee == e || callee.ends_with(&format!("::{e}")))
            });
            if (builtin || configured) && !args.is_empty() {
                Some((format!("`{callee}`"), vec![&args[0]], *line, *col))
            } else {
                None
            }
        }
        Expr::Index {
            index,
            literal: false,
            line,
            col,
            ..
        } => Some(("a slice index".to_string(), vec![index], *line, *col)),
        _ => None,
    }
}

/// Chain text for the first tainted leaf of `arg` (falls back to the
/// whole expression's chain).
fn taint_chain(arg: &Expr, state: &crate::dataflow::State, whole: &AbsVal) -> String {
    let mut best: Option<&AbsVal> = None;
    walk_no_closures(arg, &mut |x| {
        if best.is_some() {
            return;
        }
        if let Expr::Path { path } = x {
            if !path.contains("::") {
                if let Some(v) = state.get(path) {
                    if v.tainted {
                        best = Some(v);
                    }
                }
            }
        }
    });
    chain_text(best.unwrap_or(whole))
}

/// ≤3 rounds: a non-test fn whose return value is tainted under the
/// current source set becomes a dynamic source itself.
fn discover_dynamic_sources(files: &[UnitFile], spec: &mut TaintSpec) {
    for _round in 0..3 {
        let mut added = Vec::new();
        {
            let engine = Engine { spec };
            for uf in files {
                if uf.is_test {
                    continue;
                }
                crate::ast::for_each_fn(&uf.file, &mut |f, is_test| {
                    if is_test
                        || f.body.is_none()
                        || spec.dynamic_sources.iter().any(|d| *d == f.qual)
                    {
                        return;
                    }
                    let Some(frame) = fn_frame(f) else { return };
                    let flow = engine.run(&frame.cfg, &Default::default());
                    if returns_tainted(&engine, &frame, &flow) {
                        added.push(f.qual.clone());
                    }
                });
            }
        }
        if added.is_empty() {
            break;
        }
        spec.dynamic_sources.extend(added);
    }
}

fn fn_frame(f: &crate::ast::FnItem) -> Option<Frame<'_>> {
    Some(Frame {
        qual: &f.qual,
        params: f.params.clone(),
        cfg: crate::cfg::Cfg::from_fn(f)?,
        is_test: false,
        line: f.line,
    })
}

/// The last instruction of any reachable `Return`-terminated block
/// evaluates tainted. (Return values are emitted as a trailing
/// instruction by CFG lowering, including implicit tail expressions.)
fn returns_tainted(engine: &Engine<'_>, frame: &Frame<'_>, flow: &crate::dataflow::Flow) -> bool {
    for (bb, block) in frame.cfg.blocks.iter().enumerate() {
        if !matches!(block.term, crate::cfg::Term::Return) {
            continue;
        }
        let states = &flow.before[bb];
        if states.len() != block.instrs.len() {
            continue; // unreachable
        }
        let Some((instr, state)) = block.instrs.last().zip(states.last()) else {
            continue;
        };
        let Some(value) = instr.value else { continue };
        if engine.eval(value, state).tainted {
            return true;
        }
    }
    false
}

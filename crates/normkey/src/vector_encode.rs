//! Encoding whole vectors into normalized-key rows.

use crate::encoding::*;
use crate::layout::KeyColumn;
use rowsort_vector::{NullOrder, SortOrder, Value, Vector, VectorData};

#[inline]
fn null_byte(nulls: NullOrder, valid: bool) -> u8 {
    match (nulls, valid) {
        (NullOrder::NullsFirst, true) => NULL_FIRST_VALID,
        (NullOrder::NullsFirst, false) => NULL_FIRST_NULL,
        (NullOrder::NullsLast, true) => NULL_LAST_VALID,
        (NullOrder::NullsLast, false) => NULL_LAST_NULL,
    }
}

/// Encode one cell into `out` (`out.len()` must equal
/// [`KeyColumn::encoded_width`]). Reference path used by tests and
/// single-row consumers; hot paths use [`encode_column_into`].
pub fn encode_value_into(value: &Value, col: &KeyColumn, out: &mut [u8]) {
    assert_eq!(out.len(), col.encoded_width(), "output slice width");
    let valid = !value.is_null();
    out[0] = null_byte(col.spec.nulls, valid);
    let body = &mut out[1..];
    body.fill(0);
    if valid {
        match value {
            Value::Boolean(v) => body.copy_from_slice(&encode_bool(*v)),
            Value::Int8(v) => body.copy_from_slice(&encode_i8(*v)),
            Value::Int16(v) => body.copy_from_slice(&encode_i16(*v)),
            Value::Int32(v) => body.copy_from_slice(&encode_i32(*v)),
            Value::Int64(v) => body.copy_from_slice(&encode_i64(*v)),
            Value::UInt8(v) => body.copy_from_slice(&encode_u8(*v)),
            Value::UInt16(v) => body.copy_from_slice(&encode_u16(*v)),
            Value::UInt32(v) => body.copy_from_slice(&encode_u32(*v)),
            Value::UInt64(v) => body.copy_from_slice(&encode_u64(*v)),
            Value::Float32(v) => body.copy_from_slice(&encode_f32(*v)),
            Value::Float64(v) => body.copy_from_slice(&encode_f64(*v)),
            Value::Date(v) => body.copy_from_slice(&encode_i32(*v)),
            Value::Timestamp(v) => body.copy_from_slice(&encode_i64(*v)),
            Value::Varchar(s) => {
                // Zero-padded prefix, then the continuation marker byte
                // that makes short-vs-padded-vs-truncated compare exactly.
                let bytes = s.as_bytes();
                let prefix = body.len() - 1;
                let n = bytes.len().min(prefix);
                body[..n].copy_from_slice(&bytes[..n]);
                body[prefix] = continuation_marker(bytes.len(), prefix);
            }
            Value::Null => unreachable!(),
        }
        if col.spec.order == SortOrder::Descending {
            invert_bytes(body);
        }
    }
    // NULL rows keep an all-zero body so all NULLs encode identically;
    // the NULL byte alone places them. Not inverted under DESC because
    // NULL placement is absolute (SQL semantics).
}

/// Encode a whole key column into a matrix of key rows.
///
/// Row `i` of the vector is written at
/// `out[(base_row + i) * stride + col_offset ..][..col.encoded_width()]`.
/// One `match` on the vector type dispatches for the entire vector — the
/// vector-at-a-time amortization that makes this conversion cheap in an
/// interpreted engine.
pub fn encode_column_into(
    vec: &Vector,
    col: &KeyColumn,
    out: &mut [u8],
    stride: usize,
    col_offset: usize,
    base_row: usize,
) {
    encode_column_range_into(vec, col, out, stride, col_offset, base_row, 0, vec.len());
}

/// [`encode_column_into`] restricted to vector rows `lo..hi`: row `lo + i`
/// of the vector is written at key row `base_row + i`. This lets the sort
/// pipeline encode one morsel of a chunk directly, without materializing a
/// sliced copy of the vector first.
#[allow(clippy::too_many_arguments)]
pub fn encode_column_range_into(
    vec: &Vector,
    col: &KeyColumn,
    out: &mut [u8],
    stride: usize,
    col_offset: usize,
    base_row: usize,
    lo: usize,
    hi: usize,
) {
    assert!(lo <= hi && hi <= vec.len(), "row range out of bounds");
    let n = hi - lo;
    let width = col.encoded_width();
    debug_assert!(out.len() >= (base_row + n) * stride);
    let desc = col.spec.order == SortOrder::Descending;
    let nulls = col.spec.nulls;

    macro_rules! encode_loop {
        ($values:expr, $encode:expr) => {{
            for (i, v) in $values[lo..hi].iter().enumerate() {
                let at = (base_row + i) * stride + col_offset;
                let valid = vec.is_valid(lo + i);
                out[at] = null_byte(nulls, valid);
                let body = &mut out[at + 1..at + width];
                if valid {
                    body.copy_from_slice(&$encode(*v));
                    if desc {
                        invert_bytes(body);
                    }
                } else {
                    body.fill(0);
                }
            }
        }};
    }

    match vec.data() {
        VectorData::Boolean(values) => encode_loop!(values, encode_bool),
        VectorData::Int8(values) => encode_loop!(values, encode_i8),
        VectorData::Int16(values) => encode_loop!(values, encode_i16),
        VectorData::Int32(values) => encode_loop!(values, encode_i32),
        VectorData::Int64(values) => encode_loop!(values, encode_i64),
        VectorData::UInt8(values) => encode_loop!(values, encode_u8),
        VectorData::UInt16(values) => encode_loop!(values, encode_u16),
        VectorData::UInt32(values) => encode_loop!(values, encode_u32),
        VectorData::UInt64(values) => encode_loop!(values, encode_u64),
        VectorData::Float32(values) => encode_loop!(values, encode_f32),
        VectorData::Float64(values) => encode_loop!(values, encode_f64),
        VectorData::Date(values) => encode_loop!(values, encode_i32),
        VectorData::Timestamp(values) => encode_loop!(values, encode_i64),
        VectorData::Varchar(strings) => {
            let prefix = width - 2; // null byte + prefix + marker byte
            for i in 0..n {
                let at = (base_row + i) * stride + col_offset;
                let valid = vec.is_valid(lo + i);
                out[at] = null_byte(nulls, valid);
                let body = &mut out[at + 1..at + width];
                body.fill(0);
                if valid {
                    let bytes = strings.get_bytes(lo + i);
                    let m = bytes.len().min(prefix);
                    body[..m].copy_from_slice(&bytes[..m]);
                    body[prefix] = continuation_marker(bytes.len(), prefix);
                    if desc {
                        invert_bytes(body);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowsort_vector::{LogicalType as T, SortSpec};

    fn encode_one(value: &Value, col: &KeyColumn) -> Vec<u8> {
        let mut out = vec![0u8; col.encoded_width()];
        encode_value_into(value, col, &mut out);
        out
    }

    #[test]
    fn asc_nulls_last_integer() {
        let col = KeyColumn::fixed(T::Int32, SortSpec::ASC);
        let lo = encode_one(&Value::Int32(-5), &col);
        let hi = encode_one(&Value::Int32(5), &col);
        let null = encode_one(&Value::Null, &col);
        assert!(lo < hi);
        assert!(hi < null, "NULLS LAST: null sorts after all values");
    }

    #[test]
    fn desc_nulls_first_integer() {
        let col = KeyColumn::fixed(
            T::Int32,
            SortSpec::new(SortOrder::Descending, NullOrder::NullsFirst),
        );
        let lo = encode_one(&Value::Int32(-5), &col);
        let hi = encode_one(&Value::Int32(5), &col);
        let null = encode_one(&Value::Null, &col);
        assert!(hi < lo, "DESC reverses value order");
        assert!(null < hi, "NULLS FIRST: null sorts before all values");
    }

    #[test]
    fn figure7_full_example() {
        // ORDER BY c_birth_country DESC, c_birth_year ASC (paper Fig. 7).
        let country = KeyColumn::varchar(SortSpec::DESC, 11);
        let year = KeyColumn::fixed(T::Int32, SortSpec::ASC);
        let key = |c: &str, y: i32| {
            let mut k = vec![0u8; country.encoded_width() + year.encoded_width()];
            encode_value_into(&Value::from(c), &country, &mut k[..country.encoded_width()]);
            encode_value_into(&Value::Int32(y), &year, &mut k[country.encoded_width()..]);
            k
        };
        // DESC country: NETHERLANDS < GERMANY in encoded order.
        assert!(key("NETHERLANDS", 1990) < key("GERMANY", 1990));
        // Same country: earlier year first (ASC).
        assert!(key("GERMANY", 1924) < key("GERMANY", 1990));
        // Combined: NETHERLANDS/any-year before GERMANY/any-year.
        assert!(key("NETHERLANDS", 1992) < key("GERMANY", 1924));
    }

    #[test]
    fn varchar_padding_orders_short_before_long() {
        let col = KeyColumn::varchar(SortSpec::ASC, 12);
        let a = encode_one(&Value::from("GERMANY"), &col);
        let b = encode_one(&Value::from("GERMANYX"), &col);
        assert!(a < b, "zero padding sorts the shorter string first");
    }

    #[test]
    fn varchar_truncation_creates_ties() {
        let col = KeyColumn {
            ty: T::Varchar,
            spec: SortSpec::ASC,
            prefix_len: 3,
            truncatable: true,
        };
        let a = encode_one(&Value::from("abcX"), &col);
        let b = encode_one(&Value::from("abcY"), &col);
        assert_eq!(a, b, "equal prefixes encode equal — tie to be resolved");
    }

    #[test]
    fn marker_orders_embedded_nul_after_padding() {
        // "a" vs "a\0": identical zero-padded prefixes; the marker byte
        // (the length, while the string fits) breaks the tie correctly.
        let col = KeyColumn::varchar(SortSpec::ASC, 12);
        let short = encode_one(&Value::from("a"), &col);
        let with_nul = encode_one(&Value::from("a\0"), &col);
        assert!(short < with_nul, "'a' sorts before 'a\\0'");
    }

    #[test]
    fn marker_orders_fitting_before_truncated() {
        // The ROADMAP mis-sort pair: "x"*12 fits (marker 12), "x"*44 is
        // truncated (marker 13) — identical prefixes, marker decides.
        let col = KeyColumn::varchar(SortSpec::ASC, 44);
        let fits = encode_one(&Value::from("x".repeat(12).as_str()), &col);
        let truncated = encode_one(&Value::from("x".repeat(44).as_str()), &col);
        assert!(fits < truncated, "fitting string sorts before truncated");
        // Both truncated with equal prefixes: a genuine tie.
        let longer = encode_one(&Value::from("x".repeat(13).as_str()), &col);
        assert_eq!(truncated, longer, "both-truncated equal prefixes tie");
    }

    #[test]
    fn marker_inverted_under_desc() {
        let col = KeyColumn::varchar(SortSpec::DESC, 44);
        let fits = encode_one(&Value::from("x".repeat(12).as_str()), &col);
        let truncated = encode_one(&Value::from("x".repeat(44).as_str()), &col);
        assert!(truncated < fits, "DESC reverses the marker order too");
    }

    #[test]
    fn nulls_encode_identically() {
        let col = KeyColumn::fixed(T::Int64, SortSpec::DESC);
        let n1 = encode_one(&Value::Null, &col);
        let n2 = encode_one(&Value::Null, &col);
        assert_eq!(n1, n2);
    }

    #[test]
    fn column_encoding_matches_value_encoding() {
        let col = KeyColumn::fixed(T::Int32, SortSpec::DESC);
        let vec = {
            let mut v = Vector::new(T::Int32);
            for x in [Value::Int32(3), Value::Null, Value::Int32(-9)] {
                v.push(&x).unwrap();
            }
            v
        };
        let stride = col.encoded_width() + 4; // pretend a 4-byte row id follows
        let mut out = vec![0u8; 3 * stride];
        encode_column_into(&vec, &col, &mut out, stride, 0, 0);
        for i in 0..3 {
            let got = &out[i * stride..i * stride + col.encoded_width()];
            let expected = encode_one(&vec.get(i), &col);
            assert_eq!(got, &expected[..], "row {i}");
        }
    }

    #[test]
    fn column_encoding_respects_base_row_and_offset() {
        let col = KeyColumn::fixed(T::UInt8, SortSpec::ASC);
        let vec = Vector::from_u8s(vec![7]);
        let stride = 8;
        let mut out = vec![0xAAu8; 4 * stride];
        encode_column_into(&vec, &col, &mut out, stride, 3, 2);
        // Row 2, offset 3: null byte 0x00 (valid, NULLS LAST) then 0x07.
        assert_eq!(out[2 * stride + 3], NULL_LAST_VALID);
        assert_eq!(out[2 * stride + 4], 7);
        // Other bytes untouched.
        assert_eq!(out[0], 0xAA);
    }

    #[test]
    fn range_encoding_matches_whole_vector_encoding() {
        let col = KeyColumn::fixed(T::Int32, SortSpec::DESC);
        let vec = {
            let mut v = Vector::new(T::Int32);
            for x in [
                Value::Int32(3),
                Value::Null,
                Value::Int32(-9),
                Value::Int32(40),
            ] {
                v.push(&x).unwrap();
            }
            v
        };
        let stride = col.encoded_width();
        let mut whole = vec![0u8; 4 * stride];
        encode_column_into(&vec, &col, &mut whole, stride, 0, 0);
        let mut ranged = vec![0u8; 2 * stride];
        encode_column_range_into(&vec, &col, &mut ranged, stride, 0, 0, 1, 3);
        assert_eq!(&ranged[..stride], &whole[stride..2 * stride], "row 1");
        assert_eq!(&ranged[stride..], &whole[2 * stride..3 * stride], "row 2");
    }

    #[test]
    fn range_encoding_strings() {
        let col = KeyColumn::varchar(SortSpec::ASC, 4);
        let vec = Vector::from_strings(["zz", "aa", "mm"]);
        let w = col.encoded_width();
        let mut whole = vec![0u8; 3 * w];
        encode_column_into(&vec, &col, &mut whole, w, 0, 0);
        let mut ranged = vec![0u8; w];
        encode_column_range_into(&vec, &col, &mut ranged, w, 0, 0, 2, 3);
        assert_eq!(&ranged[..], &whole[2 * w..]);
    }

    #[test]
    fn strings_encode_per_vector() {
        let col = KeyColumn::varchar(SortSpec::ASC, 4);
        let vec = Vector::from_strings(["zz", "aa", "mm"]);
        let w = col.encoded_width();
        let mut out = vec![0u8; 3 * w];
        encode_column_into(&vec, &col, &mut out, w, 0, 0);
        let k = |i: usize| &out[i * w..(i + 1) * w];
        assert!(k(1) < k(2));
        assert!(k(2) < k(0));
    }
}

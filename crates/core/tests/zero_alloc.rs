//! Pins the tentpole claim: a warmed-up pipeline sorts with ZERO system
//! allocations — every transient buffer (key runs, payload blocks, radix
//! scratch, merge outputs) comes from the pipeline's pool.
//!
//! The counting allocator is installed globally for this test binary, so
//! the file holds exactly one test: any parallel test in the same binary
//! would allocate concurrently and poison the count.

use rowsort_core::metrics::Counter;
use rowsort_core::pipeline::{SortOptions, SortPipeline};
use rowsort_testkit::alloc::{allocation_count, CountingAllocator};
use rowsort_testkit::Rng;
use rowsort_vector::{DataChunk, OrderBy, Vector};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_sort_does_not_allocate() {
    let mut rng = Rng::seed_from_u64(0x2ea0_a110c);
    let n = 200_000;
    let col: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
    let chunk = DataChunk::from_columns(vec![Vector::from_u32s(col)]).unwrap();

    // threads: 1 — worker threads allocate stack/TLS on their own
    // schedule; the zero-allocation guarantee is about sort buffers.
    let pipeline = SortPipeline::new(
        chunk.types(),
        OrderBy::ascending(1),
        SortOptions {
            threads: 1,
            run_rows: 1 << 15,
            // Pinned on (not inherited from ROWSORT_OVC): the offset-value
            // code columns must come from the pool like every other sort
            // buffer, adding zero steady-state allocations.
            ovc: true,
            ..SortOptions::default()
        },
    );

    // Warm up: first sorts populate the buffer pool (runs + merge
    // rounds). Two passes so every size class reached in round N of the
    // cascade is pooled before measurement.
    for _ in 0..2 {
        drop(pipeline.sort_rows(&chunk));
    }

    let before = allocation_count();
    let sorted = pipeline.sort_rows(&chunk);
    assert_eq!(sorted.len(), n as usize);
    drop(sorted);
    let allocs = allocation_count() - before;
    let (hits, misses) = pipeline.pool_stats();
    assert_eq!(
        allocs, 0,
        "steady-state sort hit the system allocator {allocs} time(s) \
         (pool hits={hits} misses={misses})"
    );
    assert!(
        hits > 0,
        "pool was never used (hits={hits} misses={misses})"
    );

    // The observability layer recorded the measured sort — counters,
    // phase timers, and the per-sort profile all updated — while the
    // allocation count above stayed at exactly zero: the metrics
    // registry is preallocated at pipeline construction.
    let profile = pipeline.last_profile();
    assert_eq!(profile.operator, "pipeline");
    assert_eq!(profile.rows, n as u64);
    assert!(profile.total_ns > 0);
    assert_eq!(profile.metrics.counter(Counter::SortCalls), 1);
    assert_eq!(profile.metrics.counter(Counter::RowsSorted), n as u64);
    assert!(profile.metrics.counter(Counter::PoolHits) > 0);
    assert!(profile.metrics.phase_total_ns() > 0);
    assert_eq!(pipeline.metrics().counter(Counter::SortCalls), 3);
}

//! The combined CPU model: cache + branch predictor + address space.

use crate::branch::BranchPredictor;
use crate::cache::{CacheConfig, CacheSim};

/// A snapshot of simulation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// L1-D line accesses.
    pub l1_accesses: u64,
    /// L1-D misses (the paper's `L1-dcache-load-misses` analogue).
    pub l1_misses: u64,
    /// Data-dependent conditional branches executed.
    pub branches: u64,
    /// Branch mispredictions (the paper's `branch-misses` analogue).
    pub branch_misses: u64,
}

impl Counters {
    /// Element-wise difference (`self` − `earlier`).
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            l1_accesses: self.l1_accesses - earlier.l1_accesses,
            l1_misses: self.l1_misses - earlier.l1_misses,
            branches: self.branches - earlier.branches,
            branch_misses: self.branch_misses - earlier.branch_misses,
        }
    }
}

/// The simulated CPU: one L1-D cache, one branch predictor, and a bump
/// allocator for laying out simulated arrays in a virtual address space.
///
/// Kernels in [`crate::trace`] call [`SimCpu::read`]/[`SimCpu::write`] for
/// every data access and [`SimCpu::branch`] for every data-dependent
/// conditional, then read the counters off with [`SimCpu::counters`].
#[derive(Debug, Clone)]
pub struct SimCpu {
    cache: CacheSim,
    predictor: BranchPredictor,
    next_base: u64,
}

impl SimCpu {
    /// A CPU with the paper's L1-D geometry and the default predictor.
    pub fn new() -> SimCpu {
        SimCpu::with_cache(CacheConfig::L1D)
    }

    /// A CPU with custom cache geometry.
    pub fn with_cache(config: CacheConfig) -> SimCpu {
        SimCpu {
            cache: CacheSim::new(config),
            predictor: BranchPredictor::new(),
            next_base: 1 << 20,
        }
    }

    /// Reserve `size` bytes of virtual address space, 1 MiB-aligned so
    /// distinct arrays never share a cache line.
    pub fn alloc(&mut self, size: usize) -> u64 {
        let base = self.next_base;
        let aligned = (size as u64).div_ceil(1 << 20) * (1 << 20);
        self.next_base += aligned.max(1 << 20);
        base
    }

    /// Simulate a load of `bytes` bytes at `addr`.
    pub fn read(&mut self, addr: u64, bytes: usize) {
        self.cache.access_range(addr, bytes);
    }

    /// Simulate a store of `bytes` bytes at `addr` (write-allocate).
    pub fn write(&mut self, addr: u64, bytes: usize) {
        self.cache.access_range(addr, bytes);
    }

    /// Simulate a data-dependent conditional branch at site `pc`.
    pub fn branch(&mut self, pc: u64, taken: bool) -> bool {
        self.predictor.branch(pc, taken)
    }

    /// Current counter values.
    pub fn counters(&self) -> Counters {
        Counters {
            l1_accesses: self.cache.accesses(),
            l1_misses: self.cache.misses(),
            branches: self.predictor.branches(),
            branch_misses: self.predictor.mispredictions(),
        }
    }

    /// Reset all counters (cache and predictor state survive).
    pub fn reset_counters(&mut self) {
        self.cache.reset_counters();
        self.predictor.reset_counters();
    }
}

impl Default for SimCpu {
    fn default() -> Self {
        SimCpu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_disjoint_and_aligned() {
        let mut cpu = SimCpu::new();
        let a = cpu.alloc(100);
        let b = cpu.alloc(5 << 20);
        let c = cpu.alloc(1);
        assert_eq!(a % (1 << 20), 0);
        assert!(b >= a + 100);
        assert!(c >= b + (5 << 20));
    }

    #[test]
    fn read_write_and_counters() {
        let mut cpu = SimCpu::new();
        let base = cpu.alloc(4096);
        cpu.read(base, 4);
        cpu.write(base, 4);
        let c = cpu.counters();
        assert_eq!(c.l1_accesses, 2);
        assert_eq!(c.l1_misses, 1, "write hits the line the read loaded");
    }

    #[test]
    fn counters_since() {
        let mut cpu = SimCpu::new();
        let base = cpu.alloc(4096);
        cpu.read(base, 1);
        let snap = cpu.counters();
        cpu.read(base + 64, 1);
        cpu.branch(1, true);
        let delta = cpu.counters().since(&snap);
        assert_eq!(delta.l1_accesses, 1);
        assert_eq!(delta.l1_misses, 1);
        assert_eq!(delta.branches, 1);
    }
}

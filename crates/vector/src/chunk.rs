//! Batches of equal-length vectors.

use crate::types::LogicalType;
use crate::value::Value;
use crate::vector::Vector;
use crate::{Result, VectorError};

/// The standard vector (batch) size, matching DuckDB's default of 2048 rows.
///
/// Vectorized engines pick a batch size large enough to amortize
/// interpretation overhead and small enough that a batch of a few columns
/// stays cache-resident — the paper leans on both properties when arguing
/// that DSM→NSM conversion can be done "one block of vectors at a time".
pub const VECTOR_SIZE: usize = 2048;

/// A batch of columns with one shared length — what flows between operators
/// in a vectorized engine.
#[derive(Debug, Clone, PartialEq)]
pub struct DataChunk {
    columns: Vec<Vector>,
    len: usize,
}

impl DataChunk {
    /// An empty chunk with the given column types.
    pub fn new(types: &[LogicalType]) -> DataChunk {
        DataChunk {
            columns: types.iter().map(|&t| Vector::new(t)).collect(),
            len: 0,
        }
    }

    /// Assemble a chunk from pre-built columns; all must share one length.
    pub fn from_columns(columns: Vec<Vector>) -> Result<DataChunk> {
        let len = columns.first().map_or(0, Vector::len);
        for c in &columns {
            if c.len() != len {
                return Err(VectorError::LengthMismatch {
                    expected: len,
                    got: c.len(),
                });
            }
        }
        Ok(DataChunk { columns, len })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Borrow column `i`.
    pub fn column(&self, i: usize) -> &Vector {
        &self.columns[i]
    }

    /// Borrow all columns.
    pub fn columns(&self) -> &[Vector] {
        &self.columns
    }

    /// The logical types of all columns, in order.
    pub fn types(&self) -> Vec<LogicalType> {
        self.columns.iter().map(Vector::logical_type).collect()
    }

    /// Append one row of boxed values (one per column).
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity {} != column count {}",
            row.len(),
            self.columns.len()
        );
        for (col, val) in self.columns.iter_mut().zip(row) {
            col.push(val)?;
        }
        self.len += 1;
        Ok(())
    }

    /// Read row `idx` as boxed values.
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(idx)).collect()
    }

    /// Gather rows by index into a new chunk.
    pub fn take(&self, indices: &[usize]) -> DataChunk {
        DataChunk {
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            len: indices.len(),
        }
    }

    /// Append all rows of another chunk with the same schema.
    pub fn append(&mut self, other: &DataChunk) -> Result<()> {
        assert_eq!(
            self.column_count(),
            other.column_count(),
            "appending chunk with different arity"
        );
        for (a, b) in self.columns.iter_mut().zip(other.columns.iter()) {
            a.append(b)?;
        }
        self.len += other.len;
        Ok(())
    }

    /// Split a large chunk into [`VECTOR_SIZE`]-row chunks (the last may be
    /// shorter). A chunk already within the limit is returned as one piece.
    pub fn split_into_vectors(&self) -> Vec<DataChunk> {
        if self.len <= VECTOR_SIZE {
            return vec![self.clone()];
        }
        let mut out = Vec::with_capacity(self.len.div_ceil(VECTOR_SIZE));
        let mut start = 0;
        while start < self.len {
            let end = (start + VECTOR_SIZE).min(self.len);
            let indices: Vec<usize> = (start..end).collect();
            out.push(self.take(&indices));
            start = end;
        }
        out
    }

    /// Materialize every row as boxed values — the test-suite ground truth
    /// representation.
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Copy out rows `start..end` as a new chunk (typed path, no boxed
    /// values) — how the sort operator splits its input into morsels.
    pub fn slice(&self, start: usize, end: usize) -> DataChunk {
        DataChunk {
            columns: self.columns.iter().map(|c| c.slice(start, end)).collect(),
            len: end - start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataChunk {
        let mut c = DataChunk::new(&[LogicalType::UInt32, LogicalType::Varchar]);
        c.push_row(&[Value::UInt32(2), Value::from("b")]).unwrap();
        c.push_row(&[Value::UInt32(1), Value::from("a")]).unwrap();
        c.push_row(&[Value::Null, Value::from("n")]).unwrap();
        c
    }

    #[test]
    fn push_and_read_rows() {
        let c = sample();
        assert_eq!(c.len(), 3);
        assert_eq!(c.column_count(), 2);
        assert_eq!(c.row(0), vec![Value::UInt32(2), Value::from("b")]);
        assert_eq!(c.row(2), vec![Value::Null, Value::from("n")]);
        assert_eq!(c.types(), vec![LogicalType::UInt32, LogicalType::Varchar]);
    }

    #[test]
    fn from_columns_checks_lengths() {
        let a = Vector::from_u32s(vec![1, 2]);
        let b = Vector::from_u32s(vec![1]);
        assert!(matches!(
            DataChunk::from_columns(vec![a, b]),
            Err(VectorError::LengthMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn from_columns_happy_path() {
        let a = Vector::from_u32s(vec![1, 2]);
        let b = Vector::from_strings(["x", "y"]);
        let c = DataChunk::from_columns(vec![a, b]).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn take_reorders_rows() {
        let c = sample();
        let g = c.take(&[1, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.row(0), vec![Value::UInt32(1), Value::from("a")]);
        assert_eq!(g.row(1), vec![Value::UInt32(2), Value::from("b")]);
    }

    #[test]
    fn append_concatenates() {
        let mut a = sample();
        let b = sample();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a.row(3), b.row(0));
    }

    #[test]
    fn split_into_vectors_respects_vector_size() {
        let n = VECTOR_SIZE * 2 + 100;
        let vals: Vec<u32> = (0..n as u32).collect();
        let c = DataChunk::from_columns(vec![Vector::from_u32s(vals)]).unwrap();
        let parts = c.split_into_vectors();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), VECTOR_SIZE);
        assert_eq!(parts[1].len(), VECTOR_SIZE);
        assert_eq!(parts[2].len(), 100);
        assert_eq!(parts[2].row(99), vec![Value::UInt32(n as u32 - 1)]);
    }

    #[test]
    fn split_small_chunk_is_identity() {
        let c = sample();
        let parts = c.split_into_vectors();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], c);
    }

    #[test]
    fn empty_chunk() {
        let c = DataChunk::new(&[LogicalType::Int32]);
        assert!(c.is_empty());
        assert_eq!(c.to_rows(), Vec::<Vec<Value>>::new());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut c = DataChunk::new(&[LogicalType::Int32]);
        let _ = c.push_row(&[Value::Int32(1), Value::Int32(2)]);
    }
}

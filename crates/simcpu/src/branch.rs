//! Branch predictor model.

/// A gshare-style branch predictor: a table of 2-bit saturating counters
/// indexed by the branch site XOR'd with recent global history.
///
/// This is a deliberately modest model of the Xeon's real predictor — what
/// matters for the paper's experiments is the *pattern* sensitivity: a
/// comparison branch whose outcome is a coin flip (random pivot vs random
/// element) mispredicts ~50% here as on hardware, while a branch that is
/// almost always taken predicts almost perfectly.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// 2-bit counters: 0,1 predict not-taken; 2,3 predict taken.
    table: Vec<u8>,
    mask: u64,
    history: u64,
    history_bits: u32,
    branches: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Default geometry: 4096 counters, 8 bits of global history.
    pub fn new() -> BranchPredictor {
        BranchPredictor::with_geometry(4096, 8)
    }

    /// Custom geometry (table size must be a power of two).
    pub fn with_geometry(table_size: usize, history_bits: u32) -> BranchPredictor {
        assert!(table_size.is_power_of_two());
        BranchPredictor {
            table: vec![1; table_size], // weakly not-taken
            mask: (table_size - 1) as u64,
            history: 0,
            history_bits,
            branches: 0,
            mispredictions: 0,
        }
    }

    /// Record the outcome of a conditional branch at site `pc`. Returns
    /// `true` if the prediction was wrong.
    pub fn branch(&mut self, pc: u64, taken: bool) -> bool {
        self.branches += 1;
        let idx = ((pc ^ self.history) & self.mask) as usize;
        let counter = self.table[idx];
        let predicted_taken = counter >= 2;
        let mispredicted = predicted_taken != taken;
        if mispredicted {
            self.mispredictions += 1;
        }
        self.table[idx] = match (counter, taken) {
            (3, true) => 3,
            (c, true) => c + 1,
            (0, false) => 0,
            (c, false) => c - 1,
        };
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
        mispredicted
    }

    /// Total conditional branches recorded.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Reset counters (predictor state is kept).
    pub fn reset_counters(&mut self) {
        self.branches = 0;
        self.mispredictions = 0;
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_predicts_well() {
        let mut bp = BranchPredictor::new();
        for _ in 0..10_000 {
            bp.branch(0x10, true);
        }
        assert!(bp.mispredictions() < 20, "{}", bp.mispredictions());
    }

    #[test]
    fn never_taken_predicts_well() {
        let mut bp = BranchPredictor::new();
        for _ in 0..10_000 {
            bp.branch(0x20, false);
        }
        assert!(bp.mispredictions() < 20);
    }

    #[test]
    fn random_outcomes_mispredict_about_half() {
        let mut bp = BranchPredictor::new();
        let mut state = 0xDEADBEEFu64;
        let n = 100_000;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            bp.branch(0x30, (state >> 33) & 1 == 1);
        }
        let rate = bp.mispredictions() as f64 / n as f64;
        assert!((0.40..=0.60).contains(&rate), "rate {rate}");
    }

    #[test]
    fn short_period_pattern_learned_by_history() {
        // Period-4 pattern: T T F F — gshare history should learn it.
        let mut bp = BranchPredictor::new();
        let pattern = [true, true, false, false];
        for i in 0..40_000 {
            bp.branch(0x40, pattern[i % 4]);
        }
        let rate = bp.mispredictions() as f64 / 40_000.0;
        assert!(rate < 0.05, "pattern should be learned, rate {rate}");
    }

    #[test]
    fn counters_reset() {
        let mut bp = BranchPredictor::new();
        bp.branch(1, true);
        bp.reset_counters();
        assert_eq!(bp.branches(), 0);
        assert_eq!(bp.mispredictions(), 0);
    }

    #[test]
    fn distinct_sites_do_not_interfere_much() {
        let mut bp = BranchPredictor::with_geometry(4096, 0); // no history
        for i in 0..10_000u64 {
            bp.branch(0x100, true);
            bp.branch(0x200, false);
            let _ = i;
        }
        assert!(bp.mispredictions() < 10);
    }
}

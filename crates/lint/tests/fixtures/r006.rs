// Known-bad fixture for R006 (process::exit / unsafe impl Send/Sync).

pub struct Handle(*mut u8);

// SAFETY: a SAFETY comment does not excuse unsafe impl — R006 needs an
// allowlist entry, which this fixture path does not have.
unsafe impl Send for Handle {}

unsafe impl Sync for Handle {}

fn die() -> ! {
    std::process::exit(3);
}

pub trait Marker {}
// An unsafe impl of a trait other than Send/Sync is not flagged by R006
// (and unsafe impls are deliberately outside R001's scope).
unsafe impl Marker for Handle {}

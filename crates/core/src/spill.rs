//! Spill I/O abstraction and error taxonomy for the external sorter.
//!
//! [`ExternalSorter`](crate::external::ExternalSorter) talks to storage
//! only through the [`SpillIo`] trait — create, write/flush (via the
//! returned writer), read, delete of run files. Production uses
//! [`StdFs`] (plain `std::fs`); tests and the `stress` binary swap in
//! [`rowsort_testkit::faultfs::FaultFs`] to deterministically inject
//! write errors, ENOSPC, short reads, and corruption from a seeded
//! schedule.
//!
//! Failures surface as [`SpillError`] — a typed, cloneable error that
//! keeps the spill operation, the run-file path, and the underlying
//! [`io::ErrorKind`], so callers (and `EngineError`) can report *which*
//! file failed doing *what* instead of a bare `io::Error`. Corruption
//! detected by checksum verification is its own variant: it must never
//! be confused with an I/O failure, because the degradation ladder
//! treats them differently (I/O errors may be retried or absorbed;
//! corrupt data is fatal for that sort).

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use rowsort_testkit::faultfs::FaultFs;

/// Which spill operation failed. Carried inside [`SpillError::Io`] so
/// error messages name the phase (`create`, `write`, …) without parsing
/// strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillOp {
    /// Creating/truncating a run file.
    Create,
    /// Writing run bytes.
    Write,
    /// Flushing buffered run bytes.
    Flush,
    /// Opening or reading a run file back.
    Read,
    /// Deleting a run file.
    Delete,
}

impl fmt::Display for SpillOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SpillOp::Create => "create",
            SpillOp::Write => "write",
            SpillOp::Flush => "flush",
            SpillOp::Read => "read",
            SpillOp::Delete => "delete",
        })
    }
}

/// A typed spill failure: what went wrong, on which file, doing what.
///
/// Stores the [`io::ErrorKind`] plus the error's rendered detail rather
/// than the `io::Error` itself so the type stays `Clone + PartialEq +
/// Eq` (and can thread through `EngineError`, which is both).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillError {
    /// An I/O operation on a run file failed.
    Io {
        /// The operation that failed.
        op: SpillOp,
        /// The run file involved.
        path: String,
        /// The underlying error kind (drives retry/degradation policy).
        kind: io::ErrorKind,
        /// The underlying error's message.
        detail: String,
    },
    /// A run file read back with contents that fail verification
    /// (checksum mismatch, truncation, or a structurally impossible
    /// record).
    Corrupt {
        /// The run file involved.
        path: String,
        /// What the verifier saw.
        detail: String,
    },
}

impl SpillError {
    /// Wrap an `io::Error` from `op` on `path`.
    pub fn io(op: SpillOp, path: &Path, err: &io::Error) -> SpillError {
        SpillError::Io {
            op,
            path: path.display().to_string(),
            kind: err.kind(),
            detail: err.to_string(),
        }
    }

    /// A corruption error for `path`.
    pub fn corrupt(path: &Path, detail: impl Into<String>) -> SpillError {
        SpillError::Corrupt {
            path: path.display().to_string(),
            detail: detail.into(),
        }
    }

    /// The run-file path this error refers to.
    pub fn path(&self) -> &str {
        match self {
            SpillError::Io { path, .. } | SpillError::Corrupt { path, .. } => path,
        }
    }

    /// True for error kinds worth a bounded retry: the write may succeed
    /// if simply attempted again.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SpillError::Io {
                kind: io::ErrorKind::Interrupted
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::TimedOut,
                ..
            }
        )
    }

    /// True when spill space is exhausted: retrying is pointless, but the
    /// sorter can degrade to keeping runs in memory.
    pub fn is_no_space(&self) -> bool {
        matches!(
            self,
            SpillError::Io {
                kind: io::ErrorKind::StorageFull | io::ErrorKind::QuotaExceeded,
                ..
            }
        )
    }
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io {
                op,
                path,
                kind,
                detail,
            } => write!(f, "spill {op} failed on {path}: {detail} ({kind:?})"),
            SpillError::Corrupt { path, detail } => {
                write!(f, "spill file corrupt: {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for SpillError {}

/// The storage surface the external sorter needs. Object-safe so the
/// sorter can hold an `Arc<dyn SpillIo>` and tests can swap backends.
pub trait SpillIo: Send + Sync {
    /// Create (truncating) a run file and return its writer. Writes and
    /// flushes go through the returned handle; dropping it closes the
    /// file.
    fn create(&self, path: &Path) -> io::Result<Box<dyn Write + Send>>;

    /// Open a run file for sequential reading.
    fn open(&self, path: &Path) -> io::Result<Box<dyn Read + Send>>;

    /// Delete a run file.
    fn delete(&self, path: &Path) -> io::Result<()>;
}

/// The default backend: plain `std::fs`, buffered on both sides.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl SpillIo for StdFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn Write + Send>> {
        let file = std::fs::File::create(path)?;
        Ok(Box::new(io::BufWriter::new(file)))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn Read + Send>> {
        let file = std::fs::File::open(path)?;
        Ok(Box::new(io::BufReader::new(file)))
    }

    fn delete(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// The fault-injecting in-memory backend ([`FaultFs`]) speaks the same
/// interface, keyed by the path's string form.
impl SpillIo for FaultFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn Write + Send>> {
        FaultFs::create(self, &path.display().to_string()).map(|w| Box::new(w) as _)
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn Read + Send>> {
        FaultFs::open(self, &path.display().to_string()).map(|r| Box::new(r) as _)
    }

    fn delete(&self, path: &Path) -> io::Result<()> {
        FaultFs::delete(self, &path.display().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowsort_testkit::faultfs::FaultSchedule;
    use std::path::PathBuf;

    #[test]
    fn spill_error_carries_op_path_and_kind() {
        let path = PathBuf::from("/tmp/run-3.run");
        let io_err = io::Error::new(io::ErrorKind::TimedOut, "slow disk");
        let err = SpillError::io(SpillOp::Write, &path, &io_err);
        assert_eq!(err.path(), "/tmp/run-3.run");
        assert!(err.is_transient());
        assert!(!err.is_no_space());
        let text = err.to_string();
        assert!(text.contains("write"), "{text}");
        assert!(text.contains("/tmp/run-3.run"), "{text}");
        assert!(text.contains("slow disk"), "{text}");
    }

    #[test]
    fn no_space_kinds_are_not_transient() {
        let path = PathBuf::from("r.run");
        for kind in [io::ErrorKind::StorageFull, io::ErrorKind::QuotaExceeded] {
            let err = SpillError::io(SpillOp::Write, &path, &io::Error::new(kind, "full"));
            assert!(err.is_no_space());
            assert!(!err.is_transient());
        }
    }

    #[test]
    fn corrupt_is_neither_transient_nor_no_space() {
        let err = SpillError::corrupt(&PathBuf::from("r.run"), "checksum mismatch");
        assert!(!err.is_transient());
        assert!(!err.is_no_space());
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn errors_compare_equal_by_value() {
        let path = PathBuf::from("x.run");
        let a = SpillError::io(
            SpillOp::Read,
            &path,
            &io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        let b = SpillError::io(
            SpillOp::Read,
            &path,
            &io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn std_fs_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rowsort-spill-test-{}.run", std::process::id()));
        let fs = StdFs;
        let mut w = fs.create(&path).unwrap();
        w.write_all(b"spill bytes").unwrap();
        w.flush().unwrap();
        drop(w);
        let mut got = Vec::new();
        fs.open(&path).unwrap().read_to_end(&mut got).unwrap();
        assert_eq!(got, b"spill bytes");
        fs.delete(&path).unwrap();
        assert!(fs.open(&path).is_err());
    }

    #[test]
    fn faultfs_speaks_spill_io() {
        let fs = FaultFs::new(FaultSchedule::none());
        let io: &dyn SpillIo = &fs;
        let path = PathBuf::from("mem-0.run");
        let mut w = io.create(&path).unwrap();
        w.write_all(b"abc").unwrap();
        drop(w);
        let mut got = Vec::new();
        io.open(&path).unwrap().read_to_end(&mut got).unwrap();
        assert_eq!(got, b"abc");
        io.delete(&path).unwrap();
        assert!(fs.live_files().is_empty());
    }
}

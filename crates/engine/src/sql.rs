//! SQL front end: tokenizer, AST, and recursive-descent parser.
//!
//! The supported fragment covers the paper's benchmark queries plus the
//! two other sort consumers its introduction names (merge joins and
//! window functions):
//!
//! ```sql
//! SELECT { * | count(*) | row_number() OVER (ORDER BY ...) | col [, ...] }
//! FROM { table | ( query ) [AS alias] | table JOIN table ON key = key }
//! [WHERE col op literal [AND ...] | col IS [NOT] NULL]
//! [ORDER BY col [ASC|DESC] [NULLS FIRST|LAST] [, ...]]
//! [LIMIT n] [OFFSET n]
//! ```
//!
//! Column names may be qualified (`table.col`) anywhere a column is
//! accepted, matching the qualified output names joins produce.

use crate::{EngineError, Result};

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `count(*)`
    CountStar,
    /// A named column.
    Column(String),
    /// `row_number() OVER (ORDER BY ...)` — the paper's other explicit
    /// sort consumer (the WINDOW operator).
    RowNumber(Vec<OrderItem>),
}

/// One ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Column name.
    pub column: String,
    /// `DESC` if true.
    pub desc: bool,
    /// Explicit `NULLS FIRST`/`LAST`, if given.
    pub nulls_first: Option<bool>,
}

/// A comparison operator in a WHERE predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
}

/// One conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col op literal`
    Compare {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        literal: Literal,
    },
    /// `col IS NULL` / `col IS NOT NULL`
    IsNull {
        /// Column name.
        column: String,
        /// `IS NOT NULL` if true.
        negated: bool,
    },
}

/// A possibly-qualified column reference (`col` or `table.col`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// Optional table qualifier.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

/// What the query reads FROM.
#[derive(Debug, Clone, PartialEq)]
pub enum FromClause {
    /// A named base table.
    Table(String),
    /// A parenthesized subquery.
    Subquery(Box<Query>),
    /// `a JOIN b ON a.x = b.y` — executed as a sort-merge join (the
    /// paper's §V-B example of an operator consuming sorted data with
    /// full-tuple comparisons).
    Join {
        /// Left table name.
        left: String,
        /// Right table name.
        right: String,
        /// Left join key.
        left_key: ColumnRef,
        /// Right join key.
        right_key: ColumnRef,
    },
}

/// An `EXPLAIN` prefix on a query, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainMode {
    /// Plain query: execute and return its result.
    None,
    /// `EXPLAIN …`: return the optimized plan tree without executing.
    Plan,
    /// `EXPLAIN ANALYZE …`: execute and return the plan tree annotated
    /// with per-operator row counts and wall-clock timings.
    Analyze,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM source.
    pub from: FromClause,
    /// WHERE conjuncts (ANDed).
    pub predicates: Vec<Predicate>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT, if present.
    pub limit: Option<u64>,
    /// OFFSET, if present.
    pub offset: Option<u64>,
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(char),
    LeGe(&'static str), // "<=", ">=", "<>", "!="
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' | ')' | ',' | '*' | '=' | ';' | '.' => {
                out.push(Token::Symbol(c));
                i += 1;
            }
            '<' | '>' | '!' => {
                let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                match two.as_str() {
                    "<=" => {
                        out.push(Token::LeGe("<="));
                        i += 2;
                    }
                    ">=" => {
                        out.push(Token::LeGe(">="));
                        i += 2;
                    }
                    "<>" => {
                        out.push(Token::LeGe("<>"));
                        i += 2;
                    }
                    "!=" => {
                        out.push(Token::LeGe("!="));
                        i += 2;
                    }
                    _ if c == '!' => {
                        return Err(EngineError::Parse(format!("stray '!' at {i}")));
                    }
                    _ => {
                        out.push(Token::Symbol(c));
                        i += 1;
                    }
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(EngineError::Parse("unterminated string".into()));
                    }
                    if bytes[i] == '\'' {
                        // '' escapes a quote
                        if i + 1 < bytes.len() && bytes[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(bytes[i]);
                    i += 1;
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit()) =>
            {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '-' || bytes[i] == '+')
                            && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
                {
                    if bytes[i] == '.' || bytes[i] == 'e' || bytes[i] == 'E' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| EngineError::Parse(format!("bad number '{text}'")))?;
                    out.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| EngineError::Parse(format!("bad number '{text}'")))?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => {
                return Err(EngineError::Parse(format!(
                    "unexpected character '{other}'"
                )))
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(EngineError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, c: char) -> Result<()> {
        if self.eat_symbol(c) {
            Ok(())
        } else {
            Err(EngineError::Parse(format!(
                "expected '{c}', found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(EngineError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// Parse `ident` or `ident.ident`, returning the joined name (matching
    /// the qualified output names a join produces).
    fn expect_column_name(&mut self) -> Result<String> {
        let first = self.expect_ident()?;
        if self.eat_symbol('.') {
            let second = self.expect_ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn expect_u64(&mut self) -> Result<u64> {
        match self.next() {
            Some(Token::Int(v)) if v >= 0 => Ok(v as u64),
            other => Err(EngineError::Parse(format!(
                "expected non-negative integer, found {other:?}"
            ))),
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        self.expect_keyword("select")?;
        let select = self.parse_select_list()?;
        self.expect_keyword("from")?;
        let from = self.parse_from()?;
        let mut predicates = Vec::new();
        if self.eat_keyword("where") {
            loop {
                predicates.push(self.parse_predicate()?);
                if !self.eat_keyword("and") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                order_by.push(self.parse_order_item()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
        }
        // LIMIT and OFFSET in either order, each optional.
        let mut limit = None;
        let mut offset = None;
        loop {
            if limit.is_none() && self.eat_keyword("limit") {
                limit = Some(self.expect_u64()?);
            } else if offset.is_none() && self.eat_keyword("offset") {
                offset = Some(self.expect_u64()?);
            } else {
                break;
            }
        }
        Ok(Query {
            select,
            from,
            predicates,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.eat_symbol('*') {
                items.push(SelectItem::Star);
            } else if self.peek_keyword("count") {
                self.pos += 1;
                self.expect_symbol('(')?;
                self.expect_symbol('*')?;
                self.expect_symbol(')')?;
                items.push(SelectItem::CountStar);
            } else if self.peek_keyword("row_number") {
                self.pos += 1;
                self.expect_symbol('(')?;
                self.expect_symbol(')')?;
                self.expect_keyword("over")?;
                self.expect_symbol('(')?;
                self.expect_keyword("order")?;
                self.expect_keyword("by")?;
                let mut order = Vec::new();
                loop {
                    order.push(self.parse_order_item()?);
                    if !self.eat_symbol(',') {
                        break;
                    }
                }
                self.expect_symbol(')')?;
                items.push(SelectItem::RowNumber(order));
            } else {
                items.push(SelectItem::Column(self.expect_column_name()?));
            }
            if !self.eat_symbol(',') {
                break;
            }
        }
        Ok(items)
    }

    fn parse_column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.expect_ident()?;
        if self.eat_symbol('.') {
            Ok(ColumnRef {
                table: Some(first),
                column: self.expect_ident()?,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }

    fn parse_from(&mut self) -> Result<FromClause> {
        if self.eat_symbol('(') {
            let inner = self.parse_query()?;
            self.expect_symbol(')')?;
            // Optional [AS] alias, ignored (single-source queries).
            if self.eat_keyword("as") {
                let _ = self.expect_ident()?;
            } else if matches!(self.peek(), Some(Token::Ident(s))
                if !is_clause_keyword(s))
            {
                let _ = self.next();
            }
            return Ok(FromClause::Subquery(Box::new(inner)));
        }
        let left = self.expect_ident()?;
        if self.eat_keyword("join") {
            let right = self.expect_ident()?;
            self.expect_keyword("on")?;
            let left_key = self.parse_column_ref()?;
            self.expect_symbol('=')?;
            let right_key = self.parse_column_ref()?;
            return Ok(FromClause::Join {
                left,
                right,
                left_key,
                right_key,
            });
        }
        Ok(FromClause::Table(left))
    }

    fn parse_predicate(&mut self) -> Result<Predicate> {
        let column = self.expect_column_name()?;
        if self.eat_keyword("is") {
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Predicate::IsNull { column, negated });
        }
        let op = match self.next() {
            Some(Token::Symbol('=')) => CmpOp::Eq,
            Some(Token::Symbol('<')) => CmpOp::Lt,
            Some(Token::Symbol('>')) => CmpOp::Gt,
            Some(Token::LeGe("<=")) => CmpOp::Le,
            Some(Token::LeGe(">=")) => CmpOp::Ge,
            Some(Token::LeGe("<>")) | Some(Token::LeGe("!=")) => CmpOp::Ne,
            other => {
                return Err(EngineError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let literal = match self.next() {
            Some(Token::Int(v)) => Literal::Int(v),
            Some(Token::Float(v)) => Literal::Float(v),
            Some(Token::Str(s)) => Literal::Str(s),
            other => {
                return Err(EngineError::Parse(format!(
                    "expected literal, found {other:?}"
                )))
            }
        };
        Ok(Predicate::Compare {
            column,
            op,
            literal,
        })
    }

    fn parse_order_item(&mut self) -> Result<OrderItem> {
        let column = self.expect_column_name()?;
        let desc = if self.eat_keyword("desc") {
            true
        } else {
            self.eat_keyword("asc");
            false
        };
        let nulls_first = if self.eat_keyword("nulls") {
            if self.eat_keyword("first") {
                Some(true)
            } else {
                self.expect_keyword("last")?;
                Some(false)
            }
        } else {
            None
        };
        Ok(OrderItem {
            column,
            desc,
            nulls_first,
        })
    }
}

fn is_clause_keyword(s: &str) -> bool {
    [
        "where", "order", "limit", "offset", "group", "having", "union",
    ]
    .iter()
    .any(|k| s.eq_ignore_ascii_case(k))
}

/// Parse one SQL statement: an optional `EXPLAIN [ANALYZE]` prefix
/// followed by a query (an optional trailing `;` is allowed).
pub fn parse_statement(input: &str) -> Result<(ExplainMode, Query)> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mode = if p.eat_keyword("explain") {
        if p.eat_keyword("analyze") {
            ExplainMode::Analyze
        } else {
            ExplainMode::Plan
        }
    } else {
        ExplainMode::None
    };
    let q = p.parse_query()?;
    while p.eat_symbol(';') {}
    if let Some(t) = p.peek() {
        return Err(EngineError::Parse(format!("trailing input: {t:?}")));
    }
    Ok((mode, q))
}

/// Parse one SQL query (an optional trailing `;` is allowed). `EXPLAIN`
/// prefixes are rejected here: they are a statement-level concern handled
/// by [`parse_statement`].
pub fn parse(input: &str) -> Result<Query> {
    let (mode, q) = parse_statement(input)?;
    if mode != ExplainMode::None {
        return Err(EngineError::Parse(
            "EXPLAIN is only supported through Engine::query".into(),
        ));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select_star() {
        let q = parse("SELECT * FROM customer").unwrap();
        assert_eq!(q.select, vec![SelectItem::Star]);
        assert_eq!(q.from, FromClause::Table("customer".into()));
        assert!(q.order_by.is_empty());
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn column_list_and_order_by() {
        let q = parse(
            "SELECT c_customer_sk, c_last_name FROM customer \
             ORDER BY c_last_name DESC NULLS LAST, c_first_name ASC NULLS FIRST",
        )
        .unwrap();
        assert_eq!(
            q.select,
            vec![
                SelectItem::Column("c_customer_sk".into()),
                SelectItem::Column("c_last_name".into())
            ]
        );
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert_eq!(q.order_by[0].nulls_first, Some(false));
        assert!(!q.order_by[1].desc);
        assert_eq!(q.order_by[1].nulls_first, Some(true));
    }

    #[test]
    fn papers_benchmark_query() {
        let q = parse(
            "SELECT count(*) FROM (SELECT cs_item_sk FROM catalog_sales \
             ORDER BY cs_warehouse_sk, cs_ship_mode_sk OFFSET 1) t;",
        )
        .unwrap();
        assert_eq!(q.select, vec![SelectItem::CountStar]);
        match &q.from {
            FromClause::Subquery(inner) => {
                assert_eq!(inner.offset, Some(1));
                assert_eq!(inner.order_by.len(), 2);
                assert_eq!(inner.select, vec![SelectItem::Column("cs_item_sk".into())]);
            }
            other => panic!("expected subquery, got {other:?}"),
        }
    }

    #[test]
    fn where_clause_variants() {
        let q = parse("SELECT * FROM t WHERE a >= 10 AND b <> 'x' AND c IS NOT NULL AND d < -3.5")
            .unwrap();
        assert_eq!(q.predicates.len(), 4);
        assert_eq!(
            q.predicates[0],
            Predicate::Compare {
                column: "a".into(),
                op: CmpOp::Ge,
                literal: Literal::Int(10)
            }
        );
        assert_eq!(
            q.predicates[1],
            Predicate::Compare {
                column: "b".into(),
                op: CmpOp::Ne,
                literal: Literal::Str("x".into())
            }
        );
        assert_eq!(
            q.predicates[2],
            Predicate::IsNull {
                column: "c".into(),
                negated: true
            }
        );
        assert_eq!(
            q.predicates[3],
            Predicate::Compare {
                column: "d".into(),
                op: CmpOp::Lt,
                literal: Literal::Float(-3.5)
            }
        );
    }

    #[test]
    fn limit_offset_orders() {
        let q = parse("SELECT * FROM t LIMIT 10 OFFSET 5").unwrap();
        assert_eq!((q.limit, q.offset), (Some(10), Some(5)));
        let q = parse("SELECT * FROM t OFFSET 5 LIMIT 10").unwrap();
        assert_eq!((q.limit, q.offset), (Some(10), Some(5)));
        let q = parse("SELECT * FROM t OFFSET 5").unwrap();
        assert_eq!((q.limit, q.offset), (None, Some(5)));
    }

    #[test]
    fn string_escapes() {
        let q = parse("SELECT * FROM t WHERE a = 'it''s'").unwrap();
        assert_eq!(
            q.predicates[0],
            Predicate::Compare {
                column: "a".into(),
                op: CmpOp::Eq,
                literal: Literal::Str("it's".into())
            }
        );
    }

    #[test]
    fn subquery_alias_forms() {
        for sql in [
            "SELECT count(*) FROM (SELECT * FROM t) AS sub",
            "SELECT count(*) FROM (SELECT * FROM t) sub",
            "SELECT count(*) FROM (SELECT * FROM t)",
        ] {
            assert!(parse(sql).is_ok(), "{sql}");
        }
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse("select * from t order by a desc nulls first limit 1").is_ok());
    }

    #[test]
    fn parse_errors() {
        assert!(parse("").is_err());
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t ORDER a").is_err());
        assert!(parse("SELECT * FROM t WHERE a ~ 3").is_err());
        assert!(parse("SELECT * FROM t LIMIT -1").is_err());
        assert!(parse("SELECT * FROM t trailing garbage").is_err());
        assert!(parse("SELECT * FROM t WHERE a = 'unterminated").is_err());
    }

    #[test]
    fn join_clause() {
        let q = parse("SELECT o_id, c_name FROM orders JOIN customers ON orders.o_cust = c_id")
            .unwrap();
        match &q.from {
            FromClause::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                assert_eq!(left, "orders");
                assert_eq!(right, "customers");
                assert_eq!(left_key.table.as_deref(), Some("orders"));
                assert_eq!(left_key.column, "o_cust");
                assert_eq!(right_key.table, None);
                assert_eq!(right_key.column, "c_id");
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn row_number_window_parse() {
        let q = parse("SELECT id, row_number() OVER (ORDER BY name DESC, id) FROM t").unwrap();
        match &q.select[1] {
            SelectItem::RowNumber(order) => {
                assert_eq!(order.len(), 2);
                assert!(order[0].desc);
                assert!(!order[1].desc);
            }
            other => panic!("expected window, got {other:?}"),
        }
    }

    #[test]
    fn dotted_columns_everywhere() {
        let q = parse("SELECT a.x FROM a JOIN b ON a.x = b.y WHERE a.x > 1 ORDER BY b.y").unwrap();
        assert_eq!(q.select, vec![SelectItem::Column("a.x".into())]);
        assert_eq!(
            q.predicates[0],
            Predicate::Compare {
                column: "a.x".into(),
                op: CmpOp::Gt,
                literal: Literal::Int(1)
            }
        );
        assert_eq!(q.order_by[0].column, "b.y");
    }

    #[test]
    fn join_parse_errors() {
        assert!(parse("SELECT * FROM a JOIN").is_err());
        assert!(parse("SELECT * FROM a JOIN b").is_err());
        assert!(parse("SELECT * FROM a JOIN b ON").is_err());
        assert!(parse("SELECT * FROM a JOIN b ON x").is_err());
        assert!(parse("SELECT * FROM a JOIN b ON x <> y").is_err());
        assert!(parse("SELECT row_number() FROM t").is_err());
        assert!(parse("SELECT row_number() OVER () FROM t").is_err());
    }

    #[test]
    fn explain_prefixes() {
        let (mode, q) = parse_statement("EXPLAIN SELECT * FROM t ORDER BY a").unwrap();
        assert_eq!(mode, ExplainMode::Plan);
        assert_eq!(q.order_by.len(), 1);
        let (mode, _) = parse_statement("explain analyze SELECT * FROM t;").unwrap();
        assert_eq!(mode, ExplainMode::Analyze);
        let (mode, _) = parse_statement("SELECT * FROM t").unwrap();
        assert_eq!(mode, ExplainMode::None);
        // `parse` is query-only: the prefix is rejected there.
        assert!(parse("EXPLAIN SELECT * FROM t").is_err());
        assert!(parse_statement("EXPLAIN").is_err());
    }

    #[test]
    fn scientific_floats() {
        let q = parse("SELECT * FROM t WHERE x < 1e9").unwrap();
        assert_eq!(
            q.predicates[0],
            Predicate::Compare {
                column: "x".into(),
                op: CmpOp::Lt,
                literal: Literal::Float(1e9)
            }
        );
        let q = parse("SELECT * FROM t WHERE x > -1.5e-3").unwrap();
        assert_eq!(
            q.predicates[0],
            Predicate::Compare {
                column: "x".into(),
                op: CmpOp::Gt,
                literal: Literal::Float(-1.5e-3)
            }
        );
    }
}

//! Micro-benchmark experiments: Figures 2–6, 8, 9.
//!
//! Measurement conventions follow the paper: each cell is the median of
//! `reps` runs on freshly generated data; "relative runtime" of approach A
//! compared to baseline B is `time(B) / time(A)` (so 2.00 means A finishes
//! in half the time, as in the paper's figures); only like-for-like
//! algorithms are compared (introsort vs introsort, merge sort vs merge
//! sort).

use crate::{fmt_ratio, time_median, ExperimentResult, Scale};
use rowsort_core::strategy::{
    columnar_subsort, columnar_tuple, normkey_radix, normkey_sort, row_subsort, row_tuple_dynamic,
    row_tuple_static, to_static_rows, Algo, ByteRows, NormRows,
};
use rowsort_datagen::{key_columns, KeyDistribution};
use std::time::Duration;

/// The key-column counts the paper sweeps.
pub const COL_SWEEP: [usize; 4] = [1, 2, 3, 4];

fn seed_for(dist_idx: usize, rows: usize, cols: usize) -> u64 {
    (dist_idx as u64) << 48 ^ (rows as u64) << 8 ^ cols as u64 ^ 0x5eed
}

fn time_columnar_tuple(cols: &[Vec<u32>], algo: Algo, reps: usize) -> Duration {
    time_median(
        reps,
        || (),
        |()| {
            std::hint::black_box(columnar_tuple(cols, algo));
        },
    )
}

fn time_columnar_subsort(cols: &[Vec<u32>], algo: Algo, reps: usize) -> Duration {
    time_median(
        reps,
        || (),
        |()| {
            std::hint::black_box(columnar_subsort(cols, algo));
        },
    )
}

fn time_row_fused_static(cols: &[Vec<u32>], algo: Algo, reps: usize) -> Duration {
    // Monomorphized per key-column count, like a compiled engine's
    // generated struct.
    macro_rules! run_n {
        ($n:literal) => {
            time_median(
                reps,
                || to_static_rows::<$n>(cols),
                |mut rows| {
                    row_tuple_static::<$n>(&mut rows, algo);
                    std::hint::black_box(rows.len());
                },
            )
        };
    }
    match cols.len() {
        1 => run_n!(1),
        2 => run_n!(2),
        3 => run_n!(3),
        4 => run_n!(4),
        n => panic!("unsupported key column count {n}"),
    }
}

fn time_row_dynamic(cols: &[Vec<u32>], algo: Algo, reps: usize) -> Duration {
    time_median(
        reps,
        || ByteRows::from_cols(cols),
        |mut rows| {
            row_tuple_dynamic(&mut rows, algo);
            std::hint::black_box(rows.len());
        },
    )
}

fn time_row_subsort(cols: &[Vec<u32>], algo: Algo, reps: usize) -> Duration {
    time_median(
        reps,
        || ByteRows::from_cols(cols),
        |mut rows| {
            row_subsort(&mut rows, algo);
            std::hint::black_box(rows.len());
        },
    )
}

fn time_normkey_sort(cols: &[Vec<u32>], algo: Algo, reps: usize) -> Duration {
    time_median(
        reps,
        || NormRows::from_cols(cols),
        |mut rows| {
            normkey_sort(&mut rows, algo);
            std::hint::black_box(rows.len());
        },
    )
}

fn time_normkey_radix(cols: &[Vec<u32>], reps: usize) -> Duration {
    time_median(
        reps,
        || NormRows::from_cols(cols),
        |mut rows| {
            normkey_radix(&mut rows);
            std::hint::black_box(rows.len());
        },
    )
}

/// Shared sweep driver: for every (distribution, rows, key columns) cell,
/// compute one or more ratios.
fn sweep(
    scale: &Scale,
    series: &[&str],
    mut cell: impl FnMut(&[Vec<u32>], usize) -> Vec<f64>,
) -> Vec<Vec<String>> {
    let mut rows_out = Vec::new();
    for (di, dist) in KeyDistribution::SWEEP.iter().enumerate() {
        for &n in &scale.row_sweep() {
            for &nc in &COL_SWEEP {
                let cols = key_columns(*dist, n, nc, seed_for(di, n, nc));
                let ratios = cell(&cols, nc);
                debug_assert_eq!(ratios.len(), series.len());
                let mut row = vec![dist.label(), n.to_string(), nc.to_string()];
                row.extend(ratios.iter().map(|&r| fmt_ratio(r)));
                rows_out.push(row);
            }
        }
    }
    rows_out
}

fn header(series: &[&str]) -> Vec<String> {
    let mut h = vec!["distribution".into(), "rows".into(), "key_cols".into()];
    h.extend(series.iter().map(|s| s.to_string()));
    h
}

/// Figure 2 (introsort) / Figure 3 (merge sort): relative runtime of the
/// columnar subsort approach vs columnar tuple-at-a-time.
pub fn fig_2_3(scale: &Scale, algo: Algo) -> ExperimentResult {
    let series = ["subsort_vs_tuple"];
    let rows = sweep(scale, &series, |cols, _| {
        let tuple = time_columnar_tuple(cols, algo, scale.reps);
        let subsort = time_columnar_subsort(cols, algo, scale.reps);
        vec![tuple.as_secs_f64() / subsort.as_secs_f64()]
    });
    let (id, title) = match algo {
        Algo::Introsort => ("fig2", "columnar subsort vs tuple-at-a-time (introsort)"),
        Algo::MergeSort => ("fig3", "columnar subsort vs tuple-at-a-time (merge sort)"),
        Algo::Pdq => ("fig2-pdq", "columnar subsort vs tuple-at-a-time (pdqsort)"),
    };
    ExperimentResult {
        id: id.into(),
        title: title.into(),
        header: header(&series),
        rows,
        notes: vec![
            "ratio > 1 means subsort is faster (paper: grows with rows and key columns \
             on Correlated data; ≈1 on Random)"
                .into(),
        ],
    }
}

/// Figure 4 (introsort) / Figure 5 (merge sort): relative runtime of the
/// NSM approaches vs the columnar subsort baseline.
pub fn fig_4_5(scale: &Scale, algo: Algo) -> ExperimentResult {
    let series = ["row_tuple_vs_col_subsort", "row_subsort_vs_col_subsort"];
    let rows = sweep(scale, &series, |cols, _| {
        let baseline = time_columnar_subsort(cols, algo, scale.reps);
        let row_tuple = time_row_fused_static(cols, algo, scale.reps);
        let row_sub = time_row_subsort(cols, algo, scale.reps);
        vec![
            baseline.as_secs_f64() / row_tuple.as_secs_f64(),
            baseline.as_secs_f64() / row_sub.as_secs_f64(),
        ]
    });
    let (id, title) = match algo {
        Algo::Introsort => ("fig4", "row formats vs columnar subsort (introsort)"),
        Algo::MergeSort => ("fig5", "row formats vs columnar subsort (merge sort)"),
        Algo::Pdq => ("fig4-pdq", "row formats vs columnar subsort (pdqsort)"),
    };
    ExperimentResult {
        id: id.into(),
        title: title.into(),
        header: header(&series),
        rows,
        notes: vec![
            "ratio > 1 means the row format is faster; paper: rows win almost everywhere, \
             especially at large input sizes"
                .into(),
        ],
    }
}

/// Figure 6: dynamic per-column comparator vs static comparator, NSM rows.
pub fn fig_6(scale: &Scale) -> ExperimentResult {
    let series = ["dynamic_vs_static"];
    let rows = sweep(scale, &series, |cols, _| {
        let stat = time_row_fused_static(cols, Algo::Introsort, scale.reps);
        let dynamic = time_row_dynamic(cols, Algo::Introsort, scale.reps);
        vec![stat.as_secs_f64() / dynamic.as_secs_f64()]
    });
    ExperimentResult {
        id: "fig6".into(),
        title: "dynamic vs static tuple comparator on rows (introsort)".into(),
        header: header(&series),
        rows,
        notes: vec![
            "ratio < 1 means dynamic is slower; paper: roughly 0.5 (2x slower), worse \
             with more key columns"
                .into(),
        ],
    }
}

/// Figure 8: normalized keys + dynamic memcmp vs static tuple comparator.
pub fn fig_8(scale: &Scale) -> ExperimentResult {
    let series = ["normkey_dynamic_vs_static"];
    let rows = sweep(scale, &series, |cols, _| {
        let stat = time_row_fused_static(cols, Algo::Introsort, scale.reps);
        let norm = time_normkey_sort(cols, Algo::Introsort, scale.reps);
        vec![stat.as_secs_f64() / norm.as_secs_f64()]
    });
    ExperimentResult {
        id: "fig8".into(),
        title: "normalized-key dynamic memcmp vs static tuple comparator (introsort)".into(),
        header: header(&series),
        rows,
        notes: vec![
            "paper: normalized keys recover (and often beat) the static comparator, \
             especially with more key columns and higher correlation"
                .into(),
        ],
    }
}

/// Figure 9: radix sort vs pdqsort with a dynamic memcmp comparator, both
/// over normalized keys.
pub fn fig_9(scale: &Scale) -> ExperimentResult {
    let series = ["radix_vs_pdq_memcmp"];
    let rows = sweep(scale, &series, |cols, _| {
        let pdq = time_normkey_sort(cols, Algo::Pdq, scale.reps);
        let radix = time_normkey_radix(cols, scale.reps);
        vec![pdq.as_secs_f64() / radix.as_secs_f64()]
    });
    ExperimentResult {
        id: "fig9".into(),
        title: "radix sort vs pdqsort (dynamic memcmp) on normalized keys".into(),
        header: header(&series),
        rows,
        notes: vec![
            "paper: radix wins on Random (especially 1 key column) and most Correlated \
             inputs; pdqsort competitive only at the highest correlations"
                .into(),
        ],
    }
}

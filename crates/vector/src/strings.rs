//! Compact string column storage.

/// A string column stored as a contiguous byte buffer plus offsets.
///
/// This is the usual columnar VARCHAR layout (Arrow-style): string `i` is
/// `bytes[offsets[i] .. offsets[i + 1]]`. Compared to `Vec<String>` it does
/// one large allocation instead of one per string, and reading neighbouring
/// strings is sequential in memory — which matters for the paper's
/// cache-behaviour arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StringVec {
    offsets: Vec<u32>,
    bytes: Vec<u8>,
}

impl StringVec {
    /// An empty string column.
    pub fn new() -> StringVec {
        StringVec {
            offsets: vec![0],
            bytes: Vec::new(),
        }
    }

    /// An empty column with room for `rows` strings of ~`avg_len` bytes.
    pub fn with_capacity(rows: usize, avg_len: usize) -> StringVec {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        StringVec {
            offsets,
            bytes: Vec::with_capacity(rows * avg_len),
        }
    }

    /// Number of strings stored.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` iff the column holds no strings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a string.
    ///
    /// # Panics
    /// If total byte length would exceed `u32::MAX` (columns are chunked long
    /// before that in practice).
    pub fn push(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
        let end = u32::try_from(self.bytes.len()).expect("string column exceeds 4 GiB");
        self.offsets.push(end);
    }

    /// The string at `idx`.
    ///
    /// # Panics
    /// If `idx >= len`.
    pub fn get(&self, idx: usize) -> &str {
        let start = self.offsets[idx] as usize;
        let end = self.offsets[idx + 1] as usize;
        // SAFETY-free: contents were pushed from &str, so always valid UTF-8.
        std::str::from_utf8(&self.bytes[start..end]).expect("StringVec holds valid UTF-8")
    }

    /// The raw bytes of the string at `idx` (no UTF-8 revalidation).
    pub fn get_bytes(&self, idx: usize) -> &[u8] {
        let start = self.offsets[idx] as usize;
        let end = self.offsets[idx + 1] as usize;
        &self.bytes[start..end]
    }

    /// Byte length of the string at `idx`.
    pub fn byte_len(&self, idx: usize) -> usize {
        (self.offsets[idx + 1] - self.offsets[idx]) as usize
    }

    /// Iterate over all strings in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Total payload bytes stored.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Maximum string byte length in the column (0 if empty). Used to pick
    /// normalized-key prefix lengths from statistics, as DuckDB does.
    pub fn max_len(&self) -> usize {
        (0..self.len()).map(|i| self.byte_len(i)).max().unwrap_or(0)
    }
}

impl<S: AsRef<str>> FromIterator<S> for StringVec {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> StringVec {
        let mut v = StringVec::new();
        for s in iter {
            v.push(s.as_ref());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut v = StringVec::new();
        v.push("GERMANY");
        v.push("");
        v.push("NETHERLANDS");
        assert_eq!(v.len(), 3);
        assert_eq!(v.get(0), "GERMANY");
        assert_eq!(v.get(1), "");
        assert_eq!(v.get(2), "NETHERLANDS");
        assert_eq!(v.byte_len(2), 11);
        assert_eq!(v.total_bytes(), 7 + 11);
    }

    #[test]
    fn empty_column() {
        let v = StringVec::new();
        assert!(v.is_empty());
        assert_eq!(v.max_len(), 0);
        assert_eq!(v.iter().count(), 0);
    }

    #[test]
    fn from_iterator_and_iter_round_trip() {
        let names = ["alice", "bob", "carol"];
        let v: StringVec = names.iter().collect();
        let back: Vec<&str> = v.iter().collect();
        assert_eq!(back, names);
    }

    #[test]
    fn get_bytes_matches_get() {
        let v: StringVec = ["héllo", "wörld"].iter().collect();
        assert_eq!(v.get_bytes(0), "héllo".as_bytes());
        assert_eq!(v.get(1), "wörld");
        assert_eq!(v.byte_len(0), "héllo".len());
    }

    #[test]
    fn max_len() {
        let v: StringVec = ["ab", "abcd", "a"].iter().collect();
        assert_eq!(v.max_len(), 4);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut v = StringVec::with_capacity(10, 8);
        v.push("x");
        assert_eq!(v.get(0), "x");
        assert_eq!(v.len(), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let v = StringVec::new();
        let _ = v.get(0);
    }
}

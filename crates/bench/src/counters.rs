//! Simulated-counter experiments: Tables II & III and Figure 10.
//!
//! The paper reads hardware counters (`perf -e branch-misses,
//! L1-dcache-load-misses`) on a bare-metal Xeon; we substitute the
//! `rowsort-simcpu` cache/branch simulation (see DESIGN.md §2) and report
//! the same quantities. Absolute numbers differ from silicon; the ordering
//! relations the paper argues from are what these experiments reproduce.

use crate::{ExperimentResult, Scale};
use rowsort_datagen::{key_columns, KeyDistribution};
use rowsort_simcpu::trace::{ColumnarTrace, NormKeyTrace, RowTrace};
use rowsort_simcpu::SimCpu;

fn correlated_cols(n: usize, ncols: usize) -> Vec<Vec<u32>> {
    key_columns(KeyDistribution::Correlated(0.5), n, ncols, 0xC0FFEE)
}

fn fmt_count(c: u64) -> String {
    c.to_string()
}

/// Table II: L1 misses and branch mispredictions of sorting the *columnar*
/// format with tuple-at-a-time vs subsort (introsort, Correlated0.5,
/// 4 key columns).
pub fn table_2(scale: &Scale) -> ExperimentResult {
    let n = 1usize << scale.sim_pow;
    let cols = correlated_cols(n, 4);

    let mut cpu_t = SimCpu::new();
    let mut t = ColumnarTrace::new(&mut cpu_t, cols.clone());
    t.sort_tuple_at_a_time(&mut cpu_t);
    assert!(t.is_sorted());

    let mut cpu_s = SimCpu::new();
    let mut s = ColumnarTrace::new(&mut cpu_s, cols);
    s.sort_subsort(&mut cpu_s);
    assert!(s.is_sorted());

    let (ct, cs) = (cpu_t.counters(), cpu_s.counters());
    ExperimentResult {
        id: "table2".into(),
        title: format!(
            "sim. counters, columnar format, 2^{} rows x 4 key cols, Correlated0.5",
            scale.sim_pow
        ),
        header: vec![
            "approach".into(),
            "l1_misses".into(),
            "branch_misses".into(),
        ],
        rows: vec![
            vec![
                "tuple-at-a-time".into(),
                fmt_count(ct.l1_misses),
                fmt_count(ct.branch_misses),
            ],
            vec![
                "subsort".into(),
                fmt_count(cs.l1_misses),
                fmt_count(cs.branch_misses),
            ],
        ],
        notes: vec![
            "paper (Table II): subsort incurs fewer cache misses and fewer branch \
             mispredictions than tuple-at-a-time on correlated columnar data"
                .into(),
        ],
    }
}

/// Table III: the same two approaches over the *row* format.
pub fn table_3(scale: &Scale) -> ExperimentResult {
    let n = 1usize << scale.sim_pow;
    let cols = correlated_cols(n, 4);

    let mut cpu_t = SimCpu::new();
    let mut t = RowTrace::new(&mut cpu_t, &cols);
    t.sort_tuple_at_a_time(&mut cpu_t);
    assert!(t.is_sorted());

    let mut cpu_s = SimCpu::new();
    let mut s = RowTrace::new(&mut cpu_s, &cols);
    s.sort_subsort(&mut cpu_s);
    assert!(s.is_sorted());

    let (ct, cs) = (cpu_t.counters(), cpu_s.counters());
    ExperimentResult {
        id: "table3".into(),
        title: format!(
            "sim. counters, row format, 2^{} rows x 4 key cols, Correlated0.5",
            scale.sim_pow
        ),
        header: vec![
            "approach".into(),
            "l1_misses".into(),
            "branch_misses".into(),
        ],
        rows: vec![
            vec![
                "tuple-at-a-time".into(),
                fmt_count(ct.l1_misses),
                fmt_count(ct.branch_misses),
            ],
            vec![
                "subsort".into(),
                fmt_count(cs.l1_misses),
                fmt_count(cs.branch_misses),
            ],
        ],
        notes: vec![
            "paper (Table III vs II): the row format incurs an order of magnitude fewer \
             cache misses than columnar; branch misses are similar across formats; \
             subsort has fewer branch misses, slightly more cache misses (tie re-scans)"
                .into(),
        ],
    }
}

/// Figure 10: cumulative counters of pdqsort-with-memcmp vs radix sort on
/// normalized keys (Correlated0.5, 4 key columns).
pub fn fig_10(scale: &Scale) -> ExperimentResult {
    let n = 1usize << scale.sim_pow;
    let cols = correlated_cols(n, 4);
    // 16-byte normalized keys (4 x u32, big-endian).
    let data: Vec<u8> = (0..n)
        .flat_map(|r| {
            cols.iter()
                .flat_map(move |c| c[r].to_be_bytes())
                .collect::<Vec<u8>>()
        })
        .collect();

    let mut cpu_q = SimCpu::new();
    let mut q = NormKeyTrace::new(&mut cpu_q, data.clone(), 16);
    q.sort_quick_memcmp(&mut cpu_q);
    assert!(q.is_sorted());

    let mut cpu_r = SimCpu::new();
    let mut r = NormKeyTrace::new(&mut cpu_r, data, 16);
    r.sort_radix_msd(&mut cpu_r); // 16-byte keys: the MSD path, as shipped
    assert!(r.is_sorted());

    let (cq, cr) = (cpu_q.counters(), cpu_r.counters());
    ExperimentResult {
        id: "fig10".into(),
        title: format!(
            "cumulative sim. counters, 2^{} rows x 4 key cols, Correlated0.5, normalized keys",
            scale.sim_pow
        ),
        header: vec![
            "algorithm".into(),
            "l1_misses".into(),
            "branches".into(),
            "branch_misses".into(),
        ],
        rows: vec![
            vec![
                "pdqsort(memcmp)".into(),
                fmt_count(cq.l1_misses),
                fmt_count(cq.branches),
                fmt_count(cq.branch_misses),
            ],
            vec![
                "radix(MSD)".into(),
                fmt_count(cr.l1_misses),
                fmt_count(cr.branches),
                fmt_count(cr.branch_misses),
            ],
        ],
        notes: vec![
            "paper (Fig. 10): radix has worse cache behaviour but vastly fewer branch \
             mispredictions (mostly branchless); MSD keeps the cache damage moderate"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_orderings_hold_at_small_scale() {
        let r = table_2(&Scale {
            sim_pow: 13,
            ..Scale::tiny()
        });
        let parse = |s: &str| -> f64 { s.parse().unwrap_or(f64::MAX) };
        let tuple_bm = parse(&r.rows[0][2]);
        let subsort_bm = parse(&r.rows[1][2]);
        assert!(
            subsort_bm < tuple_bm,
            "subsort {subsort_bm} < tuple {tuple_bm}"
        );
    }

    #[test]
    fn fig10_radix_is_nearly_branchless() {
        let r = fig_10(&Scale {
            sim_pow: 12,
            ..Scale::tiny()
        });
        let parse = |s: &str| -> f64 { s.parse().unwrap() };
        let pdq_bm = parse(&r.rows[0][3]);
        let radix_bm = parse(&r.rows[1][3]);
        assert!(radix_bm * 5.0 < pdq_bm.max(1.0));
    }
}

//! Logical plans, name resolution, and the optimizer.

use crate::catalog::Catalog;
use crate::sql::{CmpOp, FromClause, Literal, OrderItem, Query, SelectItem};
use crate::{EngineError, Result};
use rowsort_vector::{LogicalType, NullOrder, OrderBy, OrderByColumn, SortOrder, SortSpec, Value};

/// A WHERE conjunct with the column resolved and the literal coerced to
/// the column's type.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedPredicate {
    /// `col op literal`; NULL column values never satisfy a comparison.
    Compare {
        /// Column index in the input schema.
        column: usize,
        /// Operator.
        op: CmpOp,
        /// Coerced right-hand value (never NULL).
        value: Value,
    },
    /// `col IS [NOT] NULL`.
    IsNull {
        /// Column index in the input schema.
        column: usize,
        /// `IS NOT NULL` if true.
        negated: bool,
    },
}

/// A resolved logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Read a base table.
    Scan {
        /// Catalog table name.
        table: String,
    },
    /// Apply WHERE conjuncts.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The conjuncts.
        predicates: Vec<ResolvedPredicate>,
    },
    /// Fully sort the input.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Resolved ORDER BY.
        order: OrderBy,
    },
    /// Keep a subset of columns, in the given order.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Input-schema column indices to keep.
        columns: Vec<usize>,
    },
    /// Skip `offset` rows, then emit at most `limit` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows to emit (`None` = unbounded).
        limit: Option<u64>,
        /// Rows to skip first.
        offset: u64,
    },
    /// Sort + small limit fused into a bounded-heap Top-N (an optimizer
    /// product; the paper's §VII-A notes `ORDER BY … LIMIT 1` typically
    /// triggers exactly this specialization).
    TopN {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort order.
        order: OrderBy,
        /// Rows to emit after the offset.
        limit: u64,
        /// Rows to skip.
        offset: u64,
    },
    /// `COUNT(*)` over the input.
    CountStar {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// `a JOIN b ON a.x = b.y`, executed as a sort-merge join: both sides
    /// are sorted by their key, then merged with full-tuple key
    /// comparisons — the paper's §V-B example of why sorted data forces
    /// complete comparators.
    SortMergeJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join key column in the left schema.
        left_col: usize,
        /// Join key column in the right schema.
        right_col: usize,
        /// Output column names (collisions qualified as `table.column`).
        names: Vec<String>,
        /// Output column types.
        types: Vec<LogicalType>,
    },
    /// `row_number() OVER (ORDER BY …)`: sorts the input by the window
    /// order and appends a 1-based `row_number` BIGINT column.
    WindowRowNumber {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Window ordering.
        order: OrderBy,
    },
}

impl LogicalPlan {
    /// Output schema (column names and types) of this node.
    pub fn schema(&self, catalog: &Catalog) -> Result<(Vec<String>, Vec<LogicalType>)> {
        match self {
            LogicalPlan::Scan { table } => {
                let t = catalog
                    .get(table)
                    .ok_or_else(|| EngineError::UnknownTable(table.clone()))?;
                Ok((t.column_names.clone(), t.types()))
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::TopN { input, .. } => input.schema(catalog),
            LogicalPlan::Project { input, columns } => {
                let (names, types) = input.schema(catalog)?;
                Ok((
                    columns.iter().map(|&c| names[c].clone()).collect(),
                    columns.iter().map(|&c| types[c]).collect(),
                ))
            }
            LogicalPlan::CountStar { .. } => {
                Ok((vec!["count".to_owned()], vec![LogicalType::Int64]))
            }
            LogicalPlan::SortMergeJoin { names, types, .. } => Ok((names.clone(), types.clone())),
            LogicalPlan::WindowRowNumber { input, .. } => {
                let (mut names, mut types) = input.schema(catalog)?;
                names.push("row_number".to_owned());
                types.push(LogicalType::Int64);
                Ok((names, types))
            }
        }
    }

    /// Render the plan as an indented tree (EXPLAIN-style).
    pub fn explain(&self) -> String {
        fn go(p: &LogicalPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match p {
                LogicalPlan::Scan { table } => {
                    out.push_str(&format!("{pad}Scan {table}\n"));
                }
                LogicalPlan::Filter { input, predicates } => {
                    out.push_str(&format!("{pad}Filter ({} conjuncts)\n", predicates.len()));
                    go(input, depth + 1, out);
                }
                LogicalPlan::Sort { input, order } => {
                    out.push_str(&format!("{pad}Sort ({} keys)\n", order.len()));
                    go(input, depth + 1, out);
                }
                LogicalPlan::Project { input, columns } => {
                    out.push_str(&format!("{pad}Project {columns:?}\n"));
                    go(input, depth + 1, out);
                }
                LogicalPlan::Limit {
                    input,
                    limit,
                    offset,
                } => {
                    out.push_str(&format!("{pad}Limit limit={limit:?} offset={offset}\n"));
                    go(input, depth + 1, out);
                }
                LogicalPlan::TopN {
                    input,
                    order,
                    limit,
                    offset,
                } => {
                    out.push_str(&format!(
                        "{pad}TopN ({} keys) limit={limit} offset={offset}\n",
                        order.len()
                    ));
                    go(input, depth + 1, out);
                }
                LogicalPlan::CountStar { input } => {
                    out.push_str(&format!("{pad}CountStar\n"));
                    go(input, depth + 1, out);
                }
                LogicalPlan::SortMergeJoin {
                    left,
                    right,
                    left_col,
                    right_col,
                    ..
                } => {
                    out.push_str(&format!(
                        "{pad}SortMergeJoin (left.{left_col} = right.{right_col})\n"
                    ));
                    go(left, depth + 1, out);
                    go(right, depth + 1, out);
                }
                LogicalPlan::WindowRowNumber { input, order } => {
                    out.push_str(&format!("{pad}WindowRowNumber ({} keys)\n", order.len()));
                    go(input, depth + 1, out);
                }
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

// ---------------------------------------------------------------------------
// Builder (name resolution)
// ---------------------------------------------------------------------------

/// Build a resolved plan from a parsed query.
pub fn build(query: &Query, catalog: &Catalog) -> Result<LogicalPlan> {
    let (mut plan, names, types) = match &query.from {
        FromClause::Table(name) => {
            let t = catalog
                .get(name)
                .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
            (
                LogicalPlan::Scan {
                    table: t.name.clone(),
                },
                t.column_names.clone(),
                t.types(),
            )
        }
        FromClause::Subquery(inner) => {
            let sub = build(inner, catalog)?;
            let (names, types) = sub.schema(catalog)?;
            (sub, names, types)
        }
        FromClause::Join {
            left,
            right,
            left_key,
            right_key,
        } => build_join(catalog, left, right, left_key, right_key)?,
    };

    // `row_number() OVER (ORDER BY ...)` extends the schema before the
    // outer ORDER BY / projection see it.
    let window_items: Vec<&Vec<OrderItem>> = query
        .select
        .iter()
        .filter_map(|s| match s {
            SelectItem::RowNumber(o) => Some(o),
            _ => None,
        })
        .collect();
    if window_items.len() > 1 {
        return Err(EngineError::Invalid(
            "at most one row_number() window is supported".into(),
        ));
    }
    let mut names = names;
    let mut types = types;
    if let Some(window_order) = window_items.first() {
        let resolve_base = |col: &str| -> Result<usize> {
            names
                .iter()
                .position(|n| n.eq_ignore_ascii_case(col))
                .ok_or_else(|| EngineError::UnknownColumn(col.to_owned()))
        };
        let order = resolve_order(window_order, &resolve_base)?;
        plan = LogicalPlan::WindowRowNumber {
            input: Box::new(plan),
            order,
        };
        names.push("row_number".to_owned());
        types.push(LogicalType::Int64);
    }

    let resolve = |col: &str| -> Result<usize> {
        names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(col))
            .ok_or_else(|| EngineError::UnknownColumn(col.to_owned()))
    };

    if !query.predicates.is_empty() {
        let predicates = query
            .predicates
            .iter()
            .map(|p| resolve_predicate(p, &resolve, &types))
            .collect::<Result<Vec<_>>>()?;
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicates,
        };
    }

    if !query.order_by.is_empty() {
        let order = resolve_order(&query.order_by, &resolve)?;
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            order,
        };
    }

    // Projection sits above the sort: SQL lets ORDER BY reference columns
    // the SELECT list drops (the paper's catalog_sales query does exactly
    // that).
    let count_star = query.select.contains(&SelectItem::CountStar);
    if count_star {
        if query.select.len() != 1 {
            return Err(EngineError::Invalid(
                "count(*) cannot be mixed with other select items".into(),
            ));
        }
    } else if query.select.contains(&SelectItem::Star) {
        if query.select.len() > 1 {
            return Err(EngineError::Invalid(
                "`*` cannot be mixed with other select items".into(),
            ));
        }
    } else {
        let columns = query
            .select
            .iter()
            .map(|s| match s {
                SelectItem::Column(c) => resolve(c),
                SelectItem::RowNumber(_) => Ok(names.len() - 1),
                _ => unreachable!(),
            })
            .collect::<Result<Vec<_>>>()?;
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            columns,
        };
    }

    if query.limit.is_some() || query.offset.is_some() {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            limit: query.limit,
            offset: query.offset.unwrap_or(0),
        };
    }

    if count_star {
        plan = LogicalPlan::CountStar {
            input: Box::new(plan),
        };
    }

    Ok(plan)
}

/// Resolve `a JOIN b ON x = y` into a SortMergeJoin plan node with a
/// collision-qualified output schema.
fn build_join(
    catalog: &Catalog,
    left: &str,
    right: &str,
    left_key: &crate::sql::ColumnRef,
    right_key: &crate::sql::ColumnRef,
) -> Result<(LogicalPlan, Vec<String>, Vec<LogicalType>)> {
    let lt = catalog
        .get(left)
        .ok_or_else(|| EngineError::UnknownTable(left.to_owned()))?;
    let rt = catalog
        .get(right)
        .ok_or_else(|| EngineError::UnknownTable(right.to_owned()))?;

    // A key reference binds to a side if its qualifier matches (or is
    // absent) and the column exists there.
    let find = |t: &crate::catalog::Table, key: &crate::sql::ColumnRef| -> Option<usize> {
        if let Some(q) = &key.table {
            if !q.eq_ignore_ascii_case(&t.name) {
                return None;
            }
        }
        t.column_index(&key.column)
    };
    let (left_col, right_col) = match (
        find(lt, left_key),
        find(rt, right_key),
        find(lt, right_key),
        find(rt, left_key),
    ) {
        (Some(l), Some(r), _, _) => (l, r),
        // The ON clause named the sides in the other order.
        (_, _, Some(l), Some(r)) => (l, r),
        _ => {
            return Err(EngineError::UnknownColumn(format!(
                "{}/{} in join condition",
                left_key.column, right_key.column
            )))
        }
    };

    // Output schema: left columns then right columns; names that appear on
    // both sides are qualified as `table.column`.
    let mut names = Vec::with_capacity(lt.column_names.len() + rt.column_names.len());
    for n in &lt.column_names {
        if rt.column_index(n).is_some() {
            names.push(format!("{}.{}", lt.name, n));
        } else {
            names.push(n.clone());
        }
    }
    for n in &rt.column_names {
        if lt.column_index(n).is_some() {
            names.push(format!("{}.{}", rt.name, n));
        } else {
            names.push(n.clone());
        }
    }
    let mut types = lt.types();
    types.extend(rt.types());

    let key_ty_l = lt.types()[left_col];
    let key_ty_r = rt.types()[right_col];
    if key_ty_l != key_ty_r {
        return Err(EngineError::Invalid(format!(
            "join key type mismatch: {key_ty_l} vs {key_ty_r}"
        )));
    }

    let plan = LogicalPlan::SortMergeJoin {
        left: Box::new(LogicalPlan::Scan {
            table: lt.name.clone(),
        }),
        right: Box::new(LogicalPlan::Scan {
            table: rt.name.clone(),
        }),
        left_col,
        right_col,
        names: names.clone(),
        types: types.clone(),
    };
    Ok((plan, names, types))
}

fn resolve_order(items: &[OrderItem], resolve: &impl Fn(&str) -> Result<usize>) -> Result<OrderBy> {
    let keys = items
        .iter()
        .map(|o| {
            let column = resolve(&o.column)?;
            let order = if o.desc {
                SortOrder::Descending
            } else {
                SortOrder::Ascending
            };
            // SQL default: NULLS LAST for ASC, NULLS FIRST for DESC
            // (matching DuckDB/Postgres behaviour).
            let nulls = match o.nulls_first {
                Some(true) => NullOrder::NullsFirst,
                Some(false) => NullOrder::NullsLast,
                None => {
                    if o.desc {
                        NullOrder::NullsFirst
                    } else {
                        NullOrder::NullsLast
                    }
                }
            };
            Ok(OrderByColumn {
                column,
                spec: SortSpec::new(order, nulls),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(OrderBy::new(keys))
}

fn resolve_predicate(
    p: &crate::sql::Predicate,
    resolve: &impl Fn(&str) -> Result<usize>,
    types: &[LogicalType],
) -> Result<ResolvedPredicate> {
    match p {
        crate::sql::Predicate::IsNull { column, negated } => Ok(ResolvedPredicate::IsNull {
            column: resolve(column)?,
            negated: *negated,
        }),
        crate::sql::Predicate::Compare {
            column,
            op,
            literal,
        } => {
            let idx = resolve(column)?;
            let ty = types[idx];
            let value = coerce(literal, ty).ok_or_else(|| {
                EngineError::Invalid(format!(
                    "cannot compare column '{column}' ({ty}) with {literal:?}"
                ))
            })?;
            Ok(ResolvedPredicate::Compare {
                column: idx,
                op: *op,
                value,
            })
        }
    }
}

fn coerce(literal: &Literal, ty: LogicalType) -> Option<Value> {
    Some(match (literal, ty) {
        (Literal::Int(v), LogicalType::Int8) => Value::Int8(i8::try_from(*v).ok()?),
        (Literal::Int(v), LogicalType::Int16) => Value::Int16(i16::try_from(*v).ok()?),
        (Literal::Int(v), LogicalType::Int32) => Value::Int32(i32::try_from(*v).ok()?),
        (Literal::Int(v), LogicalType::Int64) => Value::Int64(*v),
        (Literal::Int(v), LogicalType::UInt8) => Value::UInt8(u8::try_from(*v).ok()?),
        (Literal::Int(v), LogicalType::UInt16) => Value::UInt16(u16::try_from(*v).ok()?),
        (Literal::Int(v), LogicalType::UInt32) => Value::UInt32(u32::try_from(*v).ok()?),
        (Literal::Int(v), LogicalType::UInt64) => Value::UInt64(u64::try_from(*v).ok()?),
        (Literal::Int(v), LogicalType::Float32) => Value::Float32(*v as f32),
        (Literal::Int(v), LogicalType::Float64) => Value::Float64(*v as f64),
        (Literal::Int(v), LogicalType::Date) => Value::Date(i32::try_from(*v).ok()?),
        (Literal::Int(v), LogicalType::Timestamp) => Value::Timestamp(*v),
        (Literal::Float(v), LogicalType::Float32) => Value::Float32(*v as f32),
        (Literal::Float(v), LogicalType::Float64) => Value::Float64(*v),
        (Literal::Str(s), LogicalType::Varchar) => Value::Varchar(s.clone()),
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

/// Largest `limit + offset` fused into a Top-N operator.
pub const TOPN_THRESHOLD: u64 = 8192;

/// Apply the optimizer rules the paper's methodology section (§VII-A)
/// discusses:
///
/// 1. **Redundant-sort elimination** — a Sort feeding (transitively) into
///    an order-insensitive `COUNT(*)` with no Limit/Offset in between does
///    not affect the result and is removed. The paper's `OFFSET 1` exists
///    precisely to defeat this rule.
/// 2. **Top-N fusion** — `Sort` + small `Limit` becomes a bounded-heap
///    `TopN` (what real systems do to `ORDER BY … LIMIT 1`).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let plan = remove_pointless_sorts(plan, true);
    fuse_topn(plan)
}

fn remove_pointless_sorts(plan: LogicalPlan, order_matters: bool) -> LogicalPlan {
    match plan {
        LogicalPlan::CountStar { input } => LogicalPlan::CountStar {
            // Row count is order-insensitive.
            input: Box::new(remove_pointless_sorts(*input, false)),
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            // Limit/Offset select *which* rows: order below matters again.
            input: Box::new(remove_pointless_sorts(*input, true)),
            limit,
            offset,
        },
        LogicalPlan::Sort { input, order } => {
            if order_matters {
                LogicalPlan::Sort {
                    input: Box::new(remove_pointless_sorts(*input, order_matters)),
                    order,
                }
            } else {
                remove_pointless_sorts(*input, order_matters)
            }
        }
        LogicalPlan::Filter { input, predicates } => LogicalPlan::Filter {
            input: Box::new(remove_pointless_sorts(*input, order_matters)),
            predicates,
        },
        LogicalPlan::Project { input, columns } => LogicalPlan::Project {
            input: Box::new(remove_pointless_sorts(*input, order_matters)),
            columns,
        },
        LogicalPlan::TopN {
            input,
            order,
            limit,
            offset,
        } => LogicalPlan::TopN {
            input: Box::new(remove_pointless_sorts(*input, true)),
            order,
            limit,
            offset,
        },
        LogicalPlan::SortMergeJoin {
            left,
            right,
            left_col,
            right_col,
            names,
            types,
        } => LogicalPlan::SortMergeJoin {
            // The join sorts both sides itself: any sort below is pointless.
            left: Box::new(remove_pointless_sorts(*left, false)),
            right: Box::new(remove_pointless_sorts(*right, false)),
            left_col,
            right_col,
            names,
            types,
        },
        LogicalPlan::WindowRowNumber { input, order } => LogicalPlan::WindowRowNumber {
            // The window sorts its input itself.
            input: Box::new(remove_pointless_sorts(*input, false)),
            order,
        },
        leaf @ LogicalPlan::Scan { .. } => leaf,
    }
}

fn fuse_topn(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Limit {
            input,
            limit: Some(limit),
            offset,
        } => {
            let input = fuse_topn(*input);
            match input {
                LogicalPlan::Sort { input, order }
                    if limit.saturating_add(offset) <= TOPN_THRESHOLD =>
                {
                    LogicalPlan::TopN {
                        input,
                        order,
                        limit,
                        offset,
                    }
                }
                // Push the limit through a projection so Sort+Limit still
                // fuse when SELECT narrows the columns (projection does not
                // change row order or count).
                LogicalPlan::Project { input, columns }
                    if limit.saturating_add(offset) <= TOPN_THRESHOLD =>
                {
                    if let LogicalPlan::Sort {
                        input: sort_input,
                        order,
                    } = *input
                    {
                        LogicalPlan::Project {
                            input: Box::new(LogicalPlan::TopN {
                                input: sort_input,
                                order,
                                limit,
                                offset,
                            }),
                            columns,
                        }
                    } else {
                        LogicalPlan::Limit {
                            input: Box::new(LogicalPlan::Project { input, columns }),
                            limit: Some(limit),
                            offset,
                        }
                    }
                }
                other => LogicalPlan::Limit {
                    input: Box::new(other),
                    limit: Some(limit),
                    offset,
                },
            }
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(fuse_topn(*input)),
            limit,
            offset,
        },
        LogicalPlan::CountStar { input } => LogicalPlan::CountStar {
            input: Box::new(fuse_topn(*input)),
        },
        LogicalPlan::Filter { input, predicates } => LogicalPlan::Filter {
            input: Box::new(fuse_topn(*input)),
            predicates,
        },
        LogicalPlan::Project { input, columns } => LogicalPlan::Project {
            input: Box::new(fuse_topn(*input)),
            columns,
        },
        LogicalPlan::Sort { input, order } => LogicalPlan::Sort {
            input: Box::new(fuse_topn(*input)),
            order,
        },
        LogicalPlan::TopN {
            input,
            order,
            limit,
            offset,
        } => LogicalPlan::TopN {
            input: Box::new(fuse_topn(*input)),
            order,
            limit,
            offset,
        },
        LogicalPlan::SortMergeJoin {
            left,
            right,
            left_col,
            right_col,
            names,
            types,
        } => LogicalPlan::SortMergeJoin {
            left: Box::new(fuse_topn(*left)),
            right: Box::new(fuse_topn(*right)),
            left_col,
            right_col,
            names,
            types,
        },
        LogicalPlan::WindowRowNumber { input, order } => LogicalPlan::WindowRowNumber {
            input: Box::new(fuse_topn(*input)),
            order,
        },
        leaf @ LogicalPlan::Scan { .. } => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Table;
    use crate::sql::parse;
    use rowsort_vector::{DataChunk, Vector};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let data = DataChunk::from_columns(vec![
            Vector::from_i32s(vec![1, 2, 3]),
            Vector::from_strings(["a", "b", "c"]),
        ])
        .unwrap();
        c.register(Table::new("t", vec!["id".into(), "name".into()], data));
        c
    }

    fn plan_for(sql: &str) -> LogicalPlan {
        build(&parse(sql).unwrap(), &catalog()).unwrap()
    }

    fn has_sort(p: &LogicalPlan) -> bool {
        match p {
            LogicalPlan::Sort { .. } => true,
            LogicalPlan::Scan { .. } => false,
            LogicalPlan::SortMergeJoin { left, right, .. } => has_sort(left) || has_sort(right),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::TopN { input, .. }
            | LogicalPlan::WindowRowNumber { input, .. }
            | LogicalPlan::CountStar { input } => has_sort(input),
        }
    }

    fn has_topn(p: &LogicalPlan) -> bool {
        match p {
            LogicalPlan::TopN { .. } => true,
            LogicalPlan::Scan { .. } => false,
            LogicalPlan::SortMergeJoin { left, right, .. } => has_topn(left) || has_topn(right),
            LogicalPlan::Sort { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::WindowRowNumber { input, .. }
            | LogicalPlan::CountStar { input } => has_topn(input),
        }
    }

    #[test]
    fn unknown_names_error() {
        let c = catalog();
        assert!(matches!(
            build(&parse("SELECT * FROM nope").unwrap(), &c),
            Err(EngineError::UnknownTable(_))
        ));
        assert!(matches!(
            build(&parse("SELECT zzz FROM t").unwrap(), &c),
            Err(EngineError::UnknownColumn(_))
        ));
        assert!(matches!(
            build(&parse("SELECT * FROM t ORDER BY zzz").unwrap(), &c),
            Err(EngineError::UnknownColumn(_))
        ));
    }

    #[test]
    fn order_by_non_projected_column() {
        // Sort below Project: ORDER BY name while selecting only id.
        let p = plan_for("SELECT id FROM t ORDER BY name");
        match &p {
            LogicalPlan::Project { input, columns } => {
                assert_eq!(columns, &vec![0]);
                assert!(matches!(**input, LogicalPlan::Sort { .. }));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn default_null_order_follows_direction() {
        let p = plan_for("SELECT * FROM t ORDER BY id DESC, name ASC");
        if let LogicalPlan::Sort { order, .. } = &p {
            assert_eq!(order.keys[0].spec.nulls, NullOrder::NullsFirst);
            assert_eq!(order.keys[1].spec.nulls, NullOrder::NullsLast);
        } else {
            panic!("expected sort, got {p:?}");
        }
    }

    #[test]
    fn optimizer_removes_sort_under_count() {
        let p = plan_for("SELECT count(*) FROM (SELECT id FROM t ORDER BY name) s");
        assert!(has_sort(&p), "unoptimized plan keeps the sort");
        let o = optimize(p);
        assert!(
            !has_sort(&o),
            "optimizer removes the pointless sort:\n{}",
            o.explain()
        );
    }

    #[test]
    fn offset_defeats_sort_elimination() {
        // The paper's trick: OFFSET 1 makes the sort semantically relevant.
        let p = plan_for("SELECT count(*) FROM (SELECT id FROM t ORDER BY name OFFSET 1) s");
        let o = optimize(p);
        assert!(
            has_sort(&o),
            "OFFSET keeps the sort alive:\n{}",
            o.explain()
        );
    }

    #[test]
    fn topn_fusion() {
        let o = optimize(plan_for("SELECT * FROM t ORDER BY id LIMIT 1"));
        assert!(has_topn(&o), "{}", o.explain());
        assert!(!has_sort(&o));
        // Huge limit: no fusion.
        let o = optimize(plan_for("SELECT * FROM t ORDER BY id LIMIT 100000"));
        assert!(!has_topn(&o));
        assert!(has_sort(&o));
    }

    #[test]
    fn topn_fuses_through_projection() {
        // SELECT narrows columns: Limit-Project-Sort must still become
        // Project-TopN.
        let o = optimize(plan_for("SELECT id FROM t ORDER BY name LIMIT 3"));
        assert!(has_topn(&o), "{}", o.explain());
        assert!(!has_sort(&o), "{}", o.explain());
        match &o {
            LogicalPlan::Project { input, .. } => {
                assert!(matches!(**input, LogicalPlan::TopN { .. }));
            }
            other => panic!("expected Project over TopN, got {other:?}"),
        }
    }

    #[test]
    fn huge_limit_plus_offset_does_not_overflow_fusion() {
        // u64::MAX can't come from a SQL literal (i64-ranged), so drive
        // the optimizer directly: the fusion guard must saturate, not wrap
        // around into a tiny "fits the threshold" sum.
        let p = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(LogicalPlan::Scan { table: "t".into() }),
                order: OrderBy::new(vec![OrderByColumn::asc(0)]),
            }),
            limit: Some(u64::MAX),
            offset: u64::MAX,
        };
        let o = optimize(p);
        assert!(!has_topn(&o), "{}", o.explain());
        assert!(has_sort(&o), "{}", o.explain());
    }

    #[test]
    fn coercion_failures_are_invalid() {
        let c = catalog();
        assert!(matches!(
            build(&parse("SELECT * FROM t WHERE id = 'x'").unwrap(), &c),
            Err(EngineError::Invalid(_))
        ));
        assert!(matches!(
            build(&parse("SELECT * FROM t WHERE name < 3").unwrap(), &c),
            Err(EngineError::Invalid(_))
        ));
    }

    #[test]
    fn count_star_schema() {
        let c = catalog();
        let p = plan_for("SELECT count(*) FROM t");
        let (names, types) = p.schema(&c).unwrap();
        assert_eq!(names, vec!["count"]);
        assert_eq!(types, vec![LogicalType::Int64]);
    }

    #[test]
    fn count_star_mixed_is_invalid() {
        let c = catalog();
        assert!(matches!(
            build(&parse("SELECT count(*), id FROM t").unwrap(), &c),
            Err(EngineError::Invalid(_))
        ));
    }

    #[test]
    fn explain_renders_tree() {
        let p = plan_for("SELECT count(*) FROM (SELECT id FROM t ORDER BY name OFFSET 1) s");
        let text = optimize(p).explain();
        assert!(text.contains("CountStar"));
        assert!(text.contains("Sort"));
        assert!(text.contains("Scan t"));
    }
}

//! A line/column-tracking Rust tokenizer.
//!
//! This is not a full Rust lexer — it recognizes exactly the token shapes
//! the rule engine needs to reason about source *structure* without being
//! fooled by content: string literals (including raw strings with any
//! number of `#`s and `b`/`c` prefixes), char literals vs. lifetimes,
//! line comments, *nested* block comments, numbers, identifiers (including
//! raw `r#ident`), and single-character punctuation. Everything a rule
//! matches on (`unsafe`, `unwrap`, `[0]`, …) therefore can never come from
//! inside a string or a comment.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `foo`, `r#fn`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// String, byte-string, or C-string literal (`"…"`, `b"…"`, `c"…"`).
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`, `br##"…"##`).
    RawStr,
    /// Numeric literal (`0`, `0xFF`, `1_000`, `1.5`).
    Num,
    /// A single punctuation character.
    Punct,
    /// `// …` comment (including doc comments).
    LineComment,
    /// `/* … */` comment, nesting respected.
    BlockComment,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Raw text, exactly as written (comments keep their delimiters).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl Tok {
    /// `true` for line and block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// `true` if this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Cursor {
        Cursor {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eof(&self) -> bool {
        self.i >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Unterminated constructs (string, comment) consume to EOF
/// rather than erroring: the lint must degrade gracefully on any input.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while !cur.eof() {
        // Skip whitespace.
        while matches!(cur.peek(0), Some(c) if c.is_whitespace()) {
            cur.bump();
        }
        if cur.eof() {
            break;
        }
        let (line, col) = (cur.line, cur.col);
        let c = match cur.peek(0) {
            Some(c) => c,
            None => break,
        };
        let tok = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if c == '"' {
            lex_string(&mut cur, String::new())
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else if is_ident_start(c) {
            lex_ident_or_prefixed(&mut cur)
        } else {
            let mut text = String::new();
            if let Some(ch) = cur.bump() {
                text.push(ch);
            }
            Tok {
                kind: TokKind::Punct,
                text,
                line,
                col,
            }
        };
        out.push(Tok { line, col, ..tok });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Tok {
        kind: TokKind::LineComment,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_block_comment(cur: &mut Cursor) -> Tok {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push('/');
            text.push('*');
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push('*');
            text.push('/');
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    Tok {
        kind: TokKind::BlockComment,
        text,
        line: 0,
        col: 0,
    }
}

/// Consume a `"…"` string whose opening quote is the current char.
/// `prefix` is any already-consumed literal prefix (`b`, `c`).
fn lex_string(cur: &mut Cursor, prefix: String) -> Tok {
    let mut text = prefix;
    text.push('"');
    cur.bump(); // opening quote
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(escaped) = cur.bump() {
                text.push(escaped);
            }
        } else if c == '"' {
            text.push(c);
            cur.bump();
            break;
        } else {
            text.push(c);
            cur.bump();
        }
    }
    Tok {
        kind: TokKind::Str,
        text,
        line: 0,
        col: 0,
    }
}

/// Consume a raw string `r"…"` / `r#"…"#` etc. whose hashes/quote start at
/// the current char. `prefix` holds the consumed `r`/`br`/`cr`.
fn lex_raw_string(cur: &mut Cursor, prefix: String) -> Tok {
    let mut text = prefix;
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek(0) == Some('"') {
        text.push('"');
        cur.bump();
    }
    // Scan to `"` followed by `hashes` hash characters.
    while let Some(c) = cur.peek(0) {
        if c == '"' {
            let closing = (1..=hashes).all(|k| cur.peek(k) == Some('#'));
            if closing {
                text.push('"');
                cur.bump();
                for _ in 0..hashes {
                    text.push('#');
                    cur.bump();
                }
                break;
            }
        }
        text.push(c);
        cur.bump();
    }
    Tok {
        kind: TokKind::RawStr,
        text,
        line: 0,
        col: 0,
    }
}

/// Disambiguate `'a` (lifetime) from `'a'` / `'\n'` / `' '` (char literal).
fn lex_quote(cur: &mut Cursor) -> Tok {
    let one = cur.peek(1);
    let two = cur.peek(2);
    let is_char = match one {
        Some('\\') => true,
        Some(c) if is_ident_start(c) => two == Some('\''),
        Some(_) => true, // e.g. ' ', '"', '('
        None => false,
    };
    if !is_char {
        // Lifetime: consume the quote and the identifier.
        let mut text = String::from("'");
        cur.bump();
        while matches!(cur.peek(0), Some(c) if is_ident_continue(c)) {
            if let Some(c) = cur.bump() {
                text.push(c);
            }
        }
        return Tok {
            kind: TokKind::Lifetime,
            text,
            line: 0,
            col: 0,
        };
    }
    // Char literal: scan to the closing quote, honoring escapes.
    let mut text = String::from("'");
    cur.bump();
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(escaped) = cur.bump() {
                text.push(escaped);
            }
        } else if c == '\'' {
            text.push(c);
            cur.bump();
            break;
        } else if c == '\n' {
            break; // malformed; don't swallow the rest of the file
        } else {
            text.push(c);
            cur.bump();
        }
    }
    Tok {
        kind: TokKind::Char,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_number(cur: &mut Cursor) -> Tok {
    let mut text = String::new();
    while matches!(cur.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    // Fractional part — but never swallow `..` range syntax.
    if cur.peek(0) == Some('.') && matches!(cur.peek(1), Some(c) if c.is_ascii_digit()) {
        text.push('.');
        cur.bump();
        while matches!(cur.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            if let Some(c) = cur.bump() {
                text.push(c);
            }
        }
    }
    // Signed exponent (`1e-3`, `2.5E+10`): the alphanumeric loops above
    // already took the `e`, but the sign stops them. Radix-prefixed
    // literals never take one — `0xFFe - 1` is a subtraction, and in hex
    // `e` is a digit.
    let radix_prefixed = text.len() >= 2
        && text.starts_with('0')
        && matches!(text.as_bytes()[1], b'x' | b'X' | b'b' | b'B' | b'o' | b'O');
    if !radix_prefixed
        && (text.ends_with('e') || text.ends_with('E'))
        && matches!(cur.peek(0), Some('+' | '-'))
        && matches!(cur.peek(1), Some(c) if c.is_ascii_digit())
    {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
        while matches!(cur.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            if let Some(c) = cur.bump() {
                text.push(c);
            }
        }
    }
    Tok {
        kind: TokKind::Num,
        text,
        line: 0,
        col: 0,
    }
}

/// An identifier, or a literal carrying an identifier-like prefix:
/// `r"…"`, `r#"…"#`, `br#"…"#`, `b"…"`, `c"…"`, `b'x'`, `r#ident`.
fn lex_ident_or_prefixed(cur: &mut Cursor) -> Tok {
    let mut text = String::new();
    while matches!(cur.peek(0), Some(c) if is_ident_continue(c)) {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    let raw_capable = matches!(text.as_str(), "r" | "br" | "cr");
    let str_capable = raw_capable || matches!(text.as_str(), "b" | "c");
    match cur.peek(0) {
        Some('"') if str_capable && raw_capable => lex_raw_string(cur, text),
        Some('"') if str_capable => lex_string(cur, text),
        Some('#') if raw_capable => {
            // `r#"…"#` raw string, or `r#ident` raw identifier.
            let mut k = 0usize;
            while cur.peek(k) == Some('#') {
                k += 1;
            }
            if cur.peek(k) == Some('"') {
                lex_raw_string(cur, text)
            } else {
                // Raw identifier: consume `#` + ident chars.
                text.push('#');
                cur.bump();
                while matches!(cur.peek(0), Some(c) if is_ident_continue(c)) {
                    if let Some(c) = cur.bump() {
                        text.push(c);
                    }
                }
                Tok {
                    kind: TokKind::Ident,
                    text,
                    line: 0,
                    col: 0,
                }
            }
        }
        Some('\'') if text == "b" => {
            // Byte char literal `b'x'`.
            let inner = lex_quote(cur);
            Tok {
                kind: TokKind::Char,
                text: format!("b{}", inner.text),
                line: 0,
                col: 0,
            }
        }
        _ => Tok {
            kind: TokKind::Ident,
            text,
            line: 0,
            col: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn keyword_in_string_is_a_string() {
        let toks = kinds(r#"let s = "unsafe { }";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || t != "unsafe"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("unsafe")));
    }

    #[test]
    fn raw_string_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"#; x"###);
        let raw = toks.iter().find(|(k, _)| *k == TokKind::RawStr);
        assert!(raw.is_some_and(|(_, t)| t.contains("quote")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* outer /* inner */ still outer */ after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.contains("still outer"));
        assert_eq!(toks[1].1, "after");
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("a\n  bb\n");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn number_and_range() {
        let toks = kinds("0..10");
        assert_eq!(toks[0], (TokKind::Num, "0".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokKind::Punct, ".".into()));
        assert_eq!(toks[3], (TokKind::Num, "10".into()));
        let toks = kinds("1.5e3");
        assert_eq!(toks[0].1, "1.5e3");
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#fn"));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"let a = b"bytes"; let c = b'x';"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.starts_with("b\"")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "b'x'"));
    }

    #[test]
    fn unterminated_string_reaches_eof() {
        let toks = kinds("let s = \"never closed");
        assert_eq!(toks.last().map(|(k, _)| *k), Some(TokKind::Str));
    }

    /// `(kind, text, line, col)` for exact-location assertions.
    fn spans(src: &str) -> Vec<(TokKind, String, u32, u32)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text, t.line, t.col))
            .collect()
    }

    #[test]
    fn multi_hash_raw_string_exact_span() {
        // `"#` inside a `##`-delimited raw string must not terminate it,
        // and the token after must land at the exact column.
        let toks = spans("r##\"a\"# b\"## y");
        assert_eq!(toks[0], (TokKind::RawStr, "r##\"a\"# b\"##".into(), 1, 1));
        assert_eq!(toks[1], (TokKind::Ident, "y".into(), 1, 14));
    }

    #[test]
    fn deep_hash_raw_string_with_shorter_candidate_close() {
        // `"##` inside `###` delimiters is content, not a terminator.
        let toks = spans("let s = r###\"deep \"## quote\"### ; end");
        assert_eq!(toks[3].0, TokKind::RawStr);
        assert_eq!(toks[3].1, "r###\"deep \"## quote\"###");
        assert_eq!(toks[4], (TokKind::Punct, ";".into(), 1, 33));
        assert_eq!(toks[5], (TokKind::Ident, "end".into(), 1, 35));
    }

    #[test]
    fn byte_and_c_raw_strings() {
        let toks = spans("br##\"deep bytes\"## cr#\"raw c\"# t");
        assert_eq!(toks[0].0, TokKind::RawStr);
        assert_eq!(toks[0].1, "br##\"deep bytes\"##");
        assert_eq!(toks[1].0, TokKind::RawStr);
        assert_eq!(toks[1].1, "cr#\"raw c\"#");
        assert_eq!(toks[2], (TokKind::Ident, "t".into(), 1, 32));
    }

    #[test]
    fn multiline_raw_string_position_tracking() {
        // The raw string spans two lines; `after` must report line 2 with
        // a column counted from the line start, not from the token start.
        let toks = spans("r#\"line1\nline2\"# after");
        assert_eq!(toks[0].0, TokKind::RawStr);
        assert_eq!((toks[1].1.as_str(), toks[1].2, toks[1].3), ("after", 2, 9));
    }

    #[test]
    fn doubly_nested_block_comment_exact_close() {
        // Two levels of nesting, adjacent delimiters: `/*/**/*/`.
        let toks = spans("/*/**/*/ after");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[0].1, "/*/**/*/");
        assert_eq!(toks[1], (TokKind::Ident, "after".into(), 1, 10));
    }

    #[test]
    fn multiline_nested_comment_position_tracking() {
        let toks = spans("/* a\n /* b */\n c */ after");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!((toks[1].1.as_str(), toks[1].2, toks[1].3), ("after", 3, 7));
    }

    #[test]
    fn unterminated_nested_comment_reaches_eof() {
        // Inner comment closes, outer does not: everything is comment.
        let toks = spans("/* unterminated /* nest */");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokKind::BlockComment);
    }

    #[test]
    fn raw_string_containing_comment_close_is_text() {
        let toks = spans("r#\"contains */ inside\"# ok");
        assert_eq!(toks[0].0, TokKind::RawStr);
        assert_eq!(toks[1], (TokKind::Ident, "ok".into(), 1, 25));
    }

    #[test]
    fn signed_float_exponents_are_one_token() {
        assert_eq!(
            kinds("1.5e-3 + 2.5E+10"),
            vec![
                (TokKind::Num, "1.5e-3".into()),
                (TokKind::Punct, "+".into()),
                (TokKind::Num, "2.5E+10".into()),
            ]
        );
        // No fraction, exponent directly on the integer part.
        assert_eq!(kinds("1e-9")[0], (TokKind::Num, "1e-9".into()));
        // Hex `e` is a digit, not an exponent: `0xFe - 1` is a subtraction.
        assert_eq!(
            kinds("0xFe-1"),
            vec![
                (TokKind::Num, "0xFe".into()),
                (TokKind::Punct, "-".into()),
                (TokKind::Num, "1".into()),
            ]
        );
        // `7e.x` must not swallow the dot; `1e-x` has no exponent digits.
        assert_eq!(kinds("7e.x")[0], (TokKind::Num, "7e".into()));
        assert_eq!(
            kinds("1e-x"),
            vec![
                (TokKind::Num, "1e".into()),
                (TokKind::Punct, "-".into()),
                (TokKind::Ident, "x".into()),
            ]
        );
    }
}

//! An interactive mini SQL shell over the TPC-DS-like tables.
//!
//! Run with `cargo run --release --example sql_shell`, then type queries:
//!
//! ```sql
//! SELECT c_customer_sk FROM customer ORDER BY c_last_name, c_first_name LIMIT 10;
//! SELECT count(*) FROM (SELECT cs_item_sk FROM catalog_sales ORDER BY cs_quantity OFFSET 1) t;
//! .profile columnar-1t     -- switch the sort operator's system profile
//! .explain SELECT ...      -- show the optimized plan
//! .quit
//! ```

use rowsort::core::systems::SystemProfile;
use rowsort::datagen::tpcds;
use rowsort::engine::{plan, sql, Engine, Table};
use std::io::{BufRead, Write};

fn register(engine: &mut Engine, t: &tpcds::NamedTable) {
    engine.register_table(Table::new(
        t.name.clone(),
        t.columns.iter().map(|(n, _)| n.clone()).collect(),
        t.data.clone(),
    ));
}

fn main() {
    let mut engine = Engine::new();
    register(&mut engine, &tpcds::catalog_sales(50_000, 10.0, 1));
    register(&mut engine, &tpcds::customer(50_000, 2));
    println!(
        "rowsort shell — tables: catalog_sales (50k rows), customer (50k rows)\n\
         commands: .profile <name>, .explain <query>, .quit"
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("rowsort> ");
        out.flush().unwrap();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ".quit" || line == ".exit" {
            break;
        }
        if let Some(name) = line.strip_prefix(".profile") {
            let name = name.trim();
            let profile = SystemProfile::ALL
                .iter()
                .find(|p| p.label().starts_with(name));
            match profile {
                Some(p) => {
                    engine.options_mut().profile = *p;
                    println!("sort operator now runs as {}", p.label());
                }
                None => {
                    println!("unknown profile; options:");
                    for p in SystemProfile::ALL {
                        println!("  {}", p.label());
                    }
                }
            }
            continue;
        }
        if let Some(q) = line.strip_prefix(".explain") {
            match sql::parse(q.trim()) {
                Ok(ast) => match plan::build(&ast, engine.catalog()) {
                    Ok(p) => print!("{}", plan::optimize(p).explain()),
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        let start = std::time::Instant::now();
        match engine.query(line) {
            Ok(result) => {
                let elapsed = start.elapsed();
                let show = result.len().min(20);
                for i in 0..show {
                    let cells: Vec<String> = result.row(i).iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                if result.len() > show {
                    println!("… ({} rows total)", result.len());
                }
                println!("({} rows in {:.3}s)", result.len(), elapsed.as_secs_f64());
            }
            Err(e) => println!("error: {e}"),
        }
    }
}

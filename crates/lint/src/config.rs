//! `lint.toml` — declares which paths each scoped rule applies to.
//!
//! ```toml
//! [hot-paths]            # R002 / R003 scope
//! globs = ["crates/algos/src/radix.rs", ...]
//!
//! [cast-strict]          # R004 scope
//! globs = ["crates/normkey/src/**"]
//!
//! [exit-allow]           # R006: process::exit allowlist
//! globs = ["crates/bench/src/bin/*.rs"]
//!
//! [unsafe-impl-allow]    # R006: unsafe impl Send/Sync allowlist
//! globs = []
//!
//! [exclude]              # never scanned
//! globs = ["target/**"]
//! ```

use crate::toml_scan;

/// Parsed lint configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// R002/R003 apply to files matching these globs.
    pub hot_paths: Vec<String>,
    /// R004 applies to files matching these globs.
    pub cast_strict: Vec<String>,
    /// Files where `std::process::exit` is permitted (CLI entry points).
    pub exit_allow: Vec<String>,
    /// Files where `unsafe impl Send`/`Sync` is permitted.
    pub unsafe_impl_allow: Vec<String>,
    /// Files excluded from all rules (e.g. lint test fixtures).
    pub exclude: Vec<String>,
}

impl Config {
    /// Parse `lint.toml` text.
    pub fn parse(src: &str) -> Config {
        let mut cfg = Config::default();
        for item in toml_scan::scan(src) {
            if item.key != "globs" {
                continue;
            }
            let globs = toml_scan::array_strings(&item.value);
            match item.section.as_str() {
                "hot-paths" => cfg.hot_paths = globs,
                "cast-strict" => cfg.cast_strict = globs,
                "exit-allow" => cfg.exit_allow = globs,
                "unsafe-impl-allow" => cfg.unsafe_impl_allow = globs,
                "exclude" => cfg.exclude = globs,
                _ => {}
            }
        }
        cfg
    }

    /// Does `path` (repo-relative, `/`-separated) match any glob in `set`?
    pub fn matches(set: &[String], path: &str) -> bool {
        set.iter().any(|g| glob_match(g, path))
    }
}

/// Match `path` against `pattern`. Supported syntax: `*` (within one path
/// segment), `**` (any number of segments, including zero), literal text.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segments(&pat, &segs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => {
            // `**` may swallow zero or more whole segments.
            (0..=segs.len()).any(|k| match_segments(&pat[1..], &segs[k..]))
        }
        Some(p) => match segs.first() {
            Some(s) if match_one(p, s) => match_segments(&pat[1..], &segs[1..]),
            _ => false,
        },
    }
}

/// Match one path segment against a pattern segment with `*` wildcards.
fn match_one(pat: &str, seg: &str) -> bool {
    let pieces: Vec<&str> = pat.split('*').collect();
    if pieces.len() == 1 {
        return pat == seg;
    }
    let mut rest = seg;
    for (i, piece) in pieces.iter().enumerate() {
        if i == 0 {
            match rest.strip_prefix(piece) {
                Some(r) => rest = r,
                None => return false,
            }
        } else if i == pieces.len() - 1 {
            return piece.is_empty() || rest.ends_with(piece);
        } else if piece.is_empty() {
            continue;
        } else {
            match rest.find(piece) {
                Some(at) => rest = &rest[at + piece.len()..],
                None => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_star() {
        assert!(glob_match("crates/algos/src/radix.rs", "crates/algos/src/radix.rs"));
        assert!(glob_match("crates/bench/src/bin/*.rs", "crates/bench/src/bin/gen.rs"));
        assert!(!glob_match("crates/bench/src/bin/*.rs", "crates/bench/src/lib.rs"));
    }

    #[test]
    fn double_star() {
        assert!(glob_match("crates/normkey/src/**", "crates/normkey/src/encoding.rs"));
        assert!(glob_match("crates/normkey/src/**", "crates/normkey/src/deep/nest.rs"));
        assert!(glob_match("target/**", "target/release/foo"));
        assert!(!glob_match("crates/normkey/src/**", "crates/row/src/block.rs"));
        assert!(glob_match("**/fixtures/**", "crates/lint/tests/fixtures/r001_bad.rs"));
    }

    #[test]
    fn parse_config() {
        let cfg = Config::parse(
            "[hot-paths]\nglobs = [\n \"a.rs\",\n \"b/**\",\n]\n[exclude]\nglobs = [\"t/**\"]\n",
        );
        assert_eq!(cfg.hot_paths, vec!["a.rs", "b/**"]);
        assert_eq!(cfg.exclude, vec!["t/**"]);
        assert!(Config::matches(&cfg.hot_paths, "b/x/y.rs"));
    }
}

//! Deterministic fault-injecting in-memory filesystem for spill I/O.
//!
//! The external sorter talks to storage through a narrow interface
//! (create / write / flush / read / delete of run files). [`FaultFs`] is
//! an in-memory implementation of that surface that injects failures from
//! a seeded [`FaultSchedule`], so tests and the `stress` binary can
//! deterministically exercise every error path the real filesystem can
//! produce — without touching the disk and with exact reproducibility
//! from a printed seed:
//!
//! * **write error at byte N** — `write` fails with a chosen
//!   [`io::ErrorKind`] once a file's cursor crosses the offset (fires
//!   once; a rewritten file is a new creation ordinal, so retries model
//!   transient failures naturally),
//! * **ENOSPC after K bytes** — once the filesystem stores K total bytes,
//!   every further write fails with [`io::ErrorKind::StorageFull`],
//! * **short read** — `open` yields a reader over a truncated prefix,
//! * **bit-flip corruption** — one bit of the stored contents flips the
//!   first time the file is opened,
//! * **delete-on-close** — the file silently vanishes when its writer is
//!   dropped (models a tmp-reaper racing the sort),
//! * **delete error** — `delete` fails with `PermissionDenied` and the
//!   file stays behind (models an undeletable temp file; the caller's
//!   leak accounting must notice).
//!
//! Faults target files by **creation ordinal** (the n-th file ever
//! created on this filesystem), which is stable for a deterministic
//! workload. Each spec fires at most once. [`FaultFs::stats`] reports
//! which faults actually triggered, and [`FaultFs::live_files`] lists
//! surviving files so callers can assert leak-freedom.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::rng::Rng;

/// One kind of injectable failure. See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `write` fails with this error kind when the file cursor crosses
    /// the spec's byte offset.
    WriteError(io::ErrorKind),
    /// `open` returns a reader over only the first `at_byte` bytes.
    ShortRead,
    /// Flip bit `bit` of the byte at `at_byte` when the file is opened.
    BitFlip,
    /// Remove the file when its writer is dropped.
    DeleteOnClose,
    /// `delete` fails with `PermissionDenied`; the file stays.
    DeleteError,
}

/// A single scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Target file by creation ordinal (0 = first file ever created).
    pub file: usize,
    /// Byte-offset parameter (trigger offset for write errors, truncation
    /// point for short reads, flipped byte for bit flips; unused
    /// otherwise).
    pub at_byte: u64,
    /// Bit index (0..8) for [`FaultKind::BitFlip`]; unused otherwise.
    pub bit: u8,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic set of faults plus an optional global disk capacity.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    /// Individual faults; each fires at most once.
    pub specs: Vec<FaultSpec>,
    /// Total bytes the filesystem will store before every further write
    /// fails with [`io::ErrorKind::StorageFull`].
    pub disk_capacity: Option<u64>,
}

impl FaultSchedule {
    /// A schedule that never injects anything (the fault-free baseline).
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Generate a random schedule from a seeded generator: up to three
    /// faults over the first `expected_files` files, plus (one time in
    /// four) a disk capacity somewhere below `expected_bytes`. Fully
    /// determined by the `rng` state.
    pub fn generate(rng: &mut Rng, expected_files: usize, expected_bytes: u64) -> FaultSchedule {
        let kinds = [
            FaultKind::WriteError(io::ErrorKind::Interrupted),
            FaultKind::WriteError(io::ErrorKind::TimedOut),
            FaultKind::WriteError(io::ErrorKind::Other),
            FaultKind::ShortRead,
            FaultKind::BitFlip,
            FaultKind::DeleteOnClose,
            FaultKind::DeleteError,
        ];
        let files = expected_files.max(1) as u64;
        let bytes = expected_bytes.max(1);
        let mut specs = Vec::new();
        for _ in 0..rng.below(4) {
            specs.push(FaultSpec {
                file: rng.below(files) as usize,
                at_byte: rng.below(bytes),
                bit: rng.below(8) as u8,
                kind: *rng.pick(&kinds),
            });
        }
        let disk_capacity = rng.chance(0.25).then(|| rng.below(bytes));
        FaultSchedule {
            specs,
            disk_capacity,
        }
    }
}

/// Counts of faults that actually fired (plus file-lifecycle totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Files ever created.
    pub files_created: u64,
    /// Files removed via `delete`.
    pub files_deleted: u64,
    /// Injected write errors (excluding ENOSPC).
    pub write_errors: u64,
    /// Writes rejected by the disk-capacity budget.
    pub enospc_errors: u64,
    /// Opens that returned a truncated prefix.
    pub short_reads: u64,
    /// Bits flipped in stored contents.
    pub bit_flips: u64,
    /// Files silently removed when their writer closed.
    pub deletes_on_close: u64,
    /// `delete` calls that failed with an injected error.
    pub delete_errors: u64,
}

impl FaultStats {
    /// Total injected faults that fired (lifecycle counters excluded).
    pub fn faults_fired(&self) -> u64 {
        self.write_errors
            + self.enospc_errors
            + self.short_reads
            + self.bit_flips
            + self.deletes_on_close
            + self.delete_errors
    }
}

struct FileEntry {
    data: Vec<u8>,
    ordinal: usize,
}

struct Inner {
    schedule: FaultSchedule,
    /// Parallel to `schedule.specs`: whether each spec already fired.
    fired: Vec<bool>,
    files: BTreeMap<String, FileEntry>,
    next_ordinal: usize,
    stored_bytes: u64,
    stats: FaultStats,
}

impl Inner {
    /// Find the first unfired spec of `kind_match` targeting `ordinal`,
    /// mark it fired, and return it.
    fn take_spec(
        &mut self,
        ordinal: usize,
        mut matches: impl FnMut(&FaultSpec) -> bool,
    ) -> Option<FaultSpec> {
        for (i, spec) in self.schedule.specs.iter().enumerate() {
            if !self.fired[i] && spec.file == ordinal && matches(spec) {
                self.fired[i] = true;
                return Some(*spec);
            }
        }
        None
    }

    /// As [`Inner::take_spec`] but without consuming — used for write
    /// errors, which must only fire once the cursor crosses the offset.
    fn peek_spec(
        &self,
        ordinal: usize,
        mut matches: impl FnMut(&FaultSpec) -> bool,
    ) -> Option<(usize, FaultSpec)> {
        self.schedule
            .specs
            .iter()
            .enumerate()
            .find(|(i, spec)| !self.fired[*i] && spec.file == ordinal && matches(spec))
            .map(|(i, spec)| (i, *spec))
    }
}

/// The shared fault-injecting filesystem. Cloning shares the same
/// underlying namespace, schedule, and statistics.
#[derive(Clone)]
pub struct FaultFs {
    inner: Arc<Mutex<Inner>>,
}

impl FaultFs {
    /// A filesystem injecting from `schedule`.
    pub fn new(schedule: FaultSchedule) -> FaultFs {
        let fired = vec![false; schedule.specs.len()];
        FaultFs {
            inner: Arc::new(Mutex::new(Inner {
                schedule,
                fired,
                files: BTreeMap::new(),
                next_ordinal: 0,
                stored_bytes: 0,
                stats: FaultStats::default(),
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Create (or truncate) a file and return its writer.
    pub fn create(&self, name: &str) -> io::Result<FaultWriter> {
        let mut inner = self.lock();
        let ordinal = inner.next_ordinal;
        inner.next_ordinal += 1;
        inner.stats.files_created += 1;
        // Truncating an existing file releases its stored bytes.
        if let Some(old) = inner.files.remove(name) {
            inner.stored_bytes = inner.stored_bytes.saturating_sub(old.data.len() as u64);
        }
        inner.files.insert(
            name.to_owned(),
            FileEntry {
                data: Vec::new(),
                ordinal,
            },
        );
        Ok(FaultWriter {
            fs: self.clone(),
            name: name.to_owned(),
            ordinal,
            written: 0,
        })
    }

    /// Open a file for reading, applying any scheduled read-side faults.
    pub fn open(&self, name: &str) -> io::Result<FaultReader> {
        let mut inner = self.lock();
        let (ordinal, len) = match inner.files.get(name) {
            Some(f) => (f.ordinal, f.data.len() as u64),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("faultfs: no such file: {name}"),
                ))
            }
        };
        // Bit-flip corruption mutates the stored contents (a persistent
        // media error, visible to every subsequent reader).
        if let Some(spec) =
            inner.take_spec(ordinal, |s| s.kind == FaultKind::BitFlip && s.at_byte < len)
        {
            inner.stats.bit_flips += 1;
            if let Some(f) = inner.files.get_mut(name) {
                f.data[spec.at_byte as usize] ^= 1 << (spec.bit % 8);
            }
        }
        let mut data = match inner.files.get(name) {
            Some(f) => f.data.clone(),
            None => Vec::new(),
        };
        if let Some(spec) = inner.take_spec(ordinal, |s| s.kind == FaultKind::ShortRead) {
            inner.stats.short_reads += 1;
            data.truncate((spec.at_byte.min(len)) as usize);
        }
        Ok(FaultReader { data, pos: 0 })
    }

    /// Delete a file. Fails with `NotFound` if absent, or with an
    /// injected `PermissionDenied` (leaving the file behind) when a
    /// [`FaultKind::DeleteError`] targets it.
    pub fn delete(&self, name: &str) -> io::Result<()> {
        let mut inner = self.lock();
        let ordinal = match inner.files.get(name) {
            Some(f) => f.ordinal,
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("faultfs: no such file: {name}"),
                ))
            }
        };
        if inner
            .take_spec(ordinal, |s| s.kind == FaultKind::DeleteError)
            .is_some()
        {
            inner.stats.delete_errors += 1;
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!("faultfs: injected delete failure: {name}"),
            ));
        }
        if let Some(old) = inner.files.remove(name) {
            inner.stored_bytes = inner.stored_bytes.saturating_sub(old.data.len() as u64);
        }
        inner.stats.files_deleted += 1;
        Ok(())
    }

    /// Names of all files currently stored (the leak check).
    pub fn live_files(&self) -> Vec<String> {
        self.lock().files.keys().cloned().collect()
    }

    /// Raw contents of a stored file, if present (for test assertions).
    pub fn contents(&self, name: &str) -> Option<Vec<u8>> {
        self.lock().files.get(name).map(|f| f.data.clone())
    }

    /// Lifecycle and fired-fault counters.
    pub fn stats(&self) -> FaultStats {
        self.lock().stats
    }

    /// Total bytes currently stored across all files.
    pub fn stored_bytes(&self) -> u64 {
        self.lock().stored_bytes
    }
}

/// Writer half of a [`FaultFs`] file.
pub struct FaultWriter {
    fs: FaultFs,
    name: String,
    ordinal: usize,
    written: u64,
}

impl Write for FaultWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut inner = self.fs.lock();
        // Injected write error: fires once the cursor would cross the
        // spec's offset (so a run of small writes hits it exactly once).
        let hit = inner.peek_spec(self.ordinal, |s| {
            matches!(s.kind, FaultKind::WriteError(_))
                && self.written + buf.len() as u64 > s.at_byte
        });
        if let Some((i, spec)) = hit {
            inner.fired[i] = true;
            inner.stats.write_errors += 1;
            let FaultKind::WriteError(kind) = spec.kind else {
                unreachable!("peek_spec matched WriteError only");
            };
            return Err(io::Error::new(
                kind,
                format!(
                    "faultfs: injected write error at byte {} of {}",
                    spec.at_byte, self.name
                ),
            ));
        }
        if let Some(cap) = inner.schedule.disk_capacity {
            if inner.stored_bytes + buf.len() as u64 > cap {
                inner.stats.enospc_errors += 1;
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    format!("faultfs: disk capacity {cap} bytes exhausted"),
                ));
            }
        }
        match inner.files.get_mut(&self.name) {
            Some(f) if f.ordinal == self.ordinal => f.data.extend_from_slice(buf),
            // The file was deleted or replaced under this writer; writes
            // to the orphaned handle vanish (as with an unlinked fd).
            _ => return Ok(buf.len()),
        }
        inner.stored_bytes += buf.len() as u64;
        self.written += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for FaultWriter {
    fn drop(&mut self) {
        let mut inner = self.fs.lock();
        if inner
            .take_spec(self.ordinal, |s| s.kind == FaultKind::DeleteOnClose)
            .is_some()
        {
            inner.stats.deletes_on_close += 1;
            if let Some(old) = inner.files.remove(&self.name) {
                inner.stored_bytes = inner.stored_bytes.saturating_sub(old.data.len() as u64);
            }
        }
    }
}

/// Reader half of a [`FaultFs`] file: a cursor over a snapshot taken at
/// open time (with read-side faults already applied).
#[derive(Debug)]
pub struct FaultReader {
    data: Vec<u8>,
    pos: usize,
}

impl Read for FaultReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(file: usize, at_byte: u64, kind: FaultKind) -> FaultSpec {
        FaultSpec {
            file,
            at_byte,
            bit: 0,
            kind,
        }
    }

    fn write_file(fs: &FaultFs, name: &str, data: &[u8]) {
        let mut w = fs.create(name).unwrap();
        w.write_all(data).unwrap();
        w.flush().unwrap();
    }

    fn read_file(fs: &FaultFs, name: &str) -> Vec<u8> {
        let mut out = Vec::new();
        fs.open(name).unwrap().read_to_end(&mut out).unwrap();
        out
    }

    #[test]
    fn fault_free_roundtrip_and_lifecycle() {
        let fs = FaultFs::new(FaultSchedule::none());
        write_file(&fs, "a.run", b"hello");
        write_file(&fs, "b.run", b"world!");
        assert_eq!(read_file(&fs, "a.run"), b"hello");
        assert_eq!(
            fs.live_files(),
            vec!["a.run".to_owned(), "b.run".to_owned()]
        );
        assert_eq!(fs.stored_bytes(), 11);
        fs.delete("a.run").unwrap();
        assert_eq!(fs.live_files(), vec!["b.run".to_owned()]);
        assert_eq!(
            fs.delete("a.run").unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        let st = fs.stats();
        assert_eq!(st.files_created, 2);
        assert_eq!(st.files_deleted, 1);
        assert_eq!(st.faults_fired(), 0);
    }

    #[test]
    fn write_error_fires_once_at_offset() {
        // TimedOut, not Interrupted: `write_all` transparently retries
        // Interrupted per std semantics and would swallow the injection.
        let fs = FaultFs::new(FaultSchedule {
            specs: vec![spec(0, 3, FaultKind::WriteError(io::ErrorKind::TimedOut))],
            disk_capacity: None,
        });
        let mut w = fs.create("x.run").unwrap();
        w.write_all(b"ab").unwrap(); // cursor 2, below the offset
        let err = w.write_all(b"cd").unwrap_err(); // would cross byte 3
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // The spec fired; the next file (a retry) succeeds.
        drop(w);
        let mut w = fs.create("x.run").unwrap();
        w.write_all(b"abcdef").unwrap();
        drop(w);
        assert_eq!(read_file(&fs, "x.run"), b"abcdef");
        assert_eq!(fs.stats().write_errors, 1);
    }

    #[test]
    fn enospc_applies_to_all_files_once_capacity_reached() {
        let fs = FaultFs::new(FaultSchedule {
            specs: vec![],
            disk_capacity: Some(8),
        });
        write_file(&fs, "a.run", b"12345678");
        let mut w = fs.create("b.run").unwrap();
        let err = w.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // Deleting frees space again.
        fs.delete("a.run").unwrap();
        w.write_all(b"x").unwrap();
        assert_eq!(fs.stats().enospc_errors, 1);
    }

    #[test]
    fn short_read_truncates_one_open() {
        let fs = FaultFs::new(FaultSchedule {
            specs: vec![spec(0, 4, FaultKind::ShortRead)],
            disk_capacity: None,
        });
        write_file(&fs, "s.run", b"0123456789");
        assert_eq!(read_file(&fs, "s.run"), b"0123");
        // Fires once; the next open sees the full file.
        assert_eq!(read_file(&fs, "s.run"), b"0123456789");
        assert_eq!(fs.stats().short_reads, 1);
    }

    #[test]
    fn bit_flip_corrupts_stored_contents() {
        let fs = FaultFs::new(FaultSchedule {
            specs: vec![FaultSpec {
                file: 0,
                at_byte: 2,
                bit: 5,
                kind: FaultKind::BitFlip,
            }],
            disk_capacity: None,
        });
        write_file(&fs, "c.run", b"AAAA");
        let got = read_file(&fs, "c.run");
        assert_eq!(got, [b'A', b'A', b'A' ^ (1 << 5), b'A']);
        // Persistent: the stored bytes changed, not just one reader's view.
        assert_eq!(read_file(&fs, "c.run"), got);
        assert_eq!(fs.stats().bit_flips, 1);
    }

    #[test]
    fn bit_flip_beyond_eof_never_fires() {
        let fs = FaultFs::new(FaultSchedule {
            specs: vec![spec(0, 100, FaultKind::BitFlip)],
            disk_capacity: None,
        });
        write_file(&fs, "c.run", b"abc");
        assert_eq!(read_file(&fs, "c.run"), b"abc");
        assert_eq!(fs.stats().bit_flips, 0);
    }

    #[test]
    fn delete_on_close_vanishes_file() {
        let fs = FaultFs::new(FaultSchedule {
            specs: vec![spec(0, 0, FaultKind::DeleteOnClose)],
            disk_capacity: None,
        });
        write_file(&fs, "gone.run", b"data");
        assert!(fs.live_files().is_empty());
        assert_eq!(
            fs.open("gone.run").unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        assert_eq!(fs.stats().deletes_on_close, 1);
        assert_eq!(fs.stored_bytes(), 0);
    }

    #[test]
    fn delete_error_leaves_file_behind() {
        let fs = FaultFs::new(FaultSchedule {
            specs: vec![spec(0, 0, FaultKind::DeleteError)],
            disk_capacity: None,
        });
        write_file(&fs, "stuck.run", b"data");
        let err = fs.delete("stuck.run").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(fs.live_files(), vec!["stuck.run".to_owned()]);
        // Fires once: a second delete succeeds.
        fs.delete("stuck.run").unwrap();
        assert!(fs.live_files().is_empty());
        assert_eq!(fs.stats().delete_errors, 1);
    }

    #[test]
    fn faults_target_creation_ordinals() {
        let fs = FaultFs::new(FaultSchedule {
            specs: vec![spec(1, 0, FaultKind::WriteError(io::ErrorKind::Other))],
            disk_capacity: None,
        });
        write_file(&fs, "first.run", b"ok");
        let mut w = fs.create("second.run").unwrap();
        assert!(w.write_all(b"x").is_err());
        drop(w);
        write_file(&fs, "third.run", b"ok");
        assert_eq!(fs.stats().write_errors, 1);
    }

    #[test]
    fn schedule_generation_is_deterministic() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let sa = FaultSchedule::generate(&mut a, 8, 10_000);
        let sb = FaultSchedule::generate(&mut b, 8, 10_000);
        assert_eq!(sa.specs, sb.specs);
        assert_eq!(sa.disk_capacity, sb.disk_capacity);
    }

    #[test]
    fn clones_share_one_namespace() {
        let fs = FaultFs::new(FaultSchedule::none());
        let fs2 = fs.clone();
        write_file(&fs, "shared.run", b"abc");
        assert_eq!(read_file(&fs2, "shared.run"), b"abc");
        fs2.delete("shared.run").unwrap();
        assert!(fs.live_files().is_empty());
    }
}

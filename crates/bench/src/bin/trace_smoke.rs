//! CI smoke test for the `ROWSORT_TRACE` observability pipeline.
//!
//! ```text
//! trace_smoke <trace-file.jsonl>
//! ```
//!
//! Turns tracing on, runs one in-memory pipeline sort (u32 keys), one
//! VARCHAR sort, and one spilling external sort, then reads the trace
//! file back and validates every line against the documented schema
//! (DESIGN.md §7.5) with testkit's JSON parser: required fields, all
//! phase and counter names present and numeric, and phase times that sum
//! to no more than the sort's wall time. Exits non-zero on any
//! violation, so CI catches schema drift the moment it happens.

use rowsort_core::external::{ExternalSortOptions, ExternalSorter};
use rowsort_core::metrics::{Counter, Phase};
use rowsort_core::pipeline::{SortOptions, SortPipeline};
use rowsort_testkit::json::Json;
use rowsort_testkit::Rng;
use rowsort_vector::{DataChunk, OrderBy, Value, Vector};

fn die(msg: &str) -> ! {
    eprintln!("trace_smoke: {msg}");
    std::process::exit(2);
}

fn num_field(obj: &Json, name: &str, line_no: usize) -> f64 {
    obj.get(name)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| die(&format!("line {line_no}: missing numeric field '{name}'")))
}

fn run_sorts() {
    let mut rng = Rng::seed_from_u64(0x7ace);
    let n = 100_000usize;
    let col: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
    let ints = DataChunk::from_columns(vec![Vector::from_u32s(col)]).unwrap();
    let pipeline = SortPipeline::new(ints.types(), OrderBy::ascending(1), SortOptions::default());
    drop(pipeline.sort(&ints));

    let mut strings = DataChunk::new(&[rowsort_vector::LogicalType::Varchar]);
    for _ in 0..20_000 {
        let r = rng.next_u32();
        let v = if r % 11 == 0 {
            Value::Null
        } else {
            Value::from(format!("name_{}", r % 997))
        };
        strings.push_row(&[v]).unwrap();
    }
    let pipeline = SortPipeline::new(
        strings.types(),
        OrderBy::ascending(1),
        SortOptions::default(),
    );
    drop(pipeline.sort(&strings));

    let sorter = ExternalSorter::new(
        ints.types(),
        OrderBy::ascending(1),
        ExternalSortOptions {
            memory_limit_rows: 20_000,
            ..Default::default()
        },
    );
    drop(
        sorter
            .sort(&ints)
            .unwrap_or_else(|e| die(&format!("external sort failed: {e}"))),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        die("usage: trace_smoke <trace-file.jsonl>");
    };
    // Tracing reads its configuration once per process; set it before the
    // first sort. A stale file would double-count lines: start fresh.
    let _ = std::fs::remove_file(path);
    std::env::set_var("ROWSORT_TRACE", "1");
    std::env::set_var("ROWSORT_TRACE_FILE", path);

    run_sorts();

    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read trace file {path}: {e}")));
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.len() != 3 {
        die(&format!(
            "expected 3 trace lines (3 sorts ran), got {}",
            lines.len()
        ));
    }

    let mut operators = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let line_no = i + 1;
        let obj = Json::parse(line)
            .unwrap_or_else(|e| die(&format!("line {line_no}: invalid JSON: {e}")));
        let event = obj
            .get("event")
            .and_then(Json::as_str)
            .unwrap_or_else(|| die(&format!("line {line_no}: missing 'event'")));
        if event != "sort" {
            die(&format!("line {line_no}: unexpected event '{event}'"));
        }
        let operator = obj
            .get("operator")
            .and_then(Json::as_str)
            .unwrap_or_else(|| die(&format!("line {line_no}: missing 'operator'")))
            .to_owned();
        if operator != "pipeline" && operator != "external" {
            die(&format!("line {line_no}: unknown operator '{operator}'"));
        }
        let rows = num_field(&obj, "rows", line_no);
        let total_ns = num_field(&obj, "total_ns", line_no);
        if rows <= 0.0 || total_ns <= 0.0 {
            die(&format!("line {line_no}: rows/total_ns must be positive"));
        }

        let phases = obj
            .get("phases")
            .unwrap_or_else(|| die(&format!("line {line_no}: missing 'phases'")));
        let mut phase_sum = 0.0;
        for p in Phase::ALL {
            phase_sum += num_field(phases, p.name(), line_no);
        }
        let counters = obj
            .get("counters")
            .unwrap_or_else(|| die(&format!("line {line_no}: missing 'counters'")));
        for c in Counter::ALL {
            let _ = num_field(counters, c.name(), line_no);
        }

        // Phase timers nest strictly inside the sort call: their sum can
        // never exceed the wall time, and for a non-trivial sort the
        // timed phases are where the time actually goes.
        if phase_sum > total_ns {
            die(&format!(
                "line {line_no}: phases sum to {phase_sum}ns > total {total_ns}ns"
            ));
        }
        if phase_sum < 0.5 * total_ns {
            die(&format!(
                "line {line_no}: phases ({phase_sum}ns) attribute under half \
                 of total ({total_ns}ns)"
            ));
        }
        if num_field(counters, Counter::RowsSorted.name(), line_no) != rows {
            die(&format!("line {line_no}: rows_sorted counter != rows"));
        }
        operators.push(operator);
    }

    if !operators.contains(&"pipeline".to_owned()) || !operators.contains(&"external".to_owned()) {
        die(&format!(
            "expected both operators in the trace, got {operators:?}"
        ));
    }
    println!(
        "trace_smoke: {} trace lines validated against the schema ({})",
        lines.len(),
        operators.join(", ")
    );
}

//! Recursive-descent parser: token stream → [`crate::ast`].
//!
//! The parser is loss-tolerant by design: it must produce a usable tree
//! for *any* input (the lint runs on work-in-progress code), so anywhere
//! it cannot recognize a construct it skips one token and keeps going —
//! it never fails, never panics, and always terminates (every loop bounds
//! itself on a strictly advancing cursor). The price is approximation:
//! operator precedence is not modeled (rules never need it), patterns are
//! skipped rather than parsed, and macro bodies are re-parsed best-effort
//! so the calls inside them still land in the tree.
//!
//! What it gets right — because the rules depend on it — is structure:
//! which function a call appears in, what an impl qualifies a method as,
//! where `unsafe` blocks begin and end (as token spans), which `let _ =`
//! discards a value, and which index expressions use a literal subscript.

use crate::ast::{Block, Container, ContainerKind, Expr, File, FnItem, Item, JumpKind, Stmt};
use crate::lexer::{Tok, TokKind};

/// Parse a lexed file. `toks` is the full token stream *including*
/// comments (rules use the token indices in [`Block`] spans to find
/// nearby comments); the parser itself skips them.
pub fn parse(toks: &[Tok]) -> File {
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut p = Parser { toks, sig, pos: 0 };
    File {
        items: p.items(false, None),
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    /// Indices of non-comment tokens.
    sig: Vec<usize>,
    /// Cursor into `sig`.
    pos: usize,
}

/// Keywords that begin an item when seen in statement/item position.
const ITEM_STARTERS: &[&str] = &[
    "fn",
    "mod",
    "impl",
    "trait",
    "struct",
    "enum",
    "union",
    "use",
    "static",
    "type",
    "macro_rules",
    "extern",
    "macro",
];

impl<'a> Parser<'a> {
    // -- cursor ------------------------------------------------------------

    fn tok(&self, ahead: usize) -> Option<&'a Tok> {
        self.sig.get(self.pos + ahead).map(|&i| &self.toks[i])
    }

    fn tok_index(&self) -> usize {
        self.sig.get(self.pos).copied().unwrap_or(self.toks.len())
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.sig.len()
    }

    fn at_punct(&self, c: char) -> bool {
        self.tok(0).is_some_and(|t| t.is_punct(c))
    }

    fn at_punct2(&self, a: char, b: char) -> bool {
        self.tok(0).is_some_and(|t| t.is_punct(a)) && self.tok(1).is_some_and(|t| t.is_punct(b))
    }

    fn at_ident(&self, word: &str) -> bool {
        self.tok(0).is_some_and(|t| t.is_ident(word))
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if self.at_ident(word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn pos_of(&self, t: &Tok) -> (u32, u32) {
        (t.line, t.col)
    }

    // -- shared skippers ---------------------------------------------------

    /// Skip a balanced `#[ … ]` attribute; returns the identifier words it
    /// contains (for `#[test]` / `#[cfg(test)]` detection).
    fn attr_words(&mut self) -> Vec<String> {
        let mut words = Vec::new();
        self.eat_punct('#');
        self.eat_punct('!'); // inner attribute `#![…]`
        if !self.at_punct('[') {
            return words;
        }
        let mut depth = 0i32;
        while let Some(t) = self.tok(0) {
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    break;
                }
            } else if t.kind == TokKind::Ident {
                words.push(t.text.clone());
            }
            self.pos += 1;
        }
        words
    }

    /// Skip a balanced generic-argument list starting at `<`. `>` that is
    /// part of `->` does not close a level (fn types inside generics).
    fn skip_generics(&mut self) {
        if !self.at_punct('<') {
            return;
        }
        let mut depth = 0i32;
        let mut prev_dash = false;
        while let Some(t) = self.tok(0) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !prev_dash {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    break;
                }
            }
            prev_dash = t.is_punct('-');
            self.pos += 1;
        }
    }

    /// Skip a balanced delimiter group whose opener is the current token.
    fn skip_group(&mut self, open: char, close: char) {
        let mut depth = 0i32;
        while let Some(t) = self.tok(0) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    break;
                }
            }
            self.pos += 1;
        }
    }

    /// Skip type-ish tokens: paths, generics, references, tuples, slices,
    /// `dyn`/`impl`, fn types. Stops at any token that cannot continue a
    /// type in this grammar's approximation.
    fn skip_type(&mut self) {
        loop {
            let Some(t) = self.tok(0) else { break };
            if t.is_punct('&') || t.is_punct('*') {
                self.pos += 1;
                self.eat_ident("mut");
                self.eat_ident("const");
                continue;
            }
            if t.kind == TokKind::Lifetime {
                self.pos += 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                if matches!(
                    t.text.as_str(),
                    "dyn" | "impl" | "mut" | "const" | "unsafe" | "extern" | "fn"
                ) {
                    self.pos += 1;
                    continue;
                }
                self.pos += 1;
                self.skip_generics();
                if self.at_punct2(':', ':') {
                    self.pos += 2;
                    continue;
                }
                // `Trait + Send` bounds.
                if self.at_punct('+') {
                    self.pos += 1;
                    continue;
                }
                break;
            }
            if t.is_punct('(') {
                self.skip_group('(', ')');
                if self.at_punct2('-', '>') {
                    self.pos += 2;
                    continue;
                }
                break;
            }
            if t.is_punct('[') {
                self.skip_group('[', ']');
                break;
            }
            if t.is_punct('<') {
                self.skip_generics();
                continue;
            }
            break;
        }
    }

    /// Capture return-type text from after `->` up to `{`, `;`, or
    /// `where`, whitespace-free (`Result<(),SpillError>`).
    fn ret_text(&mut self) -> String {
        let mut out = String::new();
        let mut prev_dash = false;
        let mut angle = 0i32;
        while let Some(t) = self.tok(0) {
            if angle == 0 && (t.is_punct('{') || t.is_punct(';') || t.is_ident("where")) {
                break;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !prev_dash && angle > 0 {
                angle -= 1;
            }
            prev_dash = t.is_punct('-');
            out.push_str(&t.text);
            self.pos += 1;
        }
        out
    }

    /// Skip a pattern: everything up to `=`, `in`, `=>`, `:` type, or the
    /// stop condition, with delimiters balanced. Returns true if the whole
    /// pattern was exactly the wildcard `_`.
    fn skip_pattern(&mut self, stop: &dyn Fn(&Parser) -> bool) -> bool {
        self.skip_pattern_named(stop).0
    }

    /// Like [`skip_pattern`], but also captures the bound name when the
    /// pattern is a single identifier binding (`x`, `mut x`, `ref x`,
    /// `_x`). Destructuring patterns, paths, and the bare wildcard yield
    /// `None` — the dataflow engine treats those bindings as opaque.
    fn skip_pattern_named(&mut self, stop: &dyn Fn(&Parser) -> bool) -> (bool, Option<String>) {
        let mut seen = 0usize;
        let mut underscore = false;
        let mut name: Option<String> = None;
        let mut complex = false;
        loop {
            if self.at_eof() || (self.depth0() && stop(self)) {
                break;
            }
            let Some(t) = self.tok(0) else { break };
            if t.is_punct('(') {
                self.skip_group('(', ')');
                seen += 2;
                complex = true;
                continue;
            }
            if t.is_punct('[') {
                self.skip_group('[', ']');
                seen += 2;
                complex = true;
                continue;
            }
            if t.is_punct('{') {
                self.skip_group('{', '}');
                seen += 2;
                complex = true;
                continue;
            }
            if t.is_ident("_") {
                underscore = seen == 0;
                complex = true;
            } else if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "mut" | "ref" => {}
                    _ if name.is_none() && !complex => name = Some(t.text.clone()),
                    _ => complex = true,
                }
            } else {
                // `&`, `::`, `@`, literals — not a plain binding.
                complex = true;
            }
            seen += 1;
            self.pos += 1;
        }
        (underscore && seen == 1, if complex { None } else { name })
    }

    /// True when not nested — `skip_pattern` consumes groups wholesale, so
    /// the cursor is always at depth 0 between tokens.
    fn depth0(&self) -> bool {
        true
    }

    // -- items -------------------------------------------------------------

    /// Parse items until `}` (if `until_close`) or EOF.
    fn items(&mut self, until_close: bool, qual: Option<&str>) -> Vec<Item> {
        let mut out = Vec::new();
        loop {
            if self.at_eof() || (until_close && self.at_punct('}')) {
                break;
            }
            let before = self.pos;
            if let Some(item) = self.item(qual) {
                out.push(item);
            }
            if self.pos == before {
                self.pos += 1; // recovery: never loop in place
            }
        }
        out
    }

    /// Parse one item, or return `None` after consuming stray tokens.
    fn item(&mut self, qual: Option<&str>) -> Option<Item> {
        let mut is_test = false;
        while self.at_punct('#') {
            let words = self.attr_words();
            if words.iter().any(|w| w == "test") && !words.iter().any(|w| w == "not") {
                is_test = true;
            }
        }
        // Visibility and leading modifiers.
        if self.eat_ident("pub") && self.at_punct('(') {
            self.skip_group('(', ')');
        }
        self.eat_ident("default");
        self.eat_ident("const");
        self.eat_ident("async");
        let unsafe_item = self.eat_ident("unsafe");
        if self.eat_ident("extern") {
            if self.tok(0).is_some_and(|t| t.kind == TokKind::Str) {
                self.pos += 1;
            }
            // `extern crate name;` / `extern "C" { … }` foreign block.
            if self.eat_ident("crate") {
                self.skip_to_semi();
                return Some(Item::Other);
            }
            if self.at_punct('{') {
                self.skip_group('{', '}');
                return Some(Item::Other);
            }
        }
        let _ = unsafe_item;

        let t = self.tok(0)?;
        match t.text.as_str() {
            "fn" => Some(Item::Fn(self.fn_item(is_test, qual))),
            "mod" => {
                self.pos += 1;
                let name = self.ident_text().unwrap_or_default();
                if self.eat_punct(';') {
                    return Some(Item::Other);
                }
                if self.at_punct('{') {
                    self.pos += 1;
                    let items = self.items(true, None);
                    self.eat_punct('}');
                    return Some(Item::Container(Container {
                        kind: ContainerKind::Mod,
                        name,
                        is_test,
                        items,
                    }));
                }
                Some(Item::Other)
            }
            "impl" => {
                self.pos += 1;
                self.skip_generics();
                // Header tokens up to `{` or `;`: the implemented type is
                // the path after `for` when present, else the first path.
                let mut first = None;
                let mut after_for = None;
                let mut saw_for = false;
                while let Some(h) = self.tok(0) {
                    if h.is_punct('{') || h.is_punct(';') {
                        break;
                    }
                    if h.is_ident("for") {
                        saw_for = true;
                        self.pos += 1;
                        continue;
                    }
                    if h.kind == TokKind::Ident
                        && !matches!(h.text.as_str(), "dyn" | "where" | "mut" | "const")
                    {
                        let name = h.text.clone();
                        self.pos += 1;
                        self.skip_generics();
                        if self.at_punct2(':', ':') {
                            self.pos += 2;
                            continue; // keep walking the path; use the last segment
                        }
                        if saw_for && after_for.is_none() {
                            after_for = Some(name);
                        } else if first.is_none() {
                            first = Some(name);
                        } else if saw_for {
                            after_for = Some(name);
                        }
                        continue;
                    }
                    self.pos += 1;
                }
                if self.eat_punct(';') {
                    return Some(Item::Other);
                }
                let name = after_for.or(first).unwrap_or_default();
                if self.at_punct('{') {
                    self.pos += 1;
                    let items = self.items(true, Some(&name));
                    self.eat_punct('}');
                    return Some(Item::Container(Container {
                        kind: ContainerKind::Impl,
                        name,
                        is_test,
                        items,
                    }));
                }
                Some(Item::Other)
            }
            "trait" => {
                self.pos += 1;
                let name = self.ident_text().unwrap_or_default();
                // Supertraits / generics / where clause up to the body.
                while let Some(h) = self.tok(0) {
                    if h.is_punct('{') || h.is_punct(';') {
                        break;
                    }
                    if h.is_punct('<') {
                        self.skip_generics();
                        continue;
                    }
                    self.pos += 1;
                }
                if self.at_punct('{') {
                    self.pos += 1;
                    let items = self.items(true, Some(&name));
                    self.eat_punct('}');
                    return Some(Item::Container(Container {
                        kind: ContainerKind::Trait,
                        name,
                        is_test,
                        items,
                    }));
                }
                self.eat_punct(';');
                Some(Item::Other)
            }
            "struct" | "enum" | "union" => {
                self.pos += 1;
                while let Some(h) = self.tok(0) {
                    if h.is_punct(';') {
                        self.pos += 1;
                        break;
                    }
                    if h.is_punct('{') {
                        self.skip_group('{', '}');
                        // Tuple structs end `);` — brace body ends the item.
                        break;
                    }
                    if h.is_punct('(') {
                        self.skip_group('(', ')');
                        continue;
                    }
                    if h.is_punct('<') {
                        self.skip_generics();
                        continue;
                    }
                    self.pos += 1;
                }
                Some(Item::Other)
            }
            "use" | "type" => {
                self.skip_to_semi();
                Some(Item::Other)
            }
            "static" => {
                // `static NAME: T = init;` — the initializer may contain
                // blocks; balance them on the way to the `;`.
                self.skip_to_semi();
                Some(Item::Other)
            }
            "macro_rules" | "macro" => {
                self.pos += 1;
                self.eat_punct('!');
                self.ident_text();
                if self.at_punct('{') {
                    self.skip_group('{', '}');
                } else if self.at_punct('(') {
                    self.skip_group('(', ')');
                    self.eat_punct(';');
                }
                Some(Item::Other)
            }
            _ => None,
        }
    }

    fn ident_text(&mut self) -> Option<String> {
        let t = self.tok(0)?;
        if t.kind == TokKind::Ident {
            let s = t.text.clone();
            self.pos += 1;
            Some(s)
        } else {
            None
        }
    }

    /// Consume to the next `;`, balancing delimiter groups on the way.
    fn skip_to_semi(&mut self) {
        while let Some(t) = self.tok(0) {
            if t.is_punct(';') {
                self.pos += 1;
                break;
            }
            if t.is_punct('{') {
                self.skip_group('{', '}');
                continue;
            }
            if t.is_punct('(') {
                self.skip_group('(', ')');
                continue;
            }
            if t.is_punct('[') {
                self.skip_group('[', ']');
                continue;
            }
            self.pos += 1;
        }
    }

    /// Parse `fn name<…>(…) -> Ret where … { body }`; cursor at `fn`.
    fn fn_item(&mut self, is_test: bool, qual: Option<&str>) -> FnItem {
        let (line, col) = self.tok(0).map(|t| self.pos_of(t)).unwrap_or((0, 0));
        self.eat_ident("fn");
        let name = self.ident_text().unwrap_or_default();
        self.skip_generics();
        let params = if self.at_punct('(') {
            self.fn_params()
        } else {
            Vec::new()
        };
        let ret = if self.at_punct2('-', '>') {
            self.pos += 2;
            self.ret_text()
        } else {
            String::new()
        };
        if self.eat_ident("where") {
            while let Some(t) = self.tok(0) {
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                if t.is_punct('<') {
                    self.skip_generics();
                    continue;
                }
                if t.is_punct('(') {
                    self.skip_group('(', ')');
                    continue;
                }
                self.pos += 1;
            }
        }
        let body = if self.at_punct('{') {
            Some(self.block())
        } else {
            self.eat_punct(';');
            None
        };
        let qual_name = match qual {
            Some(q) if !q.is_empty() => format!("{q}::{name}"),
            _ => name.clone(),
        };
        FnItem {
            name,
            qual: qual_name,
            line,
            col,
            is_test,
            ret,
            params,
            body,
        }
    }

    /// Parse a `(…)` parameter list, capturing each parameter's bound
    /// name; cursor at `(`. A parameter whose pattern is not a single
    /// identifier (tuple/struct destructuring) contributes an empty
    /// string so positions stay aligned for argument mapping. `self`
    /// receivers (including `&mut self` and `self: Arc<Self>`) appear as
    /// `"self"`.
    fn fn_params(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        self.eat_punct('(');
        loop {
            if self.at_eof() {
                break;
            }
            if self.at_punct(')') {
                self.pos += 1;
                break;
            }
            let mut name = String::new();
            let mut complex = false;
            let mut saw_colon = false;
            loop {
                if self.at_eof() {
                    break;
                }
                let Some(t) = self.tok(0) else { break };
                if t.is_punct(')') || t.is_punct(',') {
                    break;
                }
                if t.is_punct('(') {
                    self.skip_group('(', ')');
                    complex = complex || !saw_colon;
                    continue;
                }
                if t.is_punct('[') {
                    self.skip_group('[', ']');
                    complex = complex || !saw_colon;
                    continue;
                }
                if t.is_punct('{') {
                    self.skip_group('{', '}');
                    complex = complex || !saw_colon;
                    continue;
                }
                if t.is_punct('<') {
                    // Generic arguments in the type (`HashMap<K, V>`):
                    // consume wholesale so their commas don't split params.
                    self.skip_generics();
                    continue;
                }
                if t.is_punct(':') {
                    saw_colon = true;
                    self.pos += 1;
                    continue;
                }
                if !saw_colon {
                    if t.kind == TokKind::Ident {
                        match t.text.as_str() {
                            "mut" | "ref" | "dyn" | "impl" => {}
                            "self" => name = "self".to_string(),
                            _ if name.is_empty() && !complex => name = t.text.clone(),
                            _ => complex = true,
                        }
                    } else if !(t.is_punct('&') || t.kind == TokKind::Lifetime) {
                        complex = true;
                    }
                }
                self.pos += 1;
            }
            out.push(if complex && name != "self" {
                String::new()
            } else {
                name
            });
            if !self.eat_punct(',') && !self.at_punct(')') && !self.at_eof() {
                self.pos += 1; // recovery: never loop in place
            }
        }
        out
    }

    // -- blocks and statements ----------------------------------------------

    /// Parse a `{ … }` block; cursor at `{`.
    fn block(&mut self) -> Block {
        let tok_open = self.tok_index();
        let line = self.tok(0).map(|t| t.line).unwrap_or(0);
        self.eat_punct('{');
        let mut stmts = Vec::new();
        loop {
            if self.at_eof() {
                return Block {
                    stmts,
                    line,
                    tok_open,
                    tok_close: tok_open,
                };
            }
            if self.at_punct('}') {
                let tok_close = self.tok_index();
                self.pos += 1;
                return Block {
                    stmts,
                    line,
                    tok_open,
                    tok_close,
                };
            }
            let before = self.pos;
            if let Some(stmt) = self.stmt() {
                stmts.push(stmt);
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
    }

    /// Parse one statement, or consume stray tokens and return `None`.
    fn stmt(&mut self) -> Option<Stmt> {
        if self.eat_punct(';') {
            return None;
        }
        // Statement-position attributes: remember test-ness for items.
        let mut attr_test = false;
        while self.at_punct('#') {
            let words = self.attr_words();
            if words.iter().any(|w| w == "test") && !words.iter().any(|w| w == "not") {
                attr_test = true;
            }
        }
        let t = self.tok(0)?;
        if t.is_ident("let") {
            return Some(self.let_stmt());
        }
        // Items in statement position. `unsafe` and `const` are ambiguous:
        // `unsafe {` / `const {` are expressions, `unsafe fn` / `const X`
        // are items.
        if t.kind == TokKind::Ident {
            let is_item = match t.text.as_str() {
                w if ITEM_STARTERS.contains(&w) => {
                    // `extern "C" fn` types appear in expressions only
                    // inside casts, which skip_type handles; here it is
                    // an item.
                    !(w == "extern" && !self.tok(1).is_some_and(|n| n.kind == TokKind::Str))
                }
                "pub" => true,
                "unsafe" => self.tok(1).is_some_and(|n| {
                    n.is_ident("fn")
                        || n.is_ident("impl")
                        || n.is_ident("trait")
                        || n.is_ident("extern")
                }),
                "const" => {
                    self.tok(1).is_some_and(|n| {
                        n.kind == TokKind::Ident && n.text != "fn" || n.is_ident("fn")
                    }) && !self.tok(1).is_some_and(|n| n.is_punct('{'))
                }
                _ => false,
            };
            if is_item {
                let before = self.pos;
                if let Some(mut item) = self.item(None) {
                    if attr_test {
                        if let Item::Fn(f) = &mut item {
                            f.is_test = true;
                        }
                    }
                    return Some(Stmt::Item(Box::new(item)));
                }
                if self.pos == before {
                    self.pos += 1;
                }
                return None;
            }
        }
        let expr = self.expr(true);
        let semi = self.eat_punct(';');
        Some(Stmt::Expr { expr, semi })
    }

    fn let_stmt(&mut self) -> Stmt {
        let line = self.tok(0).map(|t| t.line).unwrap_or(0);
        self.eat_ident("let");
        // Pattern up to `=` (not `==`), `;`, or `:` type annotation.
        let (underscore, name) = self.skip_pattern_named(&|p| {
            p.at_punct(';')
                || (p.at_punct('=') && !p.tok(1).is_some_and(|n| n.is_punct('=')))
                || p.at_punct(':')
        });
        if self.eat_punct(':') {
            self.skip_type();
        }
        let mut init = None;
        if self.at_punct('=') && !self.tok(1).is_some_and(|n| n.is_punct('=')) {
            self.pos += 1;
            init = Some(self.expr(true));
            // let-else.
            if self.eat_ident("else") && self.at_punct('{') {
                let blk = self.block();
                if let Some(e) = init.take() {
                    init = Some(Expr::Other(vec![e, Expr::Block(blk)]));
                }
            }
        }
        self.eat_punct(';');
        Stmt::Let {
            underscore,
            name,
            init,
            line,
        }
    }

    // -- expressions ---------------------------------------------------------

    /// Parse an expression. `allow_struct` gates `Path { … }` struct
    /// literals (off in `if`/`while`/`match`/`for` head positions).
    fn expr(&mut self, allow_struct: bool) -> Expr {
        let mut units = vec![self.unit(allow_struct)];
        let mut ops: Vec<String> = Vec::new();
        loop {
            let Some(t) = self.tok(0) else { break };
            // Range `..` / `..=`.
            if self.at_punct2('.', '.') {
                self.pos += 2;
                let mut op = String::from("..");
                if self.eat_punct('=') {
                    op.push('=');
                }
                if self.operand_follows(allow_struct) {
                    ops.push(op);
                    units.push(self.unit(allow_struct));
                }
                continue;
            }
            if t.kind == TokKind::Punct && is_binary_op_char(&t.text) {
                // Compound operators (`>=`, `==`, `<<=`, `&&`, …) arrive as
                // runs of single-char tokens. Consume the first char, then
                // any tail chars that cannot begin an operand — `&x`, `*p`,
                // `-1`, `!b`, `|c| …` prefixes stay with the next operand.
                let mut op = t.text.clone();
                self.pos += 1;
                if t.is_punct('|') {
                    // `||` logical-or: a leftover `|` would misparse as a
                    // closure head, so take both pipes here.
                    if self.eat_punct('|') {
                        op.push('|');
                    }
                }
                if t.is_punct('&') {
                    // `&&` logical-and: a leftover `&` would attach to the
                    // next operand as a reference prefix, hiding the
                    // conjunction from condition refinement. (`a & &b` is
                    // misread as `&&` — acceptable: `&` on integers and
                    // `&&` never mix in one precedence level anyway.)
                    if self.eat_punct('&') {
                        op.push('&');
                    }
                }
                while let Some(n) = self.tok(0) {
                    if n.kind == TokKind::Punct
                        && matches!(n.text.as_str(), "=" | "<" | ">" | "+" | "/" | "%" | "^")
                    {
                        op.push_str(&n.text);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.operand_follows(allow_struct) {
                    ops.push(op);
                    units.push(self.unit(allow_struct));
                } else {
                    break;
                }
                continue;
            }
            break;
        }
        if units.len() == 1 {
            units.pop().unwrap_or(Expr::Lit { int: false })
        } else {
            Expr::Bin { ops, args: units }
        }
    }

    /// Could the current token begin an operand?
    fn operand_follows(&self, allow_struct: bool) -> bool {
        let Some(t) = self.tok(0) else { return false };
        match t.kind {
            TokKind::Ident => !matches!(t.text.as_str(), "else" | "in" | "where"),
            TokKind::Num | TokKind::Str | TokKind::RawStr | TokKind::Char | TokKind::Lifetime => {
                true
            }
            TokKind::Punct => {
                matches!(
                    t.text.chars().next(),
                    Some('(' | '[' | '&' | '*' | '!' | '-' | '|')
                ) || (allow_struct && t.is_punct('{'))
            }
            _ => false,
        }
    }

    /// Parse one operand: prefix ops, a primary, postfix chain.
    fn unit(&mut self, allow_struct: bool) -> Expr {
        // Prefix operators.
        let Some(t) = self.tok(0) else {
            return Expr::Lit { int: false };
        };
        if t.is_punct('&') {
            self.pos += 1;
            self.eat_punct('&'); // `&&x`
            self.eat_ident("mut");
            let inner = self.unit(allow_struct);
            return Expr::Unary {
                op: '&',
                expr: Box::new(inner),
            };
        }
        if t.is_punct('*') {
            let _ = self.pos_of(t);
            self.pos += 1;
            let inner = self.unit(allow_struct);
            return Expr::Unary {
                op: '*',
                expr: Box::new(inner),
            };
        }
        if t.is_punct('!') || t.is_punct('-') {
            let op = if t.is_punct('!') { '!' } else { '-' };
            self.pos += 1;
            let inner = self.unit(allow_struct);
            return Expr::Unary {
                op,
                expr: Box::new(inner),
            };
        }
        if t.is_ident("move") {
            self.pos += 1;
            return self.unit(allow_struct);
        }
        if t.is_ident("box") {
            self.pos += 1;
            return self.unit(allow_struct);
        }
        // Closures.
        if t.is_punct('|') {
            self.pos += 1;
            let mut params = Vec::new();
            if !self.eat_punct('|') {
                // Parameter list to the closing `|`; types may contain
                // groups, which are consumed wholesale. Capture each
                // parameter's bound name (empty for destructuring
                // patterns) so the dataflow engine can seed worker-id
                // parameters.
                let mut name = String::new();
                let mut complex = false;
                let mut saw_colon = false;
                let mut any = false;
                while let Some(p) = self.tok(0) {
                    if p.is_punct('|') || p.is_punct(',') {
                        if any {
                            params.push(if complex { String::new() } else { name.clone() });
                        }
                        name.clear();
                        complex = false;
                        saw_colon = false;
                        any = false;
                        let done = p.is_punct('|');
                        self.pos += 1;
                        if done {
                            break;
                        }
                        continue;
                    }
                    if p.is_punct('(') {
                        self.skip_group('(', ')');
                        complex = complex || !saw_colon;
                        any = true;
                        continue;
                    }
                    if p.is_punct('[') {
                        self.skip_group('[', ']');
                        complex = complex || !saw_colon;
                        any = true;
                        continue;
                    }
                    if p.is_punct('<') {
                        self.skip_generics();
                        continue;
                    }
                    if p.is_punct(':') {
                        saw_colon = true;
                        self.pos += 1;
                        continue;
                    }
                    if !saw_colon {
                        if p.kind == TokKind::Ident {
                            match p.text.as_str() {
                                "mut" | "ref" => {}
                                _ if name.is_empty() && !complex => name = p.text.clone(),
                                _ => complex = true,
                            }
                        } else if !(p.is_punct('&') || p.kind == TokKind::Lifetime) {
                            complex = true;
                        }
                    }
                    any = true;
                    self.pos += 1;
                }
            }
            // Optional return type before a block body.
            if self.at_punct2('-', '>') {
                self.pos += 2;
                let _ = self.ret_text();
            }
            let body = self.expr(allow_struct);
            return Expr::Closure {
                params,
                body: Box::new(body),
            };
        }
        let primary = self.primary(allow_struct);
        self.postfix(primary, allow_struct)
    }

    /// Parse a primary expression.
    fn primary(&mut self, allow_struct: bool) -> Expr {
        let Some(t) = self.tok(0) else {
            return Expr::Lit { int: false };
        };
        let (line, col) = self.pos_of(t);
        match t.kind {
            TokKind::Num => {
                let int = !t.text.contains('.');
                self.pos += 1;
                Expr::Lit { int }
            }
            TokKind::Str | TokKind::RawStr | TokKind::Char => {
                self.pos += 1;
                Expr::Lit { int: false }
            }
            TokKind::Lifetime => {
                // Loop label `'x: loop { … }`.
                self.pos += 1;
                self.eat_punct(':');
                self.unit(allow_struct)
            }
            TokKind::Punct => {
                if t.is_punct('(') {
                    self.pos += 1;
                    let mut items = Vec::new();
                    loop {
                        if self.at_eof() || self.at_punct(')') {
                            self.eat_punct(')');
                            break;
                        }
                        items.push(self.expr(true));
                        if !self.eat_punct(',') && !self.at_punct(')') {
                            // Recovery: unknown separator.
                            if self.tok(0).is_some() {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    return Expr::Other(items);
                }
                if t.is_punct('[') {
                    self.pos += 1;
                    let mut items = Vec::new();
                    loop {
                        if self.at_eof() || self.at_punct(']') {
                            self.eat_punct(']');
                            break;
                        }
                        items.push(self.expr(true));
                        if !self.eat_punct(',') && !self.eat_punct(';') && !self.at_punct(']') {
                            if self.tok(0).is_some() {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    return Expr::Other(items);
                }
                if t.is_punct('{') {
                    return Expr::Block(self.block());
                }
                // Unknown punctuation: consume so progress is guaranteed.
                self.pos += 1;
                Expr::Lit { int: false }
            }
            TokKind::Ident => match t.text.as_str() {
                "if" => self.if_expr(),
                "match" => self.match_expr(),
                "loop" => {
                    self.pos += 1;
                    let body = if self.at_punct('{') {
                        self.block()
                    } else {
                        self.empty_block()
                    };
                    Expr::Loop {
                        head: Vec::new(),
                        body,
                    }
                }
                "while" => {
                    self.pos += 1;
                    if self.eat_ident("let") {
                        self.skip_pattern(&|p| {
                            p.at_punct('=') && !p.tok(1).is_some_and(|n| n.is_punct('='))
                        });
                        self.eat_punct('=');
                    }
                    let cond = self.expr(false);
                    let body = if self.at_punct('{') {
                        self.block()
                    } else {
                        self.empty_block()
                    };
                    Expr::Loop {
                        head: vec![cond],
                        body,
                    }
                }
                "for" => {
                    self.pos += 1;
                    self.skip_pattern(&|p| p.at_ident("in"));
                    self.eat_ident("in");
                    let iter = self.expr(false);
                    let body = if self.at_punct('{') {
                        self.block()
                    } else {
                        self.empty_block()
                    };
                    Expr::Loop {
                        head: vec![iter],
                        body,
                    }
                }
                "unsafe" => {
                    self.pos += 1;
                    if self.at_punct('{') {
                        let block = self.block();
                        Expr::Unsafe { block, line, col }
                    } else {
                        Expr::Lit { int: false }
                    }
                }
                "return" | "break" | "continue" | "yield" => {
                    let kind = match t.text.as_str() {
                        "return" => Some(JumpKind::Return),
                        "break" => Some(JumpKind::Break),
                        "continue" => Some(JumpKind::Continue),
                        _ => None,
                    };
                    self.pos += 1;
                    if self.tok(0).is_some_and(|n| n.kind == TokKind::Lifetime) {
                        self.pos += 1; // `break 'label`
                    }
                    let value = if self.operand_follows(allow_struct) {
                        Some(self.expr(allow_struct))
                    } else {
                        None
                    };
                    match kind {
                        Some(kind) => Expr::Jump {
                            kind,
                            value: value.map(Box::new),
                            line,
                        },
                        None => Expr::Other(value.into_iter().collect()),
                    }
                }
                "const" => {
                    // `const { … }` block.
                    self.pos += 1;
                    if self.at_punct('{') {
                        Expr::Block(self.block())
                    } else {
                        Expr::Lit { int: false }
                    }
                }
                _ => self.path_expr(allow_struct),
            },
            _ => {
                self.pos += 1;
                Expr::Lit { int: false }
            }
        }
    }

    fn empty_block(&self) -> Block {
        Block {
            stmts: Vec::new(),
            line: 0,
            tok_open: self.toks.len(),
            tok_close: self.toks.len(),
        }
    }

    fn if_expr(&mut self) -> Expr {
        self.eat_ident("if");
        if self.eat_ident("let") {
            self.skip_pattern(&|p| p.at_punct('=') && !p.tok(1).is_some_and(|n| n.is_punct('=')));
            self.eat_punct('=');
        }
        let cond = self.expr(false);
        let then = if self.at_punct('{') {
            self.block()
        } else {
            self.empty_block()
        };
        let els = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.if_expr()))
            } else if self.at_punct('{') {
                Some(Box::new(Expr::Block(self.block())))
            } else {
                None
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            els,
        }
    }

    fn match_expr(&mut self) -> Expr {
        self.eat_ident("match");
        let scrutinee = self.expr(false);
        let mut children = vec![scrutinee];
        if !self.at_punct('{') {
            return Expr::Match(children);
        }
        self.pos += 1;
        loop {
            if self.at_eof() || self.at_punct('}') {
                self.eat_punct('}');
                break;
            }
            let before = self.pos;
            // Pattern to `=>` or a guard `if`.
            self.skip_pattern(&|p| {
                (p.at_punct('=') && p.tok(1).is_some_and(|n| n.is_punct('>'))) || p.at_ident("if")
            });
            if self.eat_ident("if") {
                children.push(self.expr(false));
            }
            if self.at_punct2('=', '>') {
                self.pos += 2;
                children.push(self.expr(true));
                self.eat_punct(',');
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
        Expr::Match(children)
    }

    /// A path primary: `a::b::<T>::c`, then macro / call / struct literal.
    fn path_expr(&mut self, allow_struct: bool) -> Expr {
        let mut path = String::new();
        let mut last_pos = (0u32, 0u32);
        loop {
            let Some(t) = self.tok(0) else { break };
            if t.kind != TokKind::Ident {
                break;
            }
            if !path.is_empty() {
                path.push_str("::");
            }
            path.push_str(&t.text);
            last_pos = self.pos_of(t);
            self.pos += 1;
            if self.at_punct2(':', ':') {
                self.pos += 2;
                if self.at_punct('<') {
                    self.skip_generics();
                    if self.at_punct2(':', ':') {
                        self.pos += 2;
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        let (line, col) = last_pos;
        // Macro invocation.
        if self.at_punct('!')
            && self
                .tok(1)
                .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
        {
            self.pos += 1;
            let name = path.rsplit("::").next().unwrap_or(&path).to_string();
            let args = self.macro_args();
            return Expr::Macro {
                name,
                args,
                line,
                col,
            };
        }
        // Struct literal.
        if allow_struct && self.at_punct('{') && starts_with_uppercase_segment(&path) {
            self.pos += 1;
            let mut children = Vec::new();
            loop {
                if self.at_eof() || self.at_punct('}') {
                    self.eat_punct('}');
                    break;
                }
                let before = self.pos;
                // `field: expr` / `field` / `..base`.
                if self.at_punct2('.', '.') {
                    self.pos += 2;
                    children.push(self.expr(true));
                } else {
                    self.ident_text();
                    if self.eat_punct(':') {
                        children.push(self.expr(true));
                    }
                }
                self.eat_punct(',');
                if self.pos == before {
                    self.pos += 1;
                }
            }
            return Expr::Other(children);
        }
        Expr::Path { path }
    }

    /// Macro delimiter group → best-effort expressions.
    fn macro_args(&mut self) -> Vec<Expr> {
        let (open, close) = match self.tok(0) {
            Some(t) if t.is_punct('(') => ('(', ')'),
            Some(t) if t.is_punct('[') => ('[', ']'),
            Some(t) if t.is_punct('{') => ('{', '}'),
            _ => return Vec::new(),
        };
        // Find the group's extent, then re-parse its interior.
        let start = self.pos;
        self.skip_group(open, close);
        let end = self.pos; // one past the closer
        let inner_start = start + 1;
        let inner_end = end.saturating_sub(1);
        let mut args = Vec::new();
        let saved = self.pos;
        self.pos = inner_start;
        while self.pos < inner_end {
            let before = self.pos;
            let e = self.expr(true);
            args.push(e);
            if self.pos >= inner_end {
                break;
            }
            self.eat_punct(',');
            self.eat_punct(';');
            self.eat_punct('=');
            if self.pos == before {
                self.pos += 1;
            }
        }
        self.pos = saved;
        // Tokens past the closer may have been consumed by a confused
        // expr parse inside the group; the saved position is authoritative.
        args
    }

    /// Postfix chain: `.m(…)`, `.field`, `(…)`, `[…]`, `?`, `as T`.
    fn postfix(&mut self, mut expr: Expr, allow_struct: bool) -> Expr {
        loop {
            let Some(t) = self.tok(0) else { break };
            if t.is_punct('.') && !self.at_punct2('.', '.') {
                let Some(next) = self.tok(1) else { break };
                if next.kind == TokKind::Ident {
                    let name = next.text.clone();
                    let (line, col) = self.pos_of(next);
                    self.pos += 2;
                    // Turbofish on method: `.collect::<Vec<_>>()`.
                    if self.at_punct2(':', ':') {
                        self.pos += 2;
                        self.skip_generics();
                    }
                    if self.at_punct('(') {
                        let args = self.call_args();
                        expr = Expr::Method {
                            recv: Box::new(expr),
                            name,
                            args,
                            line,
                            col,
                        };
                    } else {
                        expr = Expr::Field {
                            base: Box::new(expr),
                            name,
                        };
                    }
                    continue;
                }
                if next.kind == TokKind::Num {
                    // Tuple field `pair.0` (possibly `.0.1` lexed as `0.1`).
                    let name = next.text.clone();
                    self.pos += 2;
                    expr = Expr::Field {
                        base: Box::new(expr),
                        name,
                    };
                    continue;
                }
                break;
            }
            if t.is_punct('(') {
                let args = self.call_args();
                let (line, col) = self.pos_of(t);
                expr = match expr {
                    Expr::Path { path } => Expr::Call {
                        callee: path,
                        args,
                        line,
                        col,
                    },
                    other => {
                        let mut children = vec![other];
                        children.extend(args);
                        Expr::Other(children)
                    }
                };
                continue;
            }
            if t.is_punct('[') {
                let (line, col) = self.pos_of(t);
                self.pos += 1;
                let index = self.expr(true);
                self.eat_punct(']');
                let literal = matches!(index, Expr::Lit { int: true });
                expr = Expr::Index {
                    base: Box::new(expr),
                    index: Box::new(index),
                    literal,
                    line,
                    col,
                };
                continue;
            }
            if t.is_punct('?') {
                // `expr?` propagates the error — wrap so discard-shaped
                // rules (R012) do not mistake `f()?;` for a swallowed
                // Result; the call stays visible to tree walks.
                self.pos += 1;
                expr = Expr::Other(vec![expr]);
                continue;
            }
            if t.is_ident("as") {
                self.pos += 1;
                self.skip_type();
                continue;
            }
            let _ = allow_struct;
            break;
        }
        expr
    }

    /// `( … )` call arguments; cursor at `(`.
    fn call_args(&mut self) -> Vec<Expr> {
        self.eat_punct('(');
        let mut args = Vec::new();
        loop {
            if self.at_eof() || self.at_punct(')') {
                self.eat_punct(')');
                break;
            }
            let before = self.pos;
            args.push(self.expr(true));
            self.eat_punct(',');
            if self.pos == before {
                self.pos += 1;
            }
        }
        args
    }
}

/// Single-character tokens that can appear inside a binary operator.
fn is_binary_op_char(text: &str) -> bool {
    matches!(
        text,
        "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|" | "<" | ">" | "="
    ) || text == "!"
}

/// Struct-literal heuristic: the path's last segment starts uppercase
/// (types do; locals and fns do not), so `match x { … }` never parses
/// `x {` as a literal even outside no-struct positions.
fn starts_with_uppercase_segment(path: &str) -> bool {
    path.rsplit("::")
        .next()
        .and_then(|s| s.chars().next())
        .is_some_and(|c| c.is_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> File {
        parse(&lex(src))
    }

    fn fns(file: &File) -> Vec<(String, bool, String)> {
        let mut out = Vec::new();
        ast::for_each_fn(file, &mut |f, is_test| {
            out.push((f.qual.clone(), is_test, f.ret.clone()));
        });
        out
    }

    #[test]
    fn items_and_qualification() {
        let file = parse_src(
            "pub fn free() {}\n\
             impl Foo { fn m(&self) -> u32 { 1 } }\n\
             impl Display for Bar { fn fmt(&self) -> Result<(), Error> { Ok(()) } }\n\
             trait T { fn req(&self); fn def(&self) {} }\n\
             mod inner { pub fn nested() {} }\n",
        );
        let got = fns(&file);
        let names: Vec<&str> = got.iter().map(|(q, _, _)| q.as_str()).collect();
        assert_eq!(
            names,
            vec!["free", "Foo::m", "Bar::fmt", "T::req", "T::def", "nested"]
        );
        assert_eq!(got[2].2, "Result<(),Error>");
    }

    #[test]
    fn cfg_test_inheritance() {
        let file = parse_src(
            "fn prod() {}\n\
             #[cfg(test)] mod tests { fn helper() {} #[test] fn case() {} }\n\
             #[cfg(not(test))] fn also_prod() {}\n",
        );
        let got = fns(&file);
        assert_eq!(
            got.iter()
                .map(|(q, t, _)| (q.as_str(), *t))
                .collect::<Vec<_>>(),
            vec![
                ("prod", false),
                ("helper", true),
                ("case", true),
                ("also_prod", false)
            ]
        );
    }

    #[test]
    fn calls_methods_macros_are_found() {
        let file = parse_src(
            "fn f(v: &[u8]) { g(1); v.iter().map(|x| h(x)); assert!(k(v)); Type::assoc(2); }\n",
        );
        let mut calls = Vec::new();
        ast::for_each_fn(&file, &mut |f, _| {
            if let Some(b) = &f.body {
                b.walk_exprs(&mut |e| match e {
                    Expr::Call { callee, .. } => calls.push(callee.clone()),
                    Expr::Method { name, .. } => calls.push(format!(".{name}")),
                    Expr::Macro { name, .. } => calls.push(format!("{name}!")),
                    _ => {}
                });
            }
        });
        for want in ["g", ".iter", ".map", "h", "assert!", "k", "Type::assoc"] {
            assert!(
                calls.iter().any(|c| c == want),
                "missing {want} in {calls:?}"
            );
        }
    }

    #[test]
    fn unsafe_blocks_and_let_underscore() {
        let src = "fn f(p: *const u8) { let _ = g(); unsafe { *p; } let _x = h(); }\n";
        let file = parse_src(src);
        let mut unders = 0;
        let mut unsafes = 0;
        ast::for_each_fn(&file, &mut |f, _| {
            if let Some(b) = &f.body {
                for s in &b.stmts {
                    if let ast::Stmt::Let {
                        underscore: true, ..
                    } = s
                    {
                        unders += 1;
                    }
                }
                b.walk_exprs(&mut |e| {
                    if let Expr::Unsafe { .. } = e {
                        unsafes += 1;
                    }
                });
            }
        });
        assert_eq!(unders, 1, "only the wildcard pattern counts");
        assert_eq!(unsafes, 1);
    }

    #[test]
    fn literal_vs_computed_index() {
        let file = parse_src("fn f(v: &[u8], i: usize) { v[0]; v[i]; v[i + 1]; }\n");
        let mut literals = 0;
        let mut computed = 0;
        ast::for_each_fn(&file, &mut |f, _| {
            if let Some(b) = &f.body {
                b.walk_exprs(&mut |e| {
                    if let Expr::Index { literal, .. } = e {
                        if *literal {
                            literals += 1;
                        } else {
                            computed += 1;
                        }
                    }
                });
            }
        });
        assert_eq!((literals, computed), (1, 2));
    }

    #[test]
    fn match_and_struct_literals_do_not_confuse_blocks() {
        let file = parse_src(
            "fn f(x: E) -> u32 { match x { E::A => g(), E::B if h() => 2, _ => 3 } }\n\
             fn mk() -> P { P { a: q(), b: 2 } }\n",
        );
        let mut calls = Vec::new();
        ast::for_each_fn(&file, &mut |f, _| {
            if let Some(b) = &f.body {
                b.walk_exprs(&mut |e| {
                    if let Expr::Call { callee, .. } = e {
                        calls.push(callee.clone());
                    }
                });
            }
        });
        assert_eq!(calls, vec!["g", "h", "q"]);
    }

    #[test]
    fn loops_and_closures_nest() {
        let file = parse_src(
            "fn f(n: usize) { for i in 0..n { go(i); } while ok() { step(); } \
             let c = |a: usize| inner(a); loop { break; } }\n",
        );
        let mut calls = Vec::new();
        ast::for_each_fn(&file, &mut |f, _| {
            if let Some(b) = &f.body {
                b.walk_exprs(&mut |e| {
                    if let Expr::Call { callee, .. } = e {
                        calls.push(callee.clone());
                    }
                });
            }
        });
        assert_eq!(calls, vec!["go", "ok", "step", "inner"]);
    }

    #[test]
    fn generics_where_clauses_and_lifetimes_survive() {
        let file = parse_src(
            "pub fn merge<T, F>(a: &[T], f: &mut F) -> Vec<T> where F: FnMut(&T) -> bool { \
             f(&a[0]); Vec::new() }\n\
             impl<'a, T: Ord> W<'a, T> { fn go(&self) -> Option<&'a T> { None } }\n",
        );
        let got = fns(&file);
        assert_eq!(got[0].0, "merge");
        assert_eq!(got[0].2, "Vec<T>");
        assert_eq!(got[1].0, "W::go");
        assert_eq!(got[1].2, "Option<&'aT>");
    }

    #[test]
    fn parser_terminates_on_garbage() {
        // Must not hang or panic on arbitrary input.
        let file = parse_src("fn f( {{{ ]]] => => :: << }} @@ $$ fn fn");
        let _ = fns(&file);
        let file = parse_src("impl impl impl { fn }");
        let _ = fns(&file);
    }
}

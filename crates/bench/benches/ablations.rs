//! Ablation benches for the design choices DESIGN.md calls out:
//! VARCHAR prefix length, radix variant by key width, merge structure,
//! row alignment, and the §IX algorithm chooser.

use rowsort_algos::kway::kway_merge_rows;
use rowsort_algos::mergesort::merge_rows_into;
use rowsort_algos::pdqsort::pdqsort_rows;
use rowsort_algos::radix::{lsd_radix_sort_rows, msd_radix_sort_rows};
use rowsort_algos::rows::RowsMut;
use rowsort_core::chooser::{duckdb_rule, heuristic_rule, ChosenAlgo, SortStats};
use rowsort_core::keys::KeyBlock;
use rowsort_datagen::tpcds;
use rowsort_row::{scatter, RowAlignment, RowLayout};
use rowsort_testkit::bench::{BenchmarkId, Harness};
use rowsort_testkit::{bench_group, bench_main};
use rowsort_vector::{DataChunk, OrderBy};
use std::sync::Arc;
use std::time::Duration;

fn pseudo_random_bytes(n: usize, width: usize, seed: u64, distinct: u64) -> Vec<u8> {
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(n * width);
    for _ in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let v = (state >> 16) % distinct.max(1);
        let mut row = vec![0u8; width];
        let bytes = v.to_be_bytes();
        let copy = width.min(8);
        row[..copy].copy_from_slice(&bytes[8 - copy..]);
        out.extend_from_slice(&row);
    }
    out
}

/// VARCHAR prefix length: short prefixes create ties (resolved against the
/// full strings); long prefixes inflate key width.
fn ablation_prefix(c: &mut Harness) {
    let mut group = c.benchmark_group("ablation_prefix");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let cust = tpcds::customer(100_000, 5);
    let names_idx = cust.column_index("c_last_name").unwrap();
    let col = cust.data.column(names_idx).clone();
    let chunk = DataChunk::from_columns(vec![col]).unwrap();
    let strings: Vec<String> = (0..chunk.len())
        .map(|i| match chunk.column(0).get(i) {
            rowsort_vector::Value::Varchar(s) => s,
            _ => String::new(),
        })
        .collect();
    for prefix in [2usize, 4, 8, 12] {
        group.bench_with_input(
            BenchmarkId::new("keyblock_sort", prefix),
            &prefix,
            |b, &prefix| {
                b.iter_batched(
                    || {
                        let order = OrderBy::ascending(1);
                        let mut kb = KeyBlock::new(&chunk.types(), &order, |_| prefix);
                        kb.append_chunk(&chunk);
                        kb
                    },
                    |mut kb| kb.sort(|a, b| strings[a as usize].cmp(&strings[b as usize])),
                    rowsort_testkit::bench::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

/// LSD vs MSD vs pdqsort(memcmp) across key widths — the basis of the
/// "LSD for ≤4 bytes, else MSD" rule.
fn ablation_radix(c: &mut Harness) {
    let mut group = c.benchmark_group("ablation_radix");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let n = 1 << 16;
    for width in [4usize, 8, 16, 32] {
        let data = pseudo_random_bytes(n, width, 77, 1 << 20);
        group.bench_with_input(BenchmarkId::new("lsd", width), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |mut d| lsd_radix_sort_rows(&mut d, width, 0, width),
                rowsort_testkit::bench::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("msd", width), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |mut d| msd_radix_sort_rows(&mut d, width, 0, width),
                rowsort_testkit::bench::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("pdq_memcmp", width), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    let mut rows = RowsMut::new(&mut d, width);
                    pdqsort_rows(&mut rows, &mut |a: &[u8], b: &[u8]| a < b);
                },
                rowsort_testkit::bench::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Software write-combining scatter on vs off, LSD and MSD, at the
/// pipeline's own row shapes. On current hardware the 256-bucket fan-out
/// already fits L2, so WC's staging copy loses — which is why dispatch
/// defaults it off; this group is the receipt.
fn ablation_wc(c: &mut Harness) {
    use rowsort_algos::radix::{
        lsd_radix_sort_rows_opts, msd_radix_sort_rows_opts, radix_scratch_len,
    };
    let mut group = c.benchmark_group("ablation_wc");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let n = 1 << 16;
    // (label, row width, key bytes): the pipeline's u32-key run shape and
    // a wider composite-key shape.
    for (label, width, key_len) in [("w9k5", 9usize, 5usize), ("w24k13", 24, 13)] {
        let data = pseudo_random_bytes(n, width, 91, 1 << 20);
        let mut scratch = vec![0u8; radix_scratch_len(data.len(), width)];
        for wc in [false, true] {
            let tag = if wc { "wc_on" } else { "wc_off" };
            group.bench_with_input(
                BenchmarkId::new(format!("lsd_{tag}"), label),
                &data,
                |b, data| {
                    b.iter_batched(
                        || data.clone(),
                        |mut d| {
                            lsd_radix_sort_rows_opts(&mut d, width, 0, key_len, &mut scratch, wc)
                        },
                        rowsort_testkit::bench::BatchSize::LargeInput,
                    )
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("msd_{tag}"), label),
                &data,
                |b, data| {
                    b.iter_batched(
                        || data.clone(),
                        |mut d| {
                            msd_radix_sort_rows_opts(&mut d, width, 0, key_len, &mut scratch, wc)
                        },
                        rowsort_testkit::bench::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

/// Cascaded 2-way merge vs k-way loser tree over the same 8 sorted runs.
fn ablation_merge(c: &mut Harness) {
    let mut group = c.benchmark_group("ablation_merge");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let width = 8usize;
    let runs: Vec<Vec<u8>> = (0..8u64)
        .map(|i| {
            let mut d = pseudo_random_bytes(1 << 14, width, i + 1, 1 << 30);
            let mut rows = RowsMut::new(&mut d, width);
            pdqsort_rows(&mut rows, &mut |a: &[u8], b: &[u8]| a < b);
            d
        })
        .collect();
    group.bench_function("kway_loser_tree", |b| {
        b.iter(|| {
            let refs: Vec<&[u8]> = runs.iter().map(|r| r.as_slice()).collect();
            kway_merge_rows(&refs, width, &mut |a: &[u8], b: &[u8]| a < b)
        })
    });
    group.bench_function("cascade_2way", |b| {
        b.iter(|| {
            let mut level: Vec<Vec<u8>> = runs.clone();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len() / 2);
                let mut it = level.into_iter();
                while let (Some(a), b) = (it.next(), it.next()) {
                    match b {
                        Some(b) => {
                            let mut out = vec![0u8; a.len() + b.len()];
                            let mut rows = RowsMut::new(&mut out, width);
                            merge_rows_into(&a, &b, &mut rows, &mut |x: &[u8], y: &[u8]| x < y);
                            next.push(out);
                        }
                        None => next.push(a),
                    }
                }
                level = next;
            }
            level.pop().unwrap()
        })
    });
    group.finish();
}

/// 8-byte-aligned vs packed rows: scatter + row sort.
fn ablation_align(c: &mut Harness) {
    let mut group = c.benchmark_group("ablation_align");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let cs = tpcds::catalog_sales(100_000, 10.0, 9);
    let chunk = cs.data.clone();
    for (label, alignment) in [
        ("aligned8", RowAlignment::Aligned8),
        ("packed", RowAlignment::Packed),
    ] {
        let layout = Arc::new(RowLayout::with_alignment(&chunk.types(), alignment));
        group.bench_function(BenchmarkId::new("scatter_sort", label), |b| {
            b.iter(|| {
                let block = scatter(&chunk, Arc::clone(&layout));
                let order: Vec<u32> = (0..block.len() as u32).rev().collect();
                block.reorder(&order)
            })
        });
    }
    group.finish();
}

/// §IX chooser: on the regime where the heuristic and the shipped rule
/// disagree (small runs, wide keys), measure both choices.
fn ablation_chooser(c: &mut Harness) {
    let mut group = c.benchmark_group("ablation_chooser");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let n = 2_000usize;
    let width = 32usize;
    let data = pseudo_random_bytes(n, width, 5, 1 << 30);
    let stats = SortStats {
        rows: n,
        key_bytes: width,
        has_varlen: false,
        distinct_estimate: None,
    };
    assert_eq!(duckdb_rule(&stats), ChosenAlgo::MsdRadix);
    assert_eq!(heuristic_rule(&stats), ChosenAlgo::Pdq);
    group.bench_function("duckdb_rule(msd_radix)", |b| {
        b.iter_batched(
            || data.clone(),
            |mut d| msd_radix_sort_rows(&mut d, width, 0, width),
            rowsort_testkit::bench::BatchSize::LargeInput,
        )
    });
    group.bench_function("heuristic(pdq)", |b| {
        b.iter_batched(
            || data.clone(),
            |mut d| {
                let mut rows = RowsMut::new(&mut d, width);
                pdqsort_rows(&mut rows, &mut |a: &[u8], b: &[u8]| a < b);
            },
            rowsort_testkit::bench::BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Run-size sweep for the full pipeline: smaller thread-local runs sort
/// faster individually (cache-resident) but leave more merge work — the
/// §II trade-off in practice.
fn ablation_runsize(c: &mut Harness) {
    use rowsort_core::pipeline::{SortOptions, SortPipeline};
    use rowsort_datagen::{key_chunk, KeyDistribution};
    let mut group = c.benchmark_group("ablation_runsize");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let chunk = key_chunk(KeyDistribution::Correlated(0.5), 1 << 18, 2, 21);
    for run_rows in [1usize << 12, 1 << 14, 1 << 16, 1 << 18] {
        let pipeline = SortPipeline::new(
            chunk.types(),
            OrderBy::ascending(2),
            SortOptions::single_with_run_rows(run_rows),
        );
        group.bench_function(BenchmarkId::new("pipeline", run_rows), |b| {
            b.iter(|| pipeline.sort(&chunk))
        });
    }
    group.finish();
}

bench_group!(
    benches,
    ablation_prefix,
    ablation_radix,
    ablation_wc,
    ablation_merge,
    ablation_align,
    ablation_chooser,
    ablation_runsize
);
bench_main!(benches);

//! A small CPU simulator: set-associative L1-D cache plus a branch
//! predictor, with instrumented sorting kernels driven through it.
//!
//! The paper measures `L1-dcache-load-misses` and `branch-misses` with
//! Linux `perf` on a bare-metal Xeon (its Tables II/III and Figure 10).
//! Hardware counters are unavailable in a container — and absolute counts
//! are machine-specific anyway — so this crate reproduces the *relative*
//! behaviour with a simulation:
//!
//! * [`CacheSim`] — set-associative, LRU, write-allocate L1-D model
//!   (default 32 KiB / 64-byte lines / 8-way, the paper's Xeon L1),
//! * [`BranchPredictor`] — gshare-style 2-bit saturating-counter predictor,
//! * [`SimCpu`] — both together behind read/write/branch hooks, with a
//!   virtual address allocator ([`SimCpu::alloc`]) to lay out arrays,
//! * [`trace`] — instrumented quicksort / subsort / radix kernels whose
//!   every data access and data-dependent branch goes through the hooks.
//!
//! Only *data-dependent* branches (comparison outcomes) are traced; loop
//! control predicts near-perfectly on real hardware and would only add a
//! constant, pattern-independent offset to every experiment.

pub mod branch;
pub mod cache;
pub mod cpu;
pub mod trace;

pub use branch::BranchPredictor;
pub use cache::{CacheConfig, CacheSim};
pub use cpu::{Counters, SimCpu};

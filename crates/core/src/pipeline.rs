//! DuckDB's full parallel sorting pipeline (paper Figure 11).
//!
//! ```text
//! vectors ──► 8-byte-aligned payload rows + normalized keys (per worker)
//!         ──► thread-local radix sort / pdqsort  ⇒ sorted runs
//!         ──► cascaded 2-way merge, Merge-Path-partitioned across threads
//!         ──► convert the single remaining run back to vectors
//! ```
//!
//! Run generation dominates the comparison count (§II: with k runs of n/k
//! rows, `n·log(n) − n·log(k)` of the `n·log(n)` comparisons happen during
//! run generation), so each worker sorts its own runs locally; the merge
//! phase keeps every thread busy by splitting each 2-way merge along
//! Merge Path diagonals, and (with [`SortOptions::ovc`], the default)
//! carries offset-value codes so most merge comparisons resolve on one
//! `u64` compare instead of a whole-key `memcmp` (DESIGN.md §10).
//!
//! In steady state the pipeline is **allocation-free and
//! thread-spawn-free** (DESIGN.md §6): every transient buffer — key runs,
//! payload blocks, the radix scratch, merge outputs — comes from a
//! [`BufferPool`] that survives across runs, merge rounds, and repeated
//! [`SortPipeline::sort`] calls, and phases execute on a persistent
//! [`WorkerPool`] spawned once per pipeline. Each 2-way merge fuses pick
//! generation with key/payload materialization: Merge Path partitions the
//! output, and every task writes keys and rows directly into its disjoint
//! output range — there is no intermediate `(block, row)` pick pass.
//!
//! Output is deterministic: runs land in morsel-indexed slots, the cascade
//! pairs them in a fixed order (any odd run carries over last), and Merge
//! Path partitioning is exact — so the result, including the order within
//! ties, is bit-identical for any thread count.

use crate::comparator::FusedRowComparator;
use crate::keys::{word, KeyBlock, KeySortAlgo};
use crate::metrics::{emit_trace, Counter, CounterRegistry, Metrics, Phase, SortProfile};
use crate::pool::BufferPool;
use crate::workers::{SendPtr, WorkerPool};
use rowsort_algos::kway::{OvcLoserTree, OvcMatch};
use rowsort_algos::merge_path::merge_path_partition_by;
use rowsort_algos::radix::radix_scratch_len;
use rowsort_row::{RowBlock, RowLayout};
use rowsort_vector::{DataChunk, LogicalType, OrderBy, Vector};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Worker threads to use when [`SortOptions`] does not pin a count: the
/// `ROWSORT_THREADS` environment variable if set to an integer
/// (`ROWSORT_THREADS=0` clamps to 1 rather than panicking downstream),
/// otherwise [`std::thread::available_parallelism`] — so the engine's
/// ORDER BY is parallel out of the box instead of silently single-threaded.
pub fn default_threads() -> usize {
    if let Some(n) = rowsort_testkit::env::env_count("ROWSORT_THREADS") {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Whether merges use offset-value coding when [`SortOptions`] does not
/// pin it: on unless the `ROWSORT_OVC` environment variable disables it
/// (any of `0`/`false`/`off`/`no`, trimmed and case-insensitive — the
/// shared [`rowsort_testkit::env`] convention) — the escape hatch for
/// A/B runs and for ruling OVC out when debugging a merge (DESIGN.md
/// §10). Unrecognized spellings keep the default rather than silently
/// flipping the knob.
pub fn default_ovc() -> bool {
    rowsort_testkit::env::env_flag("ROWSORT_OVC", true)
}

/// Tuning knobs for the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct SortOptions {
    /// Worker threads for run generation and merging.
    pub threads: usize,
    /// Rows per thread-local sorted run (DuckDB sorts once a thread's
    /// collected data reaches a threshold; 128 Ki rows here).
    pub run_rows: usize,
    /// Carry offset-value codes through the merge cascade so most merge
    /// comparisons resolve on one `u64` compare (DESIGN.md §10). Output
    /// is bit-identical either way; this only changes how comparisons
    /// are computed.
    pub ovc: bool,
}

impl Default for SortOptions {
    fn default() -> Self {
        SortOptions {
            threads: default_threads(),
            run_rows: 1 << 17,
            ovc: default_ovc(),
        }
    }
}

impl SortOptions {
    /// Single-threaded with a custom run size (used by tests/benches).
    pub fn single_with_run_rows(run_rows: usize) -> SortOptions {
        SortOptions {
            threads: 1,
            run_rows,
            ..SortOptions::default()
        }
    }
}

/// One sorted run: normalized keys (stride = `key_width`, row ids
/// stripped) aligned 1:1 with already-reordered payload rows.
struct SortedRun {
    keys: Vec<u8>,
    /// Bytes per key entry, carried from the [`KeyBlock`] layout that
    /// produced the run (every run of a sort shares it).
    key_width: usize,
    /// Per-row offset-value codes (8 LE bytes per row): row 0 relative
    /// to −∞, row `i` relative to row `i − 1`. Empty when OVC is off or
    /// keys are zero-width (DESIGN.md §10.2).
    ovc: Vec<u8>,
    payload: RowBlock,
}

impl SortedRun {
    fn len(&self) -> usize {
        self.payload.len()
    }
}

/// One 2-way merge of a round, with raw output bases so Merge Path tasks
/// on several workers can each fill their disjoint output range.
struct MergeJob {
    /// Indices of the input runs within the current round.
    a: usize,
    b: usize,
    out_keys: SendPtr<u8>,
    out_rows: SendPtr<u8>,
    /// Output OVC column base (dangling when OVC is off).
    out_ovc: SendPtr<u8>,
    total: usize,
    /// Added to the heap offsets of rows taken from run `b` (the output
    /// heap is `a.heap ++ b.heap`).
    heap_shift: u32,
}

/// Merge state shared by every task of a cascade: key width, row width,
/// and tie/OVC configuration are properties of the *sort*, so they are
/// derived once per [`SortPipeline::merge_runs`] instead of being
/// re-computed inside every Merge Path task's comparison setup.
#[derive(Clone, Copy)]
struct MergeCtx {
    /// Bytes per normalized key (identical across all runs of a sort).
    kw: usize,
    /// Bytes per payload row.
    width: usize,
    /// Truncated VARCHAR prefixes can tie: byte-equal keys still need
    /// the full-tuple comparator.
    tie_possible: bool,
    /// This cascade carries offset-value codes.
    use_ovc: bool,
    /// Write the merged output's code column. True on every round whose
    /// output feeds another merge; the final round's codes have no
    /// reader, so it skips the column entirely (no buffer, no stores).
    emit_codes: bool,
    /// Words per key for OVC (0 when `use_ovc` is false).
    arity: usize,
}

/// Reusable per-sort working state, retained inside the pipeline so a
/// steady-state sort allocates nothing.
#[derive(Default)]
struct Scratch {
    /// Per-column VARCHAR length statistics of the current input.
    stats: Vec<usize>,
    /// Statistics the pooled key blocks were planned for; when an input's
    /// stats differ, the cached blocks are discarded (their normalized-key
    /// layout would no longer match).
    key_stats: Vec<usize>,
    /// Morsel-indexed run slots: worker `m` writes run `m` here, so run
    /// order (and thus merge pairing) is schedule-independent.
    run_slots: Vec<Mutex<Option<SortedRun>>>,
    /// Current merge round, in deterministic order.
    runs: Vec<SortedRun>,
    next_round: Vec<SortedRun>,
    jobs: Vec<MergeJob>,
    /// Coded k-way merge state (single-threaded OVC sorts, DESIGN.md
    /// §10.2): the loser tree plus per-run cursor/heap-base scratch, all
    /// reused so the steady state allocates nothing.
    kway_tree: Option<OvcLoserTree>,
    kway_idx: Vec<std::cell::Cell<usize>>,
    kway_heap_base: Vec<u32>,
    /// Pooled key blocks (kept whole to also reuse their layout planning).
    key_blocks: Mutex<Vec<KeyBlock>>,
}

/// Copy a small runtime-length slice with a pair of overlapping
/// fixed-width loads/stores instead of a `memcpy` call — merge loops copy
/// one key (~5 bytes) and one row (~8–24 bytes) per output row, where the
/// call overhead of a runtime-length `memcpy` dominates the copy itself.
#[inline]
fn copy_small(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = src.len();
    if n >= 16 && n <= 32 {
        let a = u128::from_ne_bytes(word::<16>(src, 0));
        let b = u128::from_ne_bytes(word::<16>(src, n - 16));
        dst[..16].copy_from_slice(&a.to_ne_bytes());
        dst[n - 16..].copy_from_slice(&b.to_ne_bytes());
    } else if n >= 8 && n < 16 {
        let a = u64::from_ne_bytes(word::<8>(src, 0));
        let b = u64::from_ne_bytes(word::<8>(src, n - 8));
        dst[..8].copy_from_slice(&a.to_ne_bytes());
        dst[n - 8..].copy_from_slice(&b.to_ne_bytes());
    } else if n >= 4 && n < 8 {
        let a = u32::from_ne_bytes(word::<4>(src, 0));
        let b = u32::from_ne_bytes(word::<4>(src, n - 4));
        dst[..4].copy_from_slice(&a.to_ne_bytes());
        dst[n - 4..].copy_from_slice(&b.to_ne_bytes());
    } else {
        dst.copy_from_slice(src);
    }
}

/// Lexicographically compare two equal-length byte-comparable keys with
/// big-endian word loads instead of a `memcmp` call. Overlapping windows
/// are sound here: when the leading window ties, the overlapped bytes are
/// known equal, so comparing the trailing window compares the remainder.
#[inline]
fn cmp_keys(a: &[u8], b: &[u8]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    if n >= 4 && n <= 8 {
        let a0 = u32::from_be_bytes(word::<4>(a, 0));
        let b0 = u32::from_be_bytes(word::<4>(b, 0));
        if a0 != b0 {
            return a0.cmp(&b0);
        }
        let a1 = u32::from_be_bytes(word::<4>(a, n - 4));
        let b1 = u32::from_be_bytes(word::<4>(b, n - 4));
        a1.cmp(&b1)
    } else if n > 8 && n <= 16 {
        let a0 = u64::from_be_bytes(word::<8>(a, 0));
        let b0 = u64::from_be_bytes(word::<8>(b, 0));
        if a0 != b0 {
            return a0.cmp(&b0);
        }
        let a1 = u64::from_be_bytes(word::<8>(a, n - 8));
        let b1 = u64::from_be_bytes(word::<8>(b, n - 8));
        a1.cmp(&b1)
    } else {
        a.cmp(b)
    }
}

/// The relational sort operator.
///
/// ```
/// use rowsort_core::pipeline::{SortOptions, SortPipeline};
/// use rowsort_vector::{DataChunk, OrderBy, Value, Vector};
///
/// let chunk = DataChunk::from_columns(vec![
///     Vector::from_u32s(vec![3, 1, 2]),        // key
///     Vector::from_strings(["c", "a", "b"]),   // payload
/// ])
/// .unwrap();
/// let pipeline = SortPipeline::new(
///     chunk.types(),
///     OrderBy::ascending(1),
///     SortOptions::default(),
/// );
/// let sorted = pipeline.sort(&chunk);
/// assert_eq!(sorted.row(0), vec![Value::UInt32(1), Value::from("a")]);
/// assert_eq!(sorted.row(2), vec![Value::UInt32(3), Value::from("c")]);
/// ```
pub struct SortPipeline {
    types: Vec<LogicalType>,
    order: OrderBy,
    options: SortOptions,
    layout: Arc<RowLayout>,
    /// Full-tuple comparator for VARCHAR-prefix tie resolution, built once.
    tie_cmp: FusedRowComparator,
    /// Columns whose row slots reference the heap (offset fixup in merges).
    varlen_cols: Vec<usize>,
    pool: BufferPool,
    /// Spawned lazily on the first parallel phase, then reused for life.
    workers: OnceLock<WorkerPool>,
    /// Reusable working state. Concurrent `sort` calls on one pipeline
    /// serialize on this lock (each call uses the whole scratch).
    scratch: Mutex<Scratch>,
    /// Lock-free counters and phase clocks, preallocated here so
    /// recording during a sort allocates nothing (DESIGN.md §7).
    metrics: Arc<CounterRegistry>,
    /// The most recent sort's profile (overwritten in place — `Copy`).
    profile: Mutex<SortProfile>,
}

impl SortPipeline {
    /// Plan a sort of a relation with columns `types` by `order`.
    /// `threads == 0` or `run_rows == 0` are clamped to 1 — both would
    /// otherwise divide by zero in morsel splitting / worker spawn.
    pub fn new(types: Vec<LogicalType>, order: OrderBy, mut options: SortOptions) -> SortPipeline {
        options.threads = options.threads.max(1);
        options.run_rows = options.run_rows.max(1);
        let layout = Arc::new(RowLayout::new(&types));
        let tie_cmp = FusedRowComparator::new(&layout, &order);
        let varlen_cols = (0..types.len())
            .filter(|&c| types[c] == LogicalType::Varchar)
            .collect();
        let metrics = Arc::new(CounterRegistry::new());
        SortPipeline {
            types,
            order,
            options,
            layout,
            tie_cmp,
            varlen_cols,
            pool: BufferPool::with_metrics(Arc::clone(&metrics)),
            workers: OnceLock::new(),
            scratch: Mutex::new(Scratch::default()),
            metrics,
            profile: Mutex::new(SortProfile::zeroed()),
        }
    }

    /// Sort a materialized input relation, returning it fully sorted.
    pub fn sort(&self, input: &DataChunk) -> DataChunk {
        self.sort_rows(input).to_chunk()
    }

    /// Sort `input`, returning the merged run in row form. Dropping the
    /// result returns its buffers to the pipeline's pool; in steady state
    /// (after a warm-up sort of similar shape) this call performs zero
    /// heap allocations.
    pub fn sort_rows(&self, input: &DataChunk) -> SortedRows<'_> {
        // Element-wise so the schema check allocates nothing in steady
        // state (`input.types()` would collect a fresh Vec per sort).
        assert!(
            input.column_count() == self.types.len()
                && input
                    .columns()
                    .iter()
                    .zip(&self.types)
                    .all(|(col, &ty)| col.logical_type() == ty),
            "input schema mismatch"
        );
        if input.is_empty() {
            return SortedRows {
                pipeline: self,
                run: None,
            };
        }
        let mut guard = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        let scratch = &mut *guard;
        let sort_start = Instant::now();
        let before = self.metrics.snapshot();
        {
            let _prepare = self.metrics.time_phase(Phase::Prepare);
            // String statistics are plan-wide: every run must agree on the
            // normalized-key shape or the merge phase could not compare keys.
            scratch.stats.clear();
            for c in 0..self.types.len() {
                scratch.stats.push(Self::varchar_stat(input, c));
            }
            if scratch.stats != scratch.key_stats {
                // Cached key blocks were planned for different VARCHAR
                // stats; their layout no longer applies.
                scratch
                    .key_blocks
                    .get_mut()
                    .unwrap_or_else(|e| e.into_inner())
                    .clear();
                scratch.key_stats.clear();
                scratch.key_stats.extend_from_slice(&scratch.stats);
            }
        }
        {
            let _gen = self.metrics.time_phase(Phase::RunGeneration);
            self.generate_runs(input, scratch);
        }
        let run = {
            let _merge = self.metrics.time_phase(Phase::Merge);
            self.merge_runs(scratch)
        };
        self.metrics.record_sort(input.len() as u64);
        let profile = SortProfile {
            operator: "pipeline",
            rows: input.len() as u64,
            total_ns: sort_start.elapsed().as_nanos() as u64,
            metrics: self.metrics.snapshot().since(&before),
        };
        *self.profile.lock().unwrap_or_else(|e| e.into_inner()) = profile;
        emit_trace(&profile);
        SortedRows {
            pipeline: self,
            run: Some(run),
        }
    }

    /// Buffer-pool `(hits, misses)` counters — a steady-state sort serves
    /// every buffer from the pool (hits grow, misses do not).
    pub fn pool_stats(&self) -> (usize, usize) {
        (self.pool.hits(), self.pool.misses())
    }

    /// The profile of the most recent completed sort (zeroed before the
    /// first one). A `Copy` snapshot — reading it allocates nothing.
    pub fn last_profile(&self) -> SortProfile {
        *self.profile.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Cumulative [`Metrics`] across every sort this pipeline has run.
    pub fn metrics(&self) -> Metrics {
        self.metrics.snapshot()
    }

    /// Statistics callback for VARCHAR prefix sizing: max string length in
    /// the input for the given column.
    fn varchar_stat(input: &DataChunk, col: usize) -> usize {
        input
            .column(col)
            .as_strings()
            .map(|s| s.max_len())
            .unwrap_or(0)
    }

    /// The persistent phase crew (spawned on first use).
    fn worker_pool(&self) -> &WorkerPool {
        self.workers.get_or_init(|| {
            WorkerPool::with_metrics(self.options.threads, Arc::clone(&self.metrics))
        })
    }

    /// Phase 1: morsel-parallel run generation. Each completed run is
    /// written to its morsel-indexed slot, so the resulting run order is
    /// identical for every schedule and thread count.
    fn generate_runs(&self, input: &DataChunk, scratch: &mut Scratch) {
        let n = input.len();
        let run_rows = self.options.run_rows;
        let morsels = n.div_ceil(run_rows);
        if scratch.run_slots.len() < morsels {
            scratch.run_slots.resize_with(morsels, Default::default);
        }
        let Scratch {
            ref stats,
            ref run_slots,
            ref mut runs,
            ref key_blocks,
            ..
        } = *scratch;

        let next = AtomicUsize::new(0);
        let body = |_worker: usize| loop {
            let m = next.fetch_add(1, AtomicOrdering::Relaxed);
            if m >= morsels {
                break;
            }
            let lo = m * run_rows;
            // A lone run goes straight to output without a merge, so its
            // code column would have no reader — skip computing it.
            let run = self.make_run(
                input,
                lo,
                (lo + run_rows).min(n),
                stats,
                key_blocks,
                morsels > 1,
            );
            *run_slots[m].lock().unwrap_or_else(|e| e.into_inner()) = Some(run);
        };
        if self.options.threads.min(morsels) <= 1 {
            body(0);
        } else {
            self.worker_pool().broadcast(&body);
        }

        runs.clear();
        for slot in run_slots[..morsels].iter() {
            let run = slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                // lint:allow(R010): the phase-1 barrier completes before
                // this runs, and phase 1 fills every slot exactly once.
                .expect("every morsel slot is filled by phase 1");
            runs.push(run);
        }
    }

    /// Build one sorted run from input rows `lo..hi`, with every buffer
    /// pooled.
    fn make_run(
        &self,
        input: &DataChunk,
        lo: usize,
        hi: usize,
        stats: &[usize],
        key_blocks: &Mutex<Vec<KeyBlock>>,
        with_codes: bool,
    ) -> SortedRun {
        let rows = hi - lo;
        let width = self.layout.width();
        // DSM → NSM: payload rows (all columns) in input order first.
        let mut staging = RowBlock::from_raw_parts(
            Arc::clone(&self.layout),
            self.pool.get_bytes(rows * width),
            self.pool.get_bytes(64),
        );
        staging.append_chunk_range(input, lo, hi);

        let mut keys = key_blocks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_else(|| KeyBlock::new(&self.types, &self.order, |c| stats[c]));
        keys.reset();
        keys.append_chunk_range(input, lo, hi);

        // Thread-local sort: radix, or pdqsort + tie resolution when
        // truncated VARCHAR prefixes make ties possible.
        let mut radix_scratch = self
            .pool
            .get_bytes(radix_scratch_len(rows * keys.stride(), keys.stride()));
        let algo = keys.sort_with_scratch(&mut radix_scratch, |a, b| {
            self.tie_cmp.compare(
                staging.row(a as usize),
                staging.heap(),
                staging.row(b as usize),
                staging.heap(),
            )
        });
        self.pool.put_bytes(radix_scratch);
        match algo {
            KeySortAlgo::Radix { passes } => {
                self.metrics.add(Counter::RadixSorts, 1);
                self.metrics.add(Counter::RadixPasses, passes);
            }
            KeySortAlgo::Pdq => self.metrics.add(Counter::PdqSorts, 1),
            KeySortAlgo::Noop => {}
        }

        let mut run_keys = self.pool.get_bytes(rows * keys.key_width());
        keys.keys_only_into(&mut run_keys);
        // OVC column, computed while the freshly sorted keys are hot:
        // one prefix scan per row here saves a full-key compare per merge
        // comparison later (DESIGN.md §10.2).
        let run_ovc = if with_codes && self.options.ovc && keys.key_width() > 0 {
            let mut ovc = self.pool.get_bytes(rows * 8);
            ovc.resize(rows * 8, 0);
            crate::ovc::fill_run_codes(&run_keys, keys.key_width(), &mut ovc);
            ovc
        } else {
            Vec::new()
        };
        let mut payload = RowBlock::from_raw_parts(
            Arc::clone(&self.layout),
            self.pool.get_bytes(rows * width),
            self.pool.get_bytes(staging.heap().len().max(1)),
        );
        payload.assign_reordered(&staging, keys.order_iter());

        let key_width = keys.key_width();
        self.metrics.add(Counter::RunsGenerated, 1);
        // Staged rows + encoded key entries + stripped keys + reordered
        // payload: the bytes this run wrote.
        self.metrics.add(
            Counter::BytesMoved,
            (rows * (2 * width + keys.stride() + key_width)) as u64,
        );
        key_blocks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(keys);
        let (staging_data, staging_heap) = staging.into_raw_parts();
        self.pool.put_bytes(staging_data);
        self.pool.put_bytes(staging_heap);
        SortedRun {
            keys: run_keys,
            key_width,
            ovc: run_ovc,
            payload,
        }
    }

    /// Phase 2: cascaded 2-way merge until one run remains. Pairing is
    /// deterministic — adjacent runs merge in order, an odd run carries
    /// over to the next round *last* — and each round's merges execute as
    /// a flat `pairs × parts` task grid on the worker pool.
    fn merge_runs(&self, scratch: &mut Scratch) -> SortedRun {
        let Scratch {
            ref mut runs,
            ref mut next_round,
            ref mut jobs,
            ref mut kway_tree,
            ref mut kway_idx,
            ref mut kway_heap_base,
            ..
        } = *scratch;
        assert!(!runs.is_empty());
        let width = self.layout.width();
        let kw0 = runs.first().map_or(0, |r| r.key_width);
        // Hoisted merge state: every task of every round shares the key
        // width, row width, and tie/OVC setup, so derive them once here
        // instead of per merge_task call.
        let base_ctx = MergeCtx {
            kw: kw0,
            width,
            tie_possible: kw0 > 0 && self.tie_possible(),
            use_ovc: self.options.ovc && kw0 > 0,
            emit_codes: true,
            arity: crate::ovc::word_count(kw0),
        };

        // Single-threaded coded sorts take one k-way tree-of-losers pass
        // instead of the cascade: the cascade re-moves every row per
        // round to keep Merge Path partitions parallelizable, which one
        // worker cannot exploit, while offset-value codes collapse the
        // k-way comparator cost that made binary merges attractive in
        // the first place — so rows move once and ⌈log₂ k⌉ coded
        // compares replace ⌈log₂ k⌉ full-key compares (DESIGN.md §10.2).
        if base_ctx.use_ovc && self.options.threads == 1 && runs.len() > 2 {
            return self.merge_kway_ovc(
                runs,
                kway_tree.get_or_insert_with(OvcLoserTree::empty),
                kway_idx,
                kway_heap_base,
                base_ctx,
            );
        }

        while runs.len() > 1 {
            // The last round's output is the sort's result: its code
            // column would never be read, so don't produce it.
            let ctx = MergeCtx {
                emit_codes: runs.len() > 2,
                ..base_ctx
            };
            let kw = ctx.kw;
            let pairs = runs.len() / 2;
            next_round.clear();
            jobs.clear();
            for p in 0..pairs {
                let a = &runs[2 * p];
                let b = &runs[2 * p + 1];
                let total = a.len() + b.len();
                let mut keys = self.pool.get_bytes(total * kw);
                keys.resize(total * kw, 0);
                let mut data = self.pool.get_bytes(total * width);
                data.resize(total * width, 0);
                // The merged heap is a.heap ++ b.heap: run heaps are fully
                // referenced, so concatenation (plus an offset shift on
                // b-side rows) replaces per-row heap compaction.
                let mut heap = self
                    .pool
                    .get_bytes(a.payload.heap().len() + b.payload.heap().len());
                heap.extend_from_slice(a.payload.heap());
                heap.extend_from_slice(b.payload.heap());
                let heap_shift = a.payload.heap().len() as u32;
                // The output's OVC column is produced by the merge itself:
                // each emitted row's current code is already relative to
                // the row emitted before it (DESIGN.md §10.2).
                let ovc = if ctx.use_ovc && ctx.emit_codes {
                    let mut ovc = self.pool.get_bytes(total * 8);
                    ovc.resize(total * 8, 0);
                    ovc
                } else {
                    Vec::new()
                };
                let mut out = SortedRun {
                    keys,
                    key_width: kw,
                    ovc,
                    payload: RowBlock::from_raw_parts(Arc::clone(&self.layout), data, heap),
                };
                jobs.push(MergeJob {
                    a: 2 * p,
                    b: 2 * p + 1,
                    out_keys: SendPtr::new(out.keys.as_mut_ptr()),
                    out_rows: SendPtr::new(out.payload.data_mut().as_mut_ptr()),
                    out_ovc: SendPtr::new(out.ovc.as_mut_ptr()),
                    total,
                    heap_shift,
                });
                next_round.push(out);
            }

            // Flat task grid: every pair is split into `parts` Merge Path
            // partitions; workers claim (pair, part) tasks dynamically.
            let parts = self.options.threads.div_ceil(pairs);
            let tasks = pairs * parts;
            let next = AtomicUsize::new(0);
            let runs_ref: &[SortedRun] = runs;
            let jobs_ref: &[MergeJob] = jobs;
            let body = |_worker: usize| loop {
                let t = next.fetch_add(1, AtomicOrdering::Relaxed);
                if t >= tasks {
                    break;
                }
                self.merge_task(runs_ref, &jobs_ref[t / parts], t % parts, parts, ctx);
            };
            if self.options.threads == 1 || tasks == 1 {
                body(0);
            } else {
                self.worker_pool().broadcast(&body);
            }
            if ctx.use_ovc && ctx.emit_codes && parts > 1 {
                // Partition seams: a task other than the first sees no
                // predecessor row, so it seeds codes relative to −∞ and
                // its first output code is coded against the wrong base.
                // Re-derive those few codes (one per interior seam)
                // against the true predecessor now that both sides of
                // every seam are written.
                for (job, out) in jobs.iter().zip(next_round.iter_mut()) {
                    for part in 1..parts {
                        let d0 = job.total * part / parts;
                        if d0 == 0 || d0 >= job.total {
                            continue;
                        }
                        let (Some(prev), Some(cur)) = (
                            out.keys.get((d0 - 1) * kw..d0 * kw),
                            out.keys.get(d0 * kw..(d0 + 1) * kw),
                        ) else {
                            continue;
                        };
                        let code = crate::ovc::code_rel(cur, prev, ctx.arity);
                        if let Some(slot) = out.ovc.get_mut(d0 * 8..(d0 + 1) * 8) {
                            slot.copy_from_slice(&code.to_le_bytes());
                        }
                    }
                }
            }
            self.metrics.add(Counter::MergeRounds, 1);
            self.metrics.add(Counter::MergeTasks, tasks as u64);
            let round_bytes: usize = jobs.iter().map(|j| j.total * (kw + width)).sum();
            self.metrics.add(Counter::BytesMoved, round_bytes as u64);

            // Recycle this round's inputs; any odd run carries over last.
            let odd = if runs.len() % 2 == 1 {
                runs.pop()
            } else {
                None
            };
            for run in runs.drain(..) {
                self.recycle_run(run);
            }
            if let Some(odd) = odd {
                next_round.push(odd);
            }
            std::mem::swap(runs, next_round);
        }
        // lint:allow(R010): the entry assert guarantees `runs` is
        // non-empty and each cascade round halves it toward one.
        runs.pop().expect("cascade leaves exactly one run")
    }

    /// Merge all runs in one coded tree-of-losers pass (DESIGN.md §10.2).
    ///
    /// The cascade's structure — ⌈log₂ k⌉ rounds that each re-copy every
    /// key and row — exists to give Merge Path partitions to parallel
    /// workers. A single-threaded sort gets nothing back for that
    /// movement, and with offset-value codes a k-way comparator costs
    /// ~one `u64` compare per tree level, so this path moves each row
    /// exactly once and replaces the cascade's repeated full-key work
    /// with ⌈log₂ k⌉ coded matches per emitted row.
    ///
    /// Output order is bit-identical to the cascade's: both are stable
    /// merges by run index (the cascade lets the left/earlier run win
    /// ties at every round; here a full tie goes to the lower leaf), and
    /// the output heap is the same run-order concatenation.
    fn merge_kway_ovc(
        &self,
        runs: &mut Vec<SortedRun>,
        tree: &mut OvcLoserTree,
        idx: &mut Vec<std::cell::Cell<usize>>,
        heap_base: &mut Vec<u32>,
        ctx: MergeCtx,
    ) -> SortedRun {
        let MergeCtx {
            kw,
            width,
            tie_possible,
            arity,
            ..
        } = ctx;
        let k = runs.len();
        let total: usize = runs.iter().map(|r| r.len()).sum();

        let mut keys = self.pool.get_bytes(total * kw);
        keys.resize(total * kw, 0);
        let mut data = self.pool.get_bytes(total * width);
        data.resize(total * width, 0);
        // Output heap = run heaps concatenated in run order (matching the
        // cascade's a.heap ++ b.heap at every level); rows from run `w`
        // get their heap offsets shifted by that run's base.
        let heap_bytes: usize = runs.iter().map(|r| r.payload.heap().len()).sum();
        let mut heap = self.pool.get_bytes(heap_bytes);
        heap_base.clear();
        for run in runs.iter() {
            heap_base.push(heap.len() as u32);
            heap.extend_from_slice(run.payload.heap());
        }

        // Per-run cursors live in `Cell`s so the tree's play closure can
        // read head positions while the emit loop advances them — no
        // aliasing `&mut` into shared state.
        idx.clear();
        idx.resize(k, std::cell::Cell::new(0));

        // Comparator-work counters, accumulated locally (`Cell` because
        // the tree closures borrow them shared) and flushed once.
        let cmps = std::cell::Cell::new(0u64);
        let resolved = std::cell::Cell::new(0u64);
        let key_bytes = std::cell::Cell::new(0u64);

        let runs_ref: &[SortedRun] = runs;
        let idx_ref: &[std::cell::Cell<usize>] = idx;
        // One match under OVC: codes decide outright when they differ;
        // suffix bytes are only touched on a code tie; the row tiebreak
        // runs only on full key equality, and a full tie goes to the
        // lower run index (the cascade's stability rule).
        let mut play = |a: usize, b: usize, ca: u64, cb: u64| -> OvcMatch {
            let (ia, ib) = (idx_ref[a].get(), idx_ref[b].get());
            let ka = &runs_ref[a].keys[ia * kw..(ia + 1) * kw];
            let kb = &runs_ref[b].keys[ib * kw..(ib + 1) * kw];
            let r = crate::ovc::compare_update(ka, ca, kb, cb, arity);
            cmps.set(cmps.get() + 1);
            resolved.set(resolved.get() + u64::from(r.resolved));
            key_bytes.set(key_bytes.get() + r.key_bytes);
            let ord = match r.ord {
                Ordering::Equal if tie_possible => self.tie_cmp.compare(
                    runs_ref[a].payload.row(ia),
                    runs_ref[a].payload.heap(),
                    runs_ref[b].payload.row(ib),
                    runs_ref[b].payload.heap(),
                ),
                ord => ord,
            };
            let a_beats_b = match ord {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => a < b,
            };
            OvcMatch {
                a_beats_b,
                loser_code: r.loser_code,
            }
        };
        let mut is_ex = |i: usize| idx_ref[i].get() >= runs_ref[i].len();
        // Run-stored codes for row 0 are relative to −∞ — the common base
        // the tournament needs.
        tree.rebuild(
            k,
            |i| crate::ovc::read_code(&runs_ref[i].ovc, 0),
            &mut is_ex,
            &mut play,
        );

        let mut key_out = keys.chunks_exact_mut(kw.max(1));
        let mut row_out = data.chunks_exact_mut(width);
        let fix_heap = !self.varlen_cols.is_empty();
        for _ in 0..total {
            let w = tree.winner();
            let i = idx_ref[w].get();
            if let Some(dst) = key_out.next() {
                copy_small(dst, &runs_ref[w].keys[i * kw..(i + 1) * kw]);
            }
            // lint:allow(R002, R010): the iterator yields exactly `total`
            // rows (`data` is sized `total * width` above).
            let out_row = row_out.next().expect("output sized to total");
            copy_small(out_row, runs_ref[w].payload.row(i));
            let shift = heap_base[w];
            if fix_heap && shift != 0 {
                self.shift_heap_offsets(out_row, shift);
            }
            idx_ref[w].set(i + 1);
            // The new head's run-stored code is relative to the row just
            // emitted — the same base every resident loser on this leaf's
            // root path was re-coded against.
            let leaf_code = if idx_ref[w].get() >= runs_ref[w].len() {
                u64::MAX
            } else {
                crate::ovc::read_code(&runs_ref[w].ovc, idx_ref[w].get())
            };
            tree.replay(w, leaf_code, &mut is_ex, &mut play);
        }

        self.metrics.add(Counter::MergeCmps, cmps.get());
        self.metrics
            .add(Counter::MergeCmpsOvcResolved, resolved.get());
        self.metrics
            .add(Counter::MergeKeyBytesTouched, key_bytes.get());
        self.metrics.add(Counter::MergeRounds, 1);
        self.metrics.add(Counter::MergeTasks, 1);
        self.metrics
            .add(Counter::BytesMoved, (total * (kw + width)) as u64);

        for run in runs.drain(..) {
            self.recycle_run(run);
        }
        SortedRun {
            keys,
            key_width: kw,
            ovc: Vec::new(),
            payload: RowBlock::from_raw_parts(Arc::clone(&self.layout), data, heap),
        }
    }

    /// Execute Merge Path partition `part` of `parts` for one 2-way merge:
    /// binary-search the partition bounds, then write merged keys and
    /// payload rows directly into the job's output range (pick generation
    /// fused with materialization — no intermediate pick list).
    fn merge_task(
        &self,
        runs: &[SortedRun],
        job: &MergeJob,
        part: usize,
        parts: usize,
        ctx: MergeCtx,
    ) {
        let a = &runs[job.a];
        let b = &runs[job.b];
        let MergeCtx {
            kw,
            width,
            tie_possible,
            ..
        } = ctx;
        let (na, nb) = (a.len(), b.len());
        let cmp = |i: usize, j: usize| -> Ordering {
            let ka = &a.keys[i * kw..(i + 1) * kw];
            let kb = &b.keys[j * kw..(j + 1) * kw];
            match cmp_keys(ka, kb) {
                Ordering::Equal if tie_possible => self.tie_cmp.compare(
                    a.payload.row(i),
                    a.payload.heap(),
                    b.payload.row(j),
                    b.payload.heap(),
                ),
                ord => ord,
            }
        };

        let d0 = job.total * part / parts;
        let d1 = job.total * (part + 1) / parts;
        if d0 == d1 {
            return;
        }
        let (a0, b0) = merge_path_partition_by(na, nb, d0, |j, i| {
            cmp(i, j) == Ordering::Greater // b[j] < a[i]
        });
        let (a1, b1) = merge_path_partition_by(na, nb, d1, |j, i| cmp(i, j) == Ordering::Greater);

        // SAFETY: Merge Path bounds are exact — partition `part` produces
        // output rows `d0..d1` and no other partition writes them, so the
        // slice carved out of `job.out_keys` below is disjoint between
        // tasks; the backing buffer is sized `total * kw` and owned by
        // `next_round`, which outlives the phase.
        let out_keys = unsafe {
            std::slice::from_raw_parts_mut(job.out_keys.get().add(d0 * kw), (d1 - d0) * kw)
        };
        // SAFETY: same disjointness argument on `job.out_rows` — the row
        // buffer is sized `total * width` and outlives the phase.
        let out_rows = unsafe {
            std::slice::from_raw_parts_mut(job.out_rows.get().add(d0 * width), (d1 - d0) * width)
        };

        if ctx.use_ovc {
            // On the final round no code column exists (the job pointer is
            // dangling), so the partition gets an empty slice and stores
            // nothing.
            let out_ovc = if ctx.emit_codes {
                // SAFETY: same disjointness argument on `job.out_ovc` — the
                // code column is sized `total * 8`, rows `d0..d1` belong to
                // this partition only, and the buffer lives in `next_round`
                // until the phase (and its seam fixup) completes.
                unsafe {
                    std::slice::from_raw_parts_mut(job.out_ovc.get().add(d0 * 8), (d1 - d0) * 8)
                }
            } else {
                &mut [][..]
            };
            self.merge_partition_ovc(
                a,
                b,
                job,
                ctx,
                (a0, a1),
                (b0, b1),
                out_keys,
                out_rows,
                out_ovc,
            );
        } else {
            self.merge_partition(a, b, job, ctx, (a0, a1), (b0, b1), out_keys, out_rows);
        }
    }

    /// The plain (OVC-off) merge loop for one Merge Path partition: every
    /// comparison is a fresh whole-key `cmp_keys`.
    #[allow(clippy::too_many_arguments)]
    fn merge_partition(
        &self,
        a: &SortedRun,
        b: &SortedRun,
        job: &MergeJob,
        ctx: MergeCtx,
        (a0, a1): (usize, usize),
        (b0, b1): (usize, usize),
        out_keys: &mut [u8],
        out_rows: &mut [u8],
    ) {
        let MergeCtx {
            kw,
            width,
            tie_possible,
            ..
        } = ctx;
        let (a_keys, b_keys) = (&a.keys, &b.keys);
        let (a_rows, b_rows) = (a.payload.data(), b.payload.data());
        let (mut i, mut j) = (a0, b0);
        let rows = out_rows.len() / width;
        let mut key_out = out_keys.chunks_exact_mut(kw.max(1));
        let mut row_out = out_rows.chunks_exact_mut(width);
        let fix_heap = job.heap_shift != 0 && !self.varlen_cols.is_empty();
        // Counters are batched locally and added once: a relaxed atomic
        // add per output row would put contended cache lines in the
        // hottest loop of the pipeline.
        let mut cmps = 0u64;
        for _ in 0..rows {
            // Selection and index advance are arithmetic, not control flow:
            // on random keys `take_b` is a coin flip, so a branchy merge
            // pays a misprediction per output row.
            let in_both = i < a1 && j < b1;
            cmps += u64::from(in_both);
            let take_b = i >= a1
                || (in_both && {
                    let ka = &a_keys[i * kw..(i + 1) * kw];
                    let kb = &b_keys[j * kw..(j + 1) * kw];
                    let ord = match cmp_keys(ka, kb) {
                        Ordering::Equal if tie_possible => self.tie_cmp.compare(
                            a.payload.row(i),
                            a.payload.heap(),
                            b.payload.row(j),
                            b.payload.heap(),
                        ),
                        ord => ord,
                    };
                    ord == Ordering::Greater
                });
            let (src_keys, src_rows, r) = if take_b {
                (b_keys, b_rows, j)
            } else {
                (a_keys, a_rows, i)
            };
            j += take_b as usize;
            i += !take_b as usize;
            if let Some(dst) = key_out.next() {
                copy_small(dst, &src_keys[r * kw..(r + 1) * kw]);
            }
            // lint:allow(R002, R010): the iterator yields d1-d0 rows by
            // construction; see the SAFETY disjointness argument above.
            let out_row = row_out.next().expect("output sized to partition");
            copy_small(out_row, &src_rows[r * width..(r + 1) * width]);
            if fix_heap && take_b {
                self.shift_heap_offsets(out_row, job.heap_shift);
            }
        }
        self.metrics.add(Counter::MergeCmps, cmps);
        self.metrics
            .add(Counter::MergeKeyBytesTouched, cmps * 2 * kw as u64);
    }

    /// The OVC merge loop for one Merge Path partition (DESIGN.md §10.2).
    ///
    /// Both sides carry a code relative to the last emitted row: the
    /// winner's successor inherits its code from the run's precomputed
    /// column (its predecessor *is* the row just emitted), and the loser
    /// is re-coded by the comparison itself — so in steady state no key
    /// prefix is ever re-scanned. Each emitted row's current code is also
    /// written to the output column, which is exactly the next round's
    /// input column: codes propagate through the whole cascade for free.
    #[allow(clippy::too_many_arguments)]
    fn merge_partition_ovc(
        &self,
        a: &SortedRun,
        b: &SortedRun,
        job: &MergeJob,
        ctx: MergeCtx,
        (a0, a1): (usize, usize),
        (b0, b1): (usize, usize),
        out_keys: &mut [u8],
        out_rows: &mut [u8],
        out_ovc: &mut [u8],
    ) {
        let MergeCtx {
            kw,
            width,
            tie_possible,
            arity,
            ..
        } = ctx;
        let (a_keys, b_keys) = (&a.keys, &b.keys);
        let (a_rows, b_rows) = (a.payload.data(), b.payload.data());
        let (mut i, mut j) = (a0, b0);
        let rows = out_rows.len() / width;
        let mut key_out = out_keys.chunks_exact_mut(kw.max(1));
        let mut row_out = out_rows.chunks_exact_mut(width);
        let mut ovc_out = out_ovc.chunks_exact_mut(8);
        let fix_heap = job.heap_shift != 0 && !self.varlen_cols.is_empty();
        // Partition heads are coded relative to −∞ (they have no common
        // emitted predecessor yet); interior partitions' first output
        // code is later corrected by the seam fixup in `merge_runs`.
        let mut code_a = if i < a1 {
            crate::ovc::initial_code(&a_keys[i * kw..(i + 1) * kw], arity)
        } else {
            0
        };
        let mut code_b = if j < b1 {
            crate::ovc::initial_code(&b_keys[j * kw..(j + 1) * kw], arity)
        } else {
            0
        };
        let (mut cmps, mut resolved, mut bytes) = (0u64, 0u64, 0u64);
        for _ in 0..rows {
            let take_b = if i >= a1 {
                true
            } else if j >= b1 {
                false
            } else {
                cmps += 1;
                let ka = &a_keys[i * kw..(i + 1) * kw];
                let kb = &b_keys[j * kw..(j + 1) * kw];
                let r = crate::ovc::compare_update(ka, code_a, kb, code_b, arity);
                resolved += u64::from(r.resolved);
                bytes += r.key_bytes;
                let ord = match r.ord {
                    Ordering::Equal if tie_possible => self.tie_cmp.compare(
                        a.payload.row(i),
                        a.payload.heap(),
                        b.payload.row(j),
                        b.payload.heap(),
                    ),
                    ord => ord,
                };
                let take_b = ord == Ordering::Greater;
                // The loser's code is now relative to the winner — the
                // row about to be emitted — keeping the same-base
                // invariant for the next comparison. Value selects, not
                // branches: `take_b` is a coin flip on real data.
                code_a = if take_b { r.loser_code } else { code_a };
                code_b = if take_b { code_b } else { r.loser_code };
                take_b
            };
            let (src_keys, src_rows, r) = if take_b {
                (b_keys, b_rows, j)
            } else {
                (a_keys, a_rows, i)
            };
            if let Some(dst) = ovc_out.next() {
                let code = if take_b { code_b } else { code_a };
                dst.copy_from_slice(&code.to_le_bytes());
            }
            j += take_b as usize;
            i += !take_b as usize;
            // The winner's successor's stored run code is relative to its
            // in-run predecessor — the row just emitted — so it is valid
            // as-is; no scan needed. Both columns are read unconditionally
            // (`read_code` is total, returning 0 past the end, and a
            // stale/garbage code on an exhausted side is never compared
            // again) so the update is a select instead of a mispredicted
            // branch.
            let next_a = crate::ovc::read_code(&a.ovc, i);
            let next_b = crate::ovc::read_code(&b.ovc, j);
            code_a = if take_b { code_a } else { next_a };
            code_b = if take_b { next_b } else { code_b };
            if let Some(dst) = key_out.next() {
                copy_small(dst, &src_keys[r * kw..(r + 1) * kw]);
            }
            // lint:allow(R002, R010): the iterator yields d1-d0 rows by
            // construction; see the SAFETY disjointness argument above.
            let out_row = row_out.next().expect("output sized to partition");
            copy_small(out_row, &src_rows[r * width..(r + 1) * width]);
            if fix_heap && take_b {
                self.shift_heap_offsets(out_row, job.heap_shift);
            }
        }
        self.metrics.add(Counter::MergeCmps, cmps);
        self.metrics.add(Counter::MergeCmpsOvcResolved, resolved);
        self.metrics.add(Counter::MergeKeyBytesTouched, bytes);
    }

    /// Rebase a merged row's VARCHAR heap offsets after its strings moved
    /// to `heap_shift` bytes later in the concatenated output heap.
    #[inline]
    fn shift_heap_offsets(&self, out_row: &mut [u8], heap_shift: u32) {
        // b-side strings now live after a's heap: shift offsets.
        for &c in &self.varlen_cols {
            if out_row[self.layout.null_offset(c)] != 0 {
                continue;
            }
            let at = self.layout.offset(c);
            let mut slot = [0u8; 4];
            slot.copy_from_slice(&out_row[at..at + 4]);
            let off = u32::from_le_bytes(slot) + heap_shift;
            out_row[at..at + 4].copy_from_slice(&off.to_le_bytes());
        }
    }

    /// Return a run's buffers to the pool.
    fn recycle_run(&self, run: SortedRun) {
        self.pool.put_bytes(run.keys);
        if run.ovc.capacity() > 0 {
            self.pool.put_bytes(run.ovc);
        }
        let (data, heap) = run.payload.into_raw_parts();
        self.pool.put_bytes(data);
        self.pool.put_bytes(heap);
    }

    fn tie_possible(&self) -> bool {
        self.order
            .keys
            .iter()
            .any(|k| self.types[k.column] == LogicalType::Varchar)
    }
}

/// A sorted relation in row form, borrowed from its pipeline's buffer
/// pool: dropping it recycles the buffers, which is what makes repeated
/// sorts allocation-free.
pub struct SortedRows<'a> {
    pipeline: &'a SortPipeline,
    run: Option<SortedRun>,
}

impl SortedRows<'_> {
    /// Number of sorted rows.
    pub fn len(&self) -> usize {
        self.run.as_ref().map_or(0, |r| r.len())
    }

    /// `true` iff the input held no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sorted payload rows (`None` for an empty input).
    pub fn payload(&self) -> Option<&RowBlock> {
        self.run.as_ref().map(|r| &r.payload)
    }

    /// Convert back to vectors (NSM → DSM); the pipeline's final step.
    pub fn to_chunk(&self) -> DataChunk {
        match &self.run {
            Some(run) => run.payload.to_chunk(),
            None => DataChunk::new(&self.pipeline.types),
        }
    }
}

impl Drop for SortedRows<'_> {
    fn drop(&mut self) {
        if let Some(run) = self.run.take() {
            self.pipeline.recycle_run(run);
        }
    }
}

/// Convenience: sort `input` by `order` with default options.
pub fn sort_chunk(input: &DataChunk, order: &OrderBy) -> DataChunk {
    SortPipeline::new(input.types(), order.clone(), SortOptions::default()).sort(input)
}

/// Convenience: assemble a chunk of u32 key columns and sort ascending.
pub fn sort_u32_columns(cols: Vec<Vec<u32>>, options: SortOptions) -> DataChunk {
    let ncols = cols.len();
    let chunk = DataChunk::from_columns(cols.into_iter().map(Vector::from_u32s).collect()).unwrap();
    SortPipeline::new(chunk.types(), OrderBy::ascending(ncols), options).sort(&chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowsort_vector::{OrderByColumn, SortSpec, Value};

    fn reference_sort(chunk: &DataChunk, order: &OrderBy) -> Vec<Vec<Value>> {
        let mut rows = chunk.to_rows();
        rows.sort_by(|a, b| order.compare_rows(a, b));
        rows
    }

    fn assert_sorted_equal(got: &DataChunk, chunk: &DataChunk, order: &OrderBy) {
        let expected = reference_sort(chunk, order);
        let got_rows = got.to_rows();
        assert_eq!(got_rows.len(), expected.len());
        // The pipeline need not be stable; compare as multisets per tie
        // group by checking the ordering relation and the multiset.
        for w in got_rows.windows(2) {
            assert_ne!(
                order.compare_rows(&w[0], &w[1]),
                Ordering::Greater,
                "output out of order: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        let canon = |rows: &[Vec<Value>]| {
            let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(canon(&got_rows), canon(&expected), "row multiset differs");
    }

    fn pseudo_random(n: usize, seed: u64, modk: u32) -> Vec<u32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as u32) % modk
            })
            .collect()
    }

    #[test]
    fn single_run_radix_path() {
        let chunk =
            DataChunk::from_columns(vec![Vector::from_u32s(pseudo_random(10_000, 1, 1_000))])
                .unwrap();
        let order = OrderBy::ascending(1);
        let got = sort_chunk(&chunk, &order);
        assert_sorted_equal(&got, &chunk, &order);
    }

    #[test]
    fn multiple_runs_merge() {
        let chunk = DataChunk::from_columns(vec![
            Vector::from_u32s(pseudo_random(5_000, 2, 64)),
            Vector::from_u32s(pseudo_random(5_000, 3, 64)),
        ])
        .unwrap();
        let order = OrderBy::ascending(2);
        let pipeline = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions::single_with_run_rows(700),
        );
        let got = pipeline.sort(&chunk);
        assert_sorted_equal(&got, &chunk, &order);
    }

    #[test]
    fn parallel_sort_matches_sequential() {
        let chunk = DataChunk::from_columns(vec![
            Vector::from_u32s(pseudo_random(20_000, 4, 128)),
            Vector::from_u32s(pseudo_random(20_000, 5, 128)),
        ])
        .unwrap();
        let order = OrderBy::ascending(2);
        let seq = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions {
                threads: 1,
                run_rows: 1500,
                ..SortOptions::default()
            },
        )
        .sort(&chunk);
        let par = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions {
                threads: 4,
                run_rows: 1500,
                ..SortOptions::default()
            },
        )
        .sort(&chunk);
        assert_sorted_equal(&par, &chunk, &order);
        // Key columns must agree exactly (payload order within ties may
        // differ between schedules, but here all columns are keys).
        assert_eq!(seq.to_rows(), par.to_rows());
    }

    #[test]
    fn output_bit_identical_across_thread_counts() {
        // Non-key payload creates observable tie order: with morsel-slot
        // runs, fixed pairing, and exact Merge Path partitions, the whole
        // output (tie order included) must match for any thread count.
        let keys = pseudo_random(9_000, 21, 40); // heavy ties
        let payload: Vec<u32> = (0..9_000).collect();
        let chunk =
            DataChunk::from_columns(vec![Vector::from_u32s(keys), Vector::from_u32s(payload)])
                .unwrap();
        let order = OrderBy::new(vec![OrderByColumn::asc(0)]);
        let reference = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions {
                threads: 1,
                run_rows: 512,
                ..SortOptions::default()
            },
        )
        .sort(&chunk);
        for threads in [2, 3, 4] {
            let got = SortPipeline::new(
                chunk.types(),
                order.clone(),
                SortOptions {
                    threads,
                    run_rows: 512,
                    ..SortOptions::default()
                },
            )
            .sort(&chunk);
            assert_eq!(
                reference.to_rows(),
                got.to_rows(),
                "threads={threads} diverged from single-threaded output"
            );
        }
    }

    #[test]
    fn repeated_sorts_hit_the_pool() {
        let chunk =
            DataChunk::from_columns(vec![Vector::from_u32s(pseudo_random(30_000, 33, 1 << 30))])
                .unwrap();
        let order = OrderBy::ascending(1);
        let pipeline = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions {
                threads: 1,
                run_rows: 4_000,
                ..SortOptions::default()
            },
        );
        let first = pipeline.sort(&chunk);
        let (_, misses_after_warmup) = pipeline.pool_stats();
        let second = pipeline.sort(&chunk);
        let (hits, misses) = pipeline.pool_stats();
        assert_eq!(first.to_rows(), second.to_rows());
        assert_eq!(
            misses, misses_after_warmup,
            "steady-state sort allocated fresh buffers"
        );
        assert!(hits > 0, "steady-state sort never hit the pool");
        assert_sorted_equal(&second, &chunk, &order);
    }

    #[test]
    fn varchar_stat_change_invalidates_pooled_key_blocks() {
        let order = OrderBy::ascending(1);
        let short =
            DataChunk::from_columns(vec![Vector::from_strings(["b", "a", "c", "d"])]).unwrap();
        let long = DataChunk::from_columns(vec![Vector::from_strings([
            "prefix_very_long_AAAA",
            "prefix_very_long_AAAB",
            "prefix_very_long_AAAA",
            "zz",
        ])])
        .unwrap();
        let pipeline = SortPipeline::new(
            short.types(),
            order.clone(),
            SortOptions::single_with_run_rows(2),
        );
        let got_short = pipeline.sort(&short);
        assert_sorted_equal(&got_short, &short, &order);
        // Longer strings change the VARCHAR prefix stat: cached key blocks
        // must be rebuilt, not reused with the stale layout.
        let got_long = pipeline.sort(&long);
        assert_sorted_equal(&got_long, &long, &order);
        let got_short_again = pipeline.sort(&short);
        assert_sorted_equal(&got_short_again, &short, &order);
    }

    #[test]
    fn sorts_strings_with_prefix_ties() {
        let strings = vec![
            "prefix_very_long_AAAA",
            "prefix_very_long_AAAB",
            "prefix_very_long_AAAA",
            "zz",
            "",
            "prefix_very",
        ];
        let chunk = DataChunk::from_columns(vec![Vector::from_strings(strings.clone())]).unwrap();
        let order = OrderBy::ascending(1);
        let pipeline = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions::single_with_run_rows(2),
        );
        let got = pipeline.sort(&chunk);
        assert_sorted_equal(&got, &chunk, &order);
    }

    #[test]
    fn sorts_mixed_schema_with_nulls() {
        let mut chunk = DataChunk::new(&[
            LogicalType::Varchar,
            LogicalType::Int32,
            LogicalType::Float64,
        ]);
        let mut state = 77u64;
        for i in 0..3_000i32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = (state >> 33) as u32;
            let name = if r.is_multiple_of(11) {
                Value::Null
            } else {
                Value::from(format!("name{}", r % 37))
            };
            let year = if r.is_multiple_of(13) {
                Value::Null
            } else {
                Value::Int32(1924 + (r % 69) as i32)
            };
            chunk
                .push_row(&[name, year, Value::Float64(i as f64 * 0.5)])
                .unwrap();
        }
        let order = OrderBy::new(vec![
            OrderByColumn {
                column: 0,
                spec: SortSpec::DESC,
            },
            OrderByColumn {
                column: 1,
                spec: SortSpec::ASC,
            },
        ]);
        let pipeline = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions {
                threads: 3,
                run_rows: 257,
                ..SortOptions::default()
            },
        );
        let got = pipeline.sort(&chunk);
        assert_sorted_equal(&got, &chunk, &order);
    }

    #[test]
    fn empty_input() {
        let chunk = DataChunk::new(&[LogicalType::UInt32]);
        let got = sort_chunk(&chunk, &OrderBy::ascending(1));
        assert!(got.is_empty());
    }

    #[test]
    fn single_row() {
        let chunk = DataChunk::from_columns(vec![Vector::from_u32s(vec![42])]).unwrap();
        let got = sort_chunk(&chunk, &OrderBy::ascending(1));
        assert_eq!(got.row(0), vec![Value::UInt32(42)]);
    }

    #[test]
    fn odd_run_count_cascade() {
        // 5 runs: cascade must handle the odd carry-over.
        let chunk =
            DataChunk::from_columns(vec![Vector::from_u32s(pseudo_random(501, 9, 50))]).unwrap();
        let order = OrderBy::ascending(1);
        let pipeline = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions::single_with_run_rows(101),
        );
        let got = pipeline.sort(&chunk);
        assert_sorted_equal(&got, &chunk, &order);
    }

    #[test]
    fn payload_follows_keys() {
        // Non-key payload column must arrive reordered with its row.
        let keys = pseudo_random(2_000, 10, 100);
        let payload: Vec<u32> = keys.iter().map(|k| k * 7 + 1).collect();
        let chunk =
            DataChunk::from_columns(vec![Vector::from_u32s(keys), Vector::from_u32s(payload)])
                .unwrap();
        let order = OrderBy::new(vec![OrderByColumn::asc(0)]);
        let pipeline = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions::single_with_run_rows(300),
        );
        let got = pipeline.sort(&chunk);
        for i in 0..got.len() {
            let row = got.row(i);
            let (k, p) = match (&row[0], &row[1]) {
                (Value::UInt32(k), Value::UInt32(p)) => (*k, *p),
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(p, k * 7 + 1, "payload detached from its key at row {i}");
        }
    }

    #[test]
    fn zero_threads_and_zero_run_rows_clamp_to_one() {
        // Regression: `SortOptions { threads: 0, .. }` used to trip an
        // assert (and without it would divide by zero in morsel
        // splitting); both knobs now clamp to 1 and the sort completes.
        let chunk =
            DataChunk::from_columns(vec![Vector::from_u32s(pseudo_random(500, 41, 100))]).unwrap();
        let order = OrderBy::ascending(1);
        let pipeline = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions {
                threads: 0,
                run_rows: 0,
                ..SortOptions::default()
            },
        );
        let got = pipeline.sort(&chunk);
        assert_sorted_equal(&got, &chunk, &order);
    }

    #[test]
    fn rowsort_threads_env_zero_clamps_to_one() {
        // Regression: `ROWSORT_THREADS=0` must mean "1 thread", not fall
        // through to hardware parallelism or panic downstream.
        std::env::set_var("ROWSORT_THREADS", "0");
        let got = default_threads();
        std::env::remove_var("ROWSORT_THREADS");
        assert_eq!(got, 1);
    }

    #[test]
    fn sort_populates_profile_and_metrics() {
        use crate::metrics::{Counter, Phase};
        let n = 5_000usize;
        let chunk = DataChunk::from_columns(vec![Vector::from_u32s(pseudo_random(n, 51, 1 << 20))])
            .unwrap();
        let order = OrderBy::ascending(1);
        let pipeline = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions {
                threads: 1,
                run_rows: 700, // 8 runs → 3 merge rounds
                ..SortOptions::default()
            },
        );
        let got = pipeline.sort(&chunk);
        assert_sorted_equal(&got, &chunk, &order);

        let profile = pipeline.last_profile();
        assert_eq!(profile.operator, "pipeline");
        assert_eq!(profile.rows, n as u64);
        assert!(profile.total_ns > 0);
        let m = &profile.metrics;
        assert_eq!(m.counter(Counter::SortCalls), 1);
        assert_eq!(m.counter(Counter::RowsSorted), n as u64);
        assert_eq!(m.counter(Counter::RunsGenerated), 8);
        assert_eq!(m.counter(Counter::RadixSorts), 8, "u32 keys take radix");
        assert!(m.counter(Counter::RadixPasses) >= 8);
        // Single-threaded coded sorts merge all 8 runs in one k-way
        // tree-of-losers round; with OVC off the cascade takes log₂ 8.
        let rounds = if SortOptions::default().ovc { 1 } else { 3 };
        assert_eq!(m.counter(Counter::MergeRounds), rounds);
        assert!(m.counter(Counter::MergeTasks) >= rounds);
        assert!(
            m.counter(Counter::MergeCmps) > 0,
            "merge loop counts compares"
        );
        assert!(
            m.counter(Counter::MergeCmpsOvcResolved) <= m.counter(Counter::MergeCmps),
            "OVC-resolved compares are a subset of all compares"
        );
        if SortOptions::default().ovc {
            // Distinct-heavy u32 keys: the vast majority of merge
            // comparisons must resolve on the code alone.
            assert!(
                m.counter(Counter::MergeCmpsOvcResolved) * 2 > m.counter(Counter::MergeCmps),
                "OVC resolved {} of {} merge compares",
                m.counter(Counter::MergeCmpsOvcResolved),
                m.counter(Counter::MergeCmps)
            );
        }
        assert!(m.counter(Counter::BytesMoved) > 0);
        assert!(m.counter(Counter::PoolMisses) > 0, "cold sort allocates");
        assert!(m.phase(Phase::RunGeneration) > 0);
        assert!(m.phase(Phase::Merge) > 0);
        // Coordinator-measured phases partition the sort: their sum can
        // never exceed the total wall time.
        let active =
            m.phase(Phase::Prepare) + m.phase(Phase::RunGeneration) + m.phase(Phase::Merge);
        assert!(active <= profile.total_ns);

        // The second sort's delta counts only itself; the pool is warm.
        let _again = pipeline.sort(&chunk);
        let second = pipeline.last_profile();
        assert_eq!(second.metrics.counter(Counter::SortCalls), 1);
        assert!(second.metrics.counter(Counter::PoolHits) > 0);
        // Cumulative registry saw both sorts.
        assert_eq!(pipeline.metrics().counter(Counter::SortCalls), 2);
        let text = pipeline.metrics().render();
        assert!(text.contains("counter.rows_sorted: 10000"), "{text}");
        assert!(text.contains("phase.run_generation_ns:"), "{text}");
    }

    #[test]
    fn ovc_output_bit_identical_to_plain_merge() {
        // OVC changes how merge comparisons are computed, never their
        // outcome: whole output (tie order included) must match with it
        // on and off, across thread counts and both key shapes.
        let n = 7_000;
        let keys = pseudo_random(n, 91, 300); // heavy ties
        let strings: Vec<String> = keys
            .iter()
            .map(|k| format!("shared_prefix_{:06}", k % 40))
            .collect();
        let payload: Vec<u32> = (0..n as u32).collect();
        let chunk = DataChunk::from_columns(vec![
            Vector::from_u32s(keys),
            Vector::from_strings(strings.iter().map(|s| s.as_str())),
            Vector::from_u32s(payload),
        ])
        .unwrap();
        let order = OrderBy::new(vec![OrderByColumn::asc(1), OrderByColumn::asc(0)]);
        for threads in [1, 3] {
            let base = SortOptions {
                threads,
                run_rows: 600, // 12 runs → 4 merge rounds
                ovc: false,
            };
            let plain = SortPipeline::new(chunk.types(), order.clone(), base).sort(&chunk);
            let coded = SortPipeline::new(
                chunk.types(),
                order.clone(),
                SortOptions { ovc: true, ..base },
            )
            .sort(&chunk);
            assert_eq!(
                plain.to_rows(),
                coded.to_rows(),
                "threads={threads}: OVC merge diverged from plain merge"
            );
        }
    }

    #[test]
    fn strings_survive_multi_round_merges() {
        // VARCHAR payload across ≥ 2 merge rounds: heap concatenation and
        // b-side offset shifting must compose across rounds.
        let n = 4_000;
        let keys = pseudo_random(n, 14, 500);
        let strings: Vec<String> = keys.iter().map(|k| format!("val_{k:05}")).collect();
        let chunk = DataChunk::from_columns(vec![
            Vector::from_u32s(keys.clone()),
            Vector::from_strings(strings.iter().map(|s| s.as_str())),
        ])
        .unwrap();
        let order = OrderBy::new(vec![OrderByColumn::asc(0)]);
        let pipeline = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions {
                threads: 2,
                run_rows: 300, // 14 runs → 4 merge rounds
                ..SortOptions::default()
            },
        );
        let got = pipeline.sort(&chunk);
        assert_sorted_equal(&got, &chunk, &order);
        for i in 0..got.len() {
            let row = got.row(i);
            let (k, s) = match (&row[0], &row[1]) {
                (Value::UInt32(k), Value::Varchar(s)) => (*k, s.clone()),
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(s, format!("val_{k:05}"), "string detached at row {i}");
        }
    }
}

//! rowsort-lint — in-tree static analysis for the rowsort workspace.
//!
//! A dependency-free analyzer built on a hand-rolled Rust lexer
//! ([`lexer`]), a recursive-descent parser ([`parser`] → [`ast`]), and a
//! per-crate call graph ([`callgraph`]). Analysis runs in two passes:
//!
//! 1. **Per file** ([`analyze_source`]): the token-stream rules
//!    R001–R006 over every `.rs` file and `Cargo.toml`.
//! 2. **Per crate unit** ([`rules::analyze_unit`]): each crate's files
//!    are parsed into ASTs, a symbol table and conservative call graph
//!    are built, and the deep rules run — R010 panic reachability from
//!    `[hot-entry-points]`, R011 atomic-ordering discipline, R012
//!    spill-error observability, R013 unsafe-block budget/SAFETY
//!    completeness.
//!
//! Together they enforce the invariants the sorting paper's performance
//! claims rest on: documented `unsafe`, panic-free and allocation-free
//! hot paths, lossless casts in order-preserving key encodings, sound
//! atomic orderings, observable spill failures, and a hermetic
//! (path-only) dependency closure. See `lint.toml` for rule scoping and
//! `DESIGN.md` for the rationale per rule.
//!
//! Run it as `cargo run -p lint --release` (binary name `rowsort-lint`);
//! `scripts/verify.sh` treats a non-zero exit as a tier-1 failure.

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parser;
pub mod cfg;
pub mod dataflow;
pub mod rules;
pub mod taint;
mod toml_scan;

pub use config::Config;
pub use rules::Finding;

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Wall-clock timing for a workspace run, surfaced by `--timing`.
///
/// Rule timings accumulate per rule group across every file and crate
/// unit; parse timings are one entry per `.rs` file (lex + AST parse in
/// the deep-analysis pass). Collection is always on — two `Instant`
/// reads per rule invocation cost nothing next to the analysis itself —
/// and the CLI decides whether to render it.
#[derive(Debug, Default)]
pub struct Timing {
    /// `(rule id, accumulated elapsed ms)`, insertion-ordered.
    pub rules_ms: Vec<(String, f64)>,
    /// `(repo-relative path, lex+parse elapsed ms)`.
    pub parse_ms: Vec<(String, f64)>,
}

impl Timing {
    /// Accumulate `ms` into the bucket for `rule`.
    pub fn add_rule(&mut self, rule: &str, ms: f64) {
        match self.rules_ms.iter_mut().find(|(r, _)| r == rule) {
            Some((_, total)) => *total += ms,
            None => self.rules_ms.push((rule.to_string(), ms)),
        }
    }

    /// Record the lex+parse time for one file.
    pub fn add_parse(&mut self, path: &str, ms: f64) {
        self.parse_ms.push((path.to_string(), ms));
    }
}

/// Milliseconds elapsed since `t0`, for [`Timing`] buckets.
pub fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1000.0
}

/// Analyze one file's source text. Dispatches on file name: `Cargo.toml`
/// gets the manifest audit (R005), `.rs` gets the token rules.
/// `rel_path` must be workspace-relative with `/` separators.
pub fn analyze_source(rel_path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    analyze_source_timed(rel_path, src, cfg, None)
}

/// [`analyze_source`] with optional per-rule timing capture.
pub fn analyze_source_timed(
    rel_path: &str,
    src: &str,
    cfg: &Config,
    timing: Option<&mut Timing>,
) -> Vec<Finding> {
    if rel_path == "Cargo.toml" || rel_path.ends_with("/Cargo.toml") {
        let t0 = Instant::now();
        let findings = rules::check_manifest(rel_path, src);
        if let Some(t) = timing {
            t.add_rule("R005", ms_since(t0));
        }
        findings
    } else if rel_path.ends_with(".rs") {
        rules::analyze_rust_timed(rel_path, src, cfg, timing)
    } else {
        Vec::new()
    }
}

/// The result of a workspace run: findings split by how they affect the
/// exit code.
#[derive(Debug, Default)]
pub struct Report {
    /// Deny-severity findings not covered by the baseline — these fail
    /// the build.
    pub errors: Vec<Finding>,
    /// Grandfathered (baselined) findings — reported as warnings only.
    pub warnings: Vec<Finding>,
    /// Warn-severity findings (`lint.toml [severity]`) — reported, never
    /// fail the build, never baselined.
    pub warn_severity: Vec<Finding>,
    /// Baseline entries whose file no longer exists in the workspace.
    pub stale_baseline: Vec<baseline::BaselineEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Per-rule and per-file wall-clock timings (`--timing`).
    pub timing: Timing,
}

/// Walk the workspace rooted at `root`, run both analysis passes
/// (per-file token rules, then per-crate-unit AST/call-graph rules), and
/// partition findings against `grandfathered` and the configured
/// severities. Baseline entries pointing at files that no longer exist
/// are reported in [`Report::stale_baseline`] instead of being silently
/// retained.
pub fn run_workspace(
    root: &Path,
    cfg: &Config,
    grandfathered: &[baseline::BaselineEntry],
) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_files(root, root, cfg, &mut files)?;
    files.sort();
    let mut report = Report::default();
    let mut findings = Vec::new();
    // (unit name, files) in first-seen order; ordering findings come from
    // the final sort, but deterministic unit order keeps runs stable.
    let mut units: Vec<(String, Vec<(String, String)>)> = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        report.files_scanned += 1;
        findings.extend(analyze_source_timed(rel, &src, cfg, Some(&mut report.timing)));
        if rel.ends_with(".rs") {
            let unit = crate_unit(rel);
            match units.iter_mut().find(|(u, _)| *u == unit) {
                Some((_, fs)) => fs.push((rel.clone(), src)),
                None => units.push((unit, vec![(rel.clone(), src)])),
            }
        }
    }
    for (_, unit_files) in &units {
        findings.extend(rules::analyze_unit_timed(
            unit_files,
            cfg,
            Some(&mut report.timing),
        ));
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    for f in findings {
        if cfg.severity_of(&f.rule) == config::Severity::Warn {
            report.warn_severity.push(f);
        } else if baseline::contains(grandfathered, &f) {
            report.warnings.push(f);
        } else {
            report.errors.push(f);
        }
    }
    for entry in grandfathered {
        if !files.contains(&entry.path) {
            report.stale_baseline.push(entry.clone());
        }
    }
    Ok(report)
}

/// The crate unit a file belongs to: `crates/<name>/…` → `<name>`,
/// everything else (root `src/`, top-level scripts) → `root`. Call-graph
/// edges never cross units.
fn crate_unit(rel: &str) -> String {
    match rel.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or("root").to_string(),
        None => "root".to_string(),
    }
}

/// Directories never worth descending into, regardless of `lint.toml`.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "vendor"];

fn collect_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_files(root, &path, cfg, out)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            let rel = rel_unix(root, &path);
            if !Config::matches(&cfg.exclude, &rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators (lint findings and glob
/// patterns are platform-independent).
fn rel_unix(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Load `lint.toml` from the workspace root. A missing config is an
/// error: scoped rules without scopes silently check nothing.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    let src = fs::read_to_string(&path).map_err(|e| {
        format!(
            "read {}: {e} (lint.toml is required at the workspace root)",
            path.display()
        )
    })?;
    Ok(Config::parse(&src))
}

/// Load `lint-baseline.json` from the workspace root. A missing file
/// means an empty baseline; a corrupt file is an error.
pub fn load_baseline(root: &Path) -> Result<Vec<baseline::BaselineEntry>, String> {
    let path = root.join("lint-baseline.json");
    match fs::read_to_string(&path) {
        Ok(src) => baseline::parse(&src).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("read {}: {e}", path.display())),
    }
}

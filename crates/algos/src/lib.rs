//! Sorting algorithms for relational data, built from scratch.
//!
//! The paper's methodology (§III) is to hold the *algorithm* fixed while
//! varying data format, comparison strategy, and engine style — so this
//! crate provides each algorithm in two shapes:
//!
//! * **typed** sorts over `&mut [T]` with a caller-supplied `is_less`
//!   (used for columnar index sorting and for "compiled-engine" kernels
//!   where Rust monomorphization plays the role of query compilation), and
//! * **row** sorts over buffers of fixed-width byte rows
//!   ([`rows::RowsMut`]), which physically move whole rows with `memcpy`,
//!   exactly as an NSM sort operator does.
//!
//! Algorithms:
//!
//! * [`insertion`] — insertion sort (small-range base case),
//! * [`heapsort`] — bottom-up heapsort (introsort/pdqsort fallback),
//! * [`introsort`] — Musser's introspective sort, standing in for C++
//!   `std::sort`,
//! * [`mergesort`] — stable top-down merge sort with an auxiliary buffer,
//!   standing in for C++ `std::stable_sort`,
//! * [`pdqsort`] — pattern-defeating quicksort (Peters), with
//!   BlockQuickSort-style branchless partitioning for typed slices,
//! * [`radix`] — LSD and MSD radix sorts over normalized-key rows, with the
//!   paper's "single-bucket skip" optimization,
//! * [`merge_path`] — Merge Path diagonal partitioning for parallel merges,
//! * [`kway`] — loser-tree k-way merge.

pub mod heapsort;
pub mod insertion;
pub mod introsort;
pub mod kway;
pub mod merge_path;
pub mod mergesort;
pub mod pdqsort;
pub mod radix;
pub mod rows;

pub use merge_path::merge_path_partition;
pub use rows::RowsMut;

//! Figure 12's end-to-end workload: random integers and floats.

use rowsort_testkit::Rng;

/// The integers `0..n`, shuffled — the paper's first Figure 12 data set
/// ("32-bit integers from 0 to 99,999,999, shuffled").
pub fn shuffled_integers(n: usize, seed: u64) -> Vec<i32> {
    let mut v: Vec<i32> = (0..n as i32).collect();
    let mut rng = Rng::seed_from_u64(seed ^ 0x00c0_ffee_1234_5678);
    rng.shuffle(&mut v);
    v
}

/// `n` floats uniform in `[-1e9, 1e9]` — the paper's second Figure 12 data
/// set.
pub fn uniform_floats(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x0f10_a7f0_0d5e_edaa);
    (0..n).map(|_| rng.f32_range(-1e9, 1e9)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffled_integers_is_a_permutation() {
        let v = shuffled_integers(10_000, 1);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10_000).collect::<Vec<i32>>());
        // And actually shuffled (first elements are not 0,1,2,...).
        assert_ne!(&v[..100], &sorted[..100]);
    }

    #[test]
    fn floats_in_range() {
        let v = uniform_floats(10_000, 2);
        assert!(v.iter().all(|&f| (-1e9..=1e9).contains(&f)));
        // Roughly centred.
        let mean: f64 = v.iter().map(|&f| f as f64).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 5e7, "mean {mean}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(shuffled_integers(1000, 5), shuffled_integers(1000, 5));
        assert_eq!(uniform_floats(1000, 5), uniform_floats(1000, 5));
        assert_ne!(shuffled_integers(1000, 5), shuffled_integers(1000, 6));
    }
}

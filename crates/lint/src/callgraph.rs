//! Workspace symbol table and conservative intra-crate call graph.
//!
//! Nodes are the functions of one *crate unit* (one crate's files, parsed
//! by [`crate::parser`]); edges are call sites resolved by name:
//!
//! - `free(…)` resolves to free functions named `free` (falling back to
//!   associated functions of that name — `helper(x)` inside an impl);
//! - `Type::method(…)` resolves to the method with that qualified name;
//!   `Self::method(…)` resolves to *every* method named `method` (the
//!   parser does not track which impl a call site sits in);
//! - `recv.method(…)` resolves to **all** same-unit methods named
//!   `method` — receiver types are unknown, so this over-approximates.
//!
//! Over-approximation is the point: the graph answers "could a panic be
//! reachable from this entry point", and a sound "no" requires every
//! plausible edge. The cost is occasional false chains through unrelated
//! same-name methods, paid for with a reasoned `lint:allow`.
//!
//! Cross-crate calls resolve to nothing (each crate declares its own
//! entry points in `lint.toml [hot-entry-points]`), and test functions
//! are excluded from the graph entirely — they are neither reachable
//! from production entries nor valid resolution targets.

use crate::ast::{self, Block, Expr, File};
use crate::rules::Finding;
use std::collections::{HashMap, VecDeque};

/// Macros that panic by definition (the `assert!` family is deliberately
/// excluded, matching the token-level R002 rule: assertions in cold
/// validation code are a supported pattern).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// One parsed file of a crate unit.
pub struct UnitFile {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// Parsed AST.
    pub file: File,
    /// Whole file is test scaffolding (`lint.toml [test-paths]`).
    pub is_test: bool,
}

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// `free(…)` or `module::free(…)` — resolve by bare function name.
    Free(String),
    /// `Type::method(…)` / `Self::method(…)` — resolve by qualified name.
    Qualified(String, String),
    /// `recv.method(…)` — resolve to every method with this name.
    Method(String),
}

/// One outgoing call from a function body.
#[derive(Debug)]
pub struct CallSite {
    /// What the call names.
    pub target: Target,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
}

/// One direct panic source in a function body.
#[derive(Debug)]
pub struct PanicSite {
    /// Human description (`` `panic!` ``, `` `.unwrap()` ``, …).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One function in the graph.
pub struct FnNode {
    /// Qualified name (`Type::method` or bare `free_fn`).
    pub qual: String,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Normalized return-type text (empty for unit).
    pub ret: String,
    /// Outgoing call sites (unresolved).
    pub calls: Vec<CallSite>,
    /// Direct panic sources.
    pub panics: Vec<PanicSite>,
}

/// The call graph of one crate unit.
pub struct Graph {
    /// All non-test functions of the unit.
    pub nodes: Vec<FnNode>,
    /// Resolved adjacency (node index → callee node indices).
    edges: Vec<Vec<usize>>,
    free_by_name: HashMap<String, Vec<usize>>,
    methods_by_name: HashMap<String, Vec<usize>>,
    by_qual: HashMap<String, Vec<usize>>,
}

impl Graph {
    /// Build the graph for one crate unit.
    pub fn build(files: &[UnitFile]) -> Graph {
        let mut nodes = Vec::new();
        for uf in files {
            ast::for_each_fn(&uf.file, &mut |f, is_test| {
                if uf.is_test || is_test {
                    return;
                }
                let (calls, panics) = match &f.body {
                    Some(b) => scan_body(b),
                    None => (Vec::new(), Vec::new()),
                };
                nodes.push(FnNode {
                    qual: f.qual.clone(),
                    file: uf.path.clone(),
                    line: f.line,
                    ret: f.ret.clone(),
                    calls,
                    panics,
                });
            });
        }
        let mut free_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut methods_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_qual: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_qual.entry(n.qual.clone()).or_default().push(i);
            match n.qual.rsplit_once("::") {
                Some((_, name)) => methods_by_name.entry(name.to_string()).or_default().push(i),
                None => free_by_name.entry(n.qual.clone()).or_default().push(i),
            }
        }
        let mut graph = Graph {
            edges: vec![Vec::new(); nodes.len()],
            nodes,
            free_by_name,
            methods_by_name,
            by_qual,
        };
        for i in 0..graph.nodes.len() {
            let mut targets = Vec::new();
            for call in &graph.nodes[i].calls {
                targets.extend(graph.resolve(&call.target));
            }
            targets.sort_unstable();
            targets.dedup();
            graph.edges[i] = targets;
        }
        graph
    }

    /// All node indices a call target may refer to.
    pub fn resolve(&self, target: &Target) -> Vec<usize> {
        match target {
            Target::Free(name) => self
                .free_by_name
                .get(name)
                .or_else(|| self.methods_by_name.get(name))
                .cloned()
                .unwrap_or_default(),
            Target::Qualified(ty, method) => {
                if ty == "Self" {
                    self.methods_by_name
                        .get(method)
                        .cloned()
                        .unwrap_or_default()
                } else {
                    self.by_qual
                        .get(&format!("{ty}::{method}"))
                        .cloned()
                        .unwrap_or_default()
                }
            }
            Target::Method(name) => self.methods_by_name.get(name).cloned().unwrap_or_default(),
        }
    }

    /// Find the node declared in `file` with qualified name `qual`.
    pub fn find(&self, file: &str, qual: &str) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.file == file && n.qual == qual)
    }

    /// R010: for every panic site reachable from `entries` (given as
    /// `(file, qual)` pairs), emit one finding at the panic site with the
    /// shortest call chain from the first entry that reaches it. Visited
    /// sets bound the BFS, so recursive and diamond-shaped call graphs
    /// terminate and report each site once.
    pub fn panic_reachability(&self, entries: &[(String, String)]) -> Vec<Finding> {
        let mut findings = Vec::new();
        // (file, line, col) of sites already reported.
        let mut claimed: Vec<(String, u32, u32)> = Vec::new();
        for (file, qual) in entries {
            let Some(start) = self.find(file, qual) else {
                continue;
            };
            // BFS with parent pointers for shortest-chain rendering.
            let mut parent: HashMap<usize, usize> = HashMap::new();
            let mut visited = vec![false; self.nodes.len()];
            let mut queue = VecDeque::new();
            visited[start] = true;
            queue.push_back(start);
            let mut order = Vec::new();
            while let Some(i) = queue.pop_front() {
                order.push(i);
                for &j in &self.edges[i] {
                    if !visited[j] {
                        visited[j] = true;
                        parent.insert(j, i);
                        queue.push_back(j);
                    }
                }
            }
            for i in order {
                let node = &self.nodes[i];
                for p in &node.panics {
                    let key = (node.file.clone(), p.line, p.col);
                    if claimed.contains(&key) {
                        continue;
                    }
                    claimed.push(key);
                    let mut chain = vec![i];
                    let mut cur = i;
                    while let Some(&prev) = parent.get(&cur) {
                        chain.push(prev);
                        cur = prev;
                    }
                    chain.reverse();
                    let rendered: Vec<&str> =
                        chain.iter().map(|&k| self.nodes[k].qual.as_str()).collect();
                    findings.push(Finding {
                        rule: "R010".to_string(),
                        path: node.file.clone(),
                        line: p.line,
                        col: p.col,
                        message: format!(
                            "{} reachable from hot-path entry `{qual}` via {} — hot \
                             entries and everything they call must be panic-free",
                            p.what,
                            rendered.join(" -> "),
                        ),
                    });
                }
            }
        }
        findings
    }
}

/// Extract call sites and direct panic sources from a function body.
pub fn scan_body(body: &Block) -> (Vec<CallSite>, Vec<PanicSite>) {
    let mut calls = Vec::new();
    let mut panics = Vec::new();
    body.walk_exprs(&mut |e| match e {
        Expr::Call {
            callee, line, col, ..
        } => {
            calls.push(CallSite {
                target: classify(callee),
                line: *line,
                col: *col,
            });
        }
        Expr::Method {
            name, line, col, ..
        } => {
            if name == "unwrap" || name == "expect" {
                panics.push(PanicSite {
                    what: format!("`.{name}()`"),
                    line: *line,
                    col: *col,
                });
            }
            calls.push(CallSite {
                target: Target::Method(name.clone()),
                line: *line,
                col: *col,
            });
        }
        Expr::Macro {
            name, line, col, ..
        } => {
            if PANIC_MACROS.contains(&name.as_str()) {
                panics.push(PanicSite {
                    what: format!("`{name}!`"),
                    line: *line,
                    col: *col,
                });
            }
        }
        Expr::Index {
            literal: true,
            line,
            col,
            ..
        } => {
            panics.push(PanicSite {
                what: "slice indexed by integer literal".to_string(),
                line: *line,
                col: *col,
            });
        }
        _ => {}
    });
    (calls, panics)
}

/// Classify a `::`-joined callee path into a resolution target.
pub fn classify(callee: &str) -> Target {
    match callee.rsplit_once("::") {
        None => Target::Free(callee.to_string()),
        Some((head, last)) => {
            let ty = head.rsplit("::").next().unwrap_or(head);
            if ty == "Self" || ty.chars().next().is_some_and(|c| c.is_uppercase()) {
                Target::Qualified(ty.to_string(), last.to_string())
            } else {
                // Module-qualified free function (`mod::helper(…)`).
                Target::Free(last.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn unit(files: &[(&str, &str)]) -> Graph {
        let ufs: Vec<UnitFile> = files
            .iter()
            .map(|(p, s)| UnitFile {
                path: p.to_string(),
                file: parse(&lex(s)),
                is_test: false,
            })
            .collect();
        Graph::build(&ufs)
    }

    #[test]
    fn diamond_reports_shortest_chain_once() {
        let g = unit(&[(
            "d.rs",
            "fn entry() { left(); right(); }\n\
             fn left() { sink(); }\n\
             fn right() { mid(); }\n\
             fn mid() { sink(); }\n\
             fn sink(v: &[u8]) { v.first().unwrap(); }\n",
        )]);
        let f = g.panic_reachability(&[("d.rs".into(), "entry".into())]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].path.as_str(), f[0].line), ("d.rs", 5));
        assert!(
            f[0].message.contains("entry -> left -> sink"),
            "shortest chain expected: {}",
            f[0].message
        );
    }

    #[test]
    fn recursion_terminates() {
        let g = unit(&[(
            "r.rs",
            "fn entry(n: u32) { if n > 0 { entry(n - 1); } helper(n); }\n\
             fn helper(n: u32) { if n > 1 { entry(n); } panic!(\"boom\"); }\n",
        )]);
        let f = g.panic_reachability(&[("r.rs".into(), "entry".into())]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("entry -> helper"));
    }

    #[test]
    fn trait_method_calls_reach_impls() {
        let g = unit(&[(
            "t.rs",
            "trait Step { fn step(&self); }\n\
             struct A;\n\
             impl Step for A { fn step(&self) { core_of_a(); } }\n\
             fn core_of_a() { todo!() }\n\
             fn entry(s: &dyn Step) { s.step(); }\n",
        )]);
        let f = g.panic_reachability(&[("t.rs".into(), "entry".into())]);
        assert_eq!(f.len(), 1);
        assert!(
            f[0].message.contains("entry -> A::step -> core_of_a"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn test_functions_are_not_nodes() {
        let g = unit(&[(
            "x.rs",
            "fn entry() { helper(); }\n\
             fn helper() {}\n\
             #[cfg(test)] mod tests { fn helper() { panic!(\"test only\") } }\n",
        )]);
        let f = g.panic_reachability(&[("x.rs".into(), "entry".into())]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cross_file_edges_within_a_unit() {
        let g = unit(&[
            ("a.rs", "pub fn entry() { lib_helper(); }\n"),
            ("b.rs", "pub fn lib_helper(v: &[u8]) { v[0]; }\n"),
        ]);
        let f = g.panic_reachability(&[("a.rs".into(), "entry".into())]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].path, "b.rs");
        assert!(f[0].message.contains("slice indexed by integer literal"));
    }

    #[test]
    fn ret_types_are_recorded_for_trait_decls() {
        let g = unit(&[(
            "io.rs",
            "trait SpillIo { fn delete(&self, p: &str) -> Result<(), SpillError>; }\n",
        )]);
        let idx = g.find("io.rs", "SpillIo::delete").unwrap();
        assert_eq!(g.nodes[idx].ret, "Result<(),SpillError>");
        assert_eq!(g.resolve(&Target::Method("delete".into())), vec![idx]);
    }
}

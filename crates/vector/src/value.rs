//! A single, nullable cell value.

use crate::types::LogicalType;
use std::cmp::Ordering;

/// One cell of relational data.
///
/// `Value` is the slow, boxed representation used at API boundaries, in the
/// reference query executor, and throughout the test suite as ground truth.
/// Hot paths never materialize `Value`s; they operate on [`crate::Vector`]
/// storage or on NSM rows directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL (untyped; the containing vector carries the type).
    Null,
    /// BOOLEAN.
    Boolean(bool),
    /// TINYINT.
    Int8(i8),
    /// SMALLINT.
    Int16(i16),
    /// INTEGER.
    Int32(i32),
    /// BIGINT.
    Int64(i64),
    /// UTINYINT.
    UInt8(u8),
    /// USMALLINT.
    UInt16(u16),
    /// UINTEGER.
    UInt32(u32),
    /// UBIGINT.
    UInt64(u64),
    /// REAL.
    Float32(f32),
    /// DOUBLE.
    Float64(f64),
    /// DATE (days since epoch).
    Date(i32),
    /// TIMESTAMP (microseconds since epoch).
    Timestamp(i64),
    /// VARCHAR.
    Varchar(String),
}

impl Value {
    /// `true` iff this is SQL NULL.
    pub const fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The logical type of this value, or `None` for NULL (which is untyped).
    pub fn logical_type(&self) -> Option<LogicalType> {
        Some(match self {
            Value::Null => return None,
            Value::Boolean(_) => LogicalType::Boolean,
            Value::Int8(_) => LogicalType::Int8,
            Value::Int16(_) => LogicalType::Int16,
            Value::Int32(_) => LogicalType::Int32,
            Value::Int64(_) => LogicalType::Int64,
            Value::UInt8(_) => LogicalType::UInt8,
            Value::UInt16(_) => LogicalType::UInt16,
            Value::UInt32(_) => LogicalType::UInt32,
            Value::UInt64(_) => LogicalType::UInt64,
            Value::Float32(_) => LogicalType::Float32,
            Value::Float64(_) => LogicalType::Float64,
            Value::Date(_) => LogicalType::Date,
            Value::Timestamp(_) => LogicalType::Timestamp,
            Value::Varchar(_) => LogicalType::Varchar,
        })
    }

    /// Compare two non-NULL values of the same type.
    ///
    /// Floats use IEEE-754 `total_cmp`, matching the total order that
    /// normalized-key encoding produces (NaN sorts above +inf). Comparing
    /// NULLs or mismatched types is a logic error and panics; NULL ordering
    /// is a property of the ORDER BY clause, handled by
    /// [`crate::SortSpec::compare_values`].
    pub fn compare_non_null(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Boolean(a), Value::Boolean(b)) => a.cmp(b),
            (Value::Int8(a), Value::Int8(b)) => a.cmp(b),
            (Value::Int16(a), Value::Int16(b)) => a.cmp(b),
            (Value::Int32(a), Value::Int32(b)) => a.cmp(b),
            (Value::Int64(a), Value::Int64(b)) => a.cmp(b),
            (Value::UInt8(a), Value::UInt8(b)) => a.cmp(b),
            (Value::UInt16(a), Value::UInt16(b)) => a.cmp(b),
            (Value::UInt32(a), Value::UInt32(b)) => a.cmp(b),
            (Value::UInt64(a), Value::UInt64(b)) => a.cmp(b),
            (Value::Float32(a), Value::Float32(b)) => a.total_cmp(b),
            (Value::Float64(a), Value::Float64(b)) => a.total_cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Timestamp(a), Value::Timestamp(b)) => a.cmp(b),
            (Value::Varchar(a), Value::Varchar(b)) => a.as_bytes().cmp(b.as_bytes()),
            (a, b) => panic!("compare_non_null on incompatible values {a:?} vs {b:?}"),
        }
    }

    /// Extract an `i64` from any integer-like value. `None` for other types.
    pub fn as_i64(&self) -> Option<i64> {
        Some(match self {
            Value::Int8(v) => *v as i64,
            Value::Int16(v) => *v as i64,
            Value::Int32(v) => *v as i64,
            Value::Int64(v) => *v,
            Value::UInt8(v) => *v as i64,
            Value::UInt16(v) => *v as i64,
            Value::UInt32(v) => *v as i64,
            Value::UInt64(v) => i64::try_from(*v).ok()?,
            Value::Date(v) => *v as i64,
            Value::Timestamp(v) => *v,
            _ => return None,
        })
    }

    /// Extract an `f64` from any numeric value. `None` for other types.
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self {
            Value::Float32(v) => *v as f64,
            Value::Float64(v) => *v,
            other => other.as_i64()? as f64,
        })
    }

    /// Extract a string slice from a VARCHAR value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Boolean(v) => write!(f, "{v}"),
            Value::Int8(v) => write!(f, "{v}"),
            Value::Int16(v) => write!(f, "{v}"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::UInt8(v) => write!(f, "{v}"),
            Value::UInt16(v) => write!(f, "{v}"),
            Value::UInt32(v) => write!(f, "{v}"),
            Value::UInt64(v) => write!(f, "{v}"),
            Value::Float32(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "date({v})"),
            Value::Timestamp(v) => write!(f, "ts({v})"),
            Value::Varchar(v) => write!(f, "'{v}'"),
        }
    }
}

macro_rules! impl_from {
    ($rust:ty => $variant:ident) => {
        impl From<$rust> for Value {
            fn from(v: $rust) -> Value {
                Value::$variant(v)
            }
        }
    };
}

impl_from!(bool => Boolean);
impl_from!(i8 => Int8);
impl_from!(i16 => Int16);
impl_from!(i32 => Int32);
impl_from!(i64 => Int64);
impl_from!(u8 => UInt8);
impl_from!(u16 => UInt16);
impl_from!(u32 => UInt32);
impl_from!(u64 => UInt64);
impl_from!(f32 => Float32);
impl_from!(f64 => Float64);
impl_from!(String => Varchar);

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Varchar(v.to_owned())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_properties() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.logical_type(), None);
        assert!(!Value::Int32(0).is_null());
    }

    #[test]
    fn logical_types() {
        assert_eq!(Value::UInt32(7).logical_type(), Some(LogicalType::UInt32));
        assert_eq!(
            Value::Varchar("x".into()).logical_type(),
            Some(LogicalType::Varchar)
        );
        assert_eq!(Value::Date(1).logical_type(), Some(LogicalType::Date));
    }

    #[test]
    fn integer_comparisons() {
        assert_eq!(
            Value::Int32(-5).compare_non_null(&Value::Int32(3)),
            Ordering::Less
        );
        assert_eq!(
            Value::UInt64(10).compare_non_null(&Value::UInt64(10)),
            Ordering::Equal
        );
    }

    #[test]
    fn float_total_order() {
        // total_cmp: -NaN < -inf < ... < +inf < +NaN
        assert_eq!(
            Value::Float64(f64::NEG_INFINITY).compare_non_null(&Value::Float64(-1.0)),
            Ordering::Less
        );
        assert_eq!(
            Value::Float64(f64::NAN).compare_non_null(&Value::Float64(f64::INFINITY)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Float32(-0.0).compare_non_null(&Value::Float32(0.0)),
            Ordering::Less,
            "total order distinguishes -0.0 from +0.0"
        );
    }

    #[test]
    fn string_comparison_is_bytewise() {
        assert_eq!(
            Value::from("GERMANY").compare_non_null(&Value::from("NETHERLANDS")),
            Ordering::Less
        );
        assert_eq!(
            Value::from("abc").compare_non_null(&Value::from("ab")),
            Ordering::Greater
        );
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn mismatched_types_panic() {
        let _ = Value::Int32(1).compare_non_null(&Value::Int64(1));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3u32), Value::UInt32(3));
        assert_eq!(Value::from(Some(3i64)), Value::Int64(3));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from("hi"), Value::Varchar("hi".into()));
    }

    #[test]
    fn numeric_extraction() {
        assert_eq!(Value::Int16(-4).as_i64(), Some(-4));
        assert_eq!(Value::UInt64(u64::MAX).as_i64(), None);
        assert_eq!(Value::Float32(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::from("s").as_f64(), None);
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::Int32(1).as_str(), None);
    }
}

//! Walk the paper's §IV–§VI design space on one workload and print a
//! mini version of its figures: every (format × comparison strategy ×
//! comparator binding) combination, timed on the same data.
//!
//! Run with `cargo run --release --example design_space`.

use rowsort::core::strategy::{
    columnar_subsort, columnar_tuple, normkey_radix, normkey_sort, row_subsort, row_tuple_dynamic,
    row_tuple_static, to_static_rows, Algo, ByteRows, NormRows,
};
use rowsort::datagen::{key_columns, KeyDistribution};
use std::time::Instant;

fn time(label: &str, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    let secs = start.elapsed().as_secs_f64();
    println!("{label:<42} {:>9.2} ms", secs * 1e3);
    secs
}

fn main() {
    let n = 1 << 18;
    let ncols = 4;
    let dist = KeyDistribution::Correlated(0.5);
    println!(
        "design space on {} rows x {} key columns, {} distribution\n",
        n,
        ncols,
        dist.label()
    );
    let cols = key_columns(dist, n, ncols, 42);

    println!("-- DSM (columnar): sort an index array --");
    let t_col_tuple = time("columnar tuple-at-a-time (introsort)", || {
        std::hint::black_box(columnar_tuple(&cols, Algo::Introsort));
    });
    let t_col_sub = time("columnar subsort (introsort)", || {
        std::hint::black_box(columnar_subsort(&cols, Algo::Introsort));
    });

    println!("\n-- NSM (rows): physically move tuples --");
    let t_row_static = time("row tuple-at-a-time, static cmp (compiled)", || {
        let mut rows = to_static_rows::<4>(&cols);
        row_tuple_static(&mut rows, Algo::Introsort);
        std::hint::black_box(rows.len());
    });
    let t_row_dyn = time("row tuple-at-a-time, dynamic cmp (interp.)", || {
        let mut rows = ByteRows::from_cols(&cols);
        row_tuple_dynamic(&mut rows, Algo::Introsort);
        std::hint::black_box(rows.len());
    });
    let t_row_sub = time("row subsort", || {
        let mut rows = ByteRows::from_cols(&cols);
        row_subsort(&mut rows, Algo::Introsort);
        std::hint::black_box(rows.len());
    });

    println!("\n-- §VI: normalized keys (the interpreted engine's cure) --");
    let t_nk_pdq = time("normalized keys + pdqsort(memcmp)", || {
        let mut rows = NormRows::from_cols(&cols);
        normkey_sort(&mut rows, Algo::Pdq);
        std::hint::black_box(rows.len());
    });
    let t_nk_radix = time("normalized keys + radix sort", || {
        let mut rows = NormRows::from_cols(&cols);
        normkey_radix(&mut rows);
        std::hint::black_box(rows.len());
    });

    println!("\n-- the paper's narrative, in ratios --");
    println!(
        "rows beat columns:            row-static is {:.1}x faster than columnar tuple",
        t_col_tuple / t_row_static
    );
    println!(
        "interpretation overhead:      dynamic comparator is {:.1}x slower than static",
        t_row_dyn / t_row_static
    );
    println!(
        "normalized keys cure it:      normkey+pdq within {:.2}x of the compiled comparator",
        t_nk_pdq / t_row_static
    );
    println!(
        "radix goes further:           radix is {:.1}x faster than pdq(memcmp)",
        t_nk_pdq / t_nk_radix
    );
    println!(
        "(columnar subsort helped DSM: {:.2}x over columnar tuple; row subsort: {:.2}x over \
         dynamic rows)",
        t_col_tuple / t_col_sub,
        t_row_dyn / t_row_sub,
    );
}

//! Worklist dataflow over [`crate::cfg`] and the rules built on it.
//!
//! One abstract value ([`AbsVal`]) carries every fact the deep rules
//! need, so each function body is analyzed once:
//!
//! - `len_derived` — the value came from `.len()` (or another
//!   length-producing method/field) and arithmetic over such values.
//! - `tainted` — the value was decoded from bytes a configured taint
//!   source produced (spill reads), and no sanitizer intervened.
//! - `checked_must` / `checked_may` — a dominating comparison (branch
//!   edge or `assert!` guard) upper-bounds the value on *all* / *some*
//!   paths reaching the program point.
//! - `id_derived` — the value derives from a worker/morsel identity: a
//!   closure parameter seeded by the caller, or a `fetch_add` ticket.
//!
//! Joins are conservative in the lint direction: must-facts AND across
//! paths, may-facts OR. Branch refinement reads the recorded operator
//! chain of the condition (`i < len`, `seg_len > MAX`, `a == b`, `&&`
//! conjunctions, `!` negation) and strengthens the refutable side's
//! facts on the edge where the comparison holds.
//!
//! The lattice is deliberately small and the solver caps its iteration
//! count, so analysis stays linear-ish even on parse-recovered garbage.

use crate::ast::{Expr, File, FnItem, Stmt};
use crate::cfg::{Bb, Cfg, Instr, Term};
use crate::config::Config;
use std::collections::BTreeMap;

/// Methods that return a length (seed `len_derived`).
const LEN_METHODS: &[&str] = &["len", "capacity", "key_width", "encoded_width", "width"];

/// Field names read as lengths/extents in this codebase (seed
/// `len_derived`). Heuristic by design: a field the analysis cannot see
/// the definition of is trusted only if it is *named* like an extent.
const LEN_FIELDS: &[&str] = &[
    "len", "total", "width", "size", "count", "stride", "capacity", "arity",
];

/// Pointer/slice operations whose first argument (or only argument) is
/// an element offset that must be justified (rule R020/R022).
pub const PTR_OPS: &[&str] = &["add", "offset", "get_unchecked", "get_unchecked_mut"];

/// Sanitizing calls that are always recognized, before configuration:
/// clamping and checked narrowing.
const BUILTIN_SANITIZERS: &[&str] = &[".min", "min", ".try_into", "try_from"];

/// Source/sanitizer/sink call lists resolved from `lint.toml`.
#[derive(Debug, Default)]
pub struct TaintSpec {
    /// Calls whose results (and `&mut` local arguments) are untrusted.
    pub sources: Vec<String>,
    /// Calls that launder a tainted value.
    pub sanitizers: Vec<String>,
    /// Calls whose first argument must not be tainted.
    pub sinks: Vec<String>,
    /// Function names/quals resolved (by the returns-source fixed point)
    /// to return tainted data.
    pub dynamic_sources: Vec<String>,
}

impl TaintSpec {
    /// Build from configuration.
    pub fn from_config(cfg: &Config) -> TaintSpec {
        TaintSpec {
            sources: cfg.taint_sources.clone(),
            sanitizers: cfg.taint_sanitizers.clone(),
            sinks: cfg.taint_sinks.clone(),
            dynamic_sources: Vec::new(),
        }
    }

    fn is_source_method(&self, name: &str) -> bool {
        list_matches_method(&self.sources, name)
            || self
                .dynamic_sources
                .iter()
                .any(|d| d.rsplit("::").next().unwrap_or(d) == name)
    }
    fn is_source_call(&self, callee: &str) -> bool {
        list_matches_path(&self.sources, callee)
            || self
                .dynamic_sources
                .iter()
                .any(|d| callee == d || callee.ends_with(&format!("::{d}")))
    }
    fn is_sanitizer_method(&self, name: &str) -> bool {
        list_matches_method(BUILTIN_SANITIZERS_OWNED(), name)
            || list_matches_method(&self.sanitizers, name)
    }
    fn is_sanitizer_call(&self, callee: &str) -> bool {
        list_matches_path(BUILTIN_SANITIZERS_OWNED(), callee)
            || list_matches_path(&self.sanitizers, callee)
    }
}

/// `BUILTIN_SANITIZERS` as `String`s, built once.
#[allow(non_snake_case)]
fn BUILTIN_SANITIZERS_OWNED() -> &'static [String] {
    use std::sync::OnceLock;
    static CELL: OnceLock<Vec<String>> = OnceLock::new();
    CELL.get_or_init(|| BUILTIN_SANITIZERS.iter().map(|s| s.to_string()).collect())
}

/// `.name` entries match a method call by name.
fn list_matches_method(list: &[String], name: &str) -> bool {
    list.iter()
        .any(|e| e.strip_prefix('.').is_some_and(|m| m == name))
}

/// Path entries match a call's `::`-joined callee by suffix.
fn list_matches_path(list: &[String], callee: &str) -> bool {
    list.iter().any(|e| {
        !e.starts_with('.') && (callee == e || callee.ends_with(&format!("::{e}")))
    })
}

/// The abstract value for one local.
#[derive(Debug, Clone, Default)]
pub struct AbsVal {
    /// Derived from a length (must-fact across paths).
    pub len_derived: bool,
    /// A literal or `SCREAMING_CASE` constant.
    pub constant: bool,
    /// Decoded from untrusted source bytes (may-fact).
    pub tainted: bool,
    /// Upper-bounded by a dominating comparison on every path.
    pub checked_must: bool,
    /// Upper-bounded on at least one path.
    pub checked_may: bool,
    /// Derived from the worker/morsel identity (must-fact).
    pub id_derived: bool,
    /// Def-use chain fragments for finding messages, most recent first.
    pub chain: Vec<String>,
}

impl AbsVal {
    fn flags(&self) -> u8 {
        u8::from(self.len_derived)
            | u8::from(self.constant) << 1
            | u8::from(self.tainted) << 2
            | u8::from(self.checked_must) << 3
            | u8::from(self.checked_may) << 4
            | u8::from(self.id_derived) << 5
    }

    /// Path-join (state merge): must-facts AND, may-facts OR.
    fn join_path(&mut self, other: &AbsVal) -> bool {
        let before = self.flags();
        self.len_derived &= other.len_derived;
        self.constant &= other.constant;
        self.tainted |= other.tainted;
        self.checked_must &= other.checked_must;
        self.checked_may |= other.checked_may;
        self.id_derived &= other.id_derived;
        if self.chain.is_empty() {
            self.chain = other.chain.clone();
        }
        self.flags() != before
    }

    /// Operand-join (arithmetic over several inputs): provenance facts
    /// OR (any length/id/taint contributor marks the result), constants
    /// AND. Bound checks do not survive arithmetic at all: `byte` being
    /// checked says nothing about `r * width + byte`, and propagating
    /// even `checked_may` would make every value computed from a checked
    /// one a lost-guard candidate.
    fn join_operand(&mut self, other: &AbsVal) {
        self.len_derived |= other.len_derived;
        self.constant &= other.constant;
        self.tainted |= other.tainted;
        self.checked_must = false;
        self.checked_may = false;
        self.id_derived |= other.id_derived;
        if self.chain.is_empty() {
            self.chain = other.chain.clone();
        }
    }
}

/// Per-variable abstract state at one program point.
pub type State = BTreeMap<String, AbsVal>;

fn join_state(into: &mut State, from: &State) -> bool {
    let mut changed = false;
    let default = AbsVal::default();
    for (k, v) in from {
        changed |= into.entry(k.clone()).or_default().join_path(v);
    }
    // Vars known on the `into` side but not on `from` lose must-facts.
    for (k, v) in into.iter_mut() {
        if !from.contains_key(k) {
            changed |= v.join_path(&default);
        }
    }
    changed
}

/// The analysis engine for one function/closure frame.
pub struct Engine<'s> {
    /// Source/sanitizer/sink configuration.
    pub spec: &'s TaintSpec,
}

/// Analysis result: the state before every instruction of every
/// (reachable) block. Unreachable blocks carry an empty vector.
pub struct Flow {
    /// `before[bb][i]` is the state before instruction `i` of block `bb`;
    /// empty for unreachable blocks.
    pub before: Vec<Vec<State>>,
}

impl<'s> Engine<'s> {
    /// Solve the frame to fixpoint. `seed` populates the entry state
    /// (parameter facts; R022 seeds worker-id parameters here).
    pub fn run(&self, cfg: &Cfg<'_>, seed: &State) -> Flow {
        let n = cfg.blocks.len();
        let mut inn: Vec<Option<State>> = vec![None; n];
        inn[0] = Some(seed.clone());
        let mut work = vec![0usize];
        let mut steps = 0usize;
        let cap = 16 * (n + 4) * (n + 4);
        while let Some(bb) = work.pop() {
            steps += 1;
            if steps > cap {
                break; // hard cap: garbage input must still terminate
            }
            let Some(state0) = inn[bb].clone() else {
                continue;
            };
            let out = self.transfer_block(&cfg.blocks[bb], state0, None);
            for (succ, refined) in self.succ_states(&cfg.blocks[bb], &out) {
                let changed = match &mut inn[succ] {
                    Some(s) => join_state(s, &refined),
                    slot @ None => {
                        *slot = Some(refined);
                        true
                    }
                };
                if changed && !work.contains(&succ) {
                    work.push(succ);
                }
            }
        }
        // Recording pass: states before each instruction.
        let mut before = vec![Vec::new(); n];
        for bb in 0..n {
            if let Some(state0) = inn[bb].clone() {
                let mut rec = Vec::with_capacity(cfg.blocks[bb].instrs.len());
                self.transfer_block(&cfg.blocks[bb], state0, Some(&mut rec));
                before[bb] = rec;
            }
        }
        Flow { before }
    }

    /// Successor blocks with edge-refined copies of `out`.
    fn succ_states(&self, bb: &Bb<'_>, out: &State) -> Vec<(usize, State)> {
        match &bb.term {
            Term::Goto(s) => vec![(*s, out.clone())],
            Term::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let mut t = out.clone();
                self.refine(&mut t, cond, true);
                let mut e = out.clone();
                self.refine(&mut e, cond, false);
                vec![(*then_bb, t), (*else_bb, e)]
            }
            Term::Switch(targets) => targets.iter().map(|s| (*s, out.clone())).collect(),
            Term::Return => Vec::new(),
        }
    }

    fn transfer_block(
        &self,
        bb: &Bb<'_>,
        mut state: State,
        mut record: Option<&mut Vec<State>>,
    ) -> State {
        for instr in &bb.instrs {
            if let Some(rec) = record.as_deref_mut() {
                rec.push(state.clone());
            }
            self.transfer(instr, &mut state);
        }
        state
    }

    fn transfer(&self, instr: &Instr<'_>, state: &mut State) {
        if let Some(guard) = instr.guard {
            self.refine(state, guard, true);
            return;
        }
        let Some(value) = instr.value else {
            if let Some(def) = instr.def {
                state.insert(def.to_string(), AbsVal::default());
            }
            return;
        };
        // A source call taints the locals it fills through `&mut`.
        self.apply_source_effects(value, state);
        if let Some(def) = instr.def {
            let mut val = match value {
                // `x = rhs` defines from the right-hand side only;
                // `x += rhs` joins the old value in via the operand walk.
                Expr::Bin { ops, args } if ops.first().is_some_and(|o| o == "=") => args
                    .get(1)
                    .map(|r| self.eval(r, state))
                    .unwrap_or_default(),
                other => self.eval(other, state),
            };
            let desc = format!("`{def}` = `{}` (line {})", render(value), instr.line);
            let mut chain = vec![desc];
            chain.extend(val.chain.iter().take(3).cloned());
            val.chain = chain;
            state.insert(def.to_string(), val);
        }
    }

    /// Mark plain local arguments of source calls as tainted (`&mut buf`
    /// out-parameters).
    fn apply_source_effects(&self, e: &Expr, state: &mut State) {
        e.walk(&mut |x| {
            let (args, line) = match x {
                Expr::Method {
                    name, args, line, ..
                } if self.spec.is_source_method(name) => (args, *line),
                Expr::Call {
                    callee, args, line, ..
                } if self.spec.is_source_call(callee) => (args, *line),
                _ => return,
            };
            for arg in args {
                // Only by-reference arguments (`&mut buf`) can be filled
                // by the source; a by-value integer (`read(addr, width)`)
                // stays the caller's.
                if !matches!(arg, Expr::Unary { op: '&', .. }) {
                    continue;
                }
                if let Some(name) = place_local(arg) {
                    let slot = state.entry(name.to_string()).or_default();
                    slot.tainted = true;
                    slot.constant = false;
                    slot.checked_must = false;
                    slot.chain = vec![format!(
                        "`{name}` filled by source `{}` (line {line})",
                        render(x)
                    )];
                }
            }
        });
    }

    /// Evaluate an expression to an abstract value under `state`.
    pub fn eval(&self, e: &Expr, state: &State) -> AbsVal {
        match e {
            Expr::Lit { .. } => AbsVal {
                constant: true,
                ..AbsVal::default()
            },
            Expr::Path { path } => {
                if let Some(v) = (!path.contains("::"))
                    .then(|| state.get(path.as_str()))
                    .flatten()
                {
                    return v.clone();
                }
                let last = path.rsplit("::").next().unwrap_or(path);
                AbsVal {
                    // `MAX_SEG_BYTES`, `usize::MAX`, unit variants: fixed
                    // program constants, fine as bounds.
                    constant: is_const_name(last),
                    ..AbsVal::default()
                }
            }
            Expr::Field { base, name } => {
                let b = self.eval(base, state);
                AbsVal {
                    len_derived: LEN_FIELDS.contains(&name.as_str()) || b.len_derived,
                    tainted: b.tainted,
                    id_derived: b.id_derived,
                    chain: b.chain,
                    ..AbsVal::default()
                }
            }
            Expr::Unary { expr, .. } => self.eval(expr, state),
            Expr::Index { base, index, .. } => {
                let b = self.eval(base, state);
                let i = self.eval(index, state);
                AbsVal {
                    tainted: b.tainted,
                    id_derived: b.id_derived || i.id_derived,
                    chain: if b.chain.is_empty() { i.chain } else { b.chain },
                    ..AbsVal::default()
                }
            }
            Expr::Method {
                recv, name, args, line, ..
            } => {
                if LEN_METHODS.contains(&name.as_str()) && args.is_empty() {
                    return AbsVal {
                        len_derived: true,
                        chain: vec![format!("length from `{}` (line {line})", render(e))],
                        ..AbsVal::default()
                    };
                }
                if name == "fetch_add" {
                    return AbsVal {
                        id_derived: true,
                        chain: vec![format!("per-task ticket `{}` (line {line})", render(e))],
                        ..AbsVal::default()
                    };
                }
                if self.spec.is_sanitizer_method(name) {
                    // `.min(cap)`: bounded by the cleanest operand.
                    let mut v = self.eval(recv, state);
                    for a in args {
                        let av = self.eval(a, state);
                        v.tainted &= av.tainted;
                        v.len_derived |= av.len_derived;
                    }
                    if args.is_empty() {
                        // `.try_into()` and friends: checked narrowing.
                        v.tainted = false;
                    }
                    v.checked_must = true;
                    v.checked_may = true;
                    v.constant = false;
                    return v;
                }
                if self.spec.is_source_method(name) {
                    return AbsVal {
                        tainted: true,
                        chain: vec![format!("tainted by `{}` (line {line})", render(e))],
                        ..AbsVal::default()
                    };
                }
                let mut v = self.eval(recv, state);
                v.constant = false;
                v.checked_must = false;
                v.checked_may = false;
                for a in args {
                    let av = self.eval(a, state);
                    v.tainted |= av.tainted;
                    v.id_derived |= av.id_derived;
                    if v.chain.is_empty() {
                        v.chain = av.chain;
                    }
                }
                v
            }
            Expr::Call { callee, args, line, .. } => {
                if self.spec.is_source_call(callee) {
                    return AbsVal {
                        tainted: true,
                        chain: vec![format!("tainted by `{}` (line {line})", render(e))],
                        ..AbsVal::default()
                    };
                }
                let sanitizing = self.spec.is_sanitizer_call(callee);
                let mut v = AbsVal::default();
                let mut all_tainted = !args.is_empty();
                let mut first = true;
                for a in args {
                    let av = self.eval(a, state);
                    all_tainted &= av.tainted;
                    if first {
                        v = av;
                        first = false;
                    } else {
                        v.join_operand(&av);
                    }
                }
                if sanitizing {
                    // `cmp::min(a, b)`: bounded by the cleanest operand;
                    // `usize::try_from(x)`: checked narrowing.
                    v.tainted = all_tainted && args.len() > 1;
                    v.checked_must = true;
                    v.checked_may = true;
                } else {
                    // A call result is not bounded just because one of
                    // its arguments was.
                    v.checked_must = false;
                    v.checked_may = false;
                }
                v.constant = false;
                v
            }
            Expr::Bin { ops, args } => {
                if ops.iter().all(|o| is_comparison(o) || o == "&&" || o == "||") {
                    return AbsVal::default(); // boolean result
                }
                let mut v = AbsVal {
                    constant: true,
                    ..AbsVal::default()
                };
                for a in args {
                    v.join_operand(&self.eval(a, state));
                }
                v
            }
            // Structural expressions: operand-join over children.
            other => {
                let mut v = AbsVal {
                    constant: false,
                    ..AbsVal::default()
                };
                let mut children: Vec<&Expr> = Vec::new();
                collect_children(other, &mut children);
                for c in children {
                    v.join_operand(&self.eval(c, state));
                }
                v.constant = false;
                v
            }
        }
    }

    /// Strengthen `state` along the edge where `cond == taken`.
    pub fn refine(&self, state: &mut State, cond: &Expr, taken: bool) {
        match cond {
            Expr::Unary { op: '!', expr } => self.refine(state, expr, !taken),
            Expr::Unary { expr, .. } => self.refine(state, expr, taken),
            Expr::Bin { ops, args } if !ops.is_empty() => {
                if ops.iter().all(|o| o == "&&") {
                    if taken {
                        for a in args {
                            self.refine(state, a, true);
                        }
                    }
                    return;
                }
                if ops.iter().all(|o| o == "||") {
                    if !taken {
                        for a in args {
                            self.refine(state, a, false);
                        }
                    }
                    return;
                }
                // The parser flattens `a < b && c <= d` into one chain
                // (ops `["<", "&&", "<="]`), so a mixed conjunction is
                // handled here: on the taken edge every `&&`-delimited
                // comparison segment holds and refines independently.
                if taken
                    && ops.iter().any(|o| o == "&&")
                    && ops.iter().all(|o| o == "&&" || is_comparison(o))
                {
                    for (k, op) in ops.iter().enumerate() {
                        if !is_comparison(op) || k + 1 >= args.len() {
                            continue;
                        }
                        let lhs_free = k == 0 || ops[k - 1] == "&&";
                        let rhs_free = k + 1 == ops.len() || ops[k + 1] == "&&";
                        if !(lhs_free && rhs_free) {
                            continue; // not a simple `x OP y` segment
                        }
                        let (a, b) = (&args[k], &args[k + 1]);
                        match op.as_str() {
                            "<" | "<=" => self.bound(state, a, b),
                            ">" | ">=" => self.bound(state, b, a),
                            "==" => {
                                self.bound(state, a, b);
                                self.bound(state, b, a);
                            }
                            _ => {}
                        }
                    }
                    return;
                }
                if ops.len() == 1 && args.len() == 2 {
                    let (a, b) = (&args[0], &args[1]);
                    match (ops[0].as_str(), taken) {
                        ("<" | "<=", true) | (">" | ">=", false) => self.bound(state, a, b),
                        (">" | ">=", true) | ("<" | "<=", false) => self.bound(state, b, a),
                        ("==", true) | ("!=", false) => {
                            self.bound(state, a, b);
                            self.bound(state, b, a);
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }

    /// Record that `target <= by` holds here.
    fn bound(&self, state: &mut State, target: &Expr, by: &Expr) {
        let Some(name) = place_local(target) else {
            return;
        };
        let by_val = self.eval(by, state);
        let slot = state.entry(name.to_string()).or_default();
        slot.checked_must = true;
        slot.checked_may = true;
        if !by_val.tainted {
            slot.tainted = false;
        }
        if by_val.len_derived {
            slot.len_derived = true;
        }
        slot.chain
            .insert(0, format!("`{name}` bounded by `{}`", render(by)));
        slot.chain.truncate(4);
    }
}

/// The local name of a place expression: a bare identifier, possibly
/// under `&`/`*`/`!`. `None` for fields, calls, paths, and literals.
fn place_local(e: &Expr) -> Option<&str> {
    match e {
        Expr::Path { path } if !path.contains("::") && path != "self" => Some(path.as_str()),
        Expr::Unary { expr, .. } => place_local(expr),
        _ => None,
    }
}

/// `MAX_SEG_BYTES`, `MAX`, `SPILL_VERSION`: SCREAMING_CASE or
/// capitalized single-segment names read as program constants.
fn is_const_name(last: &str) -> bool {
    !last.is_empty()
        && last.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && last
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

fn is_comparison(op: &str) -> bool {
    matches!(op, "<" | "<=" | ">" | ">=" | "==" | "!=")
}

/// Immediate child expressions (no descent into nested closures — those
/// are separate frames).
fn collect_children<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::Call { args, .. } | Expr::Macro { args, .. } => out.extend(args.iter()),
        Expr::Method { recv, args, .. } => {
            out.push(recv);
            out.extend(args.iter());
        }
        Expr::Field { base, .. } => out.push(base),
        Expr::Index { base, index, .. } => {
            out.push(base);
            out.push(index);
        }
        Expr::Unary { expr, .. } => out.push(expr),
        Expr::Bin { args, .. } | Expr::Match(args) | Expr::Other(args) => out.extend(args.iter()),
        Expr::If { cond, then, els } => {
            out.push(cond);
            collect_block_children(then, out);
            if let Some(e) = els {
                out.push(e);
            }
        }
        Expr::Loop { head, body } => {
            out.extend(head.iter());
            collect_block_children(body, out);
        }
        Expr::Block(b) | Expr::Unsafe { block: b, .. } => collect_block_children(b, out),
        Expr::Jump { value, .. } => {
            if let Some(v) = value {
                out.push(v);
            }
        }
        Expr::Closure { .. } | Expr::Path { .. } | Expr::Lit { .. } => {}
    }
}

fn collect_block_children<'a>(b: &'a crate::ast::Block, out: &mut Vec<&'a Expr>) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { init: Some(e), .. } => out.push(e),
            Stmt::Expr { expr, .. } => out.push(expr),
            _ => {}
        }
    }
}

/// Render an expression back to compact source-ish text for findings.
/// Literals render as `_` (their spelling is not kept); output is capped.
pub fn render(e: &Expr) -> String {
    let mut s = render_uncapped(e, 0);
    if s.len() > 60 {
        let mut cut = 57;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
        s.push('…');
    }
    s
}

fn render_uncapped(e: &Expr, depth: usize) -> String {
    if depth > 4 {
        return "…".to_string();
    }
    match e {
        Expr::Path { path } => path.clone(),
        Expr::Lit { .. } => "_".to_string(),
        Expr::Field { base, name } => format!("{}.{name}", render_uncapped(base, depth + 1)),
        Expr::Index { base, index, .. } => format!(
            "{}[{}]",
            render_uncapped(base, depth + 1),
            render_uncapped(index, depth + 1)
        ),
        Expr::Unary { op, expr } => format!("{op}{}", render_uncapped(expr, depth + 1)),
        Expr::Method { recv, name, args, .. } => format!(
            "{}.{name}({})",
            render_uncapped(recv, depth + 1),
            render_args(args, depth)
        ),
        Expr::Call { callee, args, .. } => {
            format!("{callee}({})", render_args(args, depth))
        }
        Expr::Macro { name, args, .. } => format!("{name}!({})", render_args(args, depth)),
        Expr::Bin { ops, args } => {
            let mut s = String::new();
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    let op = ops.get(i - 1).map(String::as_str).unwrap_or("?");
                    s.push_str(&format!(" {op} "));
                }
                s.push_str(&render_uncapped(a, depth + 1));
            }
            s
        }
        Expr::Unsafe { .. } => "unsafe { … }".to_string(),
        Expr::Closure { .. } => "|…| …".to_string(),
        Expr::Jump { .. } => "…".to_string(),
        _ => "…".to_string(),
    }
}

fn render_args(args: &[Expr], depth: usize) -> String {
    let mut s = String::new();
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&render_uncapped(a, depth + 1));
    }
    s
}

/// One analysis frame: a function body or a closure literal found
/// inside one. Closures are separate frames — their bodies are not
/// lowered into the enclosing function's CFG.
pub struct Frame<'a> {
    /// Owning function's qualified name (for messages).
    pub qual: &'a str,
    /// Frame parameters.
    pub params: Vec<String>,
    /// The CFG.
    pub cfg: Cfg<'a>,
    /// The frame is (part of) a test function.
    pub is_test: bool,
    /// Source line of the frame head.
    pub line: u32,
}

/// Collect the frames of every non-test function in `file`: the function
/// itself plus every closure literal in its body, recursively.
pub fn frames(file: &File) -> Vec<Frame<'_>> {
    let mut out = Vec::new();
    crate::ast::for_each_fn(file, &mut |f, is_test| {
        if is_test {
            return;
        }
        if let Some(cfg) = Cfg::from_fn(f) {
            out.push(Frame {
                qual: &f.qual,
                params: f.params.clone(),
                cfg,
                is_test,
                line: f.line,
            });
        }
        if let Some(body) = &f.body {
            body.walk_exprs(&mut |e| {
                if let Expr::Closure { params, body } = e {
                    out.push(Frame {
                        qual: &f.qual,
                        params: params.clone(),
                        cfg: Cfg::from_closure(params, body),
                        is_test,
                        line: crate::cfg::expr_line(body),
                    });
                }
            });
        }
    });
    out
}

/// Walk `e` and its sub-expressions, pre-order, but do not descend into
/// nested closure bodies — those are separate analysis frames.
pub fn walk_no_closures<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    if matches!(e, Expr::Closure { .. }) {
        return;
    }
    let mut children = Vec::new();
    collect_children(e, &mut children);
    for c in children {
        walk_no_closures(c, f);
    }
}

/// Walk the parts of an instruction's *value* that were not lowered into
/// separate CFG blocks. A control-flow expression directly in value
/// position (`let x = if … { … }`) already has its branch contents
/// recorded as instructions in their own (edge-refined) blocks, so
/// descending into it here would re-visit those contents under the
/// pre-branch state and report spurious findings. Control flow nested
/// deeper (inside call arguments etc.) is *not* lowered, so it is still
/// walked. Branch conditions are terminators, never instruction values —
/// a sink inside a condition is out of scope by construction.
pub fn walk_value<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    if matches!(
        e,
        Expr::If { .. }
            | Expr::Match(_)
            | Expr::Loop { .. }
            | Expr::Block(_)
            | Expr::Unsafe { .. }
    ) {
        return;
    }
    walk_no_closures(e, f)
}

/// Collect the simple local names (`x`, not `a.b` or `p::q`) read by `e`.
fn leaf_locals<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
    walk_no_closures(e, &mut |x| {
        if let Expr::Path { path } = x {
            if !path.contains("::") && path != "self" && !out.contains(&path.as_str()) {
                out.push(path.as_str());
            }
        }
    });
}

/// Render a variable's def-use chain for a finding message.
pub fn chain_text(val: &AbsVal) -> String {
    if val.chain.is_empty() {
        "no local definition in scope".to_string()
    } else {
        val.chain.join(" ← ")
    }
}

/// R020 — every pointer `add`/`offset`/`get_unchecked` index inside an
/// `unsafe` block must be length-derived or dominated by a bound check.
pub fn check_r020(
    path: &str,
    frame: &Frame<'_>,
    engine: &Engine<'_>,
    flow: &Flow,
    out: &mut Vec<crate::rules::Finding>,
) {
    for_each_instr(frame, flow, &mut |instr, state| {
        if !instr.in_unsafe {
            return;
        }
        let Some(value) = instr.value else { return };
        walk_value(value, &mut |x| {
            let Expr::Method {
                name, args, line, col, ..
            } = x
            else {
                return;
            };
            if !PTR_OPS.contains(&name.as_str()) || args.is_empty() {
                return;
            }
            let idx = &args[0];
            let v = engine.eval(idx, state);
            // Id-derived offsets are R022's jurisdiction (the worker-id
            // disjointness argument, not a length bound) — accepting
            // them here avoids double-reporting broadcast closures.
            if v.len_derived || v.constant || v.checked_must || v.id_derived {
                return;
            }
            let mut vars = Vec::new();
            leaf_locals(idx, &mut vars);
            let justified = vars.iter().any(|name| {
                state
                    .get(*name)
                    .is_some_and(|s| s.checked_must || s.len_derived || s.id_derived)
            });
            if justified {
                return;
            }
            // Render the chain of the least-justified variable.
            let culprit = vars
                .iter()
                .find(|n| {
                    !state
                        .get(**n)
                        .is_some_and(|s| s.checked_must || s.len_derived)
                })
                .copied();
            let detail = match culprit {
                Some(n) => format!(
                    "`{n}`: {}",
                    chain_text(state.get(n).unwrap_or(&AbsVal::default()))
                ),
                None => chain_text(&v),
            };
            out.push(crate::rules::Finding {
                rule: "R020".to_string(),
                path: path.to_string(),
                line: *line,
                col: *col,
                message: format!(
                    "unsafe pointer index `{}` in `{}` is neither length-derived nor \
                     dominated by a bound check — {detail}",
                    render(idx),
                    frame.qual
                ),
            });
        });
    });
}

/// R023 — a value bounds-checked on only *some* paths reaching a slice
/// index has lost its guard at a merge point.
pub fn check_r023(
    path: &str,
    frame: &Frame<'_>,
    _engine: &Engine<'_>,
    flow: &Flow,
    out: &mut Vec<crate::rules::Finding>,
) {
    let mut seen: Vec<(String, u32)> = Vec::new();
    for_each_instr(frame, flow, &mut |instr, state| {
        let Some(value) = instr.value else { return };
        walk_value(value, &mut |x| {
            let Expr::Index {
                index,
                literal: false,
                line,
                col,
                ..
            } = x
            else {
                return;
            };
            // Range slicing (`&v[a..i]`) is exempt: an exclusive range
            // end may legitimately equal `len`, so a `i < len` loop
            // guard "lost" at the exit merge is the normal shape of a
            // scan, not a missing check. Scalar element indexes only.
            if let Expr::Bin { ops, .. } = &**index {
                if ops.iter().any(|o| o == ".." || o == "..=") {
                    return;
                }
            }
            let mut vars = Vec::new();
            leaf_locals(index, &mut vars);
            for name in vars {
                let Some(st) = state.get(name) else { continue };
                if st.checked_may && !st.checked_must && !st.len_derived {
                    let key = (name.to_string(), *line);
                    if seen.contains(&key) {
                        continue;
                    }
                    seen.push(key);
                    out.push(crate::rules::Finding {
                        rule: "R023".to_string(),
                        path: path.to_string(),
                        line: *line,
                        col: *col,
                        message: format!(
                            "`{name}` is bounds-checked on only some paths reaching this \
                             index in `{}` — the guard is lost at a merge point; hoist the \
                             check or re-assert it — {}",
                            frame.qual,
                            chain_text(st)
                        ),
                    });
                }
            }
        });
    });
}

/// Visit every instruction of every reachable block with its before-state.
pub fn for_each_instr<'a>(
    frame: &'a Frame<'a>,
    flow: &'a Flow,
    f: &mut impl FnMut(&'a Instr<'a>, &'a State),
) {
    for (bb, block) in frame.cfg.blocks.iter().enumerate() {
        let states = &flow.before[bb];
        if states.len() != block.instrs.len() {
            continue; // unreachable block: no states recorded
        }
        for (instr, state) in block.instrs.iter().zip(states) {
            f(instr, state);
        }
    }
}

/// R022 — raw-pointer writes inside closures handed to
/// `WorkerPool::broadcast` must index by the worker/morsel identity: the
/// closure's own parameter or a `fetch_add` ticket, possibly passed down
/// through direct calls into same-unit functions.
pub fn check_r022(
    files: &[crate::callgraph::UnitFile],
    spec: &TaintSpec,
    out: &mut Vec<crate::rules::Finding>,
) {
    // Qualified-name → function item, for the interprocedural hop.
    let mut by_name: Vec<(&str, &str, &FnItem, &str)> = Vec::new(); // (name, qual, item, path)
    for uf in files {
        if uf.is_test {
            continue;
        }
        crate::ast::for_each_fn(&uf.file, &mut |f, is_test| {
            if !is_test && f.body.is_some() {
                by_name.push((&f.name, &f.qual, f, &uf.path));
            }
        });
    }
    let engine = Engine { spec };
    for uf in files {
        if uf.is_test {
            continue;
        }
        crate::ast::for_each_fn(&uf.file, &mut |f, is_test| {
            let Some(body) = (!is_test).then_some(f.body.as_ref()).flatten() else {
                return;
            };
            body.walk_exprs(&mut |e| {
                let Expr::Method { name, args, .. } = e else {
                    return;
                };
                if name != "broadcast" || args.is_empty() {
                    return;
                }
                let Some((params, cbody)) = resolve_closure(&args[0], body) else {
                    return;
                };
                let mut visited = Vec::new();
                check_id_writes(
                    &uf.path,
                    &f.qual,
                    params,
                    ClosureBody::Expr(cbody),
                    &engine,
                    &by_name,
                    0,
                    &mut visited,
                    out,
                );
            });
        });
    }
}

enum ClosureBody<'a> {
    Expr(&'a Expr),
    Fn(&'a FnItem),
}

/// Strip `&`/`&mut` and resolve a broadcast argument to a closure: either
/// a closure literal, or a local bound to one earlier in the same body.
fn resolve_closure<'a>(
    arg: &'a Expr,
    enclosing: &'a crate::ast::Block,
) -> Option<(&'a [String], &'a Expr)> {
    let stripped = strip_refs(arg);
    if let Expr::Closure { params, body } = stripped {
        return Some((params, body));
    }
    if let Expr::Path { path } = stripped {
        if !path.contains("::") {
            let mut found = None;
            find_closure_let(enclosing, path, &mut found);
            return found;
        }
    }
    None
}

fn strip_refs(e: &Expr) -> &Expr {
    match e {
        Expr::Unary { expr, .. } => strip_refs(expr),
        other => other,
    }
}

fn find_closure_let<'a>(
    block: &'a crate::ast::Block,
    name: &str,
    out: &mut Option<(&'a [String], &'a Expr)>,
) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                name: Some(n),
                init: Some(init),
                ..
            } if n == name => {
                if let Expr::Closure { params, body } = strip_refs(init) {
                    *out = Some((params, body));
                }
            }
            Stmt::Expr { expr, .. } => {
                // Recurse into nested blocks (closures are often bound
                // inside a scope block before the broadcast).
                expr.walk(&mut |x| {
                    if out.is_some() {
                        return;
                    }
                    match x {
                        Expr::Block(b) | Expr::Unsafe { block: b, .. } => {
                            find_closure_let(b, name, out)
                        }
                        Expr::If { then, .. } => find_closure_let(then, name, out),
                        Expr::Loop { body, .. } => find_closure_let(body, name, out),
                        _ => {}
                    }
                });
            }
            _ => {}
        }
    }
}

/// Analyze one frame of the broadcast closure's call tree: its unsafe
/// pointer offsets must be id-derived; id-derived arguments seed the
/// parameters of direct calls one hop down (up to depth 3).
#[allow(clippy::too_many_arguments)]
fn check_id_writes(
    path: &str,
    qual: &str,
    params: &[String],
    body: ClosureBody<'_>,
    engine: &Engine<'_>,
    by_name: &[(&str, &str, &FnItem, &str)],
    depth: usize,
    visited: &mut Vec<(String, Vec<String>)>,
    out: &mut Vec<crate::rules::Finding>,
) {
    let seeded: Vec<String> = params.iter().filter(|p| !p.is_empty()).cloned().collect();
    let key = (qual.to_string(), seeded.clone());
    if visited.contains(&key) {
        return;
    }
    visited.push(key);
    let cfg = match &body {
        ClosureBody::Expr(e) => Cfg::from_closure(params, e),
        ClosureBody::Fn(f) => match Cfg::from_fn(f) {
            Some(c) => c,
            None => return,
        },
    };
    let mut seed = State::new();
    for p in &seeded {
        seed.insert(
            p.clone(),
            AbsVal {
                id_derived: true,
                chain: vec![format!("`{p}` is the worker/morsel id parameter")],
                ..AbsVal::default()
            },
        );
    }
    let flow = engine.run(&cfg, &seed);
    let frame = Frame {
        qual,
        params: params.to_vec(),
        cfg,
        is_test: false,
        line: 0,
    };
    for_each_instr(&frame, &flow, &mut |instr, state| {
        let Some(value) = instr.value else { return };
        // Unsafe pointer offsets must be id-derived.
        if instr.in_unsafe {
            walk_value(value, &mut |x| {
                let Expr::Method {
                    name, args, line, col, ..
                } = x
                else {
                    return;
                };
                if !PTR_OPS.contains(&name.as_str()) || args.is_empty() {
                    return;
                }
                let idx = &args[0];
                let v = engine.eval(idx, state);
                if v.id_derived || v.constant {
                    return;
                }
                let mut vars = Vec::new();
                leaf_locals(idx, &mut vars);
                if vars
                    .iter()
                    .any(|n| state.get(*n).is_some_and(|s| s.id_derived))
                {
                    return;
                }
                let detail = vars
                    .first()
                    .and_then(|n| state.get(*n))
                    .map(chain_text)
                    .unwrap_or_else(|| chain_text(&v));
                out.push(crate::rules::Finding {
                    rule: "R022".to_string(),
                    path: path.to_string(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "pointer offset `{}` in `{qual}` (reached from a \
                         `WorkerPool::broadcast` closure) is not derived from the \
                         worker/morsel id — concurrent workers may write overlapping \
                         ranges — {detail}",
                        render(idx)
                    ),
                });
            });
        }
        // Interprocedural hop: id-derived arguments seed callee params.
        if depth >= 3 {
            return;
        }
        walk_value(value, &mut |x| {
            let (target, args): (Vec<&FnItem>, &[Expr]) = match x {
                Expr::Method { name, args, .. } => (
                    by_name
                        .iter()
                        .filter(|(n, ..)| n == name)
                        .map(|(_, _, f, _)| *f)
                        .collect(),
                    args,
                ),
                Expr::Call { callee, args, .. } => {
                    let last = callee.rsplit("::").next().unwrap_or(callee);
                    (
                        by_name
                            .iter()
                            .filter(|(n, q, ..)| {
                                *n == last
                                    && (!callee.contains("::")
                                        || q.ends_with(callee.as_str())
                                        || callee.ends_with(*q)
                                        || callee.starts_with("Self::"))
                            })
                            .map(|(_, _, f, _)| *f)
                            .collect(),
                        args,
                    )
                }
                _ => return,
            };
            if target.is_empty() {
                return;
            }
            let id_args: Vec<bool> = args
                .iter()
                .map(|a| engine.eval(a, state).id_derived)
                .collect();
            if !id_args.iter().any(|b| *b) {
                return;
            }
            for callee in target {
                let fparams = &callee.params;
                // Method receivers: args map onto params after `self`.
                let skip = usize::from(
                    fparams.first().is_some_and(|p| p == "self")
                        && fparams.len() == args.len() + 1,
                );
                let mut seeded_params: Vec<String> = vec![String::new(); fparams.len()];
                for (i, p) in fparams.iter().enumerate() {
                    let arg_idx = match i.checked_sub(skip) {
                        Some(j) if j < id_args.len() => j,
                        _ => continue,
                    };
                    if id_args[arg_idx] {
                        seeded_params[i] = p.clone();
                    }
                }
                if seeded_params.iter().all(|p| p.is_empty()) {
                    continue;
                }
                let callee_path = by_name
                    .iter()
                    .find(|(_, q, ..)| *q == callee.qual.as_str())
                    .map(|(.., p)| *p)
                    .unwrap_or(path);
                check_id_writes(
                    callee_path,
                    &callee.qual,
                    &seeded_params,
                    ClosureBody::Fn(callee),
                    engine,
                    by_name,
                    depth + 1,
                    visited,
                    out,
                );
            }
        });
    });
}

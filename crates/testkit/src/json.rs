//! A minimal JSON writer — just enough for the bench harness's output.
//!
//! Build values with [`Json`] and render with [`Json::render`]. Only the
//! types benchmark reports need are supported (no parsing).

use std::fmt::Write as _;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite floats render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj(vec![
            ("name", Json::str("fig2/Random \"quoted\"")),
            ("median_ns", Json::Num(1234.0)),
            ("ratio", Json::Num(1.5)),
            ("ok", Json::Bool(true)),
            ("samples", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("missing", Json::Null),
        ]);
        assert_eq!(
            j.render(),
            "{\"name\":\"fig2/Random \\\"quoted\\\"\",\"median_ns\":1234,\
             \"ratio\":1.5,\"ok\":true,\"samples\":[1,2],\"missing\":null}"
        );
    }

    #[test]
    fn escapes_control_chars() {
        assert_eq!(Json::str("a\nb\u{1}").render(), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}

//! Instrumented sorting kernels: every data access and data-dependent
//! branch is routed through a [`SimCpu`].
//!
//! These kernels reproduce the paper's perf-counter experiments:
//!
//! * [`ColumnarTrace`] — DSM key columns sorted via an index array, with
//!   tuple-at-a-time and subsort comparison strategies (Table II),
//! * [`RowTrace`] — NSM rows physically moved during the sort, same two
//!   strategies (Table III),
//! * [`NormKeyTrace`] — normalized-key rows sorted by a quicksort with a
//!   `memcmp` comparator versus LSD/MSD radix sort (Figure 10).
//!
//! The generic engine is a [`TraceSortable`] introsort with median-of-three
//! pivots, an insertion-sort base case, and a depth-limited heapsort
//! fallback — the same shape as the real introsort/pdqsort in
//! `rowsort-algos`, minus pattern defeating (which only fires on
//! adversarial inputs none of these experiments use).

use crate::cpu::SimCpu;
use std::cmp::Ordering;

/// Branch-site tags, so distinct static branches train distinct predictor
/// entries (like distinct branch instructions would).
mod site {
    pub const PARTITION_LEFT: u64 = 0xA1;
    pub const PARTITION_RIGHT: u64 = 0xA2;
    pub const INSERTION: u64 = 0xA3;
    pub const HEAP_CHILD: u64 = 0xA4;
    pub const HEAP_ROOT: u64 = 0xA5;
    pub const MEDIAN: u64 = 0xA6;
    pub const TIE_NEXT_COL: u64 = 0xB0; // + column index
    pub const TIE_SCAN: u64 = 0xC0;
}

const SMALL: usize = 16;

/// A sequence that a traced sort can compare and permute.
///
/// `compare` must perform its own traced reads (and any comparator-internal
/// branches); `swap` its own traced reads/writes. The engine adds the
/// partition/insertion/heap control branches that depend on comparison
/// outcomes.
pub trait TraceSortable {
    /// Compare elements at positions `i` and `j`, tracing the accesses.
    fn compare(&self, cpu: &mut SimCpu, i: usize, j: usize) -> Ordering;
    /// Swap elements at positions `i` and `j`, tracing the accesses.
    fn swap(&mut self, cpu: &mut SimCpu, i: usize, j: usize);
}

/// Traced introsort over positions `0..n` of `subject`.
pub fn trace_introsort<T: TraceSortable + ?Sized>(cpu: &mut SimCpu, n: usize, subject: &mut T) {
    if n < 2 {
        return;
    }
    let depth = 2 * (usize::BITS - n.leading_zeros());
    rec(cpu, 0, n, depth, subject);
}

fn rec<T: TraceSortable + ?Sized>(
    cpu: &mut SimCpu,
    mut lo: usize,
    mut hi: usize,
    mut depth: u32,
    subject: &mut T,
) {
    loop {
        let len = hi - lo;
        if len <= SMALL {
            traced_insertion(cpu, lo, hi, subject);
            return;
        }
        if depth == 0 {
            traced_heapsort(cpu, lo, hi, subject);
            return;
        }
        depth -= 1;
        let p = traced_partition(cpu, lo, hi, subject);
        if p - lo < hi - p - 1 {
            rec(cpu, lo, p, depth, subject);
            lo = p + 1;
        } else {
            rec(cpu, p + 1, hi, depth, subject);
            hi = p;
        }
    }
}

fn traced_insertion<T: TraceSortable + ?Sized>(
    cpu: &mut SimCpu,
    lo: usize,
    hi: usize,
    subject: &mut T,
) {
    for i in lo + 1..hi {
        let mut j = i;
        loop {
            let less = j > lo && subject.compare(cpu, j, j - 1) == Ordering::Less;
            if j > lo {
                cpu.branch(site::INSERTION, less);
            }
            if !less {
                break;
            }
            subject.swap(cpu, j, j - 1);
            j -= 1;
        }
    }
}

fn traced_heapsort<T: TraceSortable + ?Sized>(
    cpu: &mut SimCpu,
    lo: usize,
    hi: usize,
    subject: &mut T,
) {
    let n = hi - lo;
    fn sift<T: TraceSortable + ?Sized>(
        cpu: &mut SimCpu,
        lo: usize,
        mut root: usize,
        end: usize,
        subject: &mut T,
    ) {
        loop {
            let mut child = 2 * root + 1;
            if child >= end {
                return;
            }
            if child + 1 < end {
                let right_bigger =
                    subject.compare(cpu, lo + child, lo + child + 1) == Ordering::Less;
                cpu.branch(site::HEAP_CHILD, right_bigger);
                if right_bigger {
                    child += 1;
                }
            }
            let root_smaller = subject.compare(cpu, lo + root, lo + child) == Ordering::Less;
            cpu.branch(site::HEAP_ROOT, root_smaller);
            if !root_smaller {
                return;
            }
            subject.swap(cpu, lo + root, lo + child);
            root = child;
        }
    }
    for start in (0..n / 2).rev() {
        sift(cpu, lo, start, n, subject);
    }
    for end in (1..n).rev() {
        subject.swap(cpu, lo, lo + end);
        sift(cpu, lo, 0, end, subject);
    }
}

fn traced_partition<T: TraceSortable + ?Sized>(
    cpu: &mut SimCpu,
    lo: usize,
    hi: usize,
    subject: &mut T,
) -> usize {
    // Median of three to the front.
    let mid = lo + (hi - lo) / 2;
    let last = hi - 1;
    let order2 = |cpu: &mut SimCpu, subject: &mut T, a: usize, b: usize| {
        let less = subject.compare(cpu, b, a) == Ordering::Less;
        cpu.branch(site::MEDIAN, less);
        if less {
            subject.swap(cpu, a, b);
        }
    };
    order2(cpu, subject, lo, mid);
    order2(cpu, subject, mid, last);
    order2(cpu, subject, lo, mid);
    subject.swap(cpu, lo, mid);

    let mut i = lo;
    let mut j = hi;
    loop {
        loop {
            i += 1;
            let less = i <= last && subject.compare(cpu, i, lo) == Ordering::Less;
            if i <= last {
                cpu.branch(site::PARTITION_LEFT, less);
            }
            if !less {
                break;
            }
        }
        loop {
            j -= 1;
            let greater = j > lo && subject.compare(cpu, lo, j) == Ordering::Less;
            if j > lo {
                cpu.branch(site::PARTITION_RIGHT, greater);
            }
            if !greater {
                break;
            }
        }
        if i >= j {
            break;
        }
        subject.swap(cpu, i, j);
    }
    subject.swap(cpu, lo, j);
    j
}

// ---------------------------------------------------------------------------
// Columnar (DSM) experiment — Table II
// ---------------------------------------------------------------------------

/// DSM key columns sorted through an index array.
pub struct ColumnarTrace {
    /// Key columns, column-major.
    cols: Vec<Vec<u32>>,
    /// The permutation being sorted.
    idxs: Vec<u32>,
    col_bases: Vec<u64>,
    idx_base: u64,
}

impl ColumnarTrace {
    /// Lay out `cols` and the index array in the CPU's address space.
    pub fn new(cpu: &mut SimCpu, cols: Vec<Vec<u32>>) -> ColumnarTrace {
        assert!(!cols.is_empty());
        let n = cols[0].len();
        assert!(cols.iter().all(|c| c.len() == n));
        let col_bases = cols.iter().map(|c| cpu.alloc(c.len() * 4)).collect();
        let idx_base = cpu.alloc(n * 4);
        ColumnarTrace {
            cols,
            idxs: (0..n as u32).collect(),
            col_bases,
            idx_base,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.idxs.len()
    }

    /// `true` iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.idxs.is_empty()
    }

    fn read_idx(&self, cpu: &mut SimCpu, i: usize) -> usize {
        cpu.read(self.idx_base + i as u64 * 4, 4);
        self.idxs[i] as usize
    }

    fn read_col(&self, cpu: &mut SimCpu, c: usize, row: usize) -> u32 {
        cpu.read(self.col_bases[c] + row as u64 * 4, 4);
        self.cols[c][row]
    }

    fn swap_idxs(&mut self, cpu: &mut SimCpu, i: usize, j: usize) {
        cpu.read(self.idx_base + i as u64 * 4, 4);
        cpu.read(self.idx_base + j as u64 * 4, 4);
        cpu.write(self.idx_base + i as u64 * 4, 4);
        cpu.write(self.idx_base + j as u64 * 4, 4);
        self.idxs.swap(i, j);
    }

    /// Sort with the tuple-at-a-time comparator: compare column 0, on a tie
    /// branch into column 1, and so on — random access into every column
    /// touched, a data-dependent branch per extra column.
    pub fn sort_tuple_at_a_time(&mut self, cpu: &mut SimCpu) {
        let n = self.len();
        trace_introsort(cpu, n, &mut ColumnarTupleView(self));
    }

    /// Sort with the subsort strategy: sort by one column at a time, then
    /// recurse into tied ranges on the next column. The per-column
    /// comparator touches a single column and has no tie branch.
    pub fn sort_subsort(&mut self, cpu: &mut SimCpu) {
        let n = self.len();
        self.subsort_range(cpu, 0, n, 0);
    }

    fn subsort_range(&mut self, cpu: &mut SimCpu, lo: usize, hi: usize, col: usize) {
        if hi - lo < 2 || col >= self.cols.len() {
            return;
        }
        trace_introsort(cpu, hi - lo, &mut ColumnarSubsortView { t: self, col, lo });
        if col + 1 >= self.cols.len() {
            return;
        }
        // Identify tied runs and recurse into them on the next column.
        let mut run_start = lo;
        for i in lo + 1..=hi {
            let tied = if i < hi {
                let ri = self.read_idx(cpu, i - 1);
                let rj = self.read_idx(cpu, i);
                let a = self.read_col(cpu, col, ri);
                let b = self.read_col(cpu, col, rj);
                let t = a == b;
                cpu.branch(site::TIE_SCAN, t);
                t
            } else {
                false
            };
            if !tied {
                if i - run_start > 1 {
                    self.subsort_range(cpu, run_start, i, col + 1);
                }
                run_start = i;
            }
        }
    }

    /// Whether the permutation sorts the columns lexicographically
    /// (untraced; verification only).
    pub fn is_sorted(&self) -> bool {
        self.idxs.windows(2).all(|w| {
            let (a, b) = (w[0] as usize, w[1] as usize);
            for c in &self.cols {
                match c[a].cmp(&c[b]) {
                    Ordering::Less => return true,
                    Ordering::Greater => return false,
                    Ordering::Equal => continue,
                }
            }
            true
        })
    }
}

struct ColumnarTupleView<'a>(&'a mut ColumnarTrace);

impl TraceSortable for ColumnarTupleView<'_> {
    fn compare(&self, cpu: &mut SimCpu, i: usize, j: usize) -> Ordering {
        let t = &*self.0;
        let ri = t.read_idx(cpu, i);
        let rj = t.read_idx(cpu, j);
        let ncols = t.cols.len();
        for c in 0..ncols {
            let a = t.read_col(cpu, c, ri);
            let b = t.read_col(cpu, c, rj);
            let ord = a.cmp(&b);
            if c + 1 < ncols {
                // The "values equal, compare next column?" branch.
                cpu.branch(site::TIE_NEXT_COL + c as u64, ord == Ordering::Equal);
            }
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    fn swap(&mut self, cpu: &mut SimCpu, i: usize, j: usize) {
        self.0.swap_idxs(cpu, i, j);
    }
}

struct ColumnarSubsortView<'a> {
    t: &'a mut ColumnarTrace,
    col: usize,
    lo: usize,
}

impl TraceSortable for ColumnarSubsortView<'_> {
    fn compare(&self, cpu: &mut SimCpu, i: usize, j: usize) -> Ordering {
        let ri = self.t.read_idx(cpu, self.lo + i);
        let rj = self.t.read_idx(cpu, self.lo + j);
        self.t
            .read_col(cpu, self.col, ri)
            .cmp(&self.t.read_col(cpu, self.col, rj))
    }

    fn swap(&mut self, cpu: &mut SimCpu, i: usize, j: usize) {
        self.t.swap_idxs(cpu, self.lo + i, self.lo + j);
    }
}

// ---------------------------------------------------------------------------
// Row (NSM) experiment — Table III
// ---------------------------------------------------------------------------

/// NSM rows of `ncols` u32 keys, physically moved during sorting.
pub struct RowTrace {
    /// Row-major keys: row i occupies `vals[i*ncols .. (i+1)*ncols]`.
    vals: Vec<u32>,
    ncols: usize,
    base: u64,
}

impl RowTrace {
    /// Convert columns into rows and lay them out in the address space.
    pub fn new(cpu: &mut SimCpu, cols: &[Vec<u32>]) -> RowTrace {
        let n = cols[0].len();
        let ncols = cols.len();
        let mut vals = Vec::with_capacity(n * ncols);
        for r in 0..n {
            for c in cols {
                vals.push(c[r]);
            }
        }
        let base = cpu.alloc(vals.len() * 4);
        RowTrace { vals, ncols, base }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.vals.len() / self.ncols
    }

    /// `true` iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    fn row_addr(&self, i: usize) -> u64 {
        self.base + (i * self.ncols * 4) as u64
    }

    fn val(&self, i: usize, c: usize) -> u32 {
        self.vals[i * self.ncols + c]
    }

    fn swap_rows(&mut self, cpu: &mut SimCpu, i: usize, j: usize) {
        let bytes = self.ncols * 4;
        cpu.read(self.row_addr(i), bytes);
        cpu.read(self.row_addr(j), bytes);
        cpu.write(self.row_addr(i), bytes);
        cpu.write(self.row_addr(j), bytes);
        for c in 0..self.ncols {
            self.vals.swap(i * self.ncols + c, j * self.ncols + c);
        }
    }

    /// Tuple-at-a-time comparator over co-located keys: values of one row
    /// share a cache line, so a tie's extra reads rarely miss.
    pub fn sort_tuple_at_a_time(&mut self, cpu: &mut SimCpu) {
        let n = self.len();
        trace_introsort(cpu, n, &mut RowTupleView(self));
    }

    /// Subsort over rows: per-column passes with tie recursion, still
    /// physically moving whole rows.
    pub fn sort_subsort(&mut self, cpu: &mut SimCpu) {
        let n = self.len();
        self.subsort_range(cpu, 0, n, 0);
    }

    fn subsort_range(&mut self, cpu: &mut SimCpu, lo: usize, hi: usize, col: usize) {
        if hi - lo < 2 || col >= self.ncols {
            return;
        }
        trace_introsort(cpu, hi - lo, &mut RowSubsortView { t: self, col, lo });
        if col + 1 >= self.ncols {
            return;
        }
        let mut run_start = lo;
        for i in lo + 1..=hi {
            let tied = if i < hi {
                cpu.read(self.row_addr(i - 1) + col as u64 * 4, 4);
                cpu.read(self.row_addr(i) + col as u64 * 4, 4);
                let t = self.val(i - 1, col) == self.val(i, col);
                cpu.branch(site::TIE_SCAN, t);
                t
            } else {
                false
            };
            if !tied {
                if i - run_start > 1 {
                    self.subsort_range(cpu, run_start, i, col + 1);
                }
                run_start = i;
            }
        }
    }

    /// Untraced verification.
    pub fn is_sorted(&self) -> bool {
        (1..self.len()).all(|i| {
            for c in 0..self.ncols {
                match self.val(i - 1, c).cmp(&self.val(i, c)) {
                    Ordering::Less => return true,
                    Ordering::Greater => return false,
                    Ordering::Equal => continue,
                }
            }
            true
        })
    }
}

struct RowTupleView<'a>(&'a mut RowTrace);

impl TraceSortable for RowTupleView<'_> {
    fn compare(&self, cpu: &mut SimCpu, i: usize, j: usize) -> Ordering {
        let t = &*self.0;
        for c in 0..t.ncols {
            cpu.read(t.row_addr(i) + c as u64 * 4, 4);
            cpu.read(t.row_addr(j) + c as u64 * 4, 4);
            let ord = t.val(i, c).cmp(&t.val(j, c));
            if c + 1 < t.ncols {
                cpu.branch(site::TIE_NEXT_COL + c as u64, ord == Ordering::Equal);
            }
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    fn swap(&mut self, cpu: &mut SimCpu, i: usize, j: usize) {
        self.0.swap_rows(cpu, i, j);
    }
}

struct RowSubsortView<'a> {
    t: &'a mut RowTrace,
    col: usize,
    lo: usize,
}

impl TraceSortable for RowSubsortView<'_> {
    fn compare(&self, cpu: &mut SimCpu, i: usize, j: usize) -> Ordering {
        let t = &*self.t;
        cpu.read(t.row_addr(self.lo + i) + self.col as u64 * 4, 4);
        cpu.read(t.row_addr(self.lo + j) + self.col as u64 * 4, 4);
        t.val(self.lo + i, self.col)
            .cmp(&t.val(self.lo + j, self.col))
    }

    fn swap(&mut self, cpu: &mut SimCpu, i: usize, j: usize) {
        self.t.swap_rows(cpu, self.lo + i, self.lo + j);
    }
}

// ---------------------------------------------------------------------------
// Normalized-key experiment — Figure 10
// ---------------------------------------------------------------------------

/// Fixed-width normalized-key rows sorted with a `memcmp` quicksort or a
/// byte-wise radix sort.
pub struct NormKeyTrace {
    data: Vec<u8>,
    width: usize,
    base: u64,
}

impl NormKeyTrace {
    /// Lay out `n = data.len() / width` key rows.
    pub fn new(cpu: &mut SimCpu, data: Vec<u8>, width: usize) -> NormKeyTrace {
        assert_eq!(data.len() % width, 0);
        let base = cpu.alloc(data.len());
        NormKeyTrace { data, width, base }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len() / self.width
    }

    /// `true` iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn row_addr(&self, i: usize) -> u64 {
        self.base + (i * self.width) as u64
    }

    fn row(&self, i: usize) -> &[u8] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Quicksort with a dynamic `memcmp` comparator (the pdqsort-with-
    /// normalized-keys configuration). Each comparison reads both keys up
    /// to the first differing byte, word-wise, as a real `memcmp` does.
    pub fn sort_quick_memcmp(&mut self, cpu: &mut SimCpu) {
        let n = self.len();
        trace_introsort(
            cpu,
            n,
            &mut MemcmpView {
                t: self,
                from_byte: 0,
                lo: 0,
            },
        );
    }

    /// LSD radix sort: one counting + scatter pass per key byte. No
    /// data-dependent branches at all; writes scatter across 256 buckets.
    pub fn sort_radix_lsd(&mut self, cpu: &mut SimCpu) {
        let n = self.len();
        let width = self.width;
        if n < 2 {
            return;
        }
        let aux_base = cpu.alloc(self.data.len());
        let hist_base = cpu.alloc(256 * 8);
        let mut aux = vec![0u8; self.data.len()];
        let mut in_aux = false;
        for byte in (0..width).rev() {
            let (src, dst, src_base, dst_base) = if in_aux {
                (&mut aux, &mut self.data, aux_base, self.base)
            } else {
                (&mut self.data, &mut aux, self.base, aux_base)
            };
            let mut counts = [0usize; 256];
            for r in 0..n {
                cpu.read(src_base + (r * width + byte) as u64, 1);
                let b = src[r * width + byte] as usize;
                cpu.read(hist_base + b as u64 * 8, 8);
                cpu.write(hist_base + b as u64 * 8, 8);
                counts[b] += 1;
            }
            if counts.contains(&n) {
                continue; // single bucket: skip the copy
            }
            let mut offsets = [0usize; 256];
            let mut sum = 0;
            for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
                *o = sum;
                sum += c;
            }
            for r in 0..n {
                cpu.read(src_base + (r * width) as u64, width);
                let b = src[r * width + byte] as usize;
                cpu.read(hist_base + b as u64 * 8, 8);
                cpu.write(hist_base + b as u64 * 8, 8);
                let d = offsets[b];
                offsets[b] += 1;
                cpu.write(dst_base + (d * width) as u64, width);
                dst[d * width..(d + 1) * width].copy_from_slice(&src[r * width..(r + 1) * width]);
            }
            in_aux = !in_aux;
        }
        if in_aux {
            for r in 0..n {
                cpu.read(aux_base + (r * width) as u64, width);
                cpu.write(self.base + (r * width) as u64, width);
            }
            self.data.copy_from_slice(&aux);
        }
    }

    /// MSD radix sort with an insertion-sort base case for buckets ≤ 24
    /// rows — much better cache behaviour than LSD on wide keys because
    /// each recursion works on a contiguous, shrinking range.
    pub fn sort_radix_msd(&mut self, cpu: &mut SimCpu) {
        let n = self.len();
        if n < 2 {
            return;
        }
        let aux_base = cpu.alloc(self.data.len());
        let hist_base = cpu.alloc(256 * 8);
        let mut aux = vec![0u8; self.data.len()];
        self.msd_rec(cpu, &mut aux, aux_base, hist_base, 0, 0, n);
    }

    #[allow(clippy::too_many_arguments)]
    fn msd_rec(
        &mut self,
        cpu: &mut SimCpu,
        aux: &mut [u8],
        aux_base: u64,
        hist_base: u64,
        mut byte: usize,
        start: usize,
        end: usize,
    ) {
        let width = self.width;
        let n = end - start;
        if n < 2 {
            return;
        }
        if n <= 24 {
            traced_insertion(
                cpu,
                0,
                n,
                &mut MemcmpView {
                    t: self,
                    from_byte: byte,
                    lo: start,
                },
            );
            return;
        }

        // Count (skipping common-prefix bytes without copying).
        let counts = loop {
            if byte >= width {
                return;
            }
            let mut c = [0usize; 256];
            for r in start..end {
                cpu.read(self.base + (r * width + byte) as u64, 1);
                let b = self.data[r * width + byte] as usize;
                cpu.read(hist_base + b as u64 * 8, 8);
                cpu.write(hist_base + b as u64 * 8, 8);
                c[b] += 1;
            }
            if c.contains(&n) {
                byte += 1;
                continue;
            }
            break c;
        };

        let mut offsets = [0usize; 256];
        let mut sum = start;
        for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
            *o = sum;
            sum += c;
        }
        let bucket_starts = offsets;
        for r in start..end {
            cpu.read(self.base + (r * width) as u64, width);
            let b = self.data[r * width + byte] as usize;
            cpu.read(hist_base + b as u64 * 8, 8);
            cpu.write(hist_base + b as u64 * 8, 8);
            let d = offsets[b];
            offsets[b] += 1;
            cpu.write(aux_base + (d * width) as u64, width);
            aux[d * width..(d + 1) * width].copy_from_slice(&self.data[r * width..(r + 1) * width]);
        }
        for r in start..end {
            cpu.read(aux_base + (r * width) as u64, width);
            cpu.write(self.base + (r * width) as u64, width);
        }
        self.data[start * width..end * width].copy_from_slice(&aux[start * width..end * width]);

        if byte + 1 < width {
            for b in 0..256 {
                let (bs, be) = (bucket_starts[b], offsets[b]);
                if be - bs > 1 {
                    self.msd_rec(cpu, aux, aux_base, hist_base, byte + 1, bs, be);
                }
            }
        }
    }

    /// Untraced verification.
    pub fn is_sorted(&self) -> bool {
        (1..self.len()).all(|i| self.row(i - 1) <= self.row(i))
    }
}

struct MemcmpView<'a> {
    t: &'a mut NormKeyTrace,
    from_byte: usize,
    lo: usize,
}

impl TraceSortable for MemcmpView<'_> {
    fn compare(&self, cpu: &mut SimCpu, i: usize, j: usize) -> Ordering {
        let t = &*self.t;
        let (bi, bj) = (self.lo + i, self.lo + j);
        let a = &t.row(bi)[self.from_byte..];
        let b = &t.row(bj)[self.from_byte..];
        let rem = t.width - self.from_byte;
        let diff = a
            .iter()
            .zip(b.iter())
            .position(|(x, y)| x != y)
            .map_or(rem, |p| p + 1);
        let touched = (diff.div_ceil(8) * 8).min(rem);
        cpu.read(t.row_addr(bi) + self.from_byte as u64, touched);
        cpu.read(t.row_addr(bj) + self.from_byte as u64, touched);
        a.cmp(b)
    }

    fn swap(&mut self, cpu: &mut SimCpu, i: usize, j: usize) {
        let width = self.t.width;
        let (bi, bj) = (self.lo + i, self.lo + j);
        cpu.read(self.t.row_addr(bi), width);
        cpu.read(self.t.row_addr(bj), width);
        cpu.write(self.t.row_addr(bi), width);
        cpu.write(self.t.row_addr(bj), width);
        for b in 0..width {
            self.t.data.swap(bi * width + b, bj * width + b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64, modk: u32) -> Vec<u32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as u32) % modk
            })
            .collect()
    }

    fn correlated_cols(n: usize, ncols: usize, seed: u64) -> Vec<Vec<u32>> {
        // 128 unique values per column, as in the paper's CorrelatedP data.
        (0..ncols)
            .map(|c| pseudo_random(n, seed + c as u64, 128))
            .collect()
    }

    #[test]
    fn columnar_tuple_sorts() {
        let mut cpu = SimCpu::new();
        let mut t = ColumnarTrace::new(&mut cpu, correlated_cols(5_000, 4, 1));
        t.sort_tuple_at_a_time(&mut cpu);
        assert!(t.is_sorted());
        assert!(cpu.counters().branches > 0);
        assert!(cpu.counters().l1_misses > 0);
    }

    #[test]
    fn columnar_subsort_sorts() {
        let mut cpu = SimCpu::new();
        let mut t = ColumnarTrace::new(&mut cpu, correlated_cols(5_000, 4, 2));
        t.sort_subsort(&mut cpu);
        assert!(t.is_sorted());
    }

    #[test]
    fn row_tuple_sorts() {
        let mut cpu = SimCpu::new();
        let mut t = RowTrace::new(&mut cpu, &correlated_cols(5_000, 4, 3));
        t.sort_tuple_at_a_time(&mut cpu);
        assert!(t.is_sorted());
    }

    #[test]
    fn row_subsort_sorts() {
        let mut cpu = SimCpu::new();
        let mut t = RowTrace::new(&mut cpu, &correlated_cols(5_000, 4, 4));
        t.sort_subsort(&mut cpu);
        assert!(t.is_sorted());
    }

    #[test]
    fn rows_incur_fewer_cache_misses_than_columns() {
        // The paper's central Table II vs III observation, at reduced scale:
        // sorting rows misses the L1 far less than sorting columnar data.
        let n = 1 << 15;
        let cols = correlated_cols(n, 4, 5);
        let mut cpu_col = SimCpu::new();
        let mut col = ColumnarTrace::new(&mut cpu_col, cols.clone());
        col.sort_tuple_at_a_time(&mut cpu_col);
        let mut cpu_row = SimCpu::new();
        let mut row = RowTrace::new(&mut cpu_row, &cols);
        row.sort_tuple_at_a_time(&mut cpu_row);
        assert!(col.is_sorted() && row.is_sorted());
        let (cm, rm) = (cpu_col.counters().l1_misses, cpu_row.counters().l1_misses);
        assert!(
            cm > 2 * rm,
            "columnar misses {cm} should far exceed row misses {rm}"
        );
    }

    #[test]
    fn subsort_has_fewer_branch_misses_than_tuple() {
        // Table II's branch-misprediction ordering on correlated data.
        let n = 1 << 14;
        let cols = correlated_cols(n, 4, 6);
        let mut cpu_t = SimCpu::new();
        ColumnarTrace::new(&mut cpu_t, cols.clone()).sort_tuple_at_a_time(&mut cpu_t);
        let mut cpu_s = SimCpu::new();
        ColumnarTrace::new(&mut cpu_s, cols).sort_subsort(&mut cpu_s);
        let (tm, sm) = (
            cpu_t.counters().branch_misses,
            cpu_s.counters().branch_misses,
        );
        assert!(sm < tm, "subsort misses {sm} should be below tuple {tm}");
    }

    #[test]
    fn quick_memcmp_sorts_keys() {
        let mut cpu = SimCpu::new();
        let keys = pseudo_random(3_000, 7, u32::MAX);
        let data: Vec<u8> = keys.iter().flat_map(|k| k.to_be_bytes()).collect();
        let mut t = NormKeyTrace::new(&mut cpu, data, 4);
        t.sort_quick_memcmp(&mut cpu);
        assert!(t.is_sorted());
    }

    #[test]
    fn radix_lsd_sorts_keys() {
        let mut cpu = SimCpu::new();
        let keys = pseudo_random(3_000, 8, u32::MAX);
        let data: Vec<u8> = keys.iter().flat_map(|k| k.to_be_bytes()).collect();
        let mut t = NormKeyTrace::new(&mut cpu, data, 4);
        t.sort_radix_lsd(&mut cpu);
        assert!(t.is_sorted());
    }

    #[test]
    fn radix_msd_sorts_keys() {
        let mut cpu = SimCpu::new();
        let keys = pseudo_random(3_000, 9, u32::MAX);
        let wide: Vec<u8> = keys
            .iter()
            .flat_map(|k| {
                let mut row = k.to_be_bytes().to_vec();
                row.extend_from_slice(&k.to_le_bytes());
                row
            })
            .collect();
        let mut t = NormKeyTrace::new(&mut cpu, wide, 8);
        t.sort_radix_msd(&mut cpu);
        assert!(t.is_sorted());
    }

    #[test]
    fn radix_has_far_fewer_branch_misses_than_quicksort() {
        // Figure 10's branch story: radix is (nearly) branchless.
        let n = 1 << 13;
        let keys = pseudo_random(n, 10, 128);
        let data: Vec<u8> = keys.iter().flat_map(|k| k.to_be_bytes()).collect();
        let mut cpu_q = SimCpu::new();
        let mut q = NormKeyTrace::new(&mut cpu_q, data.clone(), 4);
        q.sort_quick_memcmp(&mut cpu_q);
        let mut cpu_r = SimCpu::new();
        let mut r = NormKeyTrace::new(&mut cpu_r, data, 4);
        r.sort_radix_lsd(&mut cpu_r);
        assert!(q.is_sorted() && r.is_sorted());
        let (qb, rb) = (
            cpu_q.counters().branch_misses,
            cpu_r.counters().branch_misses,
        );
        assert!(rb * 10 < qb.max(1), "radix {rb} vs quicksort {qb}");
    }

    #[test]
    fn msd_has_fewer_cache_misses_than_lsd_on_wide_keys() {
        // The paper's reason for preferring MSD beyond 4 key bytes.
        let n = 1 << 13;
        let width = 20;
        let rows: Vec<u8> = (0..n)
            .flat_map(|i| {
                let ks = pseudo_random(5, i as u64, 128);
                ks.iter().flat_map(|k| k.to_be_bytes()).collect::<Vec<u8>>()
            })
            .collect();
        let mut cpu_l = SimCpu::new();
        let mut l = NormKeyTrace::new(&mut cpu_l, rows.clone(), width);
        l.sort_radix_lsd(&mut cpu_l);
        let mut cpu_m = SimCpu::new();
        let mut m = NormKeyTrace::new(&mut cpu_m, rows, width);
        m.sort_radix_msd(&mut cpu_m);
        assert!(l.is_sorted() && m.is_sorted());
        assert!(
            cpu_m.counters().l1_misses < cpu_l.counters().l1_misses,
            "MSD {} should miss less than LSD {}",
            cpu_m.counters().l1_misses,
            cpu_l.counters().l1_misses
        );
    }
}

//! The benchmark harness: one experiment per table/figure of the paper.
//!
//! Every experiment is a library function returning an
//! [`ExperimentResult`], so the `repro` binary can print it, integration
//! tests can smoke-test it at tiny scale, and the wall-clock benches can
//! reuse the same kernels.
//!
//! # Scale
//!
//! Defaults are laptop-sized. Environment variables restore (or approach)
//! paper scale:
//!
//! | variable | default | paper | meaning |
//! |---|---|---|---|
//! | `ROWSORT_MAX_POW` | 18 | 24 | micro-benchmarks sweep 2^12 … 2^pow rows |
//! | `ROWSORT_SIM_POW` | 16 | 24 | rows for the simulated-counter experiments |
//! | `ROWSORT_E2E_ROWS` | 1000000 | 10000000 | Figure 12 step size (×1…×10) |
//! | `ROWSORT_SF_FRACTION` | 0.02 | 1.0 | fraction of TPC-DS cardinalities generated |
//! | `ROWSORT_THREADS` | 1 | 16+ | worker threads for end-to-end sorts |
//! | `ROWSORT_REPS` | 3 | 5 | repetitions; the median is reported |

pub mod counters;
pub mod endtoend;
pub mod info;
pub mod micro;
pub mod stress;

use std::time::{Duration, Instant};

/// Scale configuration, read from the environment once.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Micro-benchmarks sweep 2^12 … 2^max_pow rows.
    pub max_pow: u32,
    /// Rows (log2) for simulated-counter experiments.
    pub sim_pow: u32,
    /// Figure 12 row-count step (the paper uses 10 M).
    pub e2e_rows: usize,
    /// Fraction of the TPC-DS Table IV cardinality to generate.
    pub sf_fraction: f64,
    /// Worker threads for end-to-end experiments.
    pub threads: usize,
    /// Repetitions per measurement (median reported).
    pub reps: usize,
}

impl Scale {
    /// Read the scale from the environment (see module docs).
    pub fn from_env() -> Scale {
        fn get<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        Scale {
            max_pow: get("ROWSORT_MAX_POW", 18),
            sim_pow: get("ROWSORT_SIM_POW", 16),
            e2e_rows: get("ROWSORT_E2E_ROWS", 1_000_000),
            sf_fraction: get("ROWSORT_SF_FRACTION", 0.02),
            threads: get("ROWSORT_THREADS", 1),
            reps: get("ROWSORT_REPS", 3),
        }
    }

    /// A tiny scale for smoke tests.
    pub fn tiny() -> Scale {
        Scale {
            max_pow: 12,
            sim_pow: 10,
            e2e_rows: 5_000,
            sf_fraction: 0.0005,
            threads: 1,
            reps: 1,
        }
    }

    /// The micro-benchmark row-count sweep: powers of two from 2^12.
    pub fn row_sweep(&self) -> Vec<usize> {
        (12..=self.max_pow)
            .step_by(2)
            .map(|p| 1usize << p)
            .collect()
    }
}

/// Time `run` over a fresh `setup()` product, `reps` times; report the
/// median.
pub fn time_median<T>(
    reps: usize,
    mut setup: impl FnMut() -> T,
    mut run: impl FnMut(T),
) -> Duration {
    let mut times = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let input = setup();
        let start = Instant::now();
        run(input);
        times.push(start.elapsed());
    }
    times.sort();
    times[times.len() / 2]
}

/// One reproduced table or figure: an id ("fig2"), a title, column
/// headers, and rows of formatted cells.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Short id matching the paper ("fig2", "table3", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes (what to look for, paper expectation).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate().take(ncols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>w$}  "));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * ncols));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// Format a ratio like the paper's relative-runtime cells.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}")
}

/// Format seconds.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_sweep() {
        let s = Scale {
            max_pow: 16,
            ..Scale::tiny()
        };
        assert_eq!(s.row_sweep(), vec![1 << 12, 1 << 14, 1 << 16]);
    }

    #[test]
    fn time_median_times_something() {
        let d = time_median(3, || vec![0u8; 1000], |mut v| v.sort_unstable());
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn render_aligns() {
        let r = ExperimentResult {
            id: "figX".into(),
            title: "test".into(),
            header: vec!["a".into(), "bb".into()],
            rows: vec![vec!["1".into(), "2".into()]],
            notes: vec!["hello".into()],
        };
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("note: hello"));
    }
}

//! CSV import/export for tables.
//!
//! A minimal, dependency-free CSV codec (RFC-4180 quoting) so workloads can
//! be loaded from files — e.g. real `dsdgen` output, for anyone who has it,
//! in place of our synthetic TPC-DS tables.

use crate::catalog::Table;
use crate::{EngineError, Result};
use rowsort_vector::{DataChunk, LogicalType, Value};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Parse one CSV record, honouring double-quote quoting and `""` escapes.
/// Each field carries a flag recording whether it was quoted — a quoted
/// empty field is an empty string, an unquoted one is NULL.
fn split_record(line: &str) -> Result<Vec<(String, bool)>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() && !quoted => {
                in_quotes = true;
                quoted = true;
            }
            '"' => {
                return Err(EngineError::Parse(
                    "unexpected quote inside unquoted CSV field".into(),
                ))
            }
            ',' if !in_quotes => {
                fields.push((std::mem::take(&mut cur), quoted));
                quoted = false;
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(EngineError::Parse("unterminated CSV quote".into()));
    }
    fields.push((cur, quoted));
    Ok(fields)
}

fn parse_cell(text: &str, quoted: bool, ty: LogicalType) -> Result<Value> {
    if text.is_empty() && !quoted {
        return Ok(Value::Null);
    }
    let bad = || EngineError::Parse(format!("cannot parse '{text}' as {ty}"));
    Ok(match ty {
        LogicalType::Boolean => Value::Boolean(match text {
            "true" | "TRUE" | "1" | "t" => true,
            "false" | "FALSE" | "0" | "f" => false,
            _ => return Err(bad()),
        }),
        LogicalType::Int8 => Value::Int8(text.parse().map_err(|_| bad())?),
        LogicalType::Int16 => Value::Int16(text.parse().map_err(|_| bad())?),
        LogicalType::Int32 => Value::Int32(text.parse().map_err(|_| bad())?),
        LogicalType::Int64 => Value::Int64(text.parse().map_err(|_| bad())?),
        LogicalType::UInt8 => Value::UInt8(text.parse().map_err(|_| bad())?),
        LogicalType::UInt16 => Value::UInt16(text.parse().map_err(|_| bad())?),
        LogicalType::UInt32 => Value::UInt32(text.parse().map_err(|_| bad())?),
        LogicalType::UInt64 => Value::UInt64(text.parse().map_err(|_| bad())?),
        LogicalType::Float32 => Value::Float32(text.parse().map_err(|_| bad())?),
        LogicalType::Float64 => Value::Float64(text.parse().map_err(|_| bad())?),
        LogicalType::Date => Value::Date(text.parse().map_err(|_| bad())?),
        LogicalType::Timestamp => Value::Timestamp(text.parse().map_err(|_| bad())?),
        LogicalType::Varchar => Value::Varchar(text.to_owned()),
    })
}

fn format_cell(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Varchar(s) => {
            if s.is_empty() || s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        }
        // Display wraps these as date(..)/ts(..); CSV stores the raw number.
        Value::Date(d) => d.to_string(),
        Value::Timestamp(t) => t.to_string(),
        other => other.to_string(),
    }
}

/// Read a table from CSV. The first record must be the header (column
/// names); `types` gives the column types in header order. Empty fields
/// are NULL.
pub fn read_csv<R: Read>(name: &str, types: &[LogicalType], reader: R) -> Result<Table> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| EngineError::Parse("empty CSV input".into()))
        .and_then(|r| r.map_err(|e| EngineError::Parse(e.to_string())))?;
    let column_names: Vec<String> = split_record(&header)?.into_iter().map(|(f, _)| f).collect();
    if column_names.len() != types.len() {
        return Err(EngineError::Parse(format!(
            "CSV header has {} columns, {} types given",
            column_names.len(),
            types.len()
        )));
    }
    let mut data = DataChunk::new(types);
    let mut row = Vec::with_capacity(types.len());
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| EngineError::Parse(e.to_string()))?;
        // An empty line is a record with one (NULL) field — significant for
        // single-column tables, an arity error otherwise.
        let fields = split_record(&line)?;
        if fields.len() != types.len() {
            return Err(EngineError::Parse(format!(
                "CSV record {} has {} fields, expected {}",
                lineno + 2,
                fields.len(),
                types.len()
            )));
        }
        row.clear();
        for ((f, quoted), &ty) in fields.iter().zip(types) {
            row.push(parse_cell(f, *quoted, ty)?);
        }
        data.push_row(&row)
            .map_err(|e| EngineError::Parse(e.to_string()))?;
    }
    Ok(Table::new(name, column_names, data))
}

/// Write a table (header + records) as CSV. NULLs become empty fields.
pub fn write_csv<W: Write>(table: &Table, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    let io_err = |e: std::io::Error| EngineError::Parse(e.to_string());
    writeln!(w, "{}", table.column_names.join(",")).map_err(io_err)?;
    for i in 0..table.data.len() {
        let cells: Vec<String> = table.data.row(i).iter().map(format_cell).collect();
        writeln!(w, "{}", cells.join(",")).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(table: &Table) -> Table {
        let mut buf = Vec::new();
        write_csv(table, &mut buf).unwrap();
        read_csv(&table.name, &table.types(), buf.as_slice()).unwrap()
    }

    #[test]
    fn basic_round_trip() {
        let mut data = DataChunk::new(&[
            LogicalType::Int32,
            LogicalType::Varchar,
            LogicalType::Float64,
        ]);
        data.push_row(&[Value::Int32(1), Value::from("plain"), Value::Float64(1.5)])
            .unwrap();
        data.push_row(&[Value::Null, Value::from("with,comma"), Value::Null])
            .unwrap();
        data.push_row(&[
            Value::Int32(-3),
            Value::from("quote\"inside"),
            Value::Float64(-0.25),
        ])
        .unwrap();
        let t = Table::new("t", vec!["a".into(), "b".into(), "c".into()], data);
        let back = roundtrip(&t);
        assert_eq!(back.column_names, t.column_names);
        assert_eq!(back.data.to_rows(), t.data.to_rows());
    }

    #[test]
    fn empty_string_vs_null() {
        // Empty fields load as NULL; empty strings are quoted on write so
        // they survive.
        let mut data = DataChunk::new(&[LogicalType::Varchar]);
        data.push_row(&[Value::from("")]).unwrap();
        data.push_row(&[Value::Null]).unwrap();
        let t = Table::new("t", vec!["s".into()], data);
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text, "s\n\"\"\n\n");
        let back = read_csv("t", &t.types(), buf.as_slice()).unwrap();
        assert_eq!(back.data.row(0), vec![Value::from("")]);
        assert_eq!(back.data.row(1), vec![Value::Null]);
    }

    #[test]
    fn parse_errors() {
        assert!(read_csv("t", &[LogicalType::Int32], "a\nxyz\n".as_bytes()).is_err());
        assert!(read_csv("t", &[LogicalType::Int32], "a,b\n1\n".as_bytes()).is_err());
        assert!(read_csv("t", &[LogicalType::Int32], "".as_bytes()).is_err());
        assert!(read_csv(
            "t",
            &[LogicalType::Varchar],
            "a\n\"unterminated\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn loaded_table_is_queryable() {
        let csv = "id,name\n3,carol\n1,alice\n2,bob\n";
        let t = read_csv(
            "people",
            &[LogicalType::Int32, LogicalType::Varchar],
            csv.as_bytes(),
        )
        .unwrap();
        let mut e = crate::Engine::new();
        e.register_table(t);
        let r = e.query("SELECT id FROM people ORDER BY name").unwrap();
        assert_eq!(r.row(0), vec![Value::Int32(1)]);
        assert_eq!(r.row(2), vec![Value::Int32(3)]);
    }

    #[test]
    fn all_types_round_trip() {
        let types = LogicalType::ALL;
        let mut data = DataChunk::new(&types);
        data.push_row(&[
            Value::Boolean(true),
            Value::Int8(-1),
            Value::Int16(2),
            Value::Int32(-3),
            Value::Int64(4),
            Value::UInt8(5),
            Value::UInt16(6),
            Value::UInt32(7),
            Value::UInt64(8),
            Value::Float32(1.25),
            Value::Float64(-2.5),
            Value::Date(100),
            Value::Timestamp(200),
            Value::from("s"),
        ])
        .unwrap();
        let t = Table::new(
            "all",
            (0..types.len()).map(|i| format!("c{i}")).collect(),
            data,
        );
        let back = roundtrip(&t);
        assert_eq!(back.data.to_rows(), t.data.to_rows());
    }
}

//! Graceful degradation under memory pressure — the paper's §IX future
//! work, demonstrated: the external sorter spills sorted runs to disk and
//! stream-merges them, so shrinking the memory budget costs a constant
//! factor instead of failing the query.
//!
//! Run with `cargo run --release --example external_sort [rows]`.

use rowsort::core::external::{ExternalSortOptions, ExternalSorter};
use rowsort::core::pipeline::{SortOptions, SortPipeline};
use rowsort::datagen::shuffled_integers;
use rowsort::prelude::*;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000_000);
    println!("sorting {n} shuffled integers under shrinking memory budgets\n");
    let chunk = DataChunk::from_columns(vec![Vector::from_i32s(shuffled_integers(n, 42))]).unwrap();
    let order = OrderBy::ascending(1);

    // Baseline: the fully in-memory pipeline.
    let start = Instant::now();
    let reference =
        SortPipeline::new(chunk.types(), order.clone(), SortOptions::default()).sort(&chunk);
    let base = start.elapsed().as_secs_f64();
    println!("{:<28} {:>9.3}s  (baseline)", "in-memory pipeline", base);

    for denom in [1usize, 2, 4, 8, 16] {
        let budget = (n / denom).max(1);
        let sorter = ExternalSorter::new(
            chunk.types(),
            order.clone(),
            ExternalSortOptions {
                memory_limit_rows: budget,
                ..Default::default()
            },
        );
        let start = Instant::now();
        let sorted = sorter.sort(&chunk).expect("external sort");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(sorted.len(), reference.len());
        assert_eq!(sorted.row(0), reference.row(0));
        assert_eq!(sorted.row(n - 1), reference.row(n - 1));
        println!(
            "{:<28} {:>9.3}s  ({:.2}x baseline, {} spilled runs)",
            format!("external, budget 1/{denom}"),
            secs,
            secs / base,
            n.div_ceil(budget),
        );
    }

    println!(
        "\nthe query always completes; the slowdown stays a small constant factor \
         instead of the cliff (or failure) the paper's §IX warns about."
    );
}

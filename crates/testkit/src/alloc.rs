//! A counting global allocator for zero-allocation assertions.
//!
//! Install [`CountingAllocator`] as the `#[global_allocator]` of a test
//! binary, then bracket the region under test with [`allocation_count`]
//! readings:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rowsort_testkit::alloc::CountingAllocator =
//!     rowsort_testkit::alloc::CountingAllocator;
//!
//! let before = allocation_count();
//! steady_state_sort();
//! assert_eq!(allocation_count() - before, 0);
//! ```
//!
//! Only allocations are counted (not deallocations): a steady-state
//! pipeline may *return* buffers to its pool, but must not take any from
//! the system allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

/// Forwarding allocator that counts `alloc`/`realloc` calls.
pub struct CountingAllocator;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// GlobalAlloc contract; the counter update has no effect on the returned
// memory.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards to `System` under the caller's own layout contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards to `System` under the caller's own layout contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: forwards to `System`; `ptr` came from `alloc` above.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by the matching `alloc` above.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards to `System` under the caller's realloc contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` follow the caller's realloc contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocation calls (alloc + alloc_zeroed + realloc) since process
/// start. Monotonic; subtract two readings to count a region.
pub fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    // The allocator is exercised for real in `rowsort-core`'s
    // `zero_alloc` integration test, where it is installed globally; unit
    // tests here only check that the counter is monotonic and readable.
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let a = allocation_count();
        let b = allocation_count();
        assert!(b >= a);
    }
}

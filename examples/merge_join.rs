//! Sort-merge join — the paper's §V-B example of an operator that consumes
//! *sorted* data and therefore needs full-tuple comparisons on every step.
//!
//! Joins a catalog_sales-like fact table to its warehouse dimension through
//! the SQL layer, with the underlying sorts executed by each system
//! profile in turn.
//!
//! Run with `cargo run --release --example merge_join`.

use rowsort::core::systems::SystemProfile;
use rowsort::datagen::tpcds;
use rowsort::engine::{Engine, Table};
use rowsort::vector::Value;
use std::time::Instant;

fn register(engine: &mut Engine, t: &tpcds::NamedTable) {
    engine.register_table(Table::new(
        t.name.clone(),
        t.columns.iter().map(|(n, _)| n.clone()).collect(),
        t.data.clone(),
    ));
}

fn main() {
    let n = 200_000;
    let sf = 10.0;
    let cs = tpcds::catalog_sales(n, sf, 11);
    let w = tpcds::warehouse(sf, 11);
    println!(
        "joining catalog_sales ({} rows) to warehouse ({} rows) on cs_warehouse_sk\n",
        cs.data.len(),
        w.data.len()
    );

    let sql = "SELECT count(*) FROM (\
                 SELECT cs_item_sk FROM catalog_sales JOIN warehouse \
                 ON cs_warehouse_sk = w_warehouse_sk \
                 ORDER BY w_warehouse_name OFFSET 1) t";
    println!("query:\n  {sql}\n");

    let mut expected = None;
    println!("{:<32} {:>10}  {:>8}", "system profile", "time", "count");
    for profile in SystemProfile::ALL {
        let mut engine = Engine::new();
        engine.options_mut().profile = profile;
        register(&mut engine, &cs);
        register(&mut engine, &w);
        let start = Instant::now();
        let result = engine.query(sql).expect("join query runs");
        let secs = start.elapsed().as_secs_f64();
        let count = match &result.row(0)[0] {
            Value::Int64(c) => *c,
            other => panic!("unexpected {other:?}"),
        };
        println!("{:<32} {:>9.3}s  {:>8}", profile.label(), secs, count);
        match expected {
            None => expected = Some(count),
            Some(e) => assert_eq!(count, e, "profiles must agree"),
        }
    }

    println!(
        "\nNULL warehouse keys drop out of the join (~3% of rows), so the count \
         is slightly below {n}. Both join inputs were sorted by the configured \
         profile; the merge then compared the key on every step — the access \
         pattern that makes the paper prefer one memcmp-able normalized key \
         over per-column interpreted comparators."
    );
}

//! Out-of-core sorting — the paper's §IX future work, implemented.
//!
//! The sort operator is a pipeline breaker: it must materialize its input,
//! and a main-memory engine that cannot either fails the query or falls off
//! a performance cliff. The paper's future-work section proposes using the
//! unified row format to "offload the data to secondary storage in a
//! unified way" so performance degrades gracefully. [`ExternalSorter`]
//! does exactly that:
//!
//! 1. **Run generation** under a row budget: each run is sorted in memory
//!    with the same normalized-key machinery as the in-memory pipeline,
//!    then *spilled* to a temporary file as self-contained records
//!    (`key ‖ payload row ‖ per-row string segment`), so a run's memory is
//!    released before the next run is built.
//! 2. **Streaming merge**: a loser tree over buffered run readers pops one
//!    record at a time; peak memory during the merge is one buffer per run
//!    plus the output.

use crate::comparator::FusedRowComparator;
use crate::keys::KeyBlock;
use crate::metrics::{emit_trace, Counter, CounterRegistry, Metrics, Phase, SortProfile};
use rowsort_algos::kway::LoserTree;
use rowsort_row::{RowBlock, RowLayout};
use rowsort_vector::{DataChunk, LogicalType, OrderBy};
use std::cmp::Ordering;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tuning for the external sorter.
#[derive(Debug, Clone)]
pub struct ExternalSortOptions {
    /// Maximum rows held in memory during run generation (the "memory
    /// limit"; the paper's DuckDB uses bytes, rows are equivalent for a
    /// fixed schema).
    pub memory_limit_rows: usize,
    /// Directory for spill files (defaults to the system temp dir).
    pub spill_dir: Option<PathBuf>,
}

impl Default for ExternalSortOptions {
    fn default() -> Self {
        ExternalSortOptions {
            memory_limit_rows: 1 << 17,
            spill_dir: None,
        }
    }
}

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// An external-memory relational sorter.
///
/// ```
/// use rowsort_core::external::{ExternalSortOptions, ExternalSorter};
/// use rowsort_vector::{DataChunk, OrderBy, Value, Vector};
///
/// let chunk = DataChunk::from_columns(vec![Vector::from_i32s(
///     (0..1000).rev().collect(),
/// )])
/// .unwrap();
/// let sorter = ExternalSorter::new(
///     chunk.types(),
///     OrderBy::ascending(1),
///     ExternalSortOptions { memory_limit_rows: 100, spill_dir: None },
/// );
/// let sorted = sorter.sort(&chunk).unwrap(); // 10 spilled runs, merged
/// assert_eq!(sorted.row(0), vec![Value::Int32(0)]);
/// assert_eq!(sorted.row(999), vec![Value::Int32(999)]);
/// ```
pub struct ExternalSorter {
    types: Vec<LogicalType>,
    order: OrderBy,
    options: ExternalSortOptions,
    layout: Arc<RowLayout>,
    metrics: CounterRegistry,
    profile: Mutex<SortProfile>,
}

/// Read a 4-byte heap slot out of the row area. Infallible by type: the
/// width is a const parameter, so there is no fallible `try_into`.
#[inline]
fn read_slot<const W: usize>(bytes: &[u8], at: usize) -> [u8; W] {
    let mut buf = [0u8; W];
    buf.copy_from_slice(&bytes[at..at + W]);
    buf
}

/// One spilled run and the metadata to read it back.
struct SpilledRun {
    path: PathBuf,
    rows: usize,
}

impl Drop for SpilledRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A buffered reader over one spilled run, holding the current record.
struct RunCursor {
    reader: BufReader<File>,
    remaining: usize,
    key: Vec<u8>,
    row: Vec<u8>,
    heap: Vec<u8>,
}

impl RunCursor {
    fn open(run: &SpilledRun, kw: usize, width: usize) -> io::Result<RunCursor> {
        let mut c = RunCursor {
            reader: BufReader::new(File::open(&run.path)?),
            remaining: run.rows,
            key: vec![0; kw],
            row: vec![0; width],
            heap: Vec::new(),
        };
        c.advance()?;
        Ok(c)
    }

    fn exhausted(&self) -> bool {
        self.remaining == usize::MAX
    }

    /// Read the next record into the cursor (or mark exhausted).
    fn advance(&mut self) -> io::Result<()> {
        if self.remaining == 0 {
            self.remaining = usize::MAX;
            return Ok(());
        }
        self.remaining -= 1;
        self.reader.read_exact(&mut self.key)?;
        self.reader.read_exact(&mut self.row)?;
        let mut len_buf = [0u8; 4];
        self.reader.read_exact(&mut len_buf)?;
        let seg_len = u32::from_le_bytes(len_buf) as usize;
        self.heap.resize(seg_len, 0);
        self.reader.read_exact(&mut self.heap)?;
        Ok(())
    }
}

impl ExternalSorter {
    /// Plan an external sort of a relation with columns `types` by `order`.
    pub fn new(
        types: Vec<LogicalType>,
        order: OrderBy,
        mut options: ExternalSortOptions,
    ) -> ExternalSorter {
        // A zero budget would leave the run-generation loop unable to make
        // progress (each run would cover zero rows); degrade to one-row runs.
        options.memory_limit_rows = options.memory_limit_rows.max(1);
        let layout = Arc::new(RowLayout::new(&types));
        ExternalSorter {
            types,
            order,
            options,
            layout,
            metrics: CounterRegistry::new(),
            profile: Mutex::new(SortProfile::zeroed()),
        }
    }

    /// The profile recorded by the most recent [`ExternalSorter::sort`].
    pub fn last_profile(&self) -> SortProfile {
        match self.profile.lock() {
            Ok(p) => *p,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }

    /// Cumulative counters across every sort run by this sorter.
    pub fn metrics(&self) -> Metrics {
        self.metrics.snapshot()
    }

    fn spill_path(&self) -> PathBuf {
        let dir = self
            .options
            .spill_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir);
        let id = SPILL_COUNTER.fetch_add(1, AtomicOrdering::Relaxed);
        dir.join(format!("rowsort-spill-{}-{}.run", std::process::id(), id))
    }

    /// Columns holding out-of-row (VARCHAR) data.
    fn varlen_cols(&self) -> Vec<usize> {
        (0..self.types.len())
            .filter(|&c| self.types[c] == LogicalType::Varchar)
            .collect()
    }

    /// Sort `input`, spilling sorted runs to disk whenever the row budget
    /// is reached, then stream-merge the runs.
    pub fn sort(&self, input: &DataChunk) -> io::Result<DataChunk> {
        let n = input.len();
        if n == 0 {
            return Ok(DataChunk::new(&self.types));
        }
        let sort_start = Instant::now();
        let before = self.metrics.snapshot();
        let stats: Vec<usize> = {
            let _prepare = self.metrics.time_phase(Phase::Prepare);
            (0..self.types.len())
                .map(|c| {
                    input
                        .column(c)
                        .as_strings()
                        .map(|s| s.max_len())
                        .unwrap_or(0)
                })
                .collect()
        };

        // Determine the key width once, from an empty prototype key block.
        let proto = KeyBlock::new(&self.types, &self.order, |c| stats[c]);
        let kw = proto.key_width();
        let width = self.layout.width();
        let varlen_cols = self.varlen_cols();

        // Phase 1: generate and spill runs within the row budget.
        let budget = self.options.memory_limit_rows;
        let mut runs: Vec<SpilledRun> = Vec::new();
        let mut start = 0;
        {
            let _spill = self.metrics.time_phase(Phase::Spill);
            while start < n {
                let end = (start + budget).min(n);
                let morsel = input.slice(start, end);
                let mut payload = RowBlock::with_capacity(Arc::clone(&self.layout), morsel.len());
                payload.append_chunk(&morsel);
                let mut keys = KeyBlock::new(&self.types, &self.order, |c| stats[c]);
                keys.append_chunk(&morsel);
                let tie_cmp = FusedRowComparator::new(&self.layout, &self.order);
                let algo = keys.sort(|a, b| {
                    tie_cmp.compare(
                        payload.row(a as usize),
                        payload.heap(),
                        payload.row(b as usize),
                        payload.heap(),
                    )
                });
                match algo {
                    crate::keys::KeySortAlgo::Radix { passes } => {
                        self.metrics.add(Counter::RadixSorts, 1);
                        self.metrics.add(Counter::RadixPasses, passes);
                    }
                    crate::keys::KeySortAlgo::Pdq => self.metrics.add(Counter::PdqSorts, 1),
                    crate::keys::KeySortAlgo::Noop => {}
                }
                self.metrics.add(Counter::RunsGenerated, 1);
                runs.push(self.spill_run(&keys, &payload, &varlen_cols)?);
                start = end;
            }
        }

        // Phase 2: streaming k-way merge over the spilled runs.
        let out = {
            let _merge = self.metrics.time_phase(Phase::SpillMerge);
            self.merge_spilled(&runs, kw, width, &varlen_cols)?
        };
        self.metrics.record_sort(n as u64);
        let profile = SortProfile {
            operator: "external",
            rows: n as u64,
            total_ns: sort_start.elapsed().as_nanos() as u64,
            metrics: self.metrics.snapshot().since(&before),
        };
        match self.profile.lock() {
            Ok(mut p) => *p = profile,
            Err(poisoned) => *poisoned.into_inner() = profile,
        }
        emit_trace(&profile);
        Ok(out)
    }

    /// Write one sorted run as self-contained records.
    fn spill_run(
        &self,
        keys: &KeyBlock,
        payload: &RowBlock,
        varlen_cols: &[usize],
    ) -> io::Result<SpilledRun> {
        let path = self.spill_path();
        let mut w = BufWriter::new(File::create(&path)?);
        let width = self.layout.width();
        let mut row_buf = vec![0u8; width];
        let mut seg: Vec<u8> = Vec::new();
        let mut bytes_written = 0u64;
        for i in 0..keys.len() {
            let rid = keys.row_id(i) as usize;
            w.write_all(keys.key(i))?;
            row_buf.copy_from_slice(payload.row(rid));
            // Rewrite heap offsets to be relative to this record's segment.
            seg.clear();
            for &c in varlen_cols {
                if payload.is_null(rid, c) {
                    continue;
                }
                let at = self.layout.offset(c);
                let bytes = payload.string_bytes(rid, c);
                let new_off = seg.len() as u32;
                seg.extend_from_slice(bytes);
                row_buf[at..at + 4].copy_from_slice(&new_off.to_le_bytes());
            }
            w.write_all(&row_buf)?;
            w.write_all(&(seg.len() as u32).to_le_bytes())?;
            w.write_all(&seg)?;
            bytes_written += (keys.key(i).len() + width + 4 + seg.len()) as u64;
        }
        w.flush()?;
        self.metrics.add(Counter::SpilledRuns, 1);
        self.metrics.add(Counter::SpilledBytes, bytes_written);
        self.metrics.add(Counter::BytesMoved, bytes_written);
        Ok(SpilledRun {
            path,
            rows: keys.len(),
        })
    }

    fn merge_spilled(
        &self,
        runs: &[SpilledRun],
        kw: usize,
        width: usize,
        varlen_cols: &[usize],
    ) -> io::Result<DataChunk> {
        let k = runs.len();
        let mut cursors: Vec<RunCursor> = runs
            .iter()
            .map(|r| RunCursor::open(r, kw, width))
            .collect::<io::Result<Vec<_>>>()?;
        let total: usize = runs.iter().map(|r| r.rows).sum();
        let tie_cmp = FusedRowComparator::new(&self.layout, &self.order);
        let tie_possible = !varlen_cols.is_empty();

        let cmp = |a: &RunCursor, b: &RunCursor| -> Ordering {
            match a.key.cmp(&b.key) {
                Ordering::Equal if tie_possible => {
                    tie_cmp.compare(&a.row, &a.heap, &b.row, &b.heap)
                }
                ord => ord,
            }
        };

        // Assemble the output block row by row, re-basing heap offsets.
        let mut out_data: Vec<u8> = Vec::with_capacity(total * width);
        let mut out_heap: Vec<u8> = Vec::new();
        {
            let cursors_ref = &cursors;
            let mut tree = LoserTree::new(
                k,
                |i| cursors_ref[i].exhausted(),
                |a, b| cmp(&cursors_ref[a], &cursors_ref[b]) == Ordering::Less,
            );
            for _ in 0..total {
                let w = tree.winner();
                {
                    let cur = &cursors[w];
                    let base = out_data.len();
                    out_data.extend_from_slice(&cur.row);
                    for &c in varlen_cols {
                        let null_off = self.layout.null_offset(c);
                        if cur.row[null_off] != 0 {
                            continue;
                        }
                        let at = base + self.layout.offset(c);
                        let rel = u32::from_le_bytes(read_slot(&out_data, at));
                        let len = u32::from_le_bytes(read_slot(&out_data, at + 4)) as usize;
                        let new_off = out_heap.len() as u32;
                        out_heap.extend_from_slice(&cur.heap[rel as usize..rel as usize + len]);
                        out_data[at..at + 4].copy_from_slice(&new_off.to_le_bytes());
                    }
                }
                cursors[w].advance()?;
                let cursors_ref = &cursors;
                tree.replay(w, &mut |i| cursors_ref[i].exhausted(), &mut |a, b| {
                    cmp(&cursors_ref[a], &cursors_ref[b]) == Ordering::Less
                });
            }
        }
        drop(cursors);

        let block = RowBlock::from_raw_parts(Arc::clone(&self.layout), out_data, out_heap);
        Ok(block.to_chunk())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowsort_vector::{OrderByColumn, SortSpec, Value, Vector};

    fn pseudo_random(n: usize, seed: u64, modk: u32) -> Vec<u32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as u32) % modk
            })
            .collect()
    }

    fn check_against_in_memory(chunk: &DataChunk, order: &OrderBy, budget: usize) {
        let external = ExternalSorter::new(
            chunk.types(),
            order.clone(),
            ExternalSortOptions {
                memory_limit_rows: budget,
                spill_dir: None,
            },
        )
        .sort(chunk)
        .expect("external sort succeeds");
        let in_memory = crate::pipeline::SortPipeline::new(
            chunk.types(),
            order.clone(),
            crate::pipeline::SortOptions::default(),
        )
        .sort(chunk);
        // Both are valid orderings; key columns must agree exactly, and the
        // multisets must match.
        assert_eq!(external.len(), in_memory.len());
        for w in external.to_rows().windows(2) {
            assert_ne!(order.compare_rows(&w[0], &w[1]), Ordering::Greater);
        }
        let canon = |c: &DataChunk| {
            let mut rows: Vec<String> = c.to_rows().iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        assert_eq!(canon(&external), canon(&in_memory));
    }

    #[test]
    fn external_sort_matches_in_memory_fixed_width() {
        let keys = pseudo_random(20_000, 5, 1000);
        let payload: Vec<u32> = keys.iter().map(|k| k ^ 0xABCD).collect();
        let chunk =
            DataChunk::from_columns(vec![Vector::from_u32s(keys), Vector::from_u32s(payload)])
                .unwrap();
        // 20k rows under a 3k-row budget: 7 spilled runs.
        check_against_in_memory(&chunk, &OrderBy::ascending(1), 3_000);
    }

    #[test]
    fn external_sort_with_strings_and_nulls() {
        let mut chunk = DataChunk::new(&[LogicalType::Varchar, LogicalType::Int32]);
        let r = pseudo_random(5_000, 6, 40);
        for (i, &v) in r.iter().enumerate() {
            let s = if v % 13 == 0 {
                Value::Null
            } else {
                Value::from(format!("name_{v}"))
            };
            chunk.push_row(&[s, Value::Int32(i as i32)]).unwrap();
        }
        let order = OrderBy::new(vec![OrderByColumn {
            column: 0,
            spec: SortSpec::new(
                rowsort_vector::SortOrder::Descending,
                rowsort_vector::NullOrder::NullsFirst,
            ),
        }]);
        check_against_in_memory(&chunk, &order, 700);
    }

    #[test]
    fn single_run_no_merge_needed() {
        let chunk =
            DataChunk::from_columns(vec![Vector::from_u32s(pseudo_random(100, 7, 50))]).unwrap();
        check_against_in_memory(&chunk, &OrderBy::ascending(1), 1_000_000);
    }

    #[test]
    fn empty_input() {
        let chunk = DataChunk::new(&[LogicalType::UInt32]);
        let sorter = ExternalSorter::new(
            chunk.types(),
            OrderBy::ascending(1),
            ExternalSortOptions::default(),
        );
        assert!(sorter.sort(&chunk).unwrap().is_empty());
    }

    #[test]
    fn spill_files_are_cleaned_up() {
        let dir = std::env::temp_dir();
        let before: usize = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .map(|e| {
                        e.file_name()
                            .to_string_lossy()
                            .starts_with("rowsort-spill-")
                    })
                    .unwrap_or(false)
            })
            .count();
        let chunk =
            DataChunk::from_columns(vec![Vector::from_u32s(pseudo_random(5_000, 8, 100))]).unwrap();
        let sorter = ExternalSorter::new(
            chunk.types(),
            OrderBy::ascending(1),
            ExternalSortOptions {
                memory_limit_rows: 500,
                spill_dir: Some(dir.clone()),
            },
        );
        let _ = sorter.sort(&chunk).unwrap();
        let after: usize = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .map(|e| {
                        e.file_name()
                            .to_string_lossy()
                            .starts_with("rowsort-spill-")
                    })
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(after, before, "spill files removed after the sort");
    }

    /// Replicate `sort()`'s run-generation phase: build sorted key/payload
    /// blocks over `chunk` slices of at most `budget` rows, spill each.
    fn build_spilled_runs(
        sorter: &ExternalSorter,
        chunk: &DataChunk,
        budget: usize,
    ) -> (Vec<SpilledRun>, usize) {
        let stats: Vec<usize> = (0..sorter.types.len())
            .map(|c| {
                chunk
                    .column(c)
                    .as_strings()
                    .map(|s| s.max_len())
                    .unwrap_or(0)
            })
            .collect();
        let kw = KeyBlock::new(&sorter.types, &sorter.order, |c| stats[c]).key_width();
        let varlen = sorter.varlen_cols();
        let mut runs = Vec::new();
        let mut start = 0;
        while start < chunk.len() {
            let end = (start + budget).min(chunk.len());
            let morsel = chunk.slice(start, end);
            let mut payload =
                RowBlock::with_capacity(Arc::clone(&sorter.layout), morsel.len());
            payload.append_chunk(&morsel);
            let mut keys = KeyBlock::new(&sorter.types, &sorter.order, |c| stats[c]);
            keys.append_chunk(&morsel);
            let tie_cmp = FusedRowComparator::new(&sorter.layout, &sorter.order);
            keys.sort(|a, b| {
                tie_cmp.compare(
                    payload.row(a as usize),
                    payload.heap(),
                    payload.row(b as usize),
                    payload.heap(),
                )
            });
            runs.push(sorter.spill_run(&keys, &payload, &varlen).unwrap());
            start = end;
        }
        (runs, kw)
    }

    /// A mixed-width chunk: two VARCHAR columns (empty strings, long
    /// strings, NULLs) around fixed-width key/payload columns.
    fn stringy_chunk(rows: usize, seed: u64) -> DataChunk {
        let mut chunk = DataChunk::new(&[
            LogicalType::Varchar,
            LogicalType::UInt32,
            LogicalType::Varchar,
            LogicalType::Int32,
        ]);
        let r = pseudo_random(rows, seed, 1000);
        for (i, &v) in r.iter().enumerate() {
            let a = match v % 7 {
                0 => Value::Null,
                1 => Value::from(""),
                2 => Value::from("x".repeat((v % 60) as usize)),
                _ => Value::from(format!("str_{v}")),
            };
            let b = if v % 11 == 0 {
                Value::Null
            } else {
                Value::from(format!("tail{}", v % 5))
            };
            chunk
                .push_row(&[a, Value::UInt32(v), b, Value::Int32(i as i32)])
                .unwrap();
        }
        chunk
    }

    /// The spill-file record format round-trips exactly: reading a run back
    /// reproduces every key, every fixed-width row byte, and every string
    /// segment that was written, with nothing left over in the file.
    #[test]
    fn spill_record_format_roundtrip() {
        let chunk = stringy_chunk(512, 11);
        let order = OrderBy::new(vec![
            OrderByColumn {
                column: 1,
                spec: SortSpec::new(
                    rowsort_vector::SortOrder::Ascending,
                    rowsort_vector::NullOrder::NullsLast,
                ),
            },
            OrderByColumn {
                column: 0,
                spec: SortSpec::new(
                    rowsort_vector::SortOrder::Descending,
                    rowsort_vector::NullOrder::NullsFirst,
                ),
            },
        ]);
        let sorter = ExternalSorter::new(
            chunk.types(),
            order,
            ExternalSortOptions::default(),
        );
        let width = sorter.layout.width();
        let varlen = sorter.varlen_cols();

        // One run covering the whole chunk; keep the blocks to compare.
        let stats: Vec<usize> = (0..sorter.types.len())
            .map(|c| {
                chunk
                    .column(c)
                    .as_strings()
                    .map(|s| s.max_len())
                    .unwrap_or(0)
            })
            .collect();
        let mut payload = RowBlock::with_capacity(Arc::clone(&sorter.layout), chunk.len());
        payload.append_chunk(&chunk);
        let mut keys = KeyBlock::new(&sorter.types, &sorter.order, |c| stats[c]);
        keys.append_chunk(&chunk);
        let tie_cmp = FusedRowComparator::new(&sorter.layout, &sorter.order);
        keys.sort(|a, b| {
            tie_cmp.compare(
                payload.row(a as usize),
                payload.heap(),
                payload.row(b as usize),
                payload.heap(),
            )
        });
        let run = sorter.spill_run(&keys, &payload, &varlen).unwrap();
        assert_eq!(run.rows, chunk.len());

        // Bytes of the offset word rewritten per record; everything else in
        // the row must survive the round trip untouched.
        let mut fixed_byte = vec![true; width];
        for &c in &varlen {
            let at = sorter.layout.offset(c);
            for b in at..at + 4 {
                fixed_byte[b] = false;
            }
        }

        let mut cur = RunCursor::open(&run, keys.key_width(), width).unwrap();
        let mut prev_key: Vec<u8> = Vec::new();
        for i in 0..run.rows {
            assert!(!cur.exhausted(), "record {i} missing");
            assert_eq!(cur.key.as_slice(), keys.key(i), "key {i} differs");
            assert!(prev_key.as_slice() <= cur.key.as_slice(), "run not sorted at {i}");
            let rid = keys.row_id(i) as usize;
            let orig = payload.row(rid);
            for b in 0..width {
                if fixed_byte[b] {
                    assert_eq!(cur.row[b], orig[b], "record {i} row byte {b}");
                }
            }
            for &c in &varlen {
                if payload.is_null(rid, c) {
                    continue;
                }
                let at = sorter.layout.offset(c);
                let off =
                    u32::from_le_bytes(cur.row[at..at + 4].try_into().unwrap()) as usize;
                let len =
                    u32::from_le_bytes(cur.row[at + 4..at + 8].try_into().unwrap()) as usize;
                assert!(off + len <= cur.heap.len(), "segment out of bounds at {i}");
                assert_eq!(
                    &cur.heap[off..off + len],
                    payload.string_bytes(rid, c),
                    "record {i} column {c} string differs"
                );
            }
            prev_key = cur.key.clone();
            cur.advance().unwrap();
        }
        assert!(cur.exhausted());
        let mut rest = Vec::new();
        cur.reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "trailing bytes in spill file");
    }

    /// Under a small row budget every spilled run is individually sorted,
    /// run sizes add up to the input, and each file parses to exactly its
    /// advertised record count.
    #[test]
    fn spilled_runs_sorted_under_small_budget() {
        let chunk = stringy_chunk(2_000, 12);
        let order = OrderBy::ascending(2);
        let sorter = ExternalSorter::new(
            chunk.types(),
            order,
            ExternalSortOptions {
                memory_limit_rows: 123,
                spill_dir: None,
            },
        );
        let budget = 123;
        let (runs, kw) = build_spilled_runs(&sorter, &chunk, budget);
        assert_eq!(runs.len(), chunk.len().div_ceil(budget));
        let total: usize = runs.iter().map(|r| r.rows).sum();
        assert_eq!(total, chunk.len());
        let width = sorter.layout.width();
        for (ri, run) in runs.iter().enumerate() {
            assert!(run.rows <= budget, "run {ri} exceeds the row budget");
            let mut cur = RunCursor::open(run, kw, width).unwrap();
            let mut prev: Vec<u8> = Vec::new();
            for i in 0..run.rows {
                assert!(!cur.exhausted(), "run {ri} record {i} missing");
                assert!(
                    prev.as_slice() <= cur.key.as_slice(),
                    "run {ri} out of order at record {i}"
                );
                prev = cur.key.clone();
                cur.advance().unwrap();
            }
            assert!(cur.exhausted(), "run {ri} has extra records");
        }
    }

    /// Regression: a zero row budget used to leave the run-generation loop
    /// unable to advance (`end = start + 0`), so `sort` never terminated.
    /// The budget must clamp to one row — a degenerate but valid external
    /// sort with one spilled run per input row.
    #[test]
    fn zero_memory_budget_clamps_to_one_row_runs() {
        let keys = pseudo_random(64, 13, 32);
        let chunk = DataChunk::from_columns(vec![Vector::from_u32s(keys.clone())]).unwrap();
        let sorter = ExternalSorter::new(
            chunk.types(),
            OrderBy::ascending(1),
            ExternalSortOptions {
                memory_limit_rows: 0,
                spill_dir: None,
            },
        );
        let sorted = sorter.sort(&chunk).unwrap();
        let mut expect = keys;
        expect.sort_unstable();
        let got: Vec<u32> = (0..sorted.len())
            .map(|i| match sorted.row(i)[0] {
                Value::UInt32(v) => v,
                ref other => panic!("unexpected value {other:?}"),
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn external_sort_records_profile_and_spill_counters() {
        let chunk =
            DataChunk::from_columns(vec![Vector::from_u32s(pseudo_random(4_000, 14, 512))])
                .unwrap();
        let sorter = ExternalSorter::new(
            chunk.types(),
            OrderBy::ascending(1),
            ExternalSortOptions {
                memory_limit_rows: 1_000,
                spill_dir: None,
            },
        );
        let _ = sorter.sort(&chunk).unwrap();
        let profile = sorter.last_profile();
        assert_eq!(profile.operator, "external");
        assert_eq!(profile.rows, 4_000);
        assert!(profile.total_ns > 0);
        let m = &profile.metrics;
        assert_eq!(m.counter(Counter::SortCalls), 1);
        assert_eq!(m.counter(Counter::RowsSorted), 4_000);
        assert_eq!(m.counter(Counter::SpilledRuns), 4);
        assert_eq!(m.counter(Counter::RunsGenerated), 4);
        // Every record is key + row + length word at minimum.
        assert!(m.counter(Counter::SpilledBytes) >= 4_000 * 8);
        assert!(m.phase(Phase::Spill) > 0, "spill phase timed");
        assert!(m.phase(Phase::SpillMerge) > 0, "merge phase timed");
        assert!(m.phase_total_ns() <= profile.total_ns);
        // A second sort accumulates in the registry but the profile is a
        // per-sort delta.
        let _ = sorter.sort(&chunk).unwrap();
        assert_eq!(sorter.last_profile().metrics.counter(Counter::SortCalls), 1);
        assert_eq!(sorter.metrics().counter(Counter::SortCalls), 2);
    }

    #[test]
    fn graceful_degradation_budget_sweep() {
        // Same result at every budget, from heavy spilling to none.
        let keys = pseudo_random(4_000, 9, 64);
        let chunk = DataChunk::from_columns(vec![Vector::from_u32s(keys)]).unwrap();
        let order = OrderBy::ascending(1);
        let reference = ExternalSorter::new(
            chunk.types(),
            order.clone(),
            ExternalSortOptions {
                memory_limit_rows: 1 << 20,
                spill_dir: None,
            },
        )
        .sort(&chunk)
        .unwrap();
        for budget in [37, 256, 1000, 4_000] {
            let got = ExternalSorter::new(
                chunk.types(),
                order.clone(),
                ExternalSortOptions {
                    memory_limit_rows: budget,
                    spill_dir: None,
                },
            )
            .sort(&chunk)
            .unwrap();
            assert_eq!(got.to_rows(), reference.to_rows(), "budget {budget}");
        }
    }
}

//! End-to-end sort-pipeline bench on the Figure 12 default workload
//! (random u32 keys, 1–10 M rows) — the regression gate's workload.
//!
//! `scripts/verify.sh` runs this bench with `ROWSORT_BENCH_JSON` set and
//! compares the medians against the checked-in `BENCH_pipeline.json`
//! baseline (warn-only tolerance band, see `bench_gate`). Override the row
//! counts with `ROWSORT_PIPE_ROWS=1000000,4000000` for a quicker smoke.
//!
//! Each pipeline is constructed once and reused across iterations, so the
//! numbers measure the *steady state*: with the buffer pool and persistent
//! worker pool, iterations after the first run allocation-free.

use rowsort_core::pipeline::{SortOptions, SortPipeline};
use rowsort_testkit::bench::{BenchmarkId, Harness};
use rowsort_testkit::rng::Rng;
use rowsort_testkit::{bench_group, bench_main};
use rowsort_vector::{DataChunk, OrderBy, OrderByColumn, Value, Vector};
use std::time::Duration;

/// Random u32 key column, plus an optional derived u32 payload column.
fn u32_chunk(n: usize, seed: u64, with_payload: bool) -> DataChunk {
    let mut rng = Rng::seed_from_u64(seed);
    let keys: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
    let mut cols = Vec::new();
    if with_payload {
        let payload: Vec<u32> = keys
            .iter()
            .map(|k| k.wrapping_mul(7).wrapping_add(1))
            .collect();
        cols.push(Vector::from_u32s(keys));
        cols.push(Vector::from_u32s(payload));
    } else {
        cols.push(Vector::from_u32s(keys));
    }
    DataChunk::from_columns(cols).unwrap()
}

/// The workload offset-value coding exists for: a multi-column VARCHAR
/// key whose leading columns are low-cardinality with long shared
/// prefixes, so nearly every merge comparison used to re-scan the same
/// prefix bytes before reaching the deciding suffix.
fn wide_key_chunk(n: usize, seed: u64) -> DataChunk {
    let mut rng = Rng::seed_from_u64(seed);
    let mut region = Vec::with_capacity(n);
    let mut segment = Vec::with_capacity(n);
    let mut id = Vec::with_capacity(n);
    for i in 0..n {
        region.push(Value::from(if rng.chance(0.9) {
            "warehouse_eu"
        } else {
            "warehouse_us"
        }));
        segment.push(Value::from(format!("segment_{:02}", rng.below(8))));
        id.push(Value::from(format!("{:012}", (i as u64) ^ (seed << 16))));
    }
    let mut chunk = DataChunk::new(&[
        rowsort_vector::LogicalType::Varchar,
        rowsort_vector::LogicalType::Varchar,
        rowsort_vector::LogicalType::Varchar,
    ]);
    for ((r, s), d) in region.into_iter().zip(segment).zip(id) {
        chunk.push_row(&[r, s, d]).unwrap();
    }
    chunk
}

fn sizes() -> Vec<usize> {
    std::env::var("ROWSORT_PIPE_ROWS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1_000_000, 4_000_000])
}

fn bench_pipeline(c: &mut Harness) {
    let mut group = c.benchmark_group("pipeline");
    group
        .sample_size(5)
        .measurement_time(Duration::from_secs(2));

    for &n in &sizes() {
        let chunk = u32_chunk(n, 0xF16_12 ^ n as u64, false);
        let order = OrderBy::ascending(1);
        let single = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions {
                threads: 1,
                ..SortOptions::default()
            },
        );
        group.bench_function(BenchmarkId::new("u32_t1", n), |b| {
            b.iter(|| single.sort(&chunk))
        });
        let default = SortPipeline::new(chunk.types(), order, SortOptions::default());
        group.bench_function(BenchmarkId::new("u32_tdef", n), |b| {
            b.iter(|| default.sort(&chunk))
        });
    }

    // Key + payload column: exercises the payload reorder and merge gather.
    let n = sizes()[0];
    let chunk = u32_chunk(n, 0xF16_13, true);
    let pipeline = SortPipeline::new(
        chunk.types(),
        OrderBy::ascending(1),
        SortOptions {
            threads: 1,
            ..SortOptions::default()
        },
    );
    group.bench_function(BenchmarkId::new("u32_payload_t1", n), |b| {
        b.iter(|| pipeline.sort(&chunk))
    });

    // Wide multi-column VARCHAR keys with long shared prefixes — the
    // offset-value coding headline case. Small runs make the merge 64
    // ways so comparator work dominates; the coded sort merges them in
    // one tree-of-losers pass while the _novc twin pays the full
    // six-round cascade with whole-key compares.
    let n = sizes()[0].min(1_000_000);
    let chunk = wide_key_chunk(n, 0xF16_14);
    let order = OrderBy::new(vec![
        OrderByColumn::asc(0),
        OrderByColumn::asc(1),
        OrderByColumn::asc(2),
    ]);
    for (id, ovc) in [("widekey_ovc", true), ("widekey_novc", false)] {
        let pipeline = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions {
                threads: 1,
                run_rows: (n / 64).max(1),
                ovc,
            },
        );
        group.bench_function(BenchmarkId::new(id, n), |b| {
            b.iter(|| pipeline.sort(&chunk))
        });
    }
    group.finish();
}

bench_group!(benches, bench_pipeline);
bench_main!(benches);

//! The paper's §VII end-to-end benchmark, miniaturized: generate TPC-DS-
//! like tables and run the benchmark query against every system profile.
//!
//! Run with `cargo run --release --example tpcds_orderby`.

use rowsort::core::systems::SystemProfile;
use rowsort::datagen::tpcds;
use rowsort::engine::{Engine, Table};
use rowsort::vector::Value;
use std::time::Instant;

fn main() {
    let n = 300_000;
    println!("generating catalog_sales-like table ({n} rows, SF 10 domains)…");
    let cs = tpcds::catalog_sales(n, 10.0, 42);
    let table = Table::new(
        cs.name.clone(),
        cs.columns.iter().map(|(name, _)| name.clone()).collect(),
        cs.data.clone(),
    );

    // The paper's query shape: tiny result set (count), full payload
    // collection forced by the aggregate, optimizer defeated by OFFSET 1.
    let sql = "SELECT count(*) FROM (\
                 SELECT cs_item_sk FROM catalog_sales \
                 ORDER BY cs_warehouse_sk, cs_ship_mode_sk, cs_promo_sk, cs_quantity \
                 OFFSET 1) t";
    println!("query:\n  {sql}\n");

    println!("{:<32} {:>10}  {:>8}", "system profile", "time", "count");
    for profile in SystemProfile::ALL {
        let mut engine = Engine::new();
        engine.options_mut().profile = profile;
        engine.register_table(table.clone());
        let start = Instant::now();
        let result = engine.query(sql).expect("query runs");
        let secs = start.elapsed().as_secs_f64();
        let count = match &result.row(0)[0] {
            Value::Int64(c) => *c,
            other => panic!("unexpected count value {other:?}"),
        };
        println!("{:<32} {:>9.3}s  {:>8}", profile.label(), secs, count);
        assert_eq!(count, n as i64 - 1);
    }

    println!(
        "\npaper's Figure 13 expectation: the columnar profiles pay heavily for the \
         4-key comparison (random access + branches); the row/normalized-key \
         profiles lose much less."
    );
}

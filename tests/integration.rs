//! Cross-crate integration tests: the whole stack, exercised through the
//! facade crate's public API.

use rowsort::core::model;
use rowsort::core::pipeline::{SortOptions, SortPipeline};
use rowsort::core::systems::{sort_with_system, SystemProfile};
use rowsort::datagen::{key_chunk, tpcds, KeyDistribution};
use rowsort::prelude::*;
use std::cmp::Ordering;

fn assert_sorted(chunk: &DataChunk, order: &OrderBy) {
    let rows = chunk.to_rows();
    for w in rows.windows(2) {
        assert_ne!(
            order.compare_rows(&w[0], &w[1]),
            Ordering::Greater,
            "out of order: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn pipeline_sorts_paper_microbenchmark_data() {
    for dist in KeyDistribution::SWEEP {
        let chunk = key_chunk(dist, 20_000, 4, 7);
        let order = OrderBy::ascending(4);
        let sorted = SortPipeline::new(
            chunk.types(),
            order.clone(),
            SortOptions {
                threads: 2,
                run_rows: 3000,
                ..SortOptions::default()
            },
        )
        .sort(&chunk);
        assert_eq!(sorted.len(), chunk.len(), "{}", dist.label());
        assert_sorted(&sorted, &order);
    }
}

#[test]
fn all_system_profiles_agree_on_tpcds_customer() {
    let cust = tpcds::customer(8_000, 11);
    let order = OrderBy::new(vec![
        OrderByColumn {
            column: 2, // c_last_name
            spec: SortSpec::ASC,
        },
        OrderByColumn {
            column: 1, // c_first_name
            spec: SortSpec::ASC,
        },
        OrderByColumn {
            column: 0, // c_customer_sk: unique tiebreak => deterministic
            spec: SortSpec::ASC,
        },
    ]);
    let reference = sort_with_system(SystemProfile::RowsortDb, &cust.data, &order, 1);
    for p in SystemProfile::ALL {
        let got = sort_with_system(p, &cust.data, &order, 2);
        assert_eq!(got.to_rows(), reference.to_rows(), "{}", p.label());
    }
}

#[test]
fn end_to_end_sql_through_every_layer() {
    let cs = tpcds::catalog_sales(5_000, 10.0, 3);
    let mut engine = Engine::new();
    engine.register_table(Table::new(
        cs.name.clone(),
        cs.columns.iter().map(|(n, _)| n.clone()).collect(),
        cs.data.clone(),
    ));
    // The paper's benchmark query.
    let count = engine
        .query(
            "SELECT count(*) FROM (SELECT cs_item_sk FROM catalog_sales \
             ORDER BY cs_warehouse_sk, cs_ship_mode_sk, cs_promo_sk, cs_quantity \
             OFFSET 1) t",
        )
        .unwrap();
    assert_eq!(count.row(0), vec![Value::Int64(4_999)]);

    // A Top-N query agrees with the full sort's head.
    let top = engine
        .query("SELECT cs_item_sk FROM catalog_sales ORDER BY cs_quantity, cs_item_sk LIMIT 5")
        .unwrap();
    let full = engine
        .query("SELECT cs_item_sk FROM catalog_sales ORDER BY cs_quantity, cs_item_sk")
        .unwrap();
    assert_eq!(top.to_rows(), full.to_rows()[..5].to_vec());
}

#[test]
fn normalized_keys_match_comparator_semantics_through_pipeline() {
    // DESC NULLS FIRST on floats (total order incl. NaN) through the whole
    // pipeline.
    let mut chunk = DataChunk::new(&[LogicalType::Float64, LogicalType::Int32]);
    let vals = [
        Value::Float64(1.5),
        Value::Null,
        Value::Float64(f64::NAN),
        Value::Float64(f64::NEG_INFINITY),
        Value::Float64(-0.0),
        Value::Float64(0.0),
    ];
    for (i, v) in vals.iter().enumerate() {
        chunk
            .push_row(&[v.clone(), Value::Int32(i as i32)])
            .unwrap();
    }
    let order = OrderBy::new(vec![OrderByColumn {
        column: 0,
        spec: SortSpec::new(SortOrder::Descending, NullOrder::NullsFirst),
    }]);
    let sorted =
        SortPipeline::new(chunk.types(), order.clone(), SortOptions::default()).sort(&chunk);
    assert_sorted(&sorted, &order);
    assert_eq!(sorted.row(0)[1], Value::Int32(1), "NULL first");
    assert_eq!(sorted.row(1)[1], Value::Int32(2), "NaN above +inf in DESC");
    assert_eq!(sorted.row(5)[1], Value::Int32(3), "-inf last");
}

#[test]
fn model_predicts_run_generation_dominance() {
    // The §II claim that motivates the whole pipeline design.
    assert!(model::run_generation_fraction(1 << 24, 16) > 0.75);
    assert!(model::run_generation_fraction(1 << 24, 4096) < 0.85);
}

#[test]
fn simcpu_reproduces_headline_counter_claim() {
    use rowsort::datagen::key_columns;
    use rowsort::simcpu::trace::{ColumnarTrace, RowTrace};
    use rowsort::simcpu::SimCpu;
    let cols = key_columns(KeyDistribution::Correlated(0.5), 1 << 14, 4, 5);
    let mut cpu_c = SimCpu::new();
    let mut c = ColumnarTrace::new(&mut cpu_c, cols.clone());
    c.sort_tuple_at_a_time(&mut cpu_c);
    let mut cpu_r = SimCpu::new();
    let mut r = RowTrace::new(&mut cpu_r, &cols);
    r.sort_tuple_at_a_time(&mut cpu_r);
    assert!(c.is_sorted() && r.is_sorted());
    assert!(cpu_c.counters().l1_misses > 2 * cpu_r.counters().l1_misses);
}

#[test]
fn dsm_nsm_round_trip_through_facade() {
    use rowsort::row::{scatter, RowLayout};
    use std::sync::Arc;
    let cust = tpcds::customer(500, 4);
    let layout = Arc::new(RowLayout::new(&cust.data.types()));
    let block = scatter(&cust.data, layout);
    assert_eq!(block.to_chunk(), cust.data);
}

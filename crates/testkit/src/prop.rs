//! A mini property-testing harness.
//!
//! The shape follows proptest at a distance: a [`Gen`] produces random
//! values of one type (and knows how to propose *smaller* variants of a
//! value for shrinking); the [`prop!`] macro declares `#[test]` functions
//! whose arguments are drawn from generators; the [`Runner`] drives a
//! configurable number of cases from a deterministic seed and, on failure,
//! greedily shrinks the input (halve numerics, truncate vectors and
//! strings) before reporting the minimal failing value and a re-runnable
//! seed.
//!
//! # Determinism
//!
//! The run seed is `TESTKIT_SEED` if set (decimal or `0x…` hex), otherwise
//! a hash of the property name — so plain `cargo test` is fully
//! deterministic, and a reported failure replays exactly. `TESTKIT_CASES`
//! overrides the per-property case count.
//!
//! ```
//! use rowsort_testkit::prop::{vec_of, Runner};
//!
//! Runner::new("doc_example").cases(64).run(
//!     &vec_of(0u32..100, 0..16),
//!     |v| {
//!         let mut sorted = v.clone();
//!         sorted.sort_unstable();
//!         if sorted.len() == v.len() {
//!             Ok(())
//!         } else {
//!             Err("sort changed the length".to_owned())
//!         }
//!     },
//! );
//! ```

use crate::rng::{splitmix64, Rng, UniformInt};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What a property returns: `Err` carries the failure description.
pub type PropResult = Result<(), String>;

/// A generator of random values with optional shrinking.
pub trait Gen {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Propose strictly "smaller" variants of `v` to try during shrinking,
    /// most aggressive first. An empty list ends shrinking at `v`.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// A type-erased generator.
pub type BoxedGen<V> = Box<dyn Gen<Value = V>>;

impl<V: Clone + Debug> Gen for BoxedGen<V> {
    type Value = V;
    fn generate(&self, rng: &mut Rng) -> V {
        (**self).generate(rng)
    }
    fn shrink(&self, v: &V) -> Vec<V> {
        (**self).shrink(v)
    }
}

/// Combinator methods available on every generator.
pub trait GenExt: Gen + Sized {
    /// Transform generated values (proptest's `prop_map`; the name avoids
    /// colliding with `Iterator::map` on ranges). The mapping is one-way,
    /// so mapped generators do not shrink.
    fn prop_map<U: Clone + Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F, U> {
        Map {
            inner: self,
            f,
            _marker: PhantomData,
        }
    }

    /// Generate a value, then generate from a dependent generator built
    /// out of it. Like [`GenExt::prop_map`], this does not shrink.
    fn prop_flat_map<G2: Gen, F: Fn(Self::Value) -> G2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete generator type.
    fn boxed(self) -> BoxedGen<Self::Value>
    where
        Self: 'static,
    {
        Box::new(self)
    }
}

impl<G: Gen + Sized> GenExt for G {}

// ---------------------------------------------------------------------------
// Primitive generators

/// Greedy integer shrink candidates: jump to `target`, then halfway, then
/// one step — all in the order the shrinker should try them.
fn shrink_int<T: UniformInt>(cur: T, target: T) -> Vec<T> {
    let (c, t) = (cur.to_offset(), target.to_offset());
    if c == t {
        return Vec::new();
    }
    let mut out = vec![T::from_offset(t)];
    let mid = if c > t {
        t + (c - t) / 2
    } else {
        t - (t - c) / 2
    };
    if mid != c && mid != t {
        out.push(T::from_offset(mid));
    }
    let step = if c > t { c - 1 } else { c + 1 };
    if step != t && step != mid {
        out.push(T::from_offset(step));
    }
    out
}

impl<T: UniformInt + Clone + Debug> Gen for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        rng.range(self.start, self.end)
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        shrink_int(*v, self.start)
    }
}

impl<T: UniformInt + Clone + Debug> Gen for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        rng.range_inclusive(*self.start(), *self.end())
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        shrink_int(*v, *self.start())
    }
}

/// The full domain of an integer type, shrinking toward zero (like
/// proptest's `any::<T>()`).
pub fn full<T: UniformInt + Default + Clone + Debug>() -> FullInt<T> {
    FullInt(PhantomData)
}

/// See [`full`].
pub struct FullInt<T>(PhantomData<T>);

impl<T: UniformInt + Default + Clone + Debug> Gen for FullInt<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        T::from_offset(rng.next_u64())
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        shrink_int(*v, T::default())
    }
}

/// Every `f32` bit pattern — including infinities and NaNs.
pub fn full_f32() -> FullF32 {
    FullF32
}

/// See [`full_f32`].
pub struct FullF32;

impl Gen for FullF32 {
    type Value = f32;
    fn generate(&self, rng: &mut Rng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
    fn shrink(&self, v: &f32) -> Vec<f32> {
        shrink_float_f32(*v)
    }
}

/// Every `f64` bit pattern — including infinities and NaNs.
pub fn full_f64() -> FullF64 {
    FullF64
}

/// See [`full_f64`].
pub struct FullF64;

impl Gen for FullF64 {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
    fn shrink(&self, v: &f64) -> Vec<f64> {
        shrink_float_f64(*v)
    }
}

fn shrink_float_f64(v: f64) -> Vec<f64> {
    if v == 0.0 {
        return Vec::new();
    }
    if !v.is_finite() {
        return vec![0.0];
    }
    let half = v / 2.0;
    if half == v {
        vec![0.0]
    } else {
        vec![0.0, half]
    }
}

fn shrink_float_f32(v: f32) -> Vec<f32> {
    shrink_float_f64(v as f64)
        .into_iter()
        .map(|f| f as f32)
        .collect()
}

/// A uniform `f64` in `[lo, hi)`, shrinking toward `lo`.
pub fn f64_in(lo: f64, hi: f64) -> F64Range {
    F64Range { lo, hi }
}

/// See [`f64_in`].
pub struct F64Range {
    lo: f64,
    hi: f64,
}

impl Gen for F64Range {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.f64_range(self.lo, self.hi)
    }
    fn shrink(&self, v: &f64) -> Vec<f64> {
        if *v == self.lo {
            return Vec::new();
        }
        let mid = self.lo + (*v - self.lo) / 2.0;
        if mid == *v {
            vec![self.lo]
        } else {
            vec![self.lo, mid]
        }
    }
}

/// A fair coin, shrinking `true` → `false`.
pub fn full_bool() -> BoolGen {
    BoolGen { p: 0.5 }
}

/// `true` with probability `p` (proptest's `bool::weighted`).
pub fn bool_weighted(p: f64) -> BoolGen {
    BoolGen { p }
}

/// See [`full_bool`] / [`bool_weighted`].
pub struct BoolGen {
    p: f64,
}

impl Gen for BoolGen {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.chance(self.p)
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Gen for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// A uniform choice from a fixed list, shrinking toward earlier items.
pub fn select<T: Clone + Debug + PartialEq>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select over an empty list");
    Select { items }
}

/// See [`select`].
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone + Debug + PartialEq> Gen for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        match self.items.iter().position(|it| it == v) {
            Some(pos) => self.items[..pos].to_vec(),
            None => Vec::new(),
        }
    }
}

/// A uniform choice among alternative generators of one type.
pub fn one_of<V: Clone + Debug>(gens: Vec<BoxedGen<V>>) -> OneOf<V> {
    assert!(!gens.is_empty(), "one_of over no generators");
    OneOf { gens }
}

/// See [`one_of`].
pub struct OneOf<V> {
    gens: Vec<BoxedGen<V>>,
}

impl<V: Clone + Debug> Gen for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut Rng) -> V {
        self.gens[rng.below(self.gens.len() as u64) as usize].generate(rng)
    }
    fn shrink(&self, v: &V) -> Vec<V> {
        // Any arm may propose candidates; a candidate only survives if it
        // still fails the property, so over-proposing is harmless.
        self.gens.iter().flat_map(|g| g.shrink(v)).collect()
    }
}

/// A weighted choice among alternative generators (proptest's
/// `prop_oneof![w1 => g1, w2 => g2, …]`).
pub fn weighted<V: Clone + Debug>(arms: Vec<(u32, BoxedGen<V>)>) -> Weighted<V> {
    assert!(!arms.is_empty(), "weighted over no generators");
    assert!(arms.iter().any(|(w, _)| *w > 0), "all weights are zero");
    Weighted { arms }
}

/// See [`weighted`].
pub struct Weighted<V> {
    arms: Vec<(u32, BoxedGen<V>)>,
}

impl<V: Clone + Debug> Gen for Weighted<V> {
    type Value = V;
    fn generate(&self, rng: &mut Rng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, g) in &self.arms {
            if pick < *w as u64 {
                return g.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum covers the draw")
    }
    fn shrink(&self, v: &V) -> Vec<V> {
        self.arms.iter().flat_map(|(_, g)| g.shrink(v)).collect()
    }
}

/// An inclusive length range for collection generators; built from
/// `a..b` or `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct LenRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<Range<usize>> for LenRange {
    fn from(r: Range<usize>) -> LenRange {
        assert!(r.end > r.start, "empty length range");
        LenRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for LenRange {
    fn from(r: RangeInclusive<usize>) -> LenRange {
        LenRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A vector of values from `elem`, with a length drawn from `len`.
pub fn vec_of<G: Gen>(elem: G, len: impl Into<LenRange>) -> VecGen<G> {
    VecGen {
        elem,
        len: len.into(),
    }
}

/// See [`vec_of`].
pub struct VecGen<G> {
    elem: G,
    len: LenRange,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;
    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        let n = rng.range_inclusive(self.len.min, self.len.max);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        // Truncations first (most aggressive): to the minimum, to half,
        // then dropping one element.
        if v.len() > self.len.min {
            out.push(v[..self.len.min].to_vec());
            let half = (v.len() / 2).max(self.len.min);
            if half != self.len.min && half < v.len() {
                out.push(v[..half].to_vec());
            }
            out.push(v[..v.len() - 1].to_vec());
        }
        // Then per-element shrinks, keeping each candidate the element
        // generator proposes (the first may pass while a later one fails).
        for i in 0..v.len() {
            for smaller in self.elem.shrink(&v[i]) {
                let mut copy = v.clone();
                copy[i] = smaller;
                out.push(copy);
            }
        }
        out
    }
}

/// A fixed-length heterogeneous-position vector: one generator per index
/// (proptest implements `Strategy` for `Vec<S>` the same way).
impl<G: Gen> Gen for Vec<G> {
    type Value = Vec<G::Value>;
    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        self.iter().map(|g| g.generate(rng)).collect()
    }
    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        for (i, g) in self.iter().enumerate() {
            for smaller in g.shrink(&v[i]) {
                let mut copy = v.clone();
                copy[i] = smaller;
                out.push(copy);
            }
        }
        out
    }
}

/// A string of chars drawn uniformly from `charset`, shrinking by
/// truncation.
pub fn string_from(charset: &str, len: impl Into<LenRange>) -> StringGen {
    let chars: Vec<char> = charset.chars().collect();
    assert!(!chars.is_empty(), "empty charset");
    StringGen {
        chars,
        len: len.into(),
    }
}

/// Arbitrary Unicode strings of `len` chars (proptest's `".{0,n}"`).
pub fn any_string(len: impl Into<LenRange>) -> AnyString {
    AnyString { len: len.into() }
}

/// See [`string_from`].
pub struct StringGen {
    chars: Vec<char>,
    len: LenRange,
}

fn shrink_string(v: &str, min_chars: usize) -> Vec<String> {
    let n = v.chars().count();
    if n <= min_chars {
        return Vec::new();
    }
    let take = |k: usize| -> String { v.chars().take(k).collect() };
    let mut out = vec![take(min_chars)];
    let half = (n / 2).max(min_chars);
    if half != min_chars && half < n {
        out.push(take(half));
    }
    out.push(take(n - 1));
    out
}

impl Gen for StringGen {
    type Value = String;
    fn generate(&self, rng: &mut Rng) -> String {
        let n = rng.range_inclusive(self.len.min, self.len.max);
        rng.string_from(&self.chars, n)
    }
    fn shrink(&self, v: &String) -> Vec<String> {
        shrink_string(v, self.len.min)
    }
}

/// See [`any_string`].
pub struct AnyString {
    len: LenRange,
}

impl Gen for AnyString {
    type Value = String;
    fn generate(&self, rng: &mut Rng) -> String {
        let n = rng.range_inclusive(self.len.min, self.len.max);
        (0..n).map(|_| rng.any_char()).collect()
    }
    fn shrink(&self, v: &String) -> Vec<String> {
        shrink_string(v, self.len.min)
    }
}

/// `None` a quarter of the time, otherwise `Some` of the inner generator
/// (proptest's `option::of`). Shrinks toward `None`.
pub fn option_of<G: Gen>(inner: G) -> OptionGen<G> {
    OptionGen { inner }
}

/// See [`option_of`].
pub struct OptionGen<G> {
    inner: G,
}

impl<G: Gen> Gen for OptionGen<G> {
    type Value = Option<G::Value>;
    fn generate(&self, rng: &mut Rng) -> Option<G::Value> {
        if rng.chance(0.25) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
    fn shrink(&self, v: &Option<G::Value>) -> Vec<Option<G::Value>> {
        match v {
            None => Vec::new(),
            Some(inner) => {
                let mut out = vec![None];
                out.extend(self.inner.shrink(inner).into_iter().map(Some));
                out
            }
        }
    }
}

/// See [`GenExt::prop_map`].
pub struct Map<G, F, U> {
    inner: G,
    f: F,
    _marker: PhantomData<fn() -> U>,
}

impl<G: Gen, U: Clone + Debug, F: Fn(G::Value) -> U> Gen for Map<G, F, U> {
    type Value = U;
    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`GenExt::prop_flat_map`].
pub struct FlatMap<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, G2: Gen, F: Fn(G::Value) -> G2> Gen for FlatMap<G, F> {
    type Value = G2::Value;
    fn generate(&self, rng: &mut Rng) -> G2::Value {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

// Tuples of generators produce tuples of values; shrinking works one
// component at a time while holding the others fixed.
macro_rules! impl_tuple_gen {
    ($(($($g:ident / $idx:tt),+))+) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for smaller in self.$idx.shrink(&v.$idx) {
                        let mut copy = v.clone();
                        copy.$idx = smaller;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_gen! {
    (G0/0)
    (G0/0, G1/1)
    (G0/0, G1/1, G2/2)
    (G0/0, G1/1, G2/2, G3/3)
    (G0/0, G1/1, G2/2, G3/3, G4/4)
    (G0/0, G1/1, G2/2, G3/3, G4/4, G5/5)
    (G0/0, G1/1, G2/2, G3/3, G4/4, G5/5, G6/6)
    (G0/0, G1/1, G2/2, G3/3, G4/4, G5/5, G6/6, G7/7)
}

// ---------------------------------------------------------------------------
// The runner

/// Evaluation budget for the shrink loop: total candidate evaluations.
const SHRINK_BUDGET: u32 = 2048;

/// Drives one property: N cases from a deterministic seed, greedy
/// shrinking on failure.
pub struct Runner {
    name: String,
    cases: u32,
    seed: u64,
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

impl Runner {
    /// A runner for the named property. The seed is `TESTKIT_SEED` if set,
    /// otherwise derived from `name`; the default case count is 256.
    pub fn new(name: &str) -> Runner {
        let seed = std::env::var("TESTKIT_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or_else(|| fnv1a(name));
        Runner {
            name: name.to_owned(),
            cases: 256,
            seed,
        }
    }

    /// Set the case count (`TESTKIT_CASES` still overrides at run time).
    pub fn cases(mut self, n: u32) -> Runner {
        self.cases = n;
        self
    }

    /// Run the property over `cases` generated values; panics with the
    /// minimal failing input and a re-runnable seed on the first failure.
    pub fn run<G: Gen>(&self, gen: &G, prop: impl Fn(&G::Value) -> PropResult) {
        let cases = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases);
        for case in 0..cases {
            // Every case gets an independent stream keyed by (seed, case).
            let mut mix = self.seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = Rng::seed_from_u64(splitmix64(&mut mix));
            let value = gen.generate(&mut rng);
            if let Err(message) = check(&prop, &value) {
                let (minimal, min_message, steps) =
                    shrink_failure(gen, &prop, value.clone(), message);
                panic!(
                    "\nproperty '{name}' failed (case {case} of {cases}, seed {seed:#x})\n\
                     minimal failing input ({steps} shrink steps): {minimal:#?}\n\
                     error: {min_message}\n\
                     original failing input: {value:#?}\n\
                     rerun: TESTKIT_SEED={seed:#x} cargo test {name}\n",
                    name = self.name,
                    seed = self.seed,
                );
            }
        }
    }
}

/// Evaluate the property, converting panics (plain `assert!` in the body)
/// into failures so they shrink like `prop_assert!` failures do.
fn check<V>(prop: impl Fn(&V) -> PropResult, v: &V) -> PropResult {
    match catch_unwind(AssertUnwindSafe(|| prop(v))) {
        Ok(r) => r,
        Err(payload) => Err(panic_message(&payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic (non-string payload)".to_owned()
    }
}

/// Greedy shrink: repeatedly adopt the first proposed candidate that still
/// fails, until no candidate fails or the budget is exhausted.
fn shrink_failure<G: Gen>(
    gen: &G,
    prop: &impl Fn(&G::Value) -> PropResult,
    mut current: G::Value,
    mut message: String,
) -> (G::Value, String, u32) {
    let mut evaluations = 0;
    let mut steps = 0;
    'outer: loop {
        for candidate in gen.shrink(&current) {
            if evaluations >= SHRINK_BUDGET {
                break 'outer;
            }
            evaluations += 1;
            if let Err(m) = check(prop, &candidate) {
                current = candidate;
                message = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, message, steps)
}

// ---------------------------------------------------------------------------
// Macros

/// Declare property-based `#[test]` functions.
///
/// ```
/// rowsort_testkit::prop! {
///     #![cases(64)]
///
///     fn reverse_twice_is_identity(v in rowsort_testkit::prop::vec_of(0u32..100, 0..32)) {
///         let mut w = v.clone();
///         w.reverse();
///         w.reverse();
///         rowsort_testkit::prop_assert_eq!(v, w);
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop {
    (#![cases($cases:expr)] $($rest:tt)*) => {
        $crate::__prop_fns! { $cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__prop_fns! { 256; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_fns {
    ($cases:expr;) => {};
    ($cases:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __gen = ($($gen,)+);
            $crate::prop::Runner::new(stringify!($name))
                .cases($cases)
                .run(&__gen, |__value| {
                    #[allow(unused_mut)]
                    let ($(mut $arg,)+) = ::std::clone::Clone::clone(__value);
                    $body
                    ::std::result::Result::Ok(())
                });
        }
        $crate::__prop_fns! { $cases; $($rest)* }
    };
}

/// `assert!` for property bodies: fails the case (and shrinks) instead of
/// aborting the whole run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed at {}:{}: {}: {}",
                file!(), line!(), stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n right: {:?}",
                file!(), line!(), stringify!($a), stringify!($b), __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(format!(
                "assertion failed at {}:{}: {} == {}: {}\n  left: {:?}\n right: {:?}",
                file!(), line!(), stringify!($a), stringify!($b), format!($($fmt)+), __a, __b
            ));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err(format!(
                "assertion failed at {}:{}: {} != {}\n  both: {:?}",
                file!(), line!(), stringify!($a), stringify!($b), __a
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err(format!(
                "assertion failed at {}:{}: {} != {}: {}\n  both: {:?}",
                file!(), line!(), stringify!($a), stringify!($b), format!($($fmt)+), __a
            ));
        }
    }};
}

/// Skip the case (counting it as passed) when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g = vec_of(0u32..1000, 0..50);
        let mut a = Rng::seed_from_u64(5);
        let mut b = Rng::seed_from_u64(5);
        assert_eq!(g.generate(&mut a), g.generate(&mut b));
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..500 {
            let v = (10i32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0usize..=3).generate(&mut rng);
            assert!(w <= 3);
        }
    }

    #[test]
    fn int_shrink_moves_toward_target() {
        let candidates = shrink_int(100u32, 0);
        assert_eq!(candidates[0], 0);
        assert!(candidates.contains(&50));
        assert!(shrink_int(0u32, 0).is_empty());
        let signed = shrink_int(-100i32, 0);
        assert_eq!(signed[0], 0);
        assert!(signed.contains(&-50));
    }

    #[test]
    fn vec_shrink_truncates_first() {
        let g = vec_of(0u32..100, 0..50);
        let v: Vec<u32> = (0..40).collect();
        let shrunk = g.shrink(&v);
        assert_eq!(shrunk[0], Vec::<u32>::new());
        assert_eq!(shrunk[1].len(), 20);
        assert_eq!(shrunk[2].len(), 39);
    }

    #[test]
    fn runner_shrinks_to_minimal_counterexample() {
        // Property: all values < 10. Failure shrinks to exactly [10].
        let result = std::panic::catch_unwind(|| {
            Runner::new("shrink_to_minimal")
                .cases(256)
                .run(&vec_of(0u32..1000, 0..20), |v| {
                    if v.iter().all(|&x| x < 10) {
                        Ok(())
                    } else {
                        Err("element >= 10".to_owned())
                    }
                });
        });
        let message = panic_message(&*result.expect_err("property must fail"));
        assert!(
            message.contains("minimal failing input") && message.contains("10"),
            "{message}"
        );
        assert!(message.contains("rerun: TESTKIT_SEED="), "{message}");
    }

    #[test]
    fn runner_passes_valid_property() {
        Runner::new("always_true").cases(64).run(&(0u32..50), |v| {
            if *v < 50 {
                Ok(())
            } else {
                Err("out of range".to_owned())
            }
        });
    }

    #[test]
    fn plain_panics_are_caught_and_shrunk() {
        let result = std::panic::catch_unwind(|| {
            Runner::new("panicking_prop")
                .cases(64)
                .run(&(0u32..100), |v| {
                    assert!(*v < 1, "too big");
                    Ok(())
                });
        });
        let message = panic_message(&*result.expect_err("must fail"));
        assert!(message.contains("panic"), "{message}");
    }

    #[test]
    fn weighted_respects_weights() {
        let g = weighted(vec![(1, Just(0u32).boxed()), (9, Just(1u32).boxed())]);
        let mut rng = Rng::seed_from_u64(3);
        let ones = (0..1000).filter(|_| g.generate(&mut rng) == 1).count();
        assert!((820..980).contains(&ones), "{ones}");
    }

    #[test]
    fn select_shrinks_to_earlier_items() {
        let g = select(vec!["a", "b", "c"]);
        assert_eq!(g.shrink(&"c"), vec!["a", "b"]);
        assert!(g.shrink(&"a").is_empty());
    }

    #[test]
    fn option_shrinks_to_none() {
        let g = option_of(0u32..100);
        assert_eq!(g.shrink(&Some(50))[0], None);
        assert!(g.shrink(&None).is_empty());
    }

    #[test]
    fn tuple_generates_and_shrinks_componentwise() {
        let g = (0u32..100, full_bool());
        let mut rng = Rng::seed_from_u64(4);
        let (a, _b) = g.generate(&mut rng);
        assert!(a < 100);
        let shrunk = g.shrink(&(80, true));
        assert!(shrunk.contains(&(0, true)));
        assert!(shrunk.contains(&(80, false)));
    }

    #[test]
    fn string_gen_uses_charset() {
        let g = string_from("ab", 0..=16);
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            assert!(s.len() <= 16 && s.chars().all(|c| c == 'a' || c == 'b'));
        }
        let shrunk = g.shrink(&"abab".to_owned());
        assert_eq!(shrunk[0], "");
    }

    #[test]
    fn seed_env_parsing() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("zz"), None);
    }

    prop! {
        #![cases(64)]

        fn macro_generated_property(v in vec_of(full::<u32>(), 0..64), cut in 0usize..64) {
            let take = cut.min(v.len());
            crate::prop_assert_eq!(v[..take].len(), take);
        }
    }
}

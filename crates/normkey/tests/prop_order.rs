//! Property tests: memcmp order of normalized keys equals ORDER BY order.

use rowsort_normkey::{encode_value_into, KeyColumn};
use rowsort_testkit::prop::{
    bool_weighted, full, full_bool, select, string_from, vec_of, weighted, BoxedGen, GenExt, Just,
};
use rowsort_testkit::{prop, prop_assert, prop_assert_eq};
use rowsort_vector::{LogicalType, NullOrder, SortOrder, SortSpec, Value};
use std::cmp::Ordering;

fn spec_gen() -> BoxedGen<SortSpec> {
    (full_bool(), full_bool())
        .prop_map(|(desc, nf)| {
            SortSpec::new(
                if desc {
                    SortOrder::Descending
                } else {
                    SortOrder::Ascending
                },
                if nf {
                    NullOrder::NullsFirst
                } else {
                    NullOrder::NullsLast
                },
            )
        })
        .boxed()
}

fn key_column(ty: LogicalType, spec: SortSpec) -> KeyColumn {
    if ty == LogicalType::Varchar {
        KeyColumn::varchar(spec, 12)
    } else {
        KeyColumn::fixed(ty, spec)
    }
}

fn encode(v: &Value, col: &KeyColumn) -> Vec<u8> {
    let mut out = vec![0u8; col.encoded_width()];
    encode_value_into(v, col, &mut out);
    out
}

fn fixed_type_gen() -> BoxedGen<LogicalType> {
    select(
        LogicalType::ALL
            .iter()
            .copied()
            .filter(|t| t.is_fixed_width())
            .collect::<Vec<_>>(),
    )
    .boxed()
}

/// `Value::Null` one time in six, otherwise a short string over `a`–`c`
/// plus NUL (embedded zero bytes stress the prefix encoding).
fn varchar_gen() -> BoxedGen<Value> {
    weighted(vec![
        (1, Just(Value::Null).boxed()),
        (
            5,
            string_from("abc\u{0}", 0..=20)
                .prop_map(Value::Varchar)
                .boxed(),
        ),
    ])
    .boxed()
}

prop! {
    #![cases(512)]

    /// Fixed-width types: encoding order == value order, exactly.
    /// Values are derived from raw bits so every type sees its full domain.
    fn fixed_width_order_preserved(
        ty in fixed_type_gen(),
        spec in spec_gen(),
        bits_a in full::<u64>(),
        bits_b in full::<u64>(),
        null_a in bool_weighted(0.15),
        null_b in bool_weighted(0.15),
    ) {
        let from_bits = |bits: u64, null: bool| -> Value {
            if null {
                return Value::Null;
            }
            match ty {
                LogicalType::Boolean => Value::Boolean(bits & 1 != 0),
                LogicalType::Int8 => Value::Int8(bits as i8),
                LogicalType::Int16 => Value::Int16(bits as i16),
                LogicalType::Int32 => Value::Int32(bits as i32),
                LogicalType::Int64 => Value::Int64(bits as i64),
                LogicalType::UInt8 => Value::UInt8(bits as u8),
                LogicalType::UInt16 => Value::UInt16(bits as u16),
                LogicalType::UInt32 => Value::UInt32(bits as u32),
                LogicalType::UInt64 => Value::UInt64(bits),
                LogicalType::Float32 => Value::Float32(f32::from_bits(bits as u32)),
                LogicalType::Float64 => Value::Float64(f64::from_bits(bits)),
                LogicalType::Date => Value::Date(bits as i32),
                LogicalType::Timestamp => Value::Timestamp(bits as i64),
                LogicalType::Varchar => unreachable!("fixed types only"),
            }
        };
        let col = key_column(ty, spec);
        let a = from_bits(bits_a, null_a);
        let b = from_bits(bits_b, null_b);
        let enc_ord = encode(&a, &col).cmp(&encode(&b, &col));
        let val_ord = spec.compare_values(&a, &b);
        prop_assert_eq!(enc_ord, val_ord, "{:?} vs {:?} under {:?}", a, b, spec);
    }

    /// Fixed-width paired values drawn directly.
    fn i64_pairs_exact(a in full::<i64>(), b in full::<i64>(), spec in spec_gen()) {
        let col = KeyColumn::fixed(LogicalType::Int64, spec);
        let (va, vb) = (Value::Int64(a), Value::Int64(b));
        prop_assert_eq!(
            encode(&va, &col).cmp(&encode(&vb, &col)),
            spec.compare_values(&va, &vb)
        );
    }

    fn f64_pairs_exact(a in rowsort_testkit::prop::full_f64(), b in rowsort_testkit::prop::full_f64(), spec in spec_gen()) {
        let col = KeyColumn::fixed(LogicalType::Float64, spec);
        let (va, vb) = (Value::Float64(a), Value::Float64(b));
        prop_assert_eq!(
            encode(&va, &col).cmp(&encode(&vb, &col)),
            spec.compare_values(&va, &vb)
        );
    }

    /// Strings: a strict encoded order implies the same strict value order;
    /// encoded equality only ever hides a tie (never an inversion).
    fn varchar_order_consistent(
        a in varchar_gen(),
        b in varchar_gen(),
        spec in spec_gen(),
        prefix in 1usize..12,
    ) {
        let col = KeyColumn { ty: LogicalType::Varchar, spec, prefix_len: prefix, truncatable: true };
        let enc_ord = encode(&a, &col).cmp(&encode(&b, &col));
        let val_ord = spec.compare_values(&a, &b);
        match enc_ord {
            Ordering::Equal => {} // tie: caller resolves against full strings
            strict => prop_assert_eq!(strict, val_ord, "{:?} vs {:?}", a, b),
        }
    }

    /// NULL placement is absolute: NULL vs valid ordering depends only on
    /// the NULLS clause, never on ASC/DESC or the value.
    fn null_placement_absolute(
        ty in fixed_type_gen(),
        spec in spec_gen(),
        v in full::<i32>(),
    ) {
        // Use a type-correct non-null value.
        let value = match ty {
            LogicalType::Boolean => Value::Boolean(v % 2 == 0),
            LogicalType::Int8 => Value::Int8(v as i8),
            LogicalType::Int16 => Value::Int16(v as i16),
            LogicalType::Int32 => Value::Int32(v),
            LogicalType::Int64 => Value::Int64(v as i64),
            LogicalType::UInt8 => Value::UInt8(v as u8),
            LogicalType::UInt16 => Value::UInt16(v as u16),
            LogicalType::UInt32 => Value::UInt32(v as u32),
            LogicalType::UInt64 => Value::UInt64(v as u64),
            LogicalType::Float32 => Value::Float32(v as f32),
            LogicalType::Float64 => Value::Float64(v as f64),
            LogicalType::Date => Value::Date(v),
            LogicalType::Timestamp => Value::Timestamp(v as i64),
            LogicalType::Varchar => unreachable!(),
        };
        let col = key_column(ty, spec);
        let null_enc = encode(&Value::Null, &col);
        let val_enc = encode(&value, &col);
        match spec.nulls {
            NullOrder::NullsFirst => prop_assert!(null_enc < val_enc),
            NullOrder::NullsLast => prop_assert!(null_enc > val_enc),
        }
    }

    /// Multi-column keys: concatenated encodings order like the
    /// lexicographic row comparator.
    fn multi_column_lexicographic(
        rows in vec_of((full::<i32>(), full::<u8>(), 0usize..4), 2..20),
        spec0 in spec_gen(),
        spec1 in spec_gen(),
    ) {
        use rowsort_vector::{OrderBy, OrderByColumn};
        let cols = [
            KeyColumn::fixed(LogicalType::Int32, spec0),
            KeyColumn::fixed(LogicalType::UInt8, spec1),
        ];
        let ob = OrderBy::new(vec![
            OrderByColumn { column: 0, spec: spec0 },
            OrderByColumn { column: 1, spec: spec1 },
        ]);
        let as_values: Vec<Vec<Value>> = rows
            .iter()
            .map(|&(a, b, nulls)| {
                vec![
                    if nulls & 1 != 0 { Value::Null } else { Value::Int32(a) },
                    if nulls & 2 != 0 { Value::Null } else { Value::UInt8(b) },
                ]
            })
            .collect();
        let keys: Vec<Vec<u8>> = as_values
            .iter()
            .map(|row| {
                let mut k = Vec::new();
                for (v, c) in row.iter().zip(cols.iter()) {
                    k.extend_from_slice(&encode(v, c));
                }
                k
            })
            .collect();
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                prop_assert_eq!(
                    keys[i].cmp(&keys[j]),
                    ob.compare_rows(&as_values[i], &as_values[j]),
                    "rows {} vs {}", i, j
                );
            }
        }
    }
}

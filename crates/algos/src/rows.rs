//! A mutable view over a buffer of fixed-width byte rows.

/// A buffer of `len` rows, each exactly `width` bytes, that sorting
/// algorithms can permute in place.
///
/// This is the runtime-width analogue of `&mut [T]`: an interpreted engine
/// cannot generate a per-query struct type, so its sort operates on rows
/// whose width is only known at run time, moving them with `memcpy` — the
/// situation the paper's §VI techniques are designed for.
#[derive(Debug)]
pub struct RowsMut<'a> {
    data: &'a mut [u8],
    width: usize,
    len: usize,
}

impl<'a> RowsMut<'a> {
    /// Wrap a buffer. `data.len()` must be a multiple of `width`.
    pub fn new(data: &'a mut [u8], width: usize) -> RowsMut<'a> {
        assert!(width > 0, "row width must be positive");
        assert_eq!(
            data.len() % width,
            0,
            "buffer length {} not a multiple of row width {width}",
            data.len()
        );
        let len = data.len() / width;
        RowsMut { data, width, len }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Borrow row `i`.
    ///
    /// Bounds are checked in debug builds only: this accessor sits on the
    /// innermost comparator path of every row sort, where the per-call
    /// slice-bounds checks measurably widen the gap to a monomorphized
    /// typed sort (the comparison the paper's Figure 8 makes).
    #[inline]
    pub fn row(&self, i: usize) -> &[u8] {
        debug_assert!(i < self.len, "row {i} out of bounds ({})", self.len);
        // SAFETY: `width` is fixed at construction and `new`/`sub`/
        // `split_at_mut` all guarantee `data.len() == len * width`, so
        // `i < len` implies `(i + 1) * width <= data.len()` — the returned
        // `width`-byte range lies inside `data`. `i < len` is asserted in
        // debug builds; every in-crate caller iterates within `0..len`.
        unsafe { std::slice::from_raw_parts(self.data.as_ptr().add(i * self.width), self.width) }
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [u8] {
        debug_assert!(i < self.len, "row {i} out of bounds ({})", self.len);
        // SAFETY: same bounds argument as `row`: `data.len() == len * width`
        // by construction and `i < len`, so the range is in-bounds; the
        // `&mut self` receiver guarantees the borrow is exclusive.
        unsafe {
            std::slice::from_raw_parts_mut(self.data.as_mut_ptr().add(i * self.width), self.width)
        }
    }

    /// The underlying buffer.
    pub fn as_bytes(&self) -> &[u8] {
        self.data
    }

    /// Swap rows `i` and `j` (one `memcpy`-style exchange of `width` bytes).
    #[inline]
    pub fn swap(&mut self, i: usize, j: usize) {
        debug_assert!(i < self.len && j < self.len);
        if i == j {
            return;
        }
        // SAFETY: `i != j` (equal indices returned above) and rows are
        // `width`-aligned slots, so the two `width`-byte regions cannot
        // overlap; both are in-bounds because `i < len` and `j < len`
        // (debug-asserted) with `data.len() == len * width` fixed at
        // construction.
        unsafe {
            std::ptr::swap_nonoverlapping(
                self.data.as_mut_ptr().add(i * self.width),
                self.data.as_mut_ptr().add(j * self.width),
                self.width,
            );
        }
    }

    /// Copy row `src` over row `dst` (`memcpy`; `src` is left unchanged).
    #[inline]
    pub fn copy_row(&mut self, src: usize, dst: usize) {
        if src == dst {
            return;
        }
        let w = self.width;
        self.data.copy_within(src * w..(src + 1) * w, dst * w);
    }

    /// Shift rows `from..to` one slot right (row `to` is overwritten):
    /// one `memmove` of `(to - from)` rows.
    pub fn shift_right(&mut self, from: usize, to: usize) {
        debug_assert!(from <= to);
        let w = self.width;
        self.data.copy_within(from * w..to * w, (from + 1) * w);
    }

    /// Re-borrow a sub-range of rows as a new `RowsMut`.
    pub fn sub(&mut self, start: usize, end: usize) -> RowsMut<'_> {
        let w = self.width;
        RowsMut {
            data: &mut self.data[start * w..end * w],
            width: w,
            len: end - start,
        }
    }

    /// Split into two disjoint row views at row `mid`.
    pub fn split_at_mut(&mut self, mid: usize) -> (RowsMut<'_>, RowsMut<'_>) {
        let w = self.width;
        let (a, b) = self.data.split_at_mut(mid * w);
        (
            RowsMut {
                data: a,
                width: w,
                len: mid,
            },
            RowsMut {
                data: b,
                width: w,
                len: self.len - mid,
            },
        )
    }

    /// Check whether rows are sorted under `is_less`.
    pub fn is_sorted_by<F>(&self, is_less: &mut F) -> bool
    where
        F: FnMut(&[u8], &[u8]) -> bool,
    {
        (1..self.len).all(|i| !is_less(self.row(i), self.row(i - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_and_index() {
        let mut data = vec![1u8, 2, 3, 4, 5, 6];
        let rows = RowsMut::new(&mut data, 2);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.width(), 2);
        assert_eq!(rows.row(1), &[3, 4]);
    }

    #[test]
    fn swap_rows() {
        let mut data = vec![1u8, 2, 3, 4];
        let mut rows = RowsMut::new(&mut data, 2);
        rows.swap(0, 1);
        assert_eq!(data, vec![3, 4, 1, 2]);
    }

    #[test]
    fn swap_self_is_noop() {
        let mut data = vec![1u8, 2];
        let mut rows = RowsMut::new(&mut data, 2);
        rows.swap(0, 0);
        assert_eq!(data, vec![1, 2]);
    }

    #[test]
    fn copy_row_overwrites() {
        let mut data = vec![1u8, 2, 3, 4];
        let mut rows = RowsMut::new(&mut data, 2);
        rows.copy_row(0, 1);
        assert_eq!(data, vec![1, 2, 1, 2]);
    }

    #[test]
    fn shift_right_moves_block() {
        let mut data = vec![1u8, 2, 3, 9];
        let mut rows = RowsMut::new(&mut data, 1);
        rows.shift_right(0, 3);
        assert_eq!(data, vec![1, 1, 2, 3]);
    }

    #[test]
    fn sub_view() {
        let mut data = vec![0u8, 1, 2, 3, 4, 5];
        let mut rows = RowsMut::new(&mut data, 1);
        let mut mid = rows.sub(2, 5);
        assert_eq!(mid.len(), 3);
        mid.swap(0, 2);
        assert_eq!(data, vec![0, 1, 4, 3, 2, 5]);
    }

    #[test]
    fn split_at_mut_disjoint() {
        let mut data = vec![0u8, 1, 2, 3];
        let mut rows = RowsMut::new(&mut data, 1);
        let (mut a, mut b) = rows.split_at_mut(2);
        a.swap(0, 1);
        b.swap(0, 1);
        assert_eq!(data, vec![1, 0, 3, 2]);
    }

    #[test]
    fn is_sorted_by() {
        let mut data = vec![1u8, 2, 3];
        let rows = RowsMut::new(&mut data, 1);
        assert!(rows.is_sorted_by(&mut |a, b| a[0] < b[0]));
        let mut data = vec![2u8, 1];
        let rows = RowsMut::new(&mut data, 1);
        assert!(!rows.is_sorted_by(&mut |a, b| a[0] < b[0]));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_width_panics() {
        let mut data = vec![0u8; 5];
        let _ = RowsMut::new(&mut data, 2);
    }
}

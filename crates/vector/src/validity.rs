//! NULL tracking via bit masks.

/// A validity mask: one bit per row, set ⇔ the row's value is valid (not NULL).
///
/// The common all-valid case stores no bits at all, so scanning a column with
/// no NULLs costs nothing. The mask lazily materializes 64-bit words on the
/// first `set_invalid` call, mirroring how vectorized engines keep validity
/// out of the hot path until NULLs actually appear.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Validity {
    /// `None` ⇒ every row valid. `Some(words)` ⇒ bit i of word i/64 is row i.
    words: Option<Vec<u64>>,
    len: usize,
}

impl Validity {
    /// An all-valid mask covering `len` rows.
    pub fn new_valid(len: usize) -> Validity {
        Validity { words: None, len }
    }

    /// An all-NULL mask covering `len` rows.
    pub fn new_invalid(len: usize) -> Validity {
        let mut v = Validity::new_valid(len);
        for i in 0..len {
            v.set_invalid(i);
        }
        v
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` iff no row is NULL (fast path: no mask materialized, or all
    /// bits set).
    pub fn all_valid(&self) -> bool {
        match &self.words {
            None => true,
            Some(_) => self.count_invalid() == 0,
        }
    }

    /// Whether row `idx` is valid.
    ///
    /// # Panics
    /// If `idx >= len`.
    pub fn is_valid(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "validity index {idx} out of range {}",
            self.len
        );
        match &self.words {
            None => true,
            Some(words) => words[idx / 64] & (1u64 << (idx % 64)) != 0,
        }
    }

    /// Mark row `idx` NULL.
    pub fn set_invalid(&mut self, idx: usize) {
        assert!(
            idx < self.len,
            "validity index {idx} out of range {}",
            self.len
        );
        let words = self.materialize();
        words[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Mark row `idx` valid.
    pub fn set_valid(&mut self, idx: usize) {
        assert!(
            idx < self.len,
            "validity index {idx} out of range {}",
            self.len
        );
        if let Some(words) = &mut self.words {
            words[idx / 64] |= 1u64 << (idx % 64);
        }
        // all-valid representation: nothing to do
    }

    /// Set row `idx` to `valid`.
    pub fn set(&mut self, idx: usize, valid: bool) {
        if valid {
            self.set_valid(idx);
        } else {
            self.set_invalid(idx);
        }
    }

    /// Append one row with the given validity.
    pub fn push(&mut self, valid: bool) {
        let idx = self.len;
        self.len += 1;
        if let Some(words) = &mut self.words {
            if words.len() * 64 < self.len {
                words.push(u64::MAX);
            }
            // New bit defaults to valid (word pushed as MAX); clear if needed.
            if !valid {
                words[idx / 64] &= !(1u64 << (idx % 64));
            }
        } else if !valid {
            self.materialize();
            self.set_invalid(idx);
        }
    }

    /// Number of NULL rows.
    pub fn count_invalid(&self) -> usize {
        match &self.words {
            None => 0,
            Some(words) => {
                let mut nulls = 0usize;
                for (w, word) in words.iter().enumerate() {
                    let bits_in_word = if (w + 1) * 64 <= self.len {
                        64
                    } else {
                        self.len - w * 64
                    };
                    let mask = if bits_in_word == 64 {
                        u64::MAX
                    } else {
                        (1u64 << bits_in_word) - 1
                    };
                    nulls += (!word & mask).count_ones() as usize;
                }
                nulls
            }
        }
    }

    /// Number of valid (non-NULL) rows.
    pub fn count_valid(&self) -> usize {
        self.len - self.count_invalid()
    }

    /// Copy out the sub-mask covering rows `start..end`.
    pub fn slice(&self, start: usize, end: usize) -> Validity {
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} of {}",
            self.len
        );
        match &self.words {
            None => Validity::new_valid(end - start),
            Some(_) => {
                let mut out = Validity::new_valid(0);
                for i in start..end {
                    out.push(self.is_valid(i));
                }
                out
            }
        }
    }

    fn materialize(&mut self) -> &mut Vec<u64> {
        if self.words.is_none() {
            self.words = Some(vec![u64::MAX; self.len.div_ceil(64).max(1)]);
        }
        self.words.as_mut().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_valid_is_lazy() {
        let v = Validity::new_valid(1000);
        assert!(v.all_valid());
        assert_eq!(v.count_invalid(), 0);
        assert_eq!(v.count_valid(), 1000);
        assert!(v.is_valid(0));
        assert!(v.is_valid(999));
    }

    #[test]
    fn set_and_query() {
        let mut v = Validity::new_valid(130);
        v.set_invalid(0);
        v.set_invalid(64);
        v.set_invalid(129);
        assert!(!v.is_valid(0));
        assert!(v.is_valid(1));
        assert!(!v.is_valid(64));
        assert!(!v.is_valid(129));
        assert_eq!(v.count_invalid(), 3);
        assert!(!v.all_valid());
        v.set_valid(64);
        assert!(v.is_valid(64));
        assert_eq!(v.count_invalid(), 2);
    }

    #[test]
    fn set_valid_on_lazy_mask_is_noop() {
        let mut v = Validity::new_valid(10);
        v.set_valid(3);
        assert!(v.all_valid());
    }

    #[test]
    fn all_invalid() {
        let v = Validity::new_invalid(70);
        assert_eq!(v.count_invalid(), 70);
        assert_eq!(v.count_valid(), 0);
        for i in 0..70 {
            assert!(!v.is_valid(i));
        }
    }

    #[test]
    fn push_grows_mask() {
        let mut v = Validity::new_valid(0);
        for i in 0..200 {
            v.push(i % 3 != 0);
        }
        assert_eq!(v.len(), 200);
        for i in 0..200 {
            assert_eq!(v.is_valid(i), i % 3 != 0, "row {i}");
        }
        // ceil(200/3) = 67 NULLs
        assert_eq!(v.count_invalid(), 67);
    }

    #[test]
    fn push_all_valid_stays_lazy() {
        let mut v = Validity::new_valid(0);
        for _ in 0..100 {
            v.push(true);
        }
        assert!(v.all_valid());
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn count_handles_partial_last_word() {
        // 65 rows: 2 words, the second with only 1 live bit.
        let mut v = Validity::new_valid(65);
        v.set_invalid(64);
        assert_eq!(v.count_invalid(), 1);
        v.set_valid(64);
        assert_eq!(v.count_invalid(), 0);
        assert!(v.all_valid(), "all bits restored counts as all_valid");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let v = Validity::new_valid(5);
        let _ = v.is_valid(5);
    }

    #[test]
    fn set_converts_between_states() {
        let mut v = Validity::new_valid(8);
        v.set(2, false);
        assert!(!v.is_valid(2));
        v.set(2, true);
        assert!(v.is_valid(2));
    }

    #[test]
    fn empty_mask() {
        let v = Validity::new_valid(0);
        assert!(v.is_empty());
        assert!(v.all_valid());
        assert_eq!(v.count_valid(), 0);
    }
}

//! Property tests: DSM → NSM → DSM is the identity for arbitrary typed data.

use rowsort_row::{scatter, RowAlignment, RowLayout};
use rowsort_testkit::prop::{
    any_string, full, full_bool, full_f32, full_f64, select, vec_of, weighted, BoxedGen, GenExt,
    Just,
};
use rowsort_testkit::{prop, prop_assert, prop_assume};
use rowsort_vector::{DataChunk, LogicalType, Value};
use std::sync::Arc;

/// Generator for a random cell of the given type (incl. NULLs).
fn value_gen(ty: LogicalType) -> BoxedGen<Value> {
    let non_null: BoxedGen<Value> = match ty {
        LogicalType::Boolean => full_bool().prop_map(Value::Boolean).boxed(),
        LogicalType::Int8 => full::<i8>().prop_map(Value::Int8).boxed(),
        LogicalType::Int16 => full::<i16>().prop_map(Value::Int16).boxed(),
        LogicalType::Int32 => full::<i32>().prop_map(Value::Int32).boxed(),
        LogicalType::Int64 => full::<i64>().prop_map(Value::Int64).boxed(),
        LogicalType::UInt8 => full::<u8>().prop_map(Value::UInt8).boxed(),
        LogicalType::UInt16 => full::<u16>().prop_map(Value::UInt16).boxed(),
        LogicalType::UInt32 => full::<u32>().prop_map(Value::UInt32).boxed(),
        LogicalType::UInt64 => full::<u64>().prop_map(Value::UInt64).boxed(),
        LogicalType::Float32 => full_f32().prop_map(Value::Float32).boxed(),
        LogicalType::Float64 => full_f64().prop_map(Value::Float64).boxed(),
        LogicalType::Date => full::<i32>().prop_map(Value::Date).boxed(),
        LogicalType::Timestamp => full::<i64>().prop_map(Value::Timestamp).boxed(),
        LogicalType::Varchar => any_string(0..=24).prop_map(Value::Varchar).boxed(),
    };
    weighted(vec![(1, Just(Value::Null).boxed()), (4, non_null)]).boxed()
}

/// Generator for a random schema of 1..=5 columns.
fn schema_gen() -> BoxedGen<Vec<LogicalType>> {
    vec_of(select(LogicalType::ALL.to_vec()), 1..=5).boxed()
}

fn chunk_gen() -> BoxedGen<DataChunk> {
    schema_gen()
        .prop_flat_map(|types| {
            let row = types.iter().map(|&t| value_gen(t)).collect::<Vec<_>>();
            vec_of(row, 0..64).prop_map(move |rows| {
                let mut chunk = DataChunk::new(&types);
                for r in rows {
                    chunk.push_row(&r).unwrap();
                }
                chunk
            })
        })
        .boxed()
}

/// Float NaNs compare unequal under `PartialEq`; compare via bit patterns.
fn values_bit_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float32(x), Value::Float32(y)) => x.to_bits() == y.to_bits(),
        (Value::Float64(x), Value::Float64(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn chunks_bit_eq(a: &DataChunk, b: &DataChunk) -> bool {
    a.len() == b.len()
        && (0..a.len()).all(|i| {
            a.row(i)
                .iter()
                .zip(b.row(i).iter())
                .all(|(x, y)| values_bit_eq(x, y))
        })
}

prop! {
    #![cases(64)]

    fn scatter_gather_identity_aligned(chunk in chunk_gen()) {
        let layout = Arc::new(RowLayout::new(&chunk.types()));
        let block = scatter(&chunk, layout);
        let order: Vec<u32> = (0..chunk.len() as u32).collect();
        let back = block.gather(&order);
        prop_assert!(chunks_bit_eq(&chunk, &back));
    }

    fn scatter_gather_identity_packed(chunk in chunk_gen()) {
        let layout = Arc::new(RowLayout::with_alignment(&chunk.types(), RowAlignment::Packed));
        let block = scatter(&chunk, layout);
        let order: Vec<u32> = (0..chunk.len() as u32).collect();
        let back = block.gather(&order);
        prop_assert!(chunks_bit_eq(&chunk, &back));
    }

    fn reorder_then_gather_matches_take(chunk in chunk_gen(), seed in full::<u64>()) {
        prop_assume!(!chunk.is_empty());
        let layout = Arc::new(RowLayout::new(&chunk.types()));
        let block = scatter(&chunk, layout);
        // Deterministic pseudo-random permutation from the seed.
        let n = chunk.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let reordered = block.reorder(&order);
        let idents: Vec<u32> = (0..n as u32).collect();
        let via_reorder = reordered.gather(&idents);
        let via_take = chunk.take(&order.iter().map(|&i| i as usize).collect::<Vec<_>>());
        prop_assert!(chunks_bit_eq(&via_reorder, &via_take));
    }
}

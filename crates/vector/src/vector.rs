//! A single column of values (DSM storage).

use crate::strings::StringVec;
use crate::types::LogicalType;
use crate::validity::Validity;
use crate::value::Value;
use crate::{Result, VectorError};

/// Typed storage backing one [`Vector`].
#[derive(Debug, Clone, PartialEq)]
pub enum VectorData {
    /// BOOLEAN storage.
    Boolean(Vec<bool>),
    /// TINYINT storage.
    Int8(Vec<i8>),
    /// SMALLINT storage.
    Int16(Vec<i16>),
    /// INTEGER storage.
    Int32(Vec<i32>),
    /// BIGINT storage.
    Int64(Vec<i64>),
    /// UTINYINT storage.
    UInt8(Vec<u8>),
    /// USMALLINT storage.
    UInt16(Vec<u16>),
    /// UINTEGER storage.
    UInt32(Vec<u32>),
    /// UBIGINT storage.
    UInt64(Vec<u64>),
    /// REAL storage.
    Float32(Vec<f32>),
    /// DOUBLE storage.
    Float64(Vec<f64>),
    /// DATE storage (days since epoch).
    Date(Vec<i32>),
    /// TIMESTAMP storage (microseconds since epoch).
    Timestamp(Vec<i64>),
    /// VARCHAR storage.
    Varchar(StringVec),
}

impl VectorData {
    /// Empty storage for the given type.
    pub fn new(ty: LogicalType) -> VectorData {
        match ty {
            LogicalType::Boolean => VectorData::Boolean(Vec::new()),
            LogicalType::Int8 => VectorData::Int8(Vec::new()),
            LogicalType::Int16 => VectorData::Int16(Vec::new()),
            LogicalType::Int32 => VectorData::Int32(Vec::new()),
            LogicalType::Int64 => VectorData::Int64(Vec::new()),
            LogicalType::UInt8 => VectorData::UInt8(Vec::new()),
            LogicalType::UInt16 => VectorData::UInt16(Vec::new()),
            LogicalType::UInt32 => VectorData::UInt32(Vec::new()),
            LogicalType::UInt64 => VectorData::UInt64(Vec::new()),
            LogicalType::Float32 => VectorData::Float32(Vec::new()),
            LogicalType::Float64 => VectorData::Float64(Vec::new()),
            LogicalType::Date => VectorData::Date(Vec::new()),
            LogicalType::Timestamp => VectorData::Timestamp(Vec::new()),
            LogicalType::Varchar => VectorData::Varchar(StringVec::new()),
        }
    }

    /// The logical type of this storage.
    pub fn logical_type(&self) -> LogicalType {
        match self {
            VectorData::Boolean(_) => LogicalType::Boolean,
            VectorData::Int8(_) => LogicalType::Int8,
            VectorData::Int16(_) => LogicalType::Int16,
            VectorData::Int32(_) => LogicalType::Int32,
            VectorData::Int64(_) => LogicalType::Int64,
            VectorData::UInt8(_) => LogicalType::UInt8,
            VectorData::UInt16(_) => LogicalType::UInt16,
            VectorData::UInt32(_) => LogicalType::UInt32,
            VectorData::UInt64(_) => LogicalType::UInt64,
            VectorData::Float32(_) => LogicalType::Float32,
            VectorData::Float64(_) => LogicalType::Float64,
            VectorData::Date(_) => LogicalType::Date,
            VectorData::Timestamp(_) => LogicalType::Timestamp,
            VectorData::Varchar(_) => LogicalType::Varchar,
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            VectorData::Boolean(v) => v.len(),
            VectorData::Int8(v) => v.len(),
            VectorData::Int16(v) => v.len(),
            VectorData::Int32(v) => v.len(),
            VectorData::Int64(v) => v.len(),
            VectorData::UInt8(v) => v.len(),
            VectorData::UInt16(v) => v.len(),
            VectorData::UInt32(v) => v.len(),
            VectorData::UInt64(v) => v.len(),
            VectorData::Float32(v) => v.len(),
            VectorData::Float64(v) => v.len(),
            VectorData::Date(v) => v.len(),
            VectorData::Timestamp(v) => v.len(),
            VectorData::Varchar(v) => v.len(),
        }
    }

    /// `true` iff no rows stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One column of nullable values: typed storage plus a validity mask.
///
/// This is the unit a vectorized engine processes at a time. The storage for
/// NULL rows is an arbitrary placeholder (zero / empty string); consumers
/// must consult [`Vector::is_valid`].
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    data: VectorData,
    validity: Validity,
}

macro_rules! typed_accessors {
    ($getter:ident, $variant:ident, $rust:ty, $from:ident) => {
        /// Borrow the typed storage, or `None` if the vector has a different type.
        pub fn $getter(&self) -> Option<&[$rust]> {
            match &self.data {
                VectorData::$variant(v) => Some(v),
                _ => None,
            }
        }

        /// Build an all-valid vector from raw values.
        pub fn $from(values: Vec<$rust>) -> Vector {
            let validity = Validity::new_valid(values.len());
            Vector {
                data: VectorData::$variant(values),
                validity,
            }
        }
    };
}

impl Vector {
    /// An empty vector of the given type.
    pub fn new(ty: LogicalType) -> Vector {
        Vector {
            data: VectorData::new(ty),
            validity: Validity::new_valid(0),
        }
    }

    /// Build a vector from boxed values; every value must be NULL or match `ty`.
    pub fn from_values(ty: LogicalType, values: &[Value]) -> Result<Vector> {
        let mut v = Vector::new(ty);
        for val in values {
            v.push(val)?;
        }
        Ok(v)
    }

    typed_accessors!(as_bools, Boolean, bool, from_bools);
    typed_accessors!(as_i8s, Int8, i8, from_i8s);
    typed_accessors!(as_i16s, Int16, i16, from_i16s);
    typed_accessors!(as_i32s, Int32, i32, from_i32s);
    typed_accessors!(as_i64s, Int64, i64, from_i64s);
    typed_accessors!(as_u8s, UInt8, u8, from_u8s);
    typed_accessors!(as_u16s, UInt16, u16, from_u16s);
    typed_accessors!(as_u32s, UInt32, u32, from_u32s);
    typed_accessors!(as_u64s, UInt64, u64, from_u64s);
    typed_accessors!(as_f32s, Float32, f32, from_f32s);
    typed_accessors!(as_f64s, Float64, f64, from_f64s);

    /// Borrow the string storage, or `None` for non-VARCHAR vectors.
    pub fn as_strings(&self) -> Option<&StringVec> {
        match &self.data {
            VectorData::Varchar(v) => Some(v),
            _ => None,
        }
    }

    /// Build an all-valid VARCHAR vector.
    pub fn from_strings<S: AsRef<str>>(values: impl IntoIterator<Item = S>) -> Vector {
        let sv: StringVec = values.into_iter().collect();
        let validity = Validity::new_valid(sv.len());
        Vector {
            data: VectorData::Varchar(sv),
            validity,
        }
    }

    /// Build a DATE vector (days since epoch).
    pub fn from_dates(values: Vec<i32>) -> Vector {
        let validity = Validity::new_valid(values.len());
        Vector {
            data: VectorData::Date(values),
            validity,
        }
    }

    /// Build a TIMESTAMP vector (microseconds since epoch).
    pub fn from_timestamps(values: Vec<i64>) -> Vector {
        let validity = Validity::new_valid(values.len());
        Vector {
            data: VectorData::Timestamp(values),
            validity,
        }
    }

    /// The logical type.
    pub fn logical_type(&self) -> LogicalType {
        self.data.logical_type()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the vector holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether row `idx` is non-NULL.
    pub fn is_valid(&self, idx: usize) -> bool {
        self.validity.is_valid(idx)
    }

    /// The validity mask.
    pub fn validity(&self) -> &Validity {
        &self.validity
    }

    /// The typed storage.
    pub fn data(&self) -> &VectorData {
        &self.data
    }

    /// Mark row `idx` NULL (storage keeps its placeholder value).
    pub fn set_null(&mut self, idx: usize) {
        self.validity.set_invalid(idx);
    }

    /// Append a boxed value. NULL appends a placeholder and clears validity.
    pub fn push(&mut self, value: &Value) -> Result<()> {
        if value.is_null() {
            self.push_placeholder();
            self.validity.push(false);
            return Ok(());
        }
        let ty = self.logical_type();
        let type_err = || VectorError::TypeMismatch {
            expected: ty,
            got: format!("{value:?}"),
        };
        match (&mut self.data, value) {
            (VectorData::Boolean(v), Value::Boolean(x)) => v.push(*x),
            (VectorData::Int8(v), Value::Int8(x)) => v.push(*x),
            (VectorData::Int16(v), Value::Int16(x)) => v.push(*x),
            (VectorData::Int32(v), Value::Int32(x)) => v.push(*x),
            (VectorData::Int64(v), Value::Int64(x)) => v.push(*x),
            (VectorData::UInt8(v), Value::UInt8(x)) => v.push(*x),
            (VectorData::UInt16(v), Value::UInt16(x)) => v.push(*x),
            (VectorData::UInt32(v), Value::UInt32(x)) => v.push(*x),
            (VectorData::UInt64(v), Value::UInt64(x)) => v.push(*x),
            (VectorData::Float32(v), Value::Float32(x)) => v.push(*x),
            (VectorData::Float64(v), Value::Float64(x)) => v.push(*x),
            (VectorData::Date(v), Value::Date(x)) => v.push(*x),
            (VectorData::Timestamp(v), Value::Timestamp(x)) => v.push(*x),
            (VectorData::Varchar(v), Value::Varchar(x)) => v.push(x),
            _ => return Err(type_err()),
        }
        self.validity.push(true);
        Ok(())
    }

    fn push_placeholder(&mut self) {
        match &mut self.data {
            VectorData::Boolean(v) => v.push(false),
            VectorData::Int8(v) => v.push(0),
            VectorData::Int16(v) => v.push(0),
            VectorData::Int32(v) => v.push(0),
            VectorData::Int64(v) => v.push(0),
            VectorData::UInt8(v) => v.push(0),
            VectorData::UInt16(v) => v.push(0),
            VectorData::UInt32(v) => v.push(0),
            VectorData::UInt64(v) => v.push(0),
            VectorData::Float32(v) => v.push(0.0),
            VectorData::Float64(v) => v.push(0.0),
            VectorData::Date(v) => v.push(0),
            VectorData::Timestamp(v) => v.push(0),
            VectorData::Varchar(v) => v.push(""),
        }
    }

    /// Read row `idx` as a boxed [`Value`] (NULL-aware).
    pub fn get(&self, idx: usize) -> Value {
        if !self.validity.is_valid(idx) {
            return Value::Null;
        }
        match &self.data {
            VectorData::Boolean(v) => Value::Boolean(v[idx]),
            VectorData::Int8(v) => Value::Int8(v[idx]),
            VectorData::Int16(v) => Value::Int16(v[idx]),
            VectorData::Int32(v) => Value::Int32(v[idx]),
            VectorData::Int64(v) => Value::Int64(v[idx]),
            VectorData::UInt8(v) => Value::UInt8(v[idx]),
            VectorData::UInt16(v) => Value::UInt16(v[idx]),
            VectorData::UInt32(v) => Value::UInt32(v[idx]),
            VectorData::UInt64(v) => Value::UInt64(v[idx]),
            VectorData::Float32(v) => Value::Float32(v[idx]),
            VectorData::Float64(v) => Value::Float64(v[idx]),
            VectorData::Date(v) => Value::Date(v[idx]),
            VectorData::Timestamp(v) => Value::Timestamp(v[idx]),
            VectorData::Varchar(v) => Value::Varchar(v.get(idx).to_owned()),
        }
    }

    /// Gather rows by index into a new vector (the columnar "payload fetch"
    /// step after an index sort). Runs on the typed fast path.
    ///
    /// # Panics
    /// If any index is out of bounds.
    pub fn take(&self, indices: &[usize]) -> Vector {
        macro_rules! take_fixed {
            ($v:expr, $variant:ident) => {
                VectorData::$variant(indices.iter().map(|&i| $v[i]).collect())
            };
        }
        let data = match &self.data {
            VectorData::Boolean(v) => take_fixed!(v, Boolean),
            VectorData::Int8(v) => take_fixed!(v, Int8),
            VectorData::Int16(v) => take_fixed!(v, Int16),
            VectorData::Int32(v) => take_fixed!(v, Int32),
            VectorData::Int64(v) => take_fixed!(v, Int64),
            VectorData::UInt8(v) => take_fixed!(v, UInt8),
            VectorData::UInt16(v) => take_fixed!(v, UInt16),
            VectorData::UInt32(v) => take_fixed!(v, UInt32),
            VectorData::UInt64(v) => take_fixed!(v, UInt64),
            VectorData::Float32(v) => take_fixed!(v, Float32),
            VectorData::Float64(v) => take_fixed!(v, Float64),
            VectorData::Date(v) => take_fixed!(v, Date),
            VectorData::Timestamp(v) => take_fixed!(v, Timestamp),
            VectorData::Varchar(v) => {
                let mut out = crate::strings::StringVec::with_capacity(indices.len(), 8);
                for &i in indices {
                    out.push(v.get(i));
                }
                VectorData::Varchar(out)
            }
        };
        let mut validity = Validity::new_valid(indices.len());
        if !self.validity.all_valid() {
            for (dst, &src) in indices.iter().enumerate() {
                if !self.validity.is_valid(src) {
                    validity.set_invalid(dst);
                }
            }
        }
        Vector { data, validity }
    }

    /// Append all rows of `other` (must have the same type). Runs on the
    /// typed fast path (bulk extends, no boxed values).
    pub fn append(&mut self, other: &Vector) -> Result<()> {
        if other.logical_type() != self.logical_type() {
            return Err(VectorError::TypeMismatch {
                expected: self.logical_type(),
                got: other.logical_type().name().to_owned(),
            });
        }
        match (&mut self.data, other.data()) {
            (VectorData::Boolean(a), VectorData::Boolean(b)) => a.extend_from_slice(b),
            (VectorData::Int8(a), VectorData::Int8(b)) => a.extend_from_slice(b),
            (VectorData::Int16(a), VectorData::Int16(b)) => a.extend_from_slice(b),
            (VectorData::Int32(a), VectorData::Int32(b)) => a.extend_from_slice(b),
            (VectorData::Int64(a), VectorData::Int64(b)) => a.extend_from_slice(b),
            (VectorData::UInt8(a), VectorData::UInt8(b)) => a.extend_from_slice(b),
            (VectorData::UInt16(a), VectorData::UInt16(b)) => a.extend_from_slice(b),
            (VectorData::UInt32(a), VectorData::UInt32(b)) => a.extend_from_slice(b),
            (VectorData::UInt64(a), VectorData::UInt64(b)) => a.extend_from_slice(b),
            (VectorData::Float32(a), VectorData::Float32(b)) => a.extend_from_slice(b),
            (VectorData::Float64(a), VectorData::Float64(b)) => a.extend_from_slice(b),
            (VectorData::Date(a), VectorData::Date(b)) => a.extend_from_slice(b),
            (VectorData::Timestamp(a), VectorData::Timestamp(b)) => a.extend_from_slice(b),
            (VectorData::Varchar(a), VectorData::Varchar(b)) => {
                for s in b.iter() {
                    a.push(s);
                }
            }
            _ => unreachable!("types checked above"),
        }
        if other.validity.all_valid() {
            for _ in 0..other.len() {
                self.validity.push(true);
            }
        } else {
            for i in 0..other.len() {
                self.validity.push(other.validity.is_valid(i));
            }
        }
        Ok(())
    }

    /// Iterate rows as boxed values.
    pub fn iter_values(&self) -> impl ExactSizeIterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Copy out rows `start..end` as a new vector — a typed `memcpy`, not a
    /// per-value loop, so morsel splitting stays off the boxed-value path.
    pub fn slice(&self, start: usize, end: usize) -> Vector {
        let validity = self.validity.slice(start, end);
        let data = match &self.data {
            VectorData::Boolean(v) => VectorData::Boolean(v[start..end].to_vec()),
            VectorData::Int8(v) => VectorData::Int8(v[start..end].to_vec()),
            VectorData::Int16(v) => VectorData::Int16(v[start..end].to_vec()),
            VectorData::Int32(v) => VectorData::Int32(v[start..end].to_vec()),
            VectorData::Int64(v) => VectorData::Int64(v[start..end].to_vec()),
            VectorData::UInt8(v) => VectorData::UInt8(v[start..end].to_vec()),
            VectorData::UInt16(v) => VectorData::UInt16(v[start..end].to_vec()),
            VectorData::UInt32(v) => VectorData::UInt32(v[start..end].to_vec()),
            VectorData::UInt64(v) => VectorData::UInt64(v[start..end].to_vec()),
            VectorData::Float32(v) => VectorData::Float32(v[start..end].to_vec()),
            VectorData::Float64(v) => VectorData::Float64(v[start..end].to_vec()),
            VectorData::Date(v) => VectorData::Date(v[start..end].to_vec()),
            VectorData::Timestamp(v) => VectorData::Timestamp(v[start..end].to_vec()),
            VectorData::Varchar(v) => {
                let mut out = crate::strings::StringVec::with_capacity(end - start, 8);
                for i in start..end {
                    out.push(v.get(i));
                }
                VectorData::Varchar(out)
            }
        };
        Vector { data, validity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_u32() {
        let v = Vector::from_u32s(vec![3, 1, 2]);
        assert_eq!(v.logical_type(), LogicalType::UInt32);
        assert_eq!(v.len(), 3);
        assert_eq!(v.get(1), Value::UInt32(1));
        assert_eq!(v.as_u32s(), Some(&[3u32, 1, 2][..]));
        assert_eq!(v.as_i32s(), None);
    }

    #[test]
    fn push_values_and_nulls() {
        let mut v = Vector::new(LogicalType::Int32);
        v.push(&Value::Int32(5)).unwrap();
        v.push(&Value::Null).unwrap();
        v.push(&Value::Int32(-7)).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.get(0), Value::Int32(5));
        assert_eq!(v.get(1), Value::Null);
        assert_eq!(v.get(2), Value::Int32(-7));
        assert!(!v.is_valid(1));
        assert_eq!(v.validity().count_invalid(), 1);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut v = Vector::new(LogicalType::Int32);
        let err = v.push(&Value::Int64(1)).unwrap_err();
        assert!(matches!(err, VectorError::TypeMismatch { .. }));
        assert_eq!(v.len(), 0, "failed push must not grow the vector");
    }

    #[test]
    fn varchar_vector() {
        let v = Vector::from_strings(["b", "a", "c"]);
        assert_eq!(v.logical_type(), LogicalType::Varchar);
        assert_eq!(v.get(0), Value::from("b"));
        assert_eq!(v.as_strings().unwrap().get(2), "c");
    }

    #[test]
    fn from_values_mixed_nulls() {
        let vals = vec![Value::UInt32(1), Value::Null, Value::UInt32(3)];
        let v = Vector::from_values(LogicalType::UInt32, &vals).unwrap();
        assert_eq!(v.get(1), Value::Null);
        assert_eq!(v.get(2), Value::UInt32(3));
    }

    #[test]
    fn take_gathers_with_nulls() {
        let mut v = Vector::new(LogicalType::Int64);
        for val in [Value::Int64(10), Value::Null, Value::Int64(30)] {
            v.push(&val).unwrap();
        }
        let g = v.take(&[2, 1, 0, 2]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.get(0), Value::Int64(30));
        assert_eq!(g.get(1), Value::Null);
        assert_eq!(g.get(2), Value::Int64(10));
        assert_eq!(g.get(3), Value::Int64(30));
    }

    #[test]
    fn append_same_type() {
        let mut a = Vector::from_i32s(vec![1, 2]);
        let b = Vector::from_i32s(vec![3]);
        a.append(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(2), Value::Int32(3));
    }

    #[test]
    fn append_type_mismatch() {
        let mut a = Vector::from_i32s(vec![1]);
        let b = Vector::from_i64s(vec![2]);
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn set_null_after_build() {
        let mut v = Vector::from_f64s(vec![1.0, 2.0]);
        v.set_null(0);
        assert_eq!(v.get(0), Value::Null);
        assert_eq!(v.get(1), Value::Float64(2.0));
    }

    #[test]
    fn iter_values() {
        let v = Vector::from_u8s(vec![9, 8]);
        let all: Vec<Value> = v.iter_values().collect();
        assert_eq!(all, vec![Value::UInt8(9), Value::UInt8(8)]);
    }

    #[test]
    fn date_and_timestamp_vectors() {
        let d = Vector::from_dates(vec![-1, 0, 1]);
        assert_eq!(d.logical_type(), LogicalType::Date);
        assert_eq!(d.get(0), Value::Date(-1));
        let t = Vector::from_timestamps(vec![1_000_000]);
        assert_eq!(t.logical_type(), LogicalType::Timestamp);
        assert_eq!(t.get(0), Value::Timestamp(1_000_000));
    }

    #[test]
    fn every_type_constructs_empty() {
        for ty in LogicalType::ALL {
            let v = Vector::new(ty);
            assert_eq!(v.logical_type(), ty);
            assert!(v.is_empty());
        }
    }

    #[test]
    fn slice_copies_range_with_validity() {
        let mut v = Vector::new(LogicalType::Int32);
        for val in [
            Value::Int32(1),
            Value::Null,
            Value::Int32(3),
            Value::Int32(4),
        ] {
            v.push(&val).unwrap();
        }
        let s = v.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Value::Null);
        assert_eq!(s.get(1), Value::Int32(3));
        let empty = v.slice(2, 2);
        assert!(empty.is_empty());
    }

    #[test]
    fn slice_strings() {
        let v = Vector::from_strings(["a", "bb", "ccc"]);
        let s = v.slice(1, 3);
        assert_eq!(s.get(0), Value::from("bb"));
        assert_eq!(s.get(1), Value::from("ccc"));
    }

    #[test]
    fn take_preserves_nulls_on_fast_path() {
        let mut v = Vector::new(LogicalType::Float64);
        for val in [Value::Float64(1.0), Value::Null, Value::Float64(3.0)] {
            v.push(&val).unwrap();
        }
        let t = v.take(&[1, 0, 1, 2]);
        assert_eq!(t.get(0), Value::Null);
        assert_eq!(t.get(1), Value::Float64(1.0));
        assert_eq!(t.get(2), Value::Null);
        assert_eq!(t.get(3), Value::Float64(3.0));
    }

    #[test]
    fn append_bulk_with_nulls() {
        let mut a = Vector::from_i32s(vec![1]);
        let mut b = Vector::new(LogicalType::Int32);
        for val in [Value::Null, Value::Int32(9)] {
            b.push(&val).unwrap();
        }
        a.append(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(1), Value::Null);
        assert_eq!(a.get(2), Value::Int32(9));
    }

    #[test]
    fn append_strings_bulk() {
        let mut a = Vector::from_strings(["x"]);
        let b = Vector::from_strings(["y", "z"]);
        a.append(&b).unwrap();
        assert_eq!(a.get(2), Value::from("z"));
    }
}

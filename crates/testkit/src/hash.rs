//! A hand-rolled xxHash64 — the checksum behind spill-file integrity.
//!
//! The external sorter stamps every spilled run with a 64-bit digest and
//! verifies it when the run is read back, so a truncated or bit-flipped
//! file surfaces as a typed corruption error instead of wrong rows. The
//! workspace is dependency-free, so the hash lives here: the standard
//! xxHash64 construction (four lanes of multiply-rotate over 32-byte
//! stripes, a tail mix, and an avalanche finish), implemented from the
//! published specification and pinned to its reference test vectors.
//!
//! [`XxHash64`] is a streaming hasher; [`XxHash64::hash`] is the one-shot
//! convenience. Both are deterministic across platforms (all arithmetic
//! is explicit little-endian wrapping math).

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

/// Streaming xxHash64 state.
#[derive(Debug, Clone)]
pub struct XxHash64 {
    seed: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    v4: u64,
    /// Bytes not yet forming a full 32-byte stripe.
    buf: [u8; 32],
    buf_len: usize,
    /// Total bytes written.
    total: u64,
}

impl XxHash64 {
    /// A fresh hasher with the given seed.
    pub fn with_seed(seed: u64) -> XxHash64 {
        XxHash64 {
            seed,
            v1: seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2),
            v2: seed.wrapping_add(PRIME64_2),
            v3: seed,
            v4: seed.wrapping_sub(PRIME64_1),
            buf: [0; 32],
            buf_len: 0,
            total: 0,
        }
    }

    /// One-shot digest of `data` under `seed`.
    pub fn hash(data: &[u8], seed: u64) -> u64 {
        let mut h = XxHash64::with_seed(seed);
        h.write(data);
        h.finish()
    }

    /// Total bytes hashed so far.
    pub fn bytes_written(&self) -> u64 {
        self.total
    }

    #[inline]
    fn round(acc: u64, input: u64) -> u64 {
        acc.wrapping_add(input.wrapping_mul(PRIME64_2))
            .rotate_left(31)
            .wrapping_mul(PRIME64_1)
    }

    #[inline]
    fn merge_round(acc: u64, val: u64) -> u64 {
        (acc ^ Self::round(0, val))
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4)
    }

    #[inline]
    fn read_u64(chunk: &[u8], at: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&chunk[at..at + 8]);
        u64::from_le_bytes(b)
    }

    fn consume_stripe(&mut self, stripe: &[u8]) {
        self.v1 = Self::round(self.v1, Self::read_u64(stripe, 0));
        self.v2 = Self::round(self.v2, Self::read_u64(stripe, 8));
        self.v3 = Self::round(self.v3, Self::read_u64(stripe, 16));
        self.v4 = Self::round(self.v4, Self::read_u64(stripe, 24));
    }

    /// Feed bytes into the digest.
    pub fn write(&mut self, mut data: &[u8]) {
        self.total += data.len() as u64;
        if self.buf_len > 0 {
            let take = (32 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 32 {
                return;
            }
            let stripe = self.buf;
            self.consume_stripe(&stripe);
            self.buf_len = 0;
        }
        while data.len() >= 32 {
            self.consume_stripe(&data[..32]);
            data = &data[32..];
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// The digest of everything written so far (the state stays usable).
    pub fn finish(&self) -> u64 {
        let mut h = if self.total >= 32 {
            let mut h = self
                .v1
                .rotate_left(1)
                .wrapping_add(self.v2.rotate_left(7))
                .wrapping_add(self.v3.rotate_left(12))
                .wrapping_add(self.v4.rotate_left(18));
            h = Self::merge_round(h, self.v1);
            h = Self::merge_round(h, self.v2);
            h = Self::merge_round(h, self.v3);
            h = Self::merge_round(h, self.v4);
            h
        } else {
            self.seed.wrapping_add(PRIME64_5)
        };
        h = h.wrapping_add(self.total);

        let mut rest = &self.buf[..self.buf_len];
        while rest.len() >= 8 {
            let k = Self::round(0, Self::read_u64(rest, 0));
            h = (h ^ k)
                .rotate_left(27)
                .wrapping_mul(PRIME64_1)
                .wrapping_add(PRIME64_4);
            rest = &rest[8..];
        }
        if rest.len() >= 4 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&rest[..4]);
            let k = u64::from(u32::from_le_bytes(b));
            h = (h ^ k.wrapping_mul(PRIME64_1))
                .rotate_left(23)
                .wrapping_mul(PRIME64_2)
                .wrapping_add(PRIME64_3);
            rest = &rest[4..];
        }
        for &byte in rest {
            h = (h ^ u64::from(byte).wrapping_mul(PRIME64_5))
                .rotate_left(11)
                .wrapping_mul(PRIME64_1);
        }

        h ^= h >> 33;
        h = h.wrapping_mul(PRIME64_2);
        h ^= h >> 29;
        h = h.wrapping_mul(PRIME64_3);
        h ^= h >> 32;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Published xxHash64 reference vectors.
    #[test]
    fn reference_vectors() {
        assert_eq!(XxHash64::hash(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(XxHash64::hash(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            XxHash64::hash(b"Nobody inspects the spammish repetition", 0),
            0xFBCE_A83C_8A37_8BF1,
        );
    }

    #[test]
    fn seed_changes_digest() {
        assert_ne!(XxHash64::hash(b"rowsort", 0), XxHash64::hash(b"rowsort", 1));
    }

    /// Streaming over arbitrary chunk boundaries equals the one-shot hash,
    /// for lengths spanning all tail cases (0..100 bytes) and beyond.
    #[test]
    fn streaming_matches_oneshot() {
        let mut rng = Rng::seed_from_u64(0xCAFE);
        for len in (0..100).chain([256, 1000, 4096]) {
            let data = rng.bytes(len);
            let expect = XxHash64::hash(&data, 7);
            let mut h = XxHash64::with_seed(7);
            let mut rest: &[u8] = &data;
            while !rest.is_empty() {
                let take = (rng.below(40) as usize + 1).min(rest.len());
                h.write(&rest[..take]);
                rest = &rest[take..];
            }
            assert_eq!(h.finish(), expect, "len {len}");
            assert_eq!(h.bytes_written(), len as u64);
        }
    }

    /// Any single-bit flip changes the digest — the property the spill
    /// corruption detector relies on.
    #[test]
    fn single_bit_flips_change_digest() {
        let mut rng = Rng::seed_from_u64(0xF00D);
        let data = rng.bytes(200);
        let clean = XxHash64::hash(&data, 0);
        for _ in 0..64 {
            let mut corrupt = data.clone();
            let byte = rng.below(corrupt.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            corrupt[byte] ^= 1 << bit;
            assert_ne!(XxHash64::hash(&corrupt, 0), clean, "byte {byte} bit {bit}");
        }
    }

    #[test]
    fn finish_is_idempotent() {
        let mut h = XxHash64::with_seed(3);
        h.write(b"hello world, this is more than thirty-two bytes of input");
        assert_eq!(h.finish(), h.finish());
    }
}

//! A lightweight Rust AST — exactly the shapes the deep rules reason about.
//!
//! This is deliberately not a faithful Rust grammar: it models *items*
//! (functions, impls, traits, modules), *blocks*, and the expression forms
//! the rule engine needs — calls, method calls, macro invocations, slice
//! indexing, `unsafe` blocks, loops, and `let _ =` discards. Everything
//! else is folded into [`Expr::Other`] with its sub-expressions preserved,
//! so tree walks still see every call no matter what syntax surrounds it.
//!
//! Positions are 1-based line/column of the anchoring token, and blocks
//! carry the token-index span of their braces in the file's full token
//! stream (comments included), so rules can relate AST nodes back to
//! nearby comments (R013 reads SAFETY text this way).

/// A parsed source file: its top-level items.
#[derive(Debug, Default)]
pub struct File {
    /// Items in source order.
    pub items: Vec<Item>,
}

/// One item. Containers (impl/mod/trait) carry their nested items so
/// walks can qualify method names and inherit `#[cfg(test)]` status.
#[derive(Debug)]
pub enum Item {
    /// A function (free, method, or trait default/required method).
    Fn(FnItem),
    /// An `impl`, `mod`, or `trait` with nested items.
    Container(Container),
    /// Anything else (struct, enum, use, static, …) — no rule reads these.
    Other,
}

/// What kind of container an item-nesting construct is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerKind {
    /// `impl Type { … }` or `impl Trait for Type { … }`.
    Impl,
    /// `mod name { … }`.
    Mod,
    /// `trait Name { … }`.
    Trait,
}

/// An item-nesting construct.
#[derive(Debug)]
pub struct Container {
    /// Impl/mod/trait discriminator.
    pub kind: ContainerKind,
    /// Type name for impls, module name for mods, trait name for traits.
    pub name: String,
    /// `true` under `#[cfg(test)]` (directly or inherited).
    pub is_test: bool,
    /// Nested items.
    pub items: Vec<Item>,
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// Bare name (`sort`).
    pub name: String,
    /// Qualified name: `Type::sort` inside an impl/trait, else the bare
    /// name. Modules do not qualify (call sites rarely spell them out).
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// `#[test]`, or nested under `#[cfg(test)]`.
    pub is_test: bool,
    /// Return type as normalized text (`Result<(),SpillError>`), empty for
    /// unit. Whitespace-free so callers match with `contains`.
    pub ret: String,
    /// Parameter names in declaration order (`self` included when
    /// present). Patterns that bind no single name (`(a, b): (u32, u32)`)
    /// contribute an empty string placeholder so positions stay aligned
    /// for caller-argument mapping.
    pub params: Vec<String>,
    /// Body, `None` for trait-required methods and extern decls.
    pub body: Option<Block>,
}

/// A `{ … }` block.
#[derive(Debug)]
pub struct Block {
    /// Statements in source order (the tail expression is a statement
    /// with `semi == false`).
    pub stmts: Vec<Stmt>,
    /// 1-based line of the opening brace.
    pub line: u32,
    /// Index of the `{` token in the file's full token stream.
    pub tok_open: usize,
    /// Index of the matching `}` token (== `tok_open` if unterminated).
    pub tok_close: usize,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let PAT = init;` — `underscore` is true for exactly `let _ = …`
    /// (not `let _x`, not tuple patterns).
    Let {
        /// The pattern is the wildcard `_`.
        underscore: bool,
        /// The bound name when the pattern is a single identifier
        /// (`let x = …`, `let mut x = …`, `let ref x = …`); `None` for
        /// `_`, tuple/struct patterns, and anything else destructuring.
        name: Option<String>,
        /// Initializer, if any.
        init: Option<Expr>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// An expression statement; `semi` distinguishes `f();` (value
    /// discarded) from a tail expression `f()` (value used/returned).
    Expr {
        /// The expression.
        expr: Expr,
        /// Terminated by `;`.
        semi: bool,
    },
    /// A nested item (functions declared inside function bodies become
    /// call-graph nodes through this).
    Item(Box<Item>),
}

/// One expression. Variants carry positions only where rules anchor
/// findings on them.
#[derive(Debug)]
pub enum Expr {
    /// `path::to::f(args)` — callee is the `::`-joined path with generic
    /// arguments stripped.
    Call {
        /// Normalized callee path.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line of the callee's last segment.
        line: u32,
        /// 1-based column of the callee's last segment.
        col: u32,
    },
    /// `recv.name(args)`.
    Method {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line of the method name.
        line: u32,
        /// 1-based column of the method name.
        col: u32,
    },
    /// `name!(…)` — arguments are parsed best-effort so calls inside
    /// macro invocations still appear in the tree.
    Macro {
        /// Macro name (last path segment, no `!`).
        name: String,
        /// Recovered argument expressions.
        args: Vec<Expr>,
        /// 1-based line of the macro name.
        line: u32,
        /// 1-based column of the macro name.
        col: u32,
    },
    /// `base.field` (also tuple fields: `pair.0`, and `.await`).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
    },
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// The index is a bare integer literal (`v[0]`).
        literal: bool,
        /// 1-based line of the `[`.
        line: u32,
        /// 1-based column of the `[`.
        col: u32,
    },
    /// A path used as a value (`x`, `Counter::Spills`, `self`).
    Path {
        /// Normalized `::`-joined path.
        path: String,
    },
    /// Any literal (number, string, char, bool is a Path).
    Lit {
        /// The literal is a bare integer (drives `Index::literal`).
        int: bool,
    },
    /// A prefix operator application; only `*` (deref) is distinguished.
    Unary {
        /// `'*'`, `'&'`, `'!'`, or `'-'`.
        op: char,
        /// Operand.
        expr: Box<Expr>,
    },
    /// An operator chain `a + b < c` — operands in source order with the
    /// operator spelled between `args[i]` and `args[i+1]` at `ops[i]`.
    /// Operators are recorded as their full compound spelling (`"<="`,
    /// `"+="`, `".."`); parse recovery can leave `ops` shorter than
    /// `args.len() - 1`, so index it defensively.
    Bin {
        /// Operator spellings, in source order.
        ops: Vec<String>,
        /// Operands, in source order.
        args: Vec<Expr>,
    },
    /// A plain `{ … }` block expression.
    Block(Block),
    /// An `unsafe { … }` block.
    Unsafe {
        /// The block.
        block: Block,
        /// 1-based line of the `unsafe` keyword.
        line: u32,
        /// 1-based column of the `unsafe` keyword.
        col: u32,
    },
    /// `loop`/`while`/`for` — the rules only need the body.
    Loop {
        /// Pre-body expressions (condition / iterator), if any.
        head: Vec<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `if cond { … } else …` (also `if let`).
    If {
        /// Condition (the matched expression for `if let`).
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// `else` branch: a block or a chained `if`.
        els: Option<Box<Expr>>,
    },
    /// `match scrutinee { arms }` — children are the scrutinee, then each
    /// arm's guard/body expressions.
    Match(Vec<Expr>),
    /// `|args| body` / `move || body`.
    Closure {
        /// Parameter names in declaration order; patterns that bind no
        /// single name contribute an empty-string placeholder.
        params: Vec<String>,
        /// Closure body.
        body: Box<Expr>,
    },
    /// `return`/`break`/`continue`, with the carried value if any. These
    /// are control-flow edges, not values — the CFG lowering depends on
    /// telling them apart from ordinary expressions.
    Jump {
        /// Which jump.
        kind: JumpKind,
        /// The returned/broken value (`return x`, `break x`).
        value: Option<Box<Expr>>,
        /// 1-based line of the keyword.
        line: u32,
    },
    /// Everything else, sub-expressions preserved (tuples, arrays,
    /// ranges, struct literals, `yield` operands, …).
    Other(Vec<Expr>),
}

/// Discriminates [`Expr::Jump`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JumpKind {
    /// `return`.
    Return,
    /// `break` (labels are not modeled; `break` targets the innermost loop).
    Break,
    /// `continue`.
    Continue,
}

impl Expr {
    /// Visit `self` and every sub-expression, pre-order. Blocks nested in
    /// expressions are traversed; nested *items* are not (they are their
    /// own analysis roots).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Call { args, .. } | Expr::Macro { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Method { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Field { base, .. } => base.walk(f),
            Expr::Index { base, index, .. } => {
                base.walk(f);
                index.walk(f);
            }
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Bin { args: items, .. } | Expr::Match(items) | Expr::Other(items) => {
                for e in items {
                    e.walk(f);
                }
            }
            Expr::Jump { value, .. } => {
                if let Some(v) = value {
                    v.walk(f);
                }
            }
            Expr::Block(b) | Expr::Unsafe { block: b, .. } => b.walk_exprs(f),
            Expr::Loop { head, body } => {
                for e in head {
                    e.walk(f);
                }
                body.walk_exprs(f);
            }
            Expr::If { cond, then, els } => {
                cond.walk(f);
                then.walk_exprs(f);
                if let Some(e) = els {
                    e.walk(f);
                }
            }
            Expr::Closure { body, .. } => body.walk(f),
            Expr::Path { .. } | Expr::Lit { .. } => {}
        }
    }

    /// The identifier a human would name this place by: the last path
    /// segment, the field name, or the root of a call chain. `None` for
    /// literals and structural expressions.
    pub fn root_ident(&self) -> Option<&str> {
        match self {
            Expr::Path { path } => Some(path.rsplit("::").next().unwrap_or(path)),
            Expr::Field { name, .. } => Some(name),
            Expr::Method { recv, .. } => recv.root_ident(),
            Expr::Index { base, .. } => base.root_ident(),
            Expr::Unary { expr, .. } => expr.root_ident(),
            Expr::Call { callee, .. } => Some(callee.rsplit("::").next().unwrap_or(callee)),
            _ => None,
        }
    }

    /// Collect every leaf identifier (path last-segments and field names)
    /// in this expression, excluding `self` — the names a SAFETY comment
    /// is expected to argue about.
    pub fn leaf_idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        self.walk(&mut |e| match e {
            Expr::Path { path } => {
                let last = path.rsplit("::").next().unwrap_or(path);
                if last != "self" && !last.is_empty() {
                    out.push(last);
                }
            }
            Expr::Field { name, .. } => {
                if !name.chars().all(|c| c.is_ascii_digit()) {
                    out.push(name);
                }
            }
            _ => {}
        });
    }
}

impl Block {
    /// Visit every expression in this block's statements, pre-order.
    pub fn walk_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        for stmt in &self.stmts {
            match stmt {
                Stmt::Let { init: Some(e), .. } => e.walk(f),
                Stmt::Let { init: None, .. } => {}
                Stmt::Expr { expr, .. } => expr.walk(f),
                Stmt::Item(_) => {}
            }
        }
    }
}

/// Flatten a file into `(qualified-fn, is_test)` pairs with their items,
/// recursing through containers. The callback receives every function in
/// the file, with `is_test` true if the function or any enclosing
/// container is test-gated.
pub fn for_each_fn<'a>(file: &'a File, f: &mut impl FnMut(&'a FnItem, bool)) {
    fn rec<'a>(items: &'a [Item], in_test: bool, f: &mut impl FnMut(&'a FnItem, bool)) {
        for item in items {
            match item {
                Item::Fn(func) => {
                    f(func, in_test || func.is_test);
                    // Nested fns declared inside this body.
                    if let Some(body) = &func.body {
                        for stmt in &body.stmts {
                            if let Stmt::Item(nested) = stmt {
                                rec(std::slice::from_ref(nested), in_test || func.is_test, f);
                            }
                        }
                    }
                }
                Item::Container(c) => rec(&c.items, in_test || c.is_test, f),
                Item::Other => {}
            }
        }
    }
    rec(&file.items, false, f);
}

//! Merge Path (Green, Odeh & Birk 2014): diagonal partitioning that lets a
//! 2-way merge be split into independent, equal-sized pieces for parallel
//! execution — the technique DuckDB uses to keep its cascaded merge busy on
//! all threads once few runs remain (paper §VII, Figure 11).

/// Find the Merge-Path split of diagonal `diag` for merging two sorted
/// sequences of lengths `a_len` and `b_len`.
///
/// `b_less_a(j, i)` must return whether `b[j] < a[i]`. The returned pair
/// `(i, j)` satisfies `i + j == diag`, and the first `diag` elements of the
/// stable (A-priority) merge are exactly the merge of `a[..i]` and
/// `b[..j]`.
///
/// The search is a binary search over the diagonal: O(log(min(a_len,
/// b_len, diag))) comparisons.
pub fn merge_path_partition_by<F>(
    a_len: usize,
    b_len: usize,
    diag: usize,
    mut b_less_a: F,
) -> (usize, usize)
where
    F: FnMut(usize, usize) -> bool,
{
    assert!(diag <= a_len + b_len, "diagonal beyond total length");
    let mut lo = diag.saturating_sub(b_len);
    let mut hi = diag.min(a_len);
    while lo < hi {
        let i = lo + (hi - lo) / 2;
        let j = diag - i;
        // In-range: i < hi <= a_len, and 1 <= j <= b_len by construction.
        if !b_less_a(j - 1, i) {
            // a[i] <= b[j-1]: the crossing lies further right.
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    (lo, diag - lo)
}

/// Convenience wrapper over typed slices with an `is_less` comparator.
pub fn merge_path_partition<T, F>(a: &[T], b: &[T], diag: usize, is_less: &mut F) -> (usize, usize)
where
    F: FnMut(&T, &T) -> bool,
{
    merge_path_partition_by(a.len(), b.len(), diag, |j, i| is_less(&b[j], &a[i]))
}

/// Split a 2-way merge of `a` and `b` into `parts` contiguous output
/// ranges, returning for each part the `(a_range, b_range)` to merge.
/// Concatenating the per-part merges yields the full stable merge.
pub fn merge_path_splits<T, F>(
    a: &[T],
    b: &[T],
    parts: usize,
    is_less: &mut F,
) -> Vec<(std::ops::Range<usize>, std::ops::Range<usize>)>
where
    F: FnMut(&T, &T) -> bool,
{
    assert!(parts > 0);
    let total = a.len() + b.len();
    let mut bounds = Vec::with_capacity(parts + 1);
    for p in 0..=parts {
        let diag = total * p / parts;
        bounds.push(merge_path_partition(a, b, diag, is_less));
    }
    bounds
        .iter()
        .zip(bounds.iter().skip(1))
        .map(|(lo, hi)| (lo.0..hi.0, lo.1..hi.1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mergesort::merge_into;

    fn reference_merge(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = vec![0u32; a.len() + b.len()];
        merge_into(a, b, &mut out, &mut |x, y| x < y);
        out
    }

    #[test]
    fn partition_prefix_property() {
        let a: Vec<u32> = (0..50).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..70).map(|i| i * 3 + 1).collect();
        let full = reference_merge(&a, &b);
        for diag in 0..=a.len() + b.len() {
            let (i, j) = merge_path_partition(&a, &b, diag, &mut |x, y| x < y);
            assert_eq!(i + j, diag);
            let prefix = reference_merge(&a[..i], &b[..j]);
            assert_eq!(prefix, full[..diag], "diag={diag}");
        }
    }

    #[test]
    fn partition_with_duplicates_is_stable() {
        let a = vec![1u32, 2, 2, 2, 3];
        let b = vec![2u32, 2, 4];
        let full = reference_merge(&a, &b);
        for diag in 0..=8 {
            let (i, j) = merge_path_partition(&a, &b, diag, &mut |x, y| x < y);
            let prefix = reference_merge(&a[..i], &b[..j]);
            assert_eq!(prefix, full[..diag], "diag={diag}");
        }
    }

    #[test]
    fn extreme_diagonals() {
        let a = vec![10u32, 20];
        let b = vec![1u32, 2, 3];
        assert_eq!(merge_path_partition(&a, &b, 0, &mut |x, y| x < y), (0, 0));
        assert_eq!(merge_path_partition(&a, &b, 5, &mut |x, y| x < y), (2, 3));
        // First three outputs are all from b.
        assert_eq!(merge_path_partition(&a, &b, 3, &mut |x, y| x < y), (0, 3));
    }

    #[test]
    fn empty_sides() {
        let a: Vec<u32> = vec![];
        let b = vec![1u32, 2];
        assert_eq!(merge_path_partition(&a, &b, 1, &mut |x, y| x < y), (0, 1));
        let a = vec![1u32, 2];
        let b: Vec<u32> = vec![];
        assert_eq!(merge_path_partition(&a, &b, 1, &mut |x, y| x < y), (1, 0));
    }

    #[test]
    fn splits_cover_whole_merge() {
        let a: Vec<u32> = (0..997).map(|i| i * 7 % 1000).collect::<Vec<_>>();
        let mut a = a;
        a.sort_unstable();
        let mut b: Vec<u32> = (0..1205).map(|i| i * 13 % 999).collect();
        b.sort_unstable();
        let full = reference_merge(&a, &b);
        for parts in [1, 2, 3, 8] {
            let splits = merge_path_splits(&a, &b, parts, &mut |x, y| x < y);
            assert_eq!(splits.len(), parts);
            let mut rebuilt = Vec::new();
            for (ra, rb) in splits {
                rebuilt.extend(reference_merge(&a[ra], &b[rb]));
            }
            assert_eq!(rebuilt, full, "parts={parts}");
        }
    }
}

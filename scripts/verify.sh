#!/usr/bin/env bash
# Tier-1 verification, hermetic: builds and tests the whole workspace with
# the network disabled, denies compiler warnings, and rejects any
# dependency that is not a path dependency inside this repository.
#
# Usage: scripts/verify.sh   (from anywhere; it cds to the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# --- 1. Dependency closure: path-only -------------------------------------
# Walk every Cargo.toml; inside [dependencies] / [dev-dependencies] /
# [build-dependencies] / [workspace.dependencies] sections, each entry must
# be a path or workspace reference. Registry versions ("1.0"), git deps,
# and version-keyed tables are all rejected.
echo "== checking Cargo.toml files for non-path dependencies =="
while IFS= read -r manifest; do
    bad=$(awk '
        /^\[/ {
            # Any *dependencies* section, including dotted tables like
            # [dependencies.foo] and [target.x.dependencies].
            in_deps = ($0 ~ /dependencies/)
            next
        }
        in_deps && NF && $0 !~ /^[[:space:]]*#/ {
            line = $0
            if (line !~ /path[[:space:]]*=/ && line !~ /workspace[[:space:]]*=[[:space:]]*true/) {
                printf "  %s\n", line
            }
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "non-path dependency in $manifest:"
        echo "$bad"
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')
if [ "$fail" -ne 0 ]; then
    echo "FAIL: registry/git dependencies are not allowed"
    exit 1
fi
echo "ok: all dependencies are path/workspace references"

# --- 2. Build + test, offline, warnings denied ----------------------------
export RUSTFLAGS="${RUSTFLAGS:+$RUSTFLAGS }-D warnings"

echo "== cargo build --release --offline =="
cargo build --release --workspace --offline

echo "== cargo test -q --offline =="
cargo test -q --workspace --offline

echo "== cargo build --benches --offline =="
cargo build --benches --workspace --offline

echo "verify: OK"

//! NSM (N-ary Storage Model) row format.
//!
//! Sorting is inherently a row-wise operation: both of its dominant costs —
//! comparing tuples and moving tuples — touch whole rows. The paper shows
//! that even engines with columnar (DSM) execution win by converting the
//! sort operator's input to a row format, sorting, and converting back
//! (its Figure 1). This crate provides that row format:
//!
//! * [`RowLayout`] — computes fixed-width, 8-byte-aligned row shapes from a
//!   column schema (variable-length values live out-of-row in a string heap),
//! * [`RowBlock`] — a buffer of such rows plus its heap,
//! * [`scatter`]/[`gather`] — the DSM→NSM and NSM→DSM conversions, performed
//!   one vector at a time to amortize interpretation overhead.

pub mod block;
pub mod convert;
pub mod layout;

pub use block::RowBlock;
pub use convert::{gather, scatter};
pub use layout::{RowAlignment, RowLayout};

//! Drive the CPU simulation directly: reproduce the paper's Table II/III
//! counter comparison at a chosen size and watch *why* rows win.
//!
//! Run with `cargo run --release --example cpu_sim [log2_rows]`.

use rowsort::datagen::{key_columns, KeyDistribution};
use rowsort::simcpu::trace::{ColumnarTrace, RowTrace};
use rowsort::simcpu::SimCpu;

fn main() {
    let pow: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(15);
    let n = 1usize << pow;
    let ncols = 4;
    println!(
        "simulating introsort over 2^{pow} rows x {ncols} u32 key columns, Correlated0.5\n\
         (L1-D: 32 KiB, 64 B lines, 8-way LRU; gshare branch predictor)\n"
    );
    let cols = key_columns(KeyDistribution::Correlated(0.5), n, ncols, 7);

    let report = |label: &str, counters: rowsort::simcpu::Counters| {
        println!(
            "{label:<28} l1 accesses {:>12}  l1 misses {:>10}  branches {:>11}  br misses {:>9}",
            counters.l1_accesses, counters.l1_misses, counters.branches, counters.branch_misses
        );
    };

    // Columnar: the comparator does random access into every column.
    let mut cpu = SimCpu::new();
    let mut t = ColumnarTrace::new(&mut cpu, cols.clone());
    t.sort_tuple_at_a_time(&mut cpu);
    assert!(t.is_sorted());
    let col_tuple = cpu.counters();
    report("columnar tuple-at-a-time", col_tuple);

    let mut cpu = SimCpu::new();
    let mut t = ColumnarTrace::new(&mut cpu, cols.clone());
    t.sort_subsort(&mut cpu);
    assert!(t.is_sorted());
    report("columnar subsort", cpu.counters());

    // Rows: values of one tuple share a cache line; rows move physically.
    let mut cpu = SimCpu::new();
    let mut t = RowTrace::new(&mut cpu, &cols);
    t.sort_tuple_at_a_time(&mut cpu);
    assert!(t.is_sorted());
    let row_tuple = cpu.counters();
    report("row tuple-at-a-time", row_tuple);

    let mut cpu = SimCpu::new();
    let mut t = RowTrace::new(&mut cpu, &cols);
    t.sort_subsort(&mut cpu);
    assert!(t.is_sorted());
    report("row subsort", cpu.counters());

    println!(
        "\nthe paper's Table II vs III claim, reproduced: the row format takes {:.1}x \
         fewer L1 misses than columnar for the same comparisons ({} vs {}).",
        col_tuple.l1_misses as f64 / row_tuple.l1_misses.max(1) as f64,
        row_tuple.l1_misses,
        col_tuple.l1_misses,
    );

    // With a streaming prefetcher modeled, sequential row access gets even
    // cheaper while the columnar comparator's random access stays cold —
    // the gap widens.
    use rowsort::simcpu::CacheConfig;
    let mut cpu = rowsort::simcpu::SimCpu::with_cache(CacheConfig::L1D_PREFETCH);
    let mut t = ColumnarTrace::new(&mut cpu, cols.clone());
    t.sort_tuple_at_a_time(&mut cpu);
    let col_pf = cpu.counters();
    let mut cpu = rowsort::simcpu::SimCpu::with_cache(CacheConfig::L1D_PREFETCH);
    let mut t = RowTrace::new(&mut cpu, &cols);
    t.sort_tuple_at_a_time(&mut cpu);
    let row_pf = cpu.counters();
    println!(
        "with a next-line prefetcher: {:.1}x ({} vs {}) — hardware prefetching \
         amplifies the row format's sequential-access advantage.",
        col_pf.l1_misses as f64 / row_pf.l1_misses.max(1) as f64,
        row_pf.l1_misses,
        col_pf.l1_misses,
    );
}

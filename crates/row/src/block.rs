//! Buffers of fixed-width rows.

use crate::layout::RowLayout;
use rowsort_vector::{DataChunk, LogicalType, Value, Vector, VectorData};
use std::sync::Arc;

/// Read a fixed-width array out of a byte slice. Infallible by type: the
/// width is a const parameter, so there is no fallible `try_into` — bounds
/// are enforced by the slice operation itself.
#[inline]
fn read_array<const W: usize>(bytes: &[u8], at: usize) -> [u8; W] {
    let mut buf = [0u8; W];
    buf.copy_from_slice(&bytes[at..at + W]);
    buf
}

/// A buffer of fixed-width NSM rows plus the string heap they reference.
///
/// The row area is one contiguous `Vec<u8>` of `len * width` bytes, so a
/// sorting algorithm can move whole rows with `memcpy`/`memswap` and scans
/// touch memory sequentially — the cache-locality property the paper
/// measures. Variable-length values live in `heap`; rows store
/// `(offset, len)` slots, so physically reordering rows never touches the
/// heap.
#[derive(Debug, Clone)]
pub struct RowBlock {
    layout: Arc<RowLayout>,
    data: Vec<u8>,
    heap: Vec<u8>,
    len: usize,
}

impl RowBlock {
    /// An empty block with the given layout.
    pub fn new(layout: Arc<RowLayout>) -> RowBlock {
        RowBlock {
            layout,
            data: Vec::new(),
            heap: Vec::new(),
            len: 0,
        }
    }

    /// An empty block with room for `rows` rows.
    pub fn with_capacity(layout: Arc<RowLayout>, rows: usize) -> RowBlock {
        let width = layout.width();
        RowBlock {
            layout,
            data: Vec::with_capacity(rows * width),
            heap: Vec::new(),
            len: 0,
        }
    }

    /// Assemble a block from an already-built row area and heap (e.g. rows
    /// streamed back from spill files). `data.len()` must be a multiple of
    /// the layout width, and heap references inside `data` must be valid
    /// offsets into `heap`.
    pub fn from_raw_parts(layout: Arc<RowLayout>, data: Vec<u8>, heap: Vec<u8>) -> RowBlock {
        let width = layout.width();
        assert!(
            width == 0 && data.is_empty() || width != 0 && data.len().is_multiple_of(width),
            "row area length {} not a multiple of width {width}",
            data.len()
        );
        let len = data.len().checked_div(width).unwrap_or(0);
        RowBlock {
            layout,
            data,
            heap,
            len,
        }
    }

    /// Remove all rows, keeping the row-area and heap capacity (buffer
    /// reuse across sorts).
    pub fn clear(&mut self) {
        self.data.clear();
        self.heap.clear();
        self.len = 0;
    }

    /// Disassemble the block into its row area and heap, for returning the
    /// buffers to a pool. Inverse of [`RowBlock::from_raw_parts`].
    pub fn into_raw_parts(self) -> (Vec<u8>, Vec<u8>) {
        (self.data, self.heap)
    }

    /// The row shape.
    pub fn layout(&self) -> &Arc<RowLayout> {
        &self.layout
    }

    /// Bytes per row.
    pub fn width(&self) -> usize {
        self.layout.width()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow row `i`'s bytes.
    pub fn row(&self, i: usize) -> &[u8] {
        let w = self.width();
        &self.data[i * w..(i + 1) * w]
    }

    /// The whole row area (`len * width` bytes).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable row area, for in-place sorting.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// The string heap.
    pub fn heap(&self) -> &[u8] {
        &self.heap
    }

    /// Append every row of `chunk` (DSM → NSM scatter).
    ///
    /// Conversion runs one vector (column) at a time across the appended
    /// region, so per-column type dispatch happens once per vector rather
    /// than once per value — the amortization the paper credits for making
    /// the conversion cheap.
    ///
    /// # Panics
    /// If the chunk schema does not match the layout.
    pub fn append_chunk(&mut self, chunk: &DataChunk) {
        self.append_chunk_range(chunk, 0, chunk.len());
    }

    /// Append rows `lo..hi` of `chunk` (DSM → NSM scatter), without the
    /// intermediate copy a sliced chunk would cost — this is how the sort
    /// pipeline materializes each morsel.
    ///
    /// # Panics
    /// If the chunk schema does not match the layout, or `lo..hi` is not a
    /// valid row range of `chunk`.
    pub fn append_chunk_range(&mut self, chunk: &DataChunk, lo: usize, hi: usize) {
        // Element-wise so the schema check allocates nothing: this runs
        // once per morsel inside the steady-state (allocation-free) path.
        assert!(
            chunk.column_count() == self.layout.types().len()
                && chunk
                    .columns()
                    .iter()
                    .zip(self.layout.types())
                    .all(|(col, &ty)| col.logical_type() == ty),
            "chunk schema must match row layout"
        );
        assert!(lo <= hi && hi <= chunk.len(), "row range out of bounds");
        let width = self.width();
        let base = self.len;
        let n = hi - lo;
        self.data.resize((base + n) * width, 0);
        for col in 0..chunk.column_count() {
            self.scatter_column(chunk.column(col), col, base, lo, hi);
        }
        self.len += n;
    }

    fn scatter_column(&mut self, vec: &Vector, col: usize, base: usize, lo: usize, hi: usize) {
        let width = self.width();
        let slot = self.layout.offset(col);
        let null_off = self.layout.null_offset(col);
        let n = hi - lo;

        // Null flags first (1 = NULL). NULL slots keep zero bytes.
        for i in 0..n {
            let row_start = (base + i) * width;
            self.data[row_start + null_off] = !vec.is_valid(lo + i) as u8;
        }

        macro_rules! scatter_fixed {
            ($values:expr) => {{
                for (i, v) in $values[lo..hi].iter().enumerate() {
                    if !vec.is_valid(lo + i) {
                        continue;
                    }
                    let at = (base + i) * width + slot;
                    let bytes = v.to_le_bytes();
                    self.data[at..at + bytes.len()].copy_from_slice(&bytes);
                }
            }};
        }

        match vec.data() {
            VectorData::Boolean(values) => {
                for (i, v) in values[lo..hi].iter().enumerate() {
                    if vec.is_valid(lo + i) {
                        self.data[(base + i) * width + slot] = *v as u8;
                    }
                }
            }
            VectorData::Int8(values) => scatter_fixed!(values),
            VectorData::Int16(values) => scatter_fixed!(values),
            VectorData::Int32(values) => scatter_fixed!(values),
            VectorData::Int64(values) => scatter_fixed!(values),
            VectorData::UInt8(values) => scatter_fixed!(values),
            VectorData::UInt16(values) => scatter_fixed!(values),
            VectorData::UInt32(values) => scatter_fixed!(values),
            VectorData::UInt64(values) => scatter_fixed!(values),
            VectorData::Float32(values) => scatter_fixed!(values),
            VectorData::Float64(values) => scatter_fixed!(values),
            VectorData::Date(values) => scatter_fixed!(values),
            VectorData::Timestamp(values) => scatter_fixed!(values),
            VectorData::Varchar(strings) => {
                for i in 0..n {
                    if !vec.is_valid(lo + i) {
                        continue;
                    }
                    let bytes = strings.get_bytes(lo + i);
                    // lint:allow(R002): a heap or string beyond 4 GiB cannot
                    // be represented in the u32 slot format at all; aborting
                    // is the only sound response to that capacity overflow.
                    let heap_off = u32::try_from(self.heap.len()).expect("heap exceeds 4 GiB");
                    // lint:allow(R002): same 4 GiB capacity bound as above.
                    let byte_len = u32::try_from(bytes.len()).expect("string exceeds 4 GiB");
                    self.heap.extend_from_slice(bytes);
                    let at = (base + i) * width + slot;
                    self.data[at..at + 4].copy_from_slice(&heap_off.to_le_bytes());
                    self.data[at + 4..at + 8].copy_from_slice(&byte_len.to_le_bytes());
                }
            }
        }
    }

    /// Whether column `col` of row `row` is NULL.
    pub fn is_null(&self, row: usize, col: usize) -> bool {
        self.data[row * self.width() + self.layout.null_offset(col)] != 0
    }

    /// The string bytes referenced by a VARCHAR slot.
    pub fn string_bytes(&self, row: usize, col: usize) -> &[u8] {
        let at = row * self.width() + self.layout.offset(col);
        let off = u32::from_le_bytes(read_array(&self.data, at)) as usize;
        let len = u32::from_le_bytes(read_array(&self.data, at + 4)) as usize;
        &self.heap[off..off + len]
    }

    /// Read one cell as a boxed [`Value`] (NULL-aware).
    pub fn value(&self, row: usize, col: usize) -> Value {
        if self.is_null(row, col) {
            return Value::Null;
        }
        let at = row * self.width() + self.layout.offset(col);
        let d = &self.data;
        macro_rules! read {
            ($t:ty) => {
                <$t>::from_le_bytes(read_array(d, at))
            };
        }
        match self.layout.types()[col] {
            LogicalType::Boolean => Value::Boolean(d[at] != 0),
            LogicalType::Int8 => Value::Int8(d[at] as i8),
            LogicalType::Int16 => Value::Int16(read!(i16)),
            LogicalType::Int32 => Value::Int32(read!(i32)),
            LogicalType::Int64 => Value::Int64(read!(i64)),
            LogicalType::UInt8 => Value::UInt8(d[at]),
            LogicalType::UInt16 => Value::UInt16(read!(u16)),
            LogicalType::UInt32 => Value::UInt32(read!(u32)),
            LogicalType::UInt64 => Value::UInt64(read!(u64)),
            LogicalType::Float32 => Value::Float32(read!(f32)),
            LogicalType::Float64 => Value::Float64(read!(f64)),
            LogicalType::Date => Value::Date(read!(i32)),
            LogicalType::Timestamp => Value::Timestamp(read!(i64)),
            LogicalType::Varchar => Value::Varchar(
                // Lossy on purpose: the heap is valid UTF-8 when built via
                // append_chunk; from_raw_parts may carry arbitrary bytes,
                // and a read accessor should not abort on them.
                String::from_utf8_lossy(self.string_bytes(row, col)).into_owned(),
            ),
        }
    }

    /// Convert the whole block back to a chunk (NSM → DSM gather), in row
    /// order.
    pub fn to_chunk(&self) -> DataChunk {
        let order: Vec<u32> = (0..self.len as u32).collect();
        self.gather(&order)
    }

    /// Gather the given rows, in the given order, into a chunk.
    ///
    /// This is the NSM → DSM conversion at the end of the sorting pipeline
    /// (Figure 1's right-hand side); it runs one column at a time on the
    /// typed fast path.
    pub fn gather(&self, order: &[u32]) -> DataChunk {
        let columns: Vec<Vector> = (0..self.layout.column_count())
            .map(|c| self.gather_column(c, order))
            .collect();
        // lint:allow(R002): gather_column builds one vector per column,
        // each exactly `order.len()` long, so from_columns cannot fail.
        DataChunk::from_columns(columns).expect("equal lengths by construction")
    }

    fn gather_column(&self, col: usize, order: &[u32]) -> Vector {
        let width = self.width();
        let slot = self.layout.offset(col);
        let null_off = self.layout.null_offset(col);
        let d = &self.data;

        macro_rules! gather_fixed {
            ($t:ty, $ctor:expr) => {{
                let mut vals: Vec<$t> = Vec::with_capacity(order.len());
                for &r in order {
                    let at = r as usize * width + slot;
                    vals.push(<$t>::from_le_bytes(read_array(d, at)));
                }
                $ctor(vals)
            }};
        }

        let mut vec = match self.layout.types()[col] {
            LogicalType::Boolean => {
                let mut vals = Vec::with_capacity(order.len());
                for &r in order {
                    vals.push(d[r as usize * width + slot] != 0);
                }
                Vector::from_bools(vals)
            }
            LogicalType::Int8 => {
                let mut vals = Vec::with_capacity(order.len());
                for &r in order {
                    vals.push(d[r as usize * width + slot] as i8);
                }
                Vector::from_i8s(vals)
            }
            LogicalType::UInt8 => {
                let mut vals = Vec::with_capacity(order.len());
                for &r in order {
                    vals.push(d[r as usize * width + slot]);
                }
                Vector::from_u8s(vals)
            }
            LogicalType::Int16 => gather_fixed!(i16, Vector::from_i16s),
            LogicalType::UInt16 => gather_fixed!(u16, Vector::from_u16s),
            LogicalType::Int32 => gather_fixed!(i32, Vector::from_i32s),
            LogicalType::UInt32 => gather_fixed!(u32, Vector::from_u32s),
            LogicalType::Date => gather_fixed!(i32, Vector::from_dates),
            LogicalType::Int64 => gather_fixed!(i64, Vector::from_i64s),
            LogicalType::UInt64 => gather_fixed!(u64, Vector::from_u64s),
            LogicalType::Timestamp => gather_fixed!(i64, Vector::from_timestamps),
            LogicalType::Float32 => gather_fixed!(f32, Vector::from_f32s),
            LogicalType::Float64 => gather_fixed!(f64, Vector::from_f64s),
            LogicalType::Varchar => {
                let strings = order.iter().map(|&r| {
                    let row = r as usize;
                    if self.is_null(row, col) {
                        std::borrow::Cow::Borrowed("")
                    } else {
                        // Lossy on purpose — see `value` on the same choice.
                        String::from_utf8_lossy(self.string_bytes(row, col))
                    }
                });
                Vector::from_strings(strings)
            }
        };
        for (i, &r) in order.iter().enumerate() {
            if d[r as usize * width + null_off] != 0 {
                vec.set_null(i);
            }
        }
        vec
    }

    /// Physically reorder rows into a new block (the payload-reorder step
    /// after sorting keys). Heap offsets are absolute, so the heap is reused
    /// unchanged.
    pub fn reorder(&self, order: &[u32]) -> RowBlock {
        let width = self.width();
        let mut data = vec![0u8; order.len() * width];
        for (dst, &src) in order.iter().enumerate() {
            let s = src as usize * width;
            data[dst * width..(dst + 1) * width].copy_from_slice(&self.data[s..s + width]);
        }
        RowBlock {
            layout: Arc::clone(&self.layout),
            data,
            heap: self.heap.clone(),
            len: order.len(),
        }
    }

    /// Replace this block's contents with `src`'s rows in the order the
    /// iterator yields them — [`RowBlock::reorder`] into an existing
    /// (pooled) block instead of a fresh one. Heap offsets are absolute,
    /// so the heap is copied wholesale and row copies need no fixup.
    ///
    /// # Panics
    /// If the layouts differ or an index is out of bounds.
    pub fn assign_reordered(&mut self, src: &RowBlock, order: impl ExactSizeIterator<Item = u32>) {
        assert_eq!(
            self.layout.types(),
            src.layout.types(),
            "assign_reordered requires one shared layout"
        );
        let width = self.width();
        let n = order.len();
        self.heap.clear();
        self.heap.extend_from_slice(&src.heap);
        self.data.resize(n * width, 0);
        for (dst, s) in order.enumerate() {
            let s = s as usize * width;
            self.data[dst * width..(dst + 1) * width].copy_from_slice(&src.data[s..s + width]);
        }
        self.len = n;
    }

    /// Materialize a new block by picking rows `(block_idx, row_idx)` from
    /// several source blocks sharing one layout — the payload step of a
    /// merge: key comparison decides the picks, then rows are copied in
    /// output order with their strings compacted into a fresh heap.
    pub fn gather_from(blocks: &[&RowBlock], picks: &[(u32, u32)]) -> RowBlock {
        assert!(!blocks.is_empty(), "gather_from needs at least one block");
        // lint:allow(R002): the index is guarded by the assert directly
        // above; an empty input has no layout to build a block from.
        let layout = Arc::clone(blocks[0].layout());
        for b in blocks {
            assert_eq!(
                b.layout().types(),
                layout.types(),
                "gather_from requires one shared layout"
            );
        }
        let width = layout.width();
        let varlen_cols: Vec<usize> = (0..layout.column_count())
            .filter(|&c| layout.types()[c] == LogicalType::Varchar)
            .collect();
        let mut data = vec![0u8; picks.len() * width];
        let mut heap = Vec::new();
        for (dst, &(bi, ri)) in picks.iter().enumerate() {
            let src = blocks[bi as usize];
            let s = ri as usize * width;
            let row = &mut data[dst * width..(dst + 1) * width];
            row.copy_from_slice(&src.data[s..s + width]);
            for &c in &varlen_cols {
                if src.is_null(ri as usize, c) {
                    continue;
                }
                let at = layout.offset(c);
                let off = u32::from_le_bytes(read_array(row, at)) as usize;
                let len = u32::from_le_bytes(read_array(row, at + 4)) as usize;
                let new_off = heap.len() as u32;
                heap.extend_from_slice(&src.heap[off..off + len]);
                row[at..at + 4].copy_from_slice(&new_off.to_le_bytes());
            }
        }
        RowBlock {
            layout,
            data,
            heap,
            len: picks.len(),
        }
    }

    /// Append all rows of another block with the same layout, rewriting its
    /// heap references to this block's heap.
    pub fn append_block(&mut self, other: &RowBlock) {
        assert_eq!(
            self.layout.types(),
            other.layout.types(),
            "appending block with different layout"
        );
        let width = self.width();
        let heap_shift = self.heap.len();
        self.heap.extend_from_slice(&other.heap);
        let base = self.data.len();
        self.data.extend_from_slice(&other.data);
        if heap_shift != 0 && self.layout.has_varlen() {
            // Shift heap offsets in the copied rows.
            let varlen_cols: Vec<usize> = (0..self.layout.column_count())
                .filter(|&c| self.layout.types()[c] == LogicalType::Varchar)
                .collect();
            for r in 0..other.len {
                let row_start = base + r * width;
                for &c in &varlen_cols {
                    if other.is_null(r, c) {
                        continue;
                    }
                    let at = row_start + self.layout.offset(c);
                    let off = u32::from_le_bytes(read_array(&self.data, at));
                    let new_off = off + heap_shift as u32;
                    self.data[at..at + 4].copy_from_slice(&new_off.to_le_bytes());
                }
            }
        }
        self.len += other.len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RowAlignment;
    use rowsort_vector::LogicalType as T;

    fn chunk_u32_pairs(rows: &[(u32, u32)]) -> DataChunk {
        let a = Vector::from_u32s(rows.iter().map(|r| r.0).collect());
        let b = Vector::from_u32s(rows.iter().map(|r| r.1).collect());
        DataChunk::from_columns(vec![a, b]).unwrap()
    }

    #[test]
    fn scatter_gather_round_trip_fixed() {
        let chunk = chunk_u32_pairs(&[(3, 30), (1, 10), (2, 20)]);
        let layout = Arc::new(RowLayout::new(&chunk.types()));
        let mut block = RowBlock::new(layout);
        block.append_chunk(&chunk);
        assert_eq!(block.len(), 3);
        assert_eq!(block.to_chunk(), chunk);
    }

    #[test]
    fn scatter_gather_round_trip_strings_and_nulls() {
        let mut chunk = DataChunk::new(&[T::Varchar, T::Int32]);
        chunk
            .push_row(&[Value::from("NETHERLANDS"), Value::Int32(1990)])
            .unwrap();
        chunk.push_row(&[Value::Null, Value::Null]).unwrap();
        chunk
            .push_row(&[Value::from(""), Value::Int32(-5)])
            .unwrap();
        let layout = Arc::new(RowLayout::new(&chunk.types()));
        let mut block = RowBlock::new(layout);
        block.append_chunk(&chunk);
        assert_eq!(block.to_chunk(), chunk);
        assert!(block.is_null(1, 0));
        assert!(!block.is_null(0, 1));
        assert_eq!(block.string_bytes(0, 0), b"NETHERLANDS");
    }

    #[test]
    fn value_reads_every_type() {
        let types = T::ALL;
        let row: Vec<Value> = vec![
            Value::Boolean(true),
            Value::Int8(-1),
            Value::Int16(-300),
            Value::Int32(7),
            Value::Int64(i64::MIN),
            Value::UInt8(255),
            Value::UInt16(65535),
            Value::UInt32(u32::MAX),
            Value::UInt64(u64::MAX),
            Value::Float32(-1.5),
            Value::Float64(std::f64::consts::PI),
            Value::Date(19000),
            Value::Timestamp(1_700_000_000_000_000),
            Value::from("héllo"),
        ];
        let mut chunk = DataChunk::new(&types);
        chunk.push_row(&row).unwrap();
        let mut block = RowBlock::new(Arc::new(RowLayout::new(&types)));
        block.append_chunk(&chunk);
        for (c, expected) in row.iter().enumerate() {
            assert_eq!(&block.value(0, c), expected, "column {c}");
        }
    }

    #[test]
    fn reorder_permutes_rows() {
        let chunk = chunk_u32_pairs(&[(3, 30), (1, 10), (2, 20)]);
        let layout = Arc::new(RowLayout::new(&chunk.types()));
        let mut block = RowBlock::new(layout);
        block.append_chunk(&chunk);
        let sorted = block.reorder(&[1, 2, 0]);
        assert_eq!(sorted.value(0, 0), Value::UInt32(1));
        assert_eq!(sorted.value(1, 0), Value::UInt32(2));
        assert_eq!(sorted.value(2, 0), Value::UInt32(3));
        assert_eq!(sorted.value(2, 1), Value::UInt32(30));
    }

    #[test]
    fn reorder_keeps_string_heap_valid() {
        let mut chunk = DataChunk::new(&[T::Varchar]);
        for s in ["bb", "aa", "cc"] {
            chunk.push_row(&[Value::from(s)]).unwrap();
        }
        let mut block = RowBlock::new(Arc::new(RowLayout::new(&chunk.types())));
        block.append_chunk(&chunk);
        let sorted = block.reorder(&[1, 0, 2]);
        assert_eq!(sorted.value(0, 0), Value::from("aa"));
        assert_eq!(sorted.value(1, 0), Value::from("bb"));
    }

    #[test]
    fn gather_subset() {
        let chunk = chunk_u32_pairs(&[(3, 30), (1, 10), (2, 20)]);
        let mut block = RowBlock::new(Arc::new(RowLayout::new(&chunk.types())));
        block.append_chunk(&chunk);
        let got = block.gather(&[2, 0]);
        assert_eq!(got.len(), 2);
        assert_eq!(got.row(0), vec![Value::UInt32(2), Value::UInt32(20)]);
        assert_eq!(got.row(1), vec![Value::UInt32(3), Value::UInt32(30)]);
    }

    #[test]
    fn append_multiple_chunks() {
        let c1 = chunk_u32_pairs(&[(1, 10)]);
        let c2 = chunk_u32_pairs(&[(2, 20), (3, 30)]);
        let mut block = RowBlock::new(Arc::new(RowLayout::new(&c1.types())));
        block.append_chunk(&c1);
        block.append_chunk(&c2);
        assert_eq!(block.len(), 3);
        assert_eq!(block.value(2, 1), Value::UInt32(30));
    }

    #[test]
    fn append_block_rewrites_heap_offsets() {
        let mk = |strings: &[&str]| {
            let mut c = DataChunk::new(&[T::Varchar]);
            for s in strings {
                c.push_row(&[Value::from(*s)]).unwrap();
            }
            let mut b = RowBlock::new(Arc::new(RowLayout::new(&c.types())));
            b.append_chunk(&c);
            b
        };
        let mut a = mk(&["one", "two"]);
        let b = mk(&["three"]);
        a.append_block(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.value(0, 0), Value::from("one"));
        assert_eq!(a.value(2, 0), Value::from("three"));
    }

    #[test]
    fn append_block_fixed_width() {
        let c1 = chunk_u32_pairs(&[(1, 10)]);
        let c2 = chunk_u32_pairs(&[(2, 20)]);
        let layout = Arc::new(RowLayout::new(&c1.types()));
        let mut a = RowBlock::new(Arc::clone(&layout));
        a.append_chunk(&c1);
        let mut b = RowBlock::new(layout);
        b.append_chunk(&c2);
        a.append_block(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.value(1, 0), Value::UInt32(2));
    }

    #[test]
    fn packed_layout_round_trips_too() {
        let chunk = chunk_u32_pairs(&[(5, 50), (4, 40)]);
        let layout = Arc::new(RowLayout::with_alignment(
            &chunk.types(),
            RowAlignment::Packed,
        ));
        let mut block = RowBlock::new(layout);
        block.append_chunk(&chunk);
        assert_eq!(block.to_chunk(), chunk);
    }

    #[test]
    fn row_bytes_are_width_sized() {
        let chunk = chunk_u32_pairs(&[(1, 2)]);
        let mut block = RowBlock::new(Arc::new(RowLayout::new(&chunk.types())));
        block.append_chunk(&chunk);
        assert_eq!(block.row(0).len(), block.width());
        assert_eq!(block.data().len(), block.width());
    }

    #[test]
    fn gather_from_multiple_blocks() {
        let mk = |vals: &[(u32, &str)]| {
            let mut c = DataChunk::new(&[T::UInt32, T::Varchar]);
            for (v, s) in vals {
                c.push_row(&[Value::UInt32(*v), Value::from(*s)]).unwrap();
            }
            let mut b = RowBlock::new(Arc::new(RowLayout::new(&c.types())));
            b.append_chunk(&c);
            b
        };
        let a = mk(&[(1, "one"), (3, "three")]);
        let b = mk(&[(2, "two"), (4, "four")]);
        let merged = RowBlock::gather_from(&[&a, &b], &[(0, 0), (1, 0), (0, 1), (1, 1)]);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.value(0, 1), Value::from("one"));
        assert_eq!(merged.value(1, 1), Value::from("two"));
        assert_eq!(merged.value(2, 0), Value::UInt32(3));
        assert_eq!(merged.value(3, 1), Value::from("four"));
    }

    #[test]
    fn gather_from_with_nulls() {
        let mut c = DataChunk::new(&[T::Varchar]);
        c.push_row(&[Value::Null]).unwrap();
        c.push_row(&[Value::from("x")]).unwrap();
        let mut b = RowBlock::new(Arc::new(RowLayout::new(&c.types())));
        b.append_chunk(&c);
        let g = RowBlock::gather_from(&[&b], &[(0, 1), (0, 0)]);
        assert_eq!(g.value(0, 0), Value::from("x"));
        assert_eq!(g.value(1, 0), Value::Null);
    }

    #[test]
    fn append_chunk_range_scatters_subset() {
        let chunk = chunk_u32_pairs(&[(1, 10), (2, 20), (3, 30), (4, 40)]);
        let mut block = RowBlock::new(Arc::new(RowLayout::new(&chunk.types())));
        block.append_chunk_range(&chunk, 1, 3);
        assert_eq!(block.len(), 2);
        assert_eq!(block.value(0, 0), Value::UInt32(2));
        assert_eq!(block.value(1, 1), Value::UInt32(30));
    }

    #[test]
    fn append_chunk_range_strings_and_nulls() {
        let mut chunk = DataChunk::new(&[T::Varchar]);
        for v in [
            Value::from("a"),
            Value::Null,
            Value::from("c"),
            Value::from("d"),
        ] {
            chunk.push_row(&[v]).unwrap();
        }
        let mut block = RowBlock::new(Arc::new(RowLayout::new(&chunk.types())));
        block.append_chunk_range(&chunk, 1, 4);
        assert_eq!(block.len(), 3);
        assert!(block.is_null(0, 0));
        assert_eq!(block.value(1, 0), Value::from("c"));
        assert_eq!(block.value(2, 0), Value::from("d"));
    }

    #[test]
    fn assign_reordered_reuses_buffers() {
        let mut chunk = DataChunk::new(&[T::UInt32, T::Varchar]);
        for (v, s) in [(3u32, "ccc"), (1, "aaa"), (2, "bbb")] {
            chunk.push_row(&[Value::UInt32(v), Value::from(s)]).unwrap();
        }
        let layout = Arc::new(RowLayout::new(&chunk.types()));
        let mut src = RowBlock::new(Arc::clone(&layout));
        src.append_chunk(&chunk);
        let mut dst = RowBlock::new(layout);
        dst.assign_reordered(&src, [1u32, 2, 0].into_iter());
        assert_eq!(dst.value(0, 0), Value::UInt32(1));
        assert_eq!(dst.value(0, 1), Value::from("aaa"));
        assert_eq!(dst.value(2, 1), Value::from("ccc"));
        let cap = dst.data.capacity();
        // Re-assigning a same-size permutation must not reallocate.
        dst.assign_reordered(&src, [0u32, 1, 2].into_iter());
        assert_eq!(dst.data.capacity(), cap);
        assert_eq!(dst.to_chunk(), chunk);
    }

    #[test]
    fn clear_and_raw_parts_round_trip() {
        let chunk = chunk_u32_pairs(&[(1, 10), (2, 20)]);
        let layout = Arc::new(RowLayout::new(&chunk.types()));
        let mut block = RowBlock::new(Arc::clone(&layout));
        block.append_chunk(&chunk);
        block.clear();
        assert!(block.is_empty());
        block.append_chunk(&chunk);
        let (data, heap) = block.into_raw_parts();
        let rebuilt = RowBlock::from_raw_parts(layout, data, heap);
        assert_eq!(rebuilt.to_chunk(), chunk);
    }

    #[test]
    #[should_panic(expected = "schema must match")]
    fn schema_mismatch_panics() {
        let chunk = chunk_u32_pairs(&[(1, 2)]);
        let mut block = RowBlock::new(Arc::new(RowLayout::new(&[T::Int64])));
        block.append_chunk(&chunk);
    }
}

//! System emulation profiles (paper §VII).
//!
//! The paper benchmarks DuckDB against four other analytical systems. With
//! full binaries, differences in parsers, optimizers, storage, and client
//! protocols muddy the comparison; here every profile runs inside one
//! engine and differs *only* in how its sort operator is configured —
//! exactly the design choices §VII attributes the end-to-end differences
//! to:
//!
//! | profile | emulates | format | local sort | merge |
//! |---|---|---|---|---|
//! | [`SystemProfile::RowsortDb`] | DuckDB | NSM + normalized keys | radix / pdqsort | Merge-Path cascaded 2-way |
//! | [`SystemProfile::ColumnarJit`] | ClickHouse | DSM (sorts indices) | radix for a single integer key, else pdqsort tuple-at-a-time | k-way loser tree |
//! | [`SystemProfile::ColumnarSingle`] | MonetDB | DSM | single-threaded introsort, subsort per column | (single run) |
//! | [`SystemProfile::CompiledRows`] | HyPer | NSM | pdqsort, fused ("compiled") comparator, sorts pointers | k-way loser tree on pointers, payload gathered at output |
//! | [`SystemProfile::CompiledRowsV2`] | Umbra | NSM | as HyPer | cascaded 2-way on pointers |

use crate::comparator::FusedRowComparator;
use crate::pipeline::{SortOptions, SortPipeline};
use rowsort_algos::kway::LoserTree;
use rowsort_algos::pdqsort::pdqsort;
use rowsort_algos::radix::lsd_radix_sort_rows;
use rowsort_normkey::{encode_column_into, KeyColumn};
use rowsort_row::{RowBlock, RowLayout};
use rowsort_vector::{DataChunk, LogicalType, OrderBy, Validity, Vector, VectorData};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::sync::Mutex;

/// Which system's sort-operator configuration to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemProfile {
    /// DuckDB: the full normalized-key row pipeline of this crate.
    RowsortDb,
    /// ClickHouse: columnar throughout; radix for one integer key,
    /// otherwise pdqsort with a tuple-at-a-time comparator; k-way merge.
    ColumnarJit,
    /// MonetDB: columnar, single-threaded, subsort across key columns.
    ColumnarSingle,
    /// HyPer: compiled row sort over pointers, parallel k-way merge,
    /// payload collected lazily at output.
    CompiledRows,
    /// Umbra: as HyPer with a cascaded 2-way pointer merge.
    CompiledRowsV2,
}

impl SystemProfile {
    /// All profiles in the order the paper's figures list the systems.
    pub const ALL: [SystemProfile; 5] = [
        SystemProfile::RowsortDb,
        SystemProfile::ColumnarJit,
        SystemProfile::ColumnarSingle,
        SystemProfile::CompiledRows,
        SystemProfile::CompiledRowsV2,
    ];

    /// Display label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            SystemProfile::RowsortDb => "rowsort(DuckDB-like)",
            SystemProfile::ColumnarJit => "columnar-jit(ClickHouse-like)",
            SystemProfile::ColumnarSingle => "columnar-1t(MonetDB-like)",
            SystemProfile::CompiledRows => "compiled-rows(HyPer-like)",
            SystemProfile::CompiledRowsV2 => "compiled-rows-v2(Umbra-like)",
        }
    }
}

/// Sort `input` by `order` the way the given system would.
pub fn sort_with_system(
    profile: SystemProfile,
    input: &DataChunk,
    order: &OrderBy,
    threads: usize,
) -> DataChunk {
    sort_with_system_profiled(profile, input, order, threads).0
}

/// [`sort_with_system`] that also returns the per-sort
/// [`SortProfile`](crate::metrics::SortProfile) when the profile runs the
/// real pipeline (`RowsortDb`); the emulated systems are not instrumented
/// and return `None`. `EXPLAIN ANALYZE` uses this to annotate Sort
/// operators with the phase breakdown.
pub fn sort_with_system_profiled(
    profile: SystemProfile,
    input: &DataChunk,
    order: &OrderBy,
    threads: usize,
) -> (DataChunk, Option<crate::metrics::SortProfile>) {
    match profile {
        SystemProfile::RowsortDb => {
            let options = SortOptions {
                threads,
                ..SortOptions::default()
            };
            let pipeline = SortPipeline::new(input.types(), order.clone(), options);
            let sorted = pipeline.sort(input);
            (sorted, Some(pipeline.last_profile()))
        }
        SystemProfile::ColumnarJit => (columnar_jit_sort(input, order, threads), None),
        SystemProfile::ColumnarSingle => (columnar_single_sort(input, order), None),
        SystemProfile::CompiledRows => (
            compiled_rows_sort(input, order, threads, MergeKind::KWay),
            None,
        ),
        SystemProfile::CompiledRowsV2 => (
            compiled_rows_sort(input, order, threads, MergeKind::Cascade2Way),
            None,
        ),
    }
}

/// Rows per thread-local run for the emulated systems.
const RUN_ROWS: usize = 1 << 17;

// ---------------------------------------------------------------------------
// Columnar comparator machinery (typed, no boxed values)
// ---------------------------------------------------------------------------

/// Per-key-column index comparator over DSM vectors.
type IdxCmp<'a> = Box<dyn Fn(u32, u32) -> Ordering + Send + Sync + 'a>;

fn column_idx_cmp<'a>(vec: &'a Vector, spec: rowsort_vector::SortSpec) -> IdxCmp<'a> {
    use rowsort_vector::NullOrder;
    let validity: &Validity = vec.validity();
    let all_valid = validity.all_valid();
    let null_cmp = move |a: usize, b: usize| -> Option<Ordering> {
        if all_valid {
            return None;
        }
        let (an, bn) = (!validity.is_valid(a), !validity.is_valid(b));
        match (an, bn) {
            (false, false) => None,
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(match spec.nulls {
                NullOrder::NullsFirst => Ordering::Less,
                NullOrder::NullsLast => Ordering::Greater,
            }),
            (false, true) => Some(match spec.nulls {
                NullOrder::NullsFirst => Ordering::Greater,
                NullOrder::NullsLast => Ordering::Less,
            }),
        }
    };
    macro_rules! cmp_closure {
        ($vals:expr, $cmp:expr) => {{
            let vals = $vals;
            let cmp = $cmp;
            Box::new(move |a: u32, b: u32| {
                let (a, b) = (a as usize, b as usize);
                if let Some(ord) = null_cmp(a, b) {
                    return ord;
                }
                spec.order.apply(cmp(&vals[a], &vals[b]))
            })
        }};
    }
    match vec.data() {
        VectorData::Boolean(v) => cmp_closure!(v, |a: &bool, b: &bool| a.cmp(b)),
        VectorData::Int8(v) => cmp_closure!(v, |a: &i8, b: &i8| a.cmp(b)),
        VectorData::Int16(v) => cmp_closure!(v, |a: &i16, b: &i16| a.cmp(b)),
        VectorData::Int32(v) => cmp_closure!(v, |a: &i32, b: &i32| a.cmp(b)),
        VectorData::Int64(v) => cmp_closure!(v, |a: &i64, b: &i64| a.cmp(b)),
        VectorData::UInt8(v) => cmp_closure!(v, |a: &u8, b: &u8| a.cmp(b)),
        VectorData::UInt16(v) => cmp_closure!(v, |a: &u16, b: &u16| a.cmp(b)),
        VectorData::UInt32(v) => cmp_closure!(v, |a: &u32, b: &u32| a.cmp(b)),
        VectorData::UInt64(v) => cmp_closure!(v, |a: &u64, b: &u64| a.cmp(b)),
        VectorData::Float32(v) => cmp_closure!(v, |a: &f32, b: &f32| a.total_cmp(b)),
        VectorData::Float64(v) => cmp_closure!(v, |a: &f64, b: &f64| a.total_cmp(b)),
        VectorData::Date(v) => cmp_closure!(v, |a: &i32, b: &i32| a.cmp(b)),
        VectorData::Timestamp(v) => cmp_closure!(v, |a: &i64, b: &i64| a.cmp(b)),
        VectorData::Varchar(v) => {
            let strings = v;
            Box::new(move |a: u32, b: u32| {
                let (a, b) = (a as usize, b as usize);
                if let Some(ord) = null_cmp(a, b) {
                    return ord;
                }
                spec.order
                    .apply(strings.get_bytes(a).cmp(strings.get_bytes(b)))
            })
        }
    }
}

fn columnar_comparators<'a>(input: &'a DataChunk, order: &OrderBy) -> Vec<IdxCmp<'a>> {
    order
        .keys
        .iter()
        .map(|k| column_idx_cmp(input.column(k.column), k.spec))
        .collect()
}

fn tuple_cmp(cmps: &[IdxCmp<'_>], a: u32, b: u32) -> Ordering {
    for c in cmps {
        let ord = c(a, b);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn gather_chunk(input: &DataChunk, order: &[u32]) -> DataChunk {
    let indices: Vec<usize> = order.iter().map(|&i| i as usize).collect();
    input.take(&indices)
}

// ---------------------------------------------------------------------------
// ClickHouse-like: columnar, radix for single int key, k-way merge
// ---------------------------------------------------------------------------

fn columnar_jit_sort(input: &DataChunk, order: &OrderBy, threads: usize) -> DataChunk {
    let n = input.len();
    if n == 0 {
        return DataChunk::new(&input.types());
    }
    let single_int_key = order.keys.len() == 1 && {
        let ty = input.types()[order.keys[0].column];
        ty.is_integer() || ty == LogicalType::Date
    };

    // Thread-local run generation over morsels (index runs).
    let morsels = n.div_ceil(RUN_ROWS);
    let next = AtomicUsize::new(0);
    let runs: Mutex<Vec<Vec<u32>>> = Mutex::new(Vec::new());
    let cmps = columnar_comparators(input, order);
    let make_run = |lo: usize, hi: usize| -> Vec<u32> {
        if single_int_key {
            columnar_radix_run(input, order, lo, hi)
        } else {
            let mut idxs: Vec<u32> = (lo as u32..hi as u32).collect();
            pdqsort(&mut idxs, &mut |a: &u32, b: &u32| {
                tuple_cmp(&cmps, *a, *b) == Ordering::Less
            });
            idxs
        }
    };
    let workers = threads.min(morsels).max(1);
    if workers == 1 {
        let mut out = Vec::with_capacity(morsels);
        for m in 0..morsels {
            let lo = m * RUN_ROWS;
            out.push(make_run(lo, (lo + RUN_ROWS).min(n)));
        }
        *runs.lock().unwrap() = out;
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let m = next.fetch_add(1, AtomicOrdering::Relaxed);
                    if m >= morsels {
                        break;
                    }
                    let lo = m * RUN_ROWS;
                    let run = make_run(lo, (lo + RUN_ROWS).min(n));
                    runs.lock().unwrap().push(run);
                });
            }
        });
    }
    let runs = runs.into_inner().unwrap();

    // K-way merge of the index runs.
    let merged = kway_merge_indices(&runs, |a, b| tuple_cmp(&cmps, a, b));
    gather_chunk(input, &merged)
}

/// Radix sort of one integer key column: encode (normalized key, row id)
/// pairs and LSD-radix them — ClickHouse's single-column special case.
fn columnar_radix_run(input: &DataChunk, order: &OrderBy, lo: usize, hi: usize) -> Vec<u32> {
    let key = &order.keys[0];
    let vec = input.column(key.column);
    let ty = vec.logical_type();
    let col = KeyColumn::fixed(ty, key.spec);
    let kw = col.encoded_width();
    let stride = kw + 4;
    let n = hi - lo;
    let mut data = vec![0u8; n * stride];
    let morsel = vec.slice(lo, hi);
    encode_column_into(&morsel, &col, &mut data, stride, 0, 0);
    for i in 0..n {
        let rid = (lo + i) as u32;
        data[i * stride + kw..i * stride + kw + 4].copy_from_slice(&rid.to_le_bytes());
    }
    lsd_radix_sort_rows(&mut data, stride, 0, kw);
    (0..n)
        .map(|i| {
            u32::from_le_bytes(
                data[i * stride + kw..i * stride + kw + 4]
                    .try_into()
                    .unwrap(),
            )
        })
        .collect()
}

fn kway_merge_indices(runs: &[Vec<u32>], cmp: impl Fn(u32, u32) -> Ordering) -> Vec<u32> {
    let k = runs.len();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    if k == 1 {
        return runs[0].clone();
    }
    let mut out = Vec::with_capacity(total);
    let mut pos = vec![0usize; k];
    let mut tree = {
        let pos_ref = &pos;
        LoserTree::new(
            k,
            |i| pos_ref[i] >= runs[i].len(),
            |a, b| cmp(runs[a][pos_ref[a]], runs[b][pos_ref[b]]) == Ordering::Less,
        )
    };
    for _ in 0..total {
        let w = tree.winner();
        out.push(runs[w][pos[w]]);
        pos[w] += 1;
        let pos_ref = &pos;
        tree.replay(w, &mut |i| pos_ref[i] >= runs[i].len(), &mut |a, b| {
            cmp(runs[a][pos_ref[a]], runs[b][pos_ref[b]]) == Ordering::Less
        });
    }
    out
}

// ---------------------------------------------------------------------------
// MonetDB-like: single-threaded columnar subsort
// ---------------------------------------------------------------------------

fn columnar_single_sort(input: &DataChunk, order: &OrderBy) -> DataChunk {
    use rowsort_algos::introsort::introsort;
    let n = input.len();
    if n == 0 {
        return DataChunk::new(&input.types());
    }
    let cmps = columnar_comparators(input, order);
    let mut idxs: Vec<u32> = (0..n as u32).collect();

    fn subsort(idxs: &mut [u32], cmps: &[IdxCmp<'_>], depth: usize) {
        if idxs.len() < 2 || depth >= cmps.len() {
            return;
        }
        let c = &cmps[depth];
        introsort(idxs, &mut |a: &u32, b: &u32| c(*a, *b) == Ordering::Less);
        if depth + 1 >= cmps.len() {
            return;
        }
        let mut run_start = 0;
        for i in 1..=idxs.len() {
            let tied = i < idxs.len() && c(idxs[i - 1], idxs[i]) == Ordering::Equal;
            if !tied {
                if i - run_start > 1 {
                    subsort(&mut idxs[run_start..i], cmps, depth + 1);
                }
                run_start = i;
            }
        }
    }
    subsort(&mut idxs, &cmps, 0);
    gather_chunk(input, &idxs)
}

// ---------------------------------------------------------------------------
// HyPer/Umbra-like: compiled rows, pointer sorts and merges
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum MergeKind {
    KWay,
    Cascade2Way,
}

fn compiled_rows_sort(
    input: &DataChunk,
    order: &OrderBy,
    threads: usize,
    merge: MergeKind,
) -> DataChunk {
    let n = input.len();
    if n == 0 {
        return DataChunk::new(&input.types());
    }
    // Materialize NSM rows once ("generated data types").
    let layout = Arc::new(RowLayout::new(&input.types()));
    let mut block = RowBlock::with_capacity(Arc::clone(&layout), n);
    for part in input.split_into_vectors() {
        block.append_chunk(&part);
    }
    let cmp = FusedRowComparator::new(&layout, order);
    let is_less = |a: u32, b: u32| -> bool {
        cmp.compare(
            block.row(a as usize),
            block.heap(),
            block.row(b as usize),
            block.heap(),
        ) == Ordering::Less
    };

    // Thread-local pointer sorts.
    let morsels = n.div_ceil(RUN_ROWS);
    let next = AtomicUsize::new(0);
    let runs: Mutex<Vec<Vec<u32>>> = Mutex::new(Vec::new());
    let workers = threads.min(morsels).max(1);
    let make_run = |lo: usize, hi: usize| -> Vec<u32> {
        let mut idxs: Vec<u32> = (lo as u32..hi as u32).collect();
        pdqsort(&mut idxs, &mut |a: &u32, b: &u32| is_less(*a, *b));
        idxs
    };
    if workers == 1 {
        let mut out = Vec::with_capacity(morsels);
        for m in 0..morsels {
            let lo = m * RUN_ROWS;
            out.push(make_run(lo, (lo + RUN_ROWS).min(n)));
        }
        *runs.lock().unwrap() = out;
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let m = next.fetch_add(1, AtomicOrdering::Relaxed);
                    if m >= morsels {
                        break;
                    }
                    let lo = m * RUN_ROWS;
                    let run = make_run(lo, (lo + RUN_ROWS).min(n));
                    runs.lock().unwrap().push(run);
                });
            }
        });
    }
    let mut runs = runs.into_inner().unwrap();

    // Merge pointers only; rows move once, at output.
    let merged: Vec<u32> = match merge {
        MergeKind::KWay => kway_merge_indices(&runs, |a, b| {
            cmp.compare(
                block.row(a as usize),
                block.heap(),
                block.row(b as usize),
                block.heap(),
            )
        }),
        MergeKind::Cascade2Way => {
            while runs.len() > 1 {
                let mut next_round = Vec::with_capacity(runs.len().div_ceil(2));
                let mut it = runs.into_iter();
                loop {
                    match (it.next(), it.next()) {
                        (Some(a), Some(b)) => {
                            let mut out = Vec::with_capacity(a.len() + b.len());
                            let (mut i, mut j) = (0, 0);
                            while i < a.len() && j < b.len() {
                                if is_less(b[j], a[i]) {
                                    out.push(b[j]);
                                    j += 1;
                                } else {
                                    out.push(a[i]);
                                    i += 1;
                                }
                            }
                            out.extend_from_slice(&a[i..]);
                            out.extend_from_slice(&b[j..]);
                            next_round.push(out);
                        }
                        (Some(a), None) => {
                            next_round.push(a);
                            break;
                        }
                        (None, _) => break,
                    }
                }
                runs = next_round;
            }
            runs.pop().unwrap()
        }
    };

    // Payload gathered once, when the operator's output is read.
    block.gather(&merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowsort_vector::{OrderByColumn, SortSpec, Value};

    fn reference_sort(chunk: &DataChunk, order: &OrderBy) -> Vec<Vec<Value>> {
        let mut rows = chunk.to_rows();
        rows.sort_by(|a, b| order.compare_rows(a, b));
        rows
    }

    fn check_profile(profile: SystemProfile, chunk: &DataChunk, order: &OrderBy, threads: usize) {
        let got = sort_with_system(profile, chunk, order, threads);
        let got_rows = got.to_rows();
        assert_eq!(got_rows.len(), chunk.len(), "{}", profile.label());
        for w in got_rows.windows(2) {
            assert_ne!(
                order.compare_rows(&w[0], &w[1]),
                Ordering::Greater,
                "{} out of order",
                profile.label()
            );
        }
        let canon = |rows: &[Vec<Value>]| {
            let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(
            canon(&got_rows),
            canon(&reference_sort(chunk, order)),
            "{} multiset",
            profile.label()
        );
    }

    fn pseudo_random(n: usize, seed: u64, modk: u32) -> Vec<u32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as u32) % modk
            })
            .collect()
    }

    #[test]
    fn all_profiles_sort_single_int_key() {
        let keys: Vec<i32> = pseudo_random(5_000, 1, 100_000)
            .into_iter()
            .map(|v| v as i32 - 50_000)
            .collect();
        let payload: Vec<u32> = (0..5_000).collect();
        let chunk =
            DataChunk::from_columns(vec![Vector::from_i32s(keys), Vector::from_u32s(payload)])
                .unwrap();
        let order = OrderBy::new(vec![OrderByColumn::asc(0)]);
        for p in SystemProfile::ALL {
            check_profile(p, &chunk, &order, 2);
        }
    }

    #[test]
    fn all_profiles_sort_multi_key_with_nulls() {
        let mut chunk = DataChunk::new(&[LogicalType::Int32, LogicalType::Int32]);
        let a = pseudo_random(3_000, 2, 16);
        let b = pseudo_random(3_000, 3, 16);
        for i in 0..3_000 {
            let va = if a[i] == 0 {
                Value::Null
            } else {
                Value::Int32(a[i] as i32)
            };
            let vb = if b[i] == 1 {
                Value::Null
            } else {
                Value::Int32(b[i] as i32)
            };
            chunk.push_row(&[va, vb]).unwrap();
        }
        let order = OrderBy::new(vec![
            OrderByColumn {
                column: 0,
                spec: SortSpec::DESC,
            },
            OrderByColumn::asc(1),
        ]);
        for p in SystemProfile::ALL {
            check_profile(p, &chunk, &order, 2);
        }
    }

    #[test]
    fn all_profiles_sort_strings() {
        let names = ["Smith", "Johnson", "Williams", "Brown", "Jones"];
        let strings: Vec<String> = pseudo_random(2_000, 4, 5)
            .iter()
            .map(|&i| names[i as usize].to_owned())
            .collect();
        let sk: Vec<i32> = (0..2_000).collect();
        let chunk =
            DataChunk::from_columns(vec![Vector::from_strings(strings), Vector::from_i32s(sk)])
                .unwrap();
        let order = OrderBy::new(vec![OrderByColumn::asc(0)]);
        for p in SystemProfile::ALL {
            check_profile(p, &chunk, &order, 2);
        }
    }

    #[test]
    fn all_profiles_sort_floats() {
        let floats: Vec<f64> = pseudo_random(2_000, 5, 1 << 20)
            .iter()
            .map(|&v| (v as f64 - 500_000.0) * 1e3)
            .collect();
        let chunk = DataChunk::from_columns(vec![Vector::from_f64s(floats)]).unwrap();
        let order = OrderBy::new(vec![OrderByColumn::asc(0)]);
        for p in SystemProfile::ALL {
            check_profile(p, &chunk, &order, 1);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = SystemProfile::ALL.iter().map(|p| p.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn empty_input_all_profiles() {
        let chunk = DataChunk::new(&[LogicalType::Int32]);
        let order = OrderBy::new(vec![OrderByColumn::asc(0)]);
        for p in SystemProfile::ALL {
            let got = sort_with_system(p, &chunk, &order, 2);
            assert!(got.is_empty(), "{}", p.label());
        }
    }
}

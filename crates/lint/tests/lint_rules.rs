//! Fixture-based rule tests: each fixture under `tests/fixtures/` holds
//! known-bad (and known-good) snippets; the assertions pin the exact
//! finding counts and locations, so lexer or rule regressions show up as
//! off-by-one line numbers or missing/extra findings.

use lint::{analyze_source, baseline, rules, Config};
use std::path::Path;

fn cfg() -> Config {
    Config {
        // Fixtures are analyzed under virtual paths: `hot/…` is in the
        // R002/R003 scope, `enc/…` in the R004 scope.
        hot_paths: vec!["hot/**".to_string()],
        cast_strict: vec!["enc/**".to_string()],
        exit_allow: vec![],
        unsafe_impl_allow: vec![],
        exclude: vec![],
    }
}

/// `(rule, line)` pairs of all findings, in source order.
fn findings(path: &str, src: &str) -> Vec<(String, u32)> {
    analyze_source(path, src, &cfg())
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn r001_unsafe_without_safety_comment() {
    let got = findings("any/r001.rs", include_str!("fixtures/r001.rs"));
    assert_eq!(
        got,
        vec![("R001".to_string(), 14), ("R001".to_string(), 27)],
        "undocumented unsafe block and fn; documented ones pass, and \
         `unsafe` inside strings, raw strings, or nested comments is text"
    );
}

#[test]
fn r002_panics_and_literal_indexing_in_hot_paths() {
    let got = findings("hot/r002.rs", include_str!("fixtures/r002.rs"));
    let r002: Vec<u32> = got.iter().map(|(_, l)| *l).collect();
    assert!(got.iter().all(|(r, _)| r == "R002"), "{got:?}");
    assert_eq!(
        r002,
        vec![4, 5, 7, 9, 12],
        "unwrap, expect, panic!, v[0], e[1]; variable indexes, array \
         literals, #[cfg(test)] code, strings and comments are exempt"
    );
}

#[test]
fn r002_does_not_apply_outside_hot_paths() {
    assert!(findings("cold/r002.rs", include_str!("fixtures/r002.rs")).is_empty());
}

#[test]
fn r003_allocations_in_hot_loop_bodies() {
    let got = findings("hot/r003.rs", include_str!("fixtures/r003.rs"));
    assert!(got.iter().all(|(r, _)| r == "R003"), "{got:?}");
    let lines: Vec<u32> = got.iter().map(|(_, l)| *l).collect();
    assert_eq!(
        lines,
        vec![21, 22, 23, 24, 25, 31],
        "clone/to_vec/format!/Vec::new/collect in a for body and Box::new \
         in a while body; allocations outside loops, `impl … for`, and \
         `for<'a>` binders are exempt"
    );
}

#[test]
fn r004_bare_numeric_casts_in_cast_strict_paths() {
    let got = findings("enc/r004.rs", include_str!("fixtures/r004.rs"));
    assert_eq!(
        got,
        vec![("R004".to_string(), 4), ("R004".to_string(), 5)],
        "`as u32` and `as usize` flagged; `use … as Name` is not a cast"
    );
    assert!(findings("other/r004.rs", include_str!("fixtures/r004.rs")).is_empty());
}

#[test]
fn r006_exit_and_unsafe_impl() {
    let got = findings("any/r006.rs", include_str!("fixtures/r006.rs"));
    assert_eq!(
        got,
        vec![
            ("R006".to_string(), 7),
            ("R006".to_string(), 9),
            ("R006".to_string(), 12),
        ],
        "unsafe impl Send, unsafe impl Sync, process::exit; an unsafe impl \
         of another trait is not R006's concern"
    );
}

#[test]
fn r006_respects_allowlists() {
    let mut config = cfg();
    config.exit_allow = vec!["cli/**".to_string()];
    config.unsafe_impl_allow = vec!["cli/**".to_string()];
    let got = analyze_source("cli/r006.rs", include_str!("fixtures/r006.rs"), &config);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn suppressions_need_reasons() {
    let got = findings("hot/suppress.rs", include_str!("fixtures/suppress.rs"));
    assert_eq!(
        got,
        vec![("R000".to_string(), 7), ("R002".to_string(), 8)],
        "reasoned suppressions (standalone and trailing) silence their \
         line; a reason-less lint:allow is itself a finding and does not \
         suppress"
    );
}

#[test]
fn r005_manifest_audit() {
    let got: Vec<(String, u32)> = analyze_source(
        "crates/fixture/Cargo.toml",
        include_str!("fixtures/r005_bad.toml"),
        &cfg(),
    )
    .into_iter()
    .map(|f| (f.rule, f.line))
    .collect();
    assert!(got.iter().all(|(r, _)| r == "R005"), "{got:?}");
    let mut lines: Vec<u32> = got.iter().map(|(_, l)| *l).collect();
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![8, 9, 9, 12, 12, 12, 15, 15, 21],
        "registry versions, inline `version`/`git`/`branch` keys, dotted \
         tables, and target-specific sections are all caught; `path` and \
         `workspace = true` deps pass"
    );
}

#[test]
fn non_rust_non_manifest_files_are_ignored() {
    assert!(analyze_source("README.md", "v[0].unwrap()", &cfg()).is_empty());
}

#[test]
fn checked_in_baseline_is_empty() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let entries = lint::load_baseline(&root).expect("baseline parses");
    assert!(
        entries.is_empty(),
        "lint-baseline.json must stay empty — fix findings instead of \
         grandfathering them: {entries:?}"
    );
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = lint::load_config(&root).expect("lint.toml loads");
    let grandfathered = lint::load_baseline(&root).expect("baseline loads");
    let report = lint::run_workspace(&root, &config, &grandfathered).expect("scan runs");
    assert!(
        report.errors.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .errors
            .iter()
            .map(|f| format!("  [{}] {}:{}:{} {}", f.rule, f.path, f.line, f.col, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "walk found the workspace");
}

#[test]
fn baseline_grandfathers_findings_as_warnings() {
    let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let all = analyze_source("hot/g.rs", src, &cfg());
    assert_eq!(all.len(), 1);
    let grandfathered = vec![baseline::BaselineEntry {
        rule: "R002".to_string(),
        path: "hot/g.rs".to_string(),
        line: 1,
    }];
    assert!(baseline::contains(&grandfathered, &all[0]));
    let other = rules::Finding {
        rule: "R002".to_string(),
        path: "hot/g.rs".to_string(),
        line: 2,
        col: 1,
        message: String::new(),
    };
    assert!(!baseline::contains(&grandfathered, &other));
}

//! Byte-wise radix sorts over normalized-key rows (§VI-B).
//!
//! Because normalized keys compare correctly byte by byte, they can be
//! sorted by a distribution sort that performs *no comparisons at all*:
//! O(n·k) for key width k, versus O(n log n) comparisons — and with almost
//! no data-dependent branches, which is the paper's Figure 10 story.
//!
//! Following the paper's DuckDB implementation:
//!
//! * [`lsd_radix_sort_rows`] — least-significant-digit first, selected for
//!   keys of ≤ [`LSD_MAX_KEY_BYTES`] bytes;
//! * [`msd_radix_sort_rows`] — most-significant-digit first, recursing into
//!   buckets and falling back to insertion sort for buckets of ≤ 24 rows;
//! * both carry the optimization that a counting pass finding all rows in
//!   one bucket skips the copy entirely (helps Graefe's shortcomings (1)
//!   and (3): long duplicate keys and common prefixes).
//!
//! Two implementation-level optimizations ride on top (DESIGN.md §6):
//!
//! * **Fused counting**: histograms for several successive key bytes are
//!   built in one sweep over the rows. LSD needs only a single counting
//!   pass for *all* its digit passes (a histogram of byte values is
//!   invariant under row permutation); MSD fuses up to
//!   [`MSD_FUSE_BYTES`] histograms so common-prefix bytes are skipped
//!   without rescanning the bucket per byte.
//! * **Software write-combining**: the scatter stages
//!   [`WC_BUCKET_ROWS`] rows per bucket in a small cache-resident buffer
//!   and flushes them with one contiguous copy, turning 256 scattered
//!   single-row writes into batched ones. When enabled it applies to
//!   inputs of at least [`WC_MIN_ROWS`] rows; the default entry points
//!   keep it *off*, because a 256-bucket fan-out leaves only 256 active
//!   destination cache lines — comfortably cache-resident on current
//!   hardware, so the staging copy costs more than the scattered writes
//!   it batches (see the `ablation_wc` bench, which measures both sides
//!   of that trade via the `_opts` entry points).
//!
//! The `*_with_scratch` / `*_opts` entry points take the auxiliary buffer
//! from the caller (sized by [`radix_scratch_len`]) so a sort pipeline can
//! pool it; the plain entry points allocate it per call.

use crate::insertion::insertion_sort_rows;
use crate::rows::RowsMut;

/// Buckets at or below this size are finished with insertion sort (the
/// paper's constant).
pub const MSD_INSERTION_THRESHOLD: usize = 24;

/// Key width (bytes) at or below which LSD is preferred over MSD. The
/// paper's heuristic picks 4; with fused counting (one sweep per window
/// of digits instead of one per digit) LSD's crossover moves out —
/// on the Figure 12 workload's 5-byte normalized keys (NULL byte +
/// big-endian u32) LSD is ~2.3× faster than MSD, so the dispatch prefers
/// it through 8 bytes.
pub const LSD_MAX_KEY_BYTES: usize = 8;

/// Rows staged per bucket in the write-combining scatter buffer.
pub const WC_BUCKET_ROWS: usize = 8;

/// Minimum rows for the write-combining scatter to be considered when it
/// is switched on; smaller inputs always use the plain scatter.
pub const WC_MIN_ROWS: usize = 4096;

/// Successive key bytes histogrammed per counting sweep in MSD.
const MSD_FUSE_BYTES: usize = 4;

/// Scratch bytes needed to radix-sort a row area of `data_len` bytes with
/// `width`-byte rows: a full-size auxiliary row area plus the
/// write-combining staging buffer.
pub fn radix_scratch_len(data_len: usize, width: usize) -> usize {
    data_len + 256 * WC_BUCKET_ROWS * width
}

/// Sort rows by `key_len` key bytes starting at `key_offset` within each
/// row, choosing LSD or MSD radix per the paper's key-width heuristic.
///
/// ```
/// // Three 4-byte rows: 2-byte big-endian key + 2 payload bytes.
/// let mut rows = vec![
///     0, 9, b'c', b'c', //
///     0, 1, b'a', b'a', //
///     0, 5, b'b', b'b',
/// ];
/// rowsort_algos::radix::radix_sort_rows(&mut rows, 4, 0, 2);
/// assert_eq!(rows[1], 1);
/// assert_eq!(&rows[2..4], b"aa");
/// assert_eq!(rows[9], 9);
/// assert_eq!(&rows[10..12], b"cc", "payload moved with its key");
/// ```
pub fn radix_sort_rows(data: &mut [u8], width: usize, key_offset: usize, key_len: usize) {
    let mut scratch = Vec::new();
    radix_sort_rows_with_scratch(data, width, key_offset, key_len, &mut scratch);
}

/// [`radix_sort_rows`] with a caller-pooled scratch buffer. The buffer is
/// resized to [`radix_scratch_len`]; with sufficient capacity (e.g. a
/// recycled buffer) the call performs no allocation. Returns the number
/// of scatter passes performed (skipped single-bucket passes excluded),
/// for the pipeline's metrics.
pub fn radix_sort_rows_with_scratch(
    data: &mut [u8],
    width: usize,
    key_offset: usize,
    key_len: usize,
    scratch: &mut Vec<u8>,
) -> usize {
    // Write-combining defaults off: measured slower at 256-bucket fan-out
    // on current hardware (see module docs and the `ablation_wc` bench).
    if key_len <= LSD_MAX_KEY_BYTES {
        lsd_radix_sort_rows_opts(data, width, key_offset, key_len, scratch, false)
    } else {
        msd_radix_sort_rows_opts(data, width, key_offset, key_len, scratch, false)
    }
}

/// Stable LSD radix sort: one fused counting sweep per
/// [`LSD_MAX_KEY_BYTES`]-byte window of key bytes, then one
/// scatter pass per key byte, least significant (last) byte first.
pub fn lsd_radix_sort_rows(data: &mut [u8], width: usize, key_offset: usize, key_len: usize) {
    let mut scratch = Vec::new();
    lsd_radix_sort_rows_opts(data, width, key_offset, key_len, &mut scratch, false);
}

/// [`lsd_radix_sort_rows`] with pooled scratch and an explicit
/// write-combining switch (the `ablation_wc` bench toggles it). Returns
/// the number of scatter passes performed.
pub fn lsd_radix_sort_rows_opts(
    data: &mut [u8],
    width: usize,
    key_offset: usize,
    key_len: usize,
    scratch: &mut Vec<u8>,
    write_combine: bool,
) -> usize {
    let n = data.len() / width;
    if n <= 1 || key_len == 0 {
        return 0;
    }
    debug_assert_eq!(data.len() % width, 0);
    scratch.resize(radix_scratch_len(data.len(), width), 0);
    let (aux, wc) = scratch.split_at_mut(data.len());

    let use_wc = write_combine && n >= WC_MIN_ROWS;
    let mut passes = 0usize;
    // `in_aux` flag: false ⇒ current data in `data`, true ⇒ in `aux`.
    let mut in_aux = false;
    // Fused counting: one sweep builds the histograms of up to
    // LSD_MAX_KEY_BYTES key bytes at once. Scatter passes permute rows but
    // never change byte values, so a window's histograms stay valid for
    // every pass of that window; wider keys just take one counting sweep
    // per window instead of one per byte.
    let mut hi_rel = key_len;
    while hi_rel > 0 {
        let lo_rel = hi_rel.saturating_sub(LSD_MAX_KEY_BYTES);
        let fuse = hi_rel - lo_rel;
        let mut all_counts = [[0usize; 256]; LSD_MAX_KEY_BYTES];
        let src: &[u8] = if in_aux { aux } else { data };
        for r in 0..n {
            let at = r * width + key_offset + lo_rel;
            let key = &src[at..at + fuse];
            for (counts, &b) in all_counts.iter_mut().zip(key.iter()) {
                counts[b as usize] += 1;
            }
        }
        for rel in (lo_rel..hi_rel).rev() {
            let counts = &all_counts[rel - lo_rel];
            // All rows in one bucket: this pass cannot change the order;
            // skip the copy (paper's optimization).
            if counts.contains(&n) {
                continue;
            }
            let byte = key_offset + rel;
            if in_aux {
                scatter_pass(aux, data, wc, width, byte, 0, n, counts, use_wc);
            } else {
                scatter_pass(data, aux, wc, width, byte, 0, n, counts, use_wc);
            }
            in_aux = !in_aux;
            passes += 1;
        }
        hi_rel = lo_rel;
    }
    if in_aux {
        data.copy_from_slice(aux);
    }
    passes
}

/// Stable MSD radix sort: bucket by the most significant byte, recurse into
/// each bucket on the next byte; buckets of ≤ [`MSD_INSERTION_THRESHOLD`]
/// rows use insertion sort on the remaining key bytes.
pub fn msd_radix_sort_rows(data: &mut [u8], width: usize, key_offset: usize, key_len: usize) {
    let mut scratch = Vec::new();
    msd_radix_sort_rows_opts(data, width, key_offset, key_len, &mut scratch, false);
}

/// [`msd_radix_sort_rows`] with pooled scratch and an explicit
/// write-combining switch (the `ablation_wc` bench toggles it). Returns
/// the number of scatter passes performed across all recursion levels.
pub fn msd_radix_sort_rows_opts(
    data: &mut [u8],
    width: usize,
    key_offset: usize,
    key_len: usize,
    scratch: &mut Vec<u8>,
    write_combine: bool,
) -> usize {
    let n = data.len() / width;
    if n <= 1 || key_len == 0 {
        return 0;
    }
    scratch.resize(radix_scratch_len(data.len(), width), 0);
    let (aux, wc) = scratch.split_at_mut(data.len());
    msd_rec(
        data,
        aux,
        wc,
        width,
        key_offset,
        key_offset + key_len,
        0,
        n,
        write_combine,
    )
}

/// One stable counting-scatter of rows `start..end` from `src` into `dst`
/// by the byte at `byte`, with optional software write-combining: rows are
/// staged [`WC_BUCKET_ROWS`] at a time per bucket in `wc` and flushed with
/// one contiguous copy, so the 256 scatter destinations see batched writes
/// instead of single-row ones.
#[allow(clippy::too_many_arguments)]
fn scatter_pass(
    src: &[u8],
    dst: &mut [u8],
    wc: &mut [u8],
    width: usize,
    byte: usize,
    start: usize,
    end: usize,
    counts: &[usize; 256],
    use_wc: bool,
) {
    let mut offsets = [0usize; 256];
    let mut sum = start;
    for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
        *o = sum;
        sum += c;
    }
    if !use_wc {
        for r in start..end {
            let b = src[r * width + byte] as usize;
            let dst_row = offsets[b];
            offsets[b] += 1;
            dst[dst_row * width..(dst_row + 1) * width]
                .copy_from_slice(&src[r * width..(r + 1) * width]);
        }
        return;
    }

    let slot = WC_BUCKET_ROWS * width;
    let mut fill = [0usize; 256];
    for r in start..end {
        let b = src[r * width + byte] as usize;
        let f = fill[b];
        let stage = b * slot + f * width;
        wc[stage..stage + width].copy_from_slice(&src[r * width..(r + 1) * width]);
        if f + 1 == WC_BUCKET_ROWS {
            // Bucket staging full: flush all rows with one copy. Rows keep
            // their arrival order, so the scatter stays stable.
            let at = offsets[b];
            dst[at * width..(at + WC_BUCKET_ROWS) * width]
                .copy_from_slice(&wc[b * slot..b * slot + slot]);
            offsets[b] = at + WC_BUCKET_ROWS;
            fill[b] = 0;
        } else {
            fill[b] = f + 1;
        }
    }
    // Flush the partially filled buckets.
    for (b, &f) in fill.iter().enumerate() {
        if f > 0 {
            debug_assert!(f < WC_BUCKET_ROWS);
            let at = offsets[b];
            dst[at * width..(at + f) * width].copy_from_slice(&wc[b * slot..b * slot + f * width]);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn msd_rec(
    data: &mut [u8],
    aux: &mut [u8],
    wc: &mut [u8],
    width: usize,
    mut byte: usize,
    key_end: usize,
    start: usize,
    end: usize,
    write_combine: bool,
) -> usize {
    let n = end - start;
    if n <= 1 {
        return 0;
    }
    // Small bucket: insertion sort on the remaining key bytes.
    if n <= MSD_INSERTION_THRESHOLD {
        let mut rows = RowsMut::new(&mut data[start * width..end * width], width);
        insertion_sort_rows(&mut rows, &mut |a, b| a[byte..key_end] < b[byte..key_end]);
        return 0;
    }

    // Fused counting: histogram up to MSD_FUSE_BYTES successive bytes in
    // one sweep, then advance past the all-equal ones (common-prefix skip:
    // no copying — and, fused, no re-scanning per skipped byte).
    let counts = loop {
        if byte >= key_end {
            return 0; // keys exhausted: bucket fully equal
        }
        let fuse = MSD_FUSE_BYTES.min(key_end - byte);
        let mut multi = [[0usize; 256]; MSD_FUSE_BYTES];
        for r in start..end {
            let at = r * width + byte;
            let bytes = &data[at..at + fuse];
            for (counts, &b) in multi.iter_mut().zip(bytes.iter()) {
                counts[b as usize] += 1;
            }
        }
        match multi.iter().take(fuse).position(|c| !c.contains(&n)) {
            Some(k) => {
                byte += k;
                break multi[k];
            }
            None => byte += fuse,
        }
    };

    // Scatter into aux by the distinguishing byte, stable, then copy back.
    let mut bucket_starts = [0usize; 256];
    let mut sum = start;
    for (o, &c) in bucket_starts.iter_mut().zip(counts.iter()) {
        *o = sum;
        sum += c;
    }
    let use_wc = write_combine && n >= WC_MIN_ROWS;
    scatter_pass(data, aux, wc, width, byte, start, end, &counts, use_wc);
    data[start * width..end * width].copy_from_slice(&aux[start * width..end * width]);
    let mut passes = 1usize;

    // Recurse into each non-trivial bucket on the next byte.
    if byte + 1 < key_end {
        for (b, &bs) in bucket_starts.iter().enumerate() {
            let be = bs + counts[b];
            if be - bs > 1 {
                passes += msd_rec(
                    data,
                    aux,
                    wc,
                    width,
                    byte + 1,
                    key_end,
                    bs,
                    be,
                    write_combine,
                );
            }
        }
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_rows(keys: &[u32], width: usize) -> Vec<u8> {
        // Row: 4-byte BE key + (width-4) payload bytes derived from key.
        keys.iter()
            .flat_map(|&k| {
                let mut row = k.to_be_bytes().to_vec();
                row.extend((4..width).map(|i| (k as usize + i) as u8));
                row
            })
            .collect()
    }

    fn keys_of(data: &[u8], width: usize) -> Vec<u32> {
        data.chunks(width)
            .map(|r| u32::from_be_bytes(r[..4].try_into().unwrap()))
            .collect()
    }

    fn pseudo_random(n: usize, seed: u64, modk: u32) -> Vec<u32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as u32) % modk
            })
            .collect()
    }

    #[test]
    fn lsd_sorts_u32_keys() {
        for modk in [u32::MAX, 128, 2] {
            let keys = pseudo_random(10_000, 1, modk);
            let mut data = make_rows(&keys, 8);
            lsd_radix_sort_rows(&mut data, 8, 0, 4);
            let mut expected = keys.clone();
            expected.sort_unstable();
            assert_eq!(keys_of(&data, 8), expected, "modk={modk}");
        }
    }

    #[test]
    fn msd_sorts_u32_keys() {
        for modk in [u32::MAX, 128, 2] {
            let keys = pseudo_random(10_000, 2, modk);
            let mut data = make_rows(&keys, 8);
            msd_radix_sort_rows(&mut data, 8, 0, 4);
            let mut expected = keys.clone();
            expected.sort_unstable();
            assert_eq!(keys_of(&data, 8), expected, "modk={modk}");
        }
    }

    #[test]
    fn radix_dispatches_by_key_width() {
        // 4-byte key → LSD; result must be sorted either way.
        let keys = pseudo_random(5_000, 3, 1000);
        let mut data = make_rows(&keys, 8);
        radix_sort_rows(&mut data, 8, 0, 4);
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(keys_of(&data, 8), expected);
    }

    #[test]
    fn wide_keys_msd() {
        // 12-byte keys: 3 × 4-byte BE segments; compare as byte strings.
        let segs: Vec<[u32; 3]> = (0..5_000)
            .map(|i| {
                let r = pseudo_random(3, i as u64, 16);
                [r[0], r[1], r[2]]
            })
            .collect();
        let width = 16;
        let mut data: Vec<u8> = segs
            .iter()
            .flat_map(|s| {
                let mut row = Vec::with_capacity(width);
                for v in s {
                    row.extend_from_slice(&v.to_be_bytes());
                }
                row.extend_from_slice(&[0xEE; 4]);
                row
            })
            .collect();
        msd_radix_sort_rows(&mut data, width, 0, 12);
        let mut expected: Vec<Vec<u8>> = segs
            .iter()
            .map(|s| s.iter().flat_map(|v| v.to_be_bytes()).collect())
            .collect();
        expected.sort();
        for (i, row) in data.chunks(width).enumerate() {
            assert_eq!(&row[..12], &expected[i][..]);
        }
    }

    #[test]
    fn lsd_is_stable() {
        // Key byte 0; payload byte 1 records input order.
        let keys = [3u8, 1, 3, 1, 2, 3, 1];
        let mut data: Vec<u8> = keys
            .iter()
            .enumerate()
            .flat_map(|(i, &k)| [k, i as u8])
            .collect();
        lsd_radix_sort_rows(&mut data, 2, 0, 1);
        assert_eq!(data, vec![1, 1, 1, 3, 1, 6, 2, 4, 3, 0, 3, 2, 3, 5]);
    }

    #[test]
    fn msd_is_stable() {
        let keys = [3u8, 1, 3, 1, 2, 3, 1];
        let mut data: Vec<u8> = keys
            .iter()
            .enumerate()
            .flat_map(|(i, &k)| [k, i as u8])
            .collect();
        // Force the scatter path (threshold would shortcut to insertion
        // sort, which is also stable — test both).
        msd_radix_sort_rows(&mut data, 2, 0, 1);
        assert_eq!(data, vec![1, 1, 1, 3, 1, 6, 2, 4, 3, 0, 3, 2, 3, 5]);
    }

    #[test]
    fn msd_scatter_path_stable_large() {
        // > threshold rows, 1-byte key, payload = input order (2 bytes).
        let n = 1000usize;
        let mut data: Vec<u8> = (0..n)
            .flat_map(|i| [(i % 3) as u8, (i / 256) as u8, (i % 256) as u8])
            .collect();
        msd_radix_sort_rows(&mut data, 3, 0, 1);
        let mut last_order = [0usize; 3];
        for row in data.chunks(3) {
            let k = row[0] as usize;
            let ord = row[1] as usize * 256 + row[2] as usize;
            assert!(last_order[k] <= ord, "stability violated within key {k}");
            last_order[k] = ord + 1;
        }
    }

    #[test]
    fn write_combining_scatter_is_stable() {
        // Enough rows to clear WC_MIN_ROWS; 1-byte key over 3 buckets with
        // a 3-byte sequence number as payload. Both sorters, WC forced on
        // and off, must leave identical (stable) row orders.
        let n = WC_MIN_ROWS * 2;
        let rows: Vec<u8> = (0..n)
            .flat_map(|i| [(i % 3) as u8, (i >> 16) as u8, (i >> 8) as u8, i as u8])
            .collect();
        let mut scratch = Vec::new();
        let mut wc_on = rows.clone();
        lsd_radix_sort_rows_opts(&mut wc_on, 4, 0, 1, &mut scratch, true);
        let mut wc_off = rows.clone();
        lsd_radix_sort_rows_opts(&mut wc_off, 4, 0, 1, &mut scratch, false);
        assert_eq!(wc_on, wc_off, "LSD: write combining changed the order");
        let mut msd_on = rows.clone();
        msd_radix_sort_rows_opts(&mut msd_on, 4, 0, 1, &mut scratch, true);
        assert_eq!(msd_on, wc_off, "MSD: write combining changed the order");
    }

    #[test]
    fn write_combining_matches_plain_on_random_keys() {
        for (kw, width) in [(4usize, 8usize), (8, 12)] {
            let keys = pseudo_random(WC_MIN_ROWS + 1234, 21, u32::MAX);
            let rows: Vec<u8> = keys
                .iter()
                .flat_map(|&k| {
                    let mut row = k.to_be_bytes().to_vec();
                    row.extend(k.to_le_bytes());
                    row.truncate(width.min(8));
                    row.resize(width, 0xAB);
                    row
                })
                .collect();
            let mut scratch = Vec::new();
            let mut on = rows.clone();
            let mut off = rows.clone();
            if kw <= LSD_MAX_KEY_BYTES {
                lsd_radix_sort_rows_opts(&mut on, width, 0, kw, &mut scratch, true);
                lsd_radix_sort_rows_opts(&mut off, width, 0, kw, &mut scratch, false);
            } else {
                msd_radix_sort_rows_opts(&mut on, width, 0, kw, &mut scratch, true);
                msd_radix_sort_rows_opts(&mut off, width, 0, kw, &mut scratch, false);
            }
            assert_eq!(on, off, "kw={kw}");
        }
    }

    #[test]
    fn pooled_scratch_is_reused_across_calls() {
        let mut scratch = Vec::new();
        let keys = pseudo_random(8_000, 5, 1 << 20);
        let mut data = make_rows(&keys, 8);
        radix_sort_rows_with_scratch(&mut data, 8, 0, 4, &mut scratch);
        let cap = scratch.capacity();
        assert!(cap >= radix_scratch_len(data.len(), 8));
        // Second call with the warmed buffer must not grow it.
        let mut data2 = make_rows(&keys, 8);
        radix_sort_rows_with_scratch(&mut data2, 8, 0, 4, &mut scratch);
        assert_eq!(scratch.capacity(), cap);
        assert_eq!(keys_of(&data, 8), keys_of(&data2, 8));
    }

    #[test]
    fn single_bucket_skip_still_sorts() {
        // High bytes all zero (values < 256): LSD passes 0..2 skip.
        let keys = pseudo_random(2_000, 9, 256);
        let mut data = make_rows(&keys, 8);
        lsd_radix_sort_rows(&mut data, 8, 0, 4);
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(keys_of(&data, 8), expected);
    }

    #[test]
    fn common_prefix_msd() {
        // All keys share the first 8 bytes; differ in last 4.
        let keys = pseudo_random(3_000, 11, 1_000_000);
        let width = 12;
        let mut data: Vec<u8> = keys
            .iter()
            .flat_map(|&k| {
                let mut row = vec![0xAB; 8];
                row.extend_from_slice(&k.to_be_bytes());
                row
            })
            .collect();
        msd_radix_sort_rows(&mut data, width, 0, 12);
        let mut expected = keys.clone();
        expected.sort_unstable();
        for (i, row) in data.chunks(width).enumerate() {
            assert_eq!(
                u32::from_be_bytes(row[8..12].try_into().unwrap()),
                expected[i]
            );
        }
    }

    #[test]
    fn long_common_prefix_beyond_fuse_window() {
        // A shared prefix longer than MSD_FUSE_BYTES: the fused counting
        // loop must advance through several windows before scattering.
        let keys = pseudo_random(3_000, 15, 1_000_000);
        let prefix = MSD_FUSE_BYTES * 2 + 3;
        let width = prefix + 4;
        let mut data: Vec<u8> = keys
            .iter()
            .flat_map(|&k| {
                let mut row = vec![0x5C; prefix];
                row.extend_from_slice(&k.to_be_bytes());
                row
            })
            .collect();
        msd_radix_sort_rows(&mut data, width, 0, width);
        let mut expected = keys.clone();
        expected.sort_unstable();
        for (i, row) in data.chunks(width).enumerate() {
            assert_eq!(
                u32::from_be_bytes(row[prefix..].try_into().unwrap()),
                expected[i],
                "row {i}"
            );
        }
    }

    #[test]
    fn key_offset_respected() {
        // Row: 2 payload bytes, then 2-byte BE key.
        let keys = pseudo_random(1_000, 13, 60_000);
        let mut data: Vec<u8> = keys
            .iter()
            .flat_map(|&k| {
                let mut row = vec![0xCD, 0xEF];
                row.extend_from_slice(&(k as u16).to_be_bytes());
                row
            })
            .collect();
        lsd_radix_sort_rows(&mut data, 4, 2, 2);
        let got: Vec<u16> = data
            .chunks(4)
            .map(|r| u16::from_be_bytes(r[2..4].try_into().unwrap()))
            .collect();
        let mut expected: Vec<u16> = keys.iter().map(|&k| k as u16).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_and_single() {
        let mut empty: Vec<u8> = vec![];
        radix_sort_rows(&mut empty, 4, 0, 4);
        let mut one = vec![1u8, 2, 3, 4];
        radix_sort_rows(&mut one, 4, 0, 4);
        assert_eq!(one, vec![1, 2, 3, 4]);
    }

    #[test]
    fn all_equal_keys() {
        let mut data: Vec<u8> = (0..500u32)
            .flat_map(|i| {
                let mut row = 7u32.to_be_bytes().to_vec();
                row.extend_from_slice(&i.to_le_bytes());
                row
            })
            .collect();
        let before = data.clone();
        lsd_radix_sort_rows(&mut data, 8, 0, 4);
        assert_eq!(data, before, "stable sort of equal keys is the identity");
        let mut data2 = before.clone();
        msd_radix_sort_rows(&mut data2, 8, 0, 4);
        assert_eq!(data2, before);
    }
}

// Known-bad fixture for R001 (unsafe requires SAFETY comment).
// Scanned by the lint integration test only — never compiled, and
// excluded from the workspace scan by lint.toml.

fn good() {
    let x = [1u8, 2];
    // SAFETY: index 0 is in bounds because the array has two elements.
    let v = unsafe { *x.get_unchecked(0) };
    let _ = v;
}

fn bad() {
    let x = [1u8, 2];
    let v = unsafe { *x.get_unchecked(1) };
    let _ = v;
}

fn not_fooled_by_strings() {
    let _s = "unsafe { nothing }";
    let _r = r#"unsafe { raw "quoted" }"#;
    /* the word unsafe in /* a nested */ comment */
}

// SAFETY: does nothing; exists to prove documented fns are accepted.
pub unsafe fn documented_unsafe_fn() {}

pub unsafe fn undocumented_unsafe_fn() {}

//! Named tables over in-memory columnar storage.

use rowsort_vector::{DataChunk, LogicalType};
use std::collections::HashMap;

/// A registered table: name, named schema, and fully materialized data.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name as referenced in SQL.
    pub name: String,
    /// Column names, in schema order.
    pub column_names: Vec<String>,
    /// The rows.
    pub data: DataChunk,
}

impl Table {
    /// Build a table, checking the name list matches the data arity.
    pub fn new(name: impl Into<String>, column_names: Vec<String>, data: DataChunk) -> Table {
        assert_eq!(
            column_names.len(),
            data.column_count(),
            "column name count must match data arity"
        );
        Table {
            name: name.into(),
            column_names,
            data,
        }
    }

    /// Index of a column by name (case-insensitive, like SQL).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.column_names
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Column types in schema order.
    pub fn types(&self) -> Vec<LogicalType> {
        self.data.types()
    }
}

/// The table registry.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a table under its lower-cased name.
    pub fn register(&mut self, table: Table) {
        self.tables.insert(table.name.to_lowercase(), table);
    }

    /// Look up a table (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_lowercase())
    }

    /// Names of all registered tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.values().map(|t| t.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowsort_vector::Vector;

    fn sample() -> Table {
        let data = DataChunk::from_columns(vec![Vector::from_i32s(vec![1, 2])]).unwrap();
        Table::new("T1", vec!["a".into()], data)
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.register(sample());
        assert!(c.get("t1").is_some());
        assert!(c.get("T1").is_some());
        assert!(c.get("nope").is_none());
        assert_eq!(c.table_names(), vec!["T1"]);
    }

    #[test]
    fn column_index_case_insensitive() {
        let t = sample();
        assert_eq!(t.column_index("A"), Some(0));
        assert_eq!(t.column_index("b"), None);
    }

    #[test]
    #[should_panic(expected = "match data arity")]
    fn arity_mismatch_panics() {
        let data = DataChunk::from_columns(vec![Vector::from_i32s(vec![1])]).unwrap();
        let _ = Table::new("bad", vec!["a".into(), "b".into()], data);
    }
}

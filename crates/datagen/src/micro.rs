//! The §III micro-benchmark workload.

use rowsort_testkit::Rng;
use rowsort_vector::{DataChunk, Vector};

/// Number of unique values per column in the Correlated distributions, as
/// specified by the paper.
pub const CORRELATED_UNIQUE_VALUES: u32 = 128;

/// The paper's two micro-benchmark distributions of unsigned 32-bit keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Uniform over the full `u32` range: virtually no duplicates.
    Random,
    /// 128 unique values per column. The parameter `P` is the probability
    /// that two tuples with equal values in column *C* also have equal
    /// values in column *C+1*.
    Correlated(f64),
}

impl KeyDistribution {
    /// Short label used by benchmark output ("Random", "Correlated0.5", …).
    pub fn label(&self) -> String {
        match self {
            KeyDistribution::Random => "Random".to_owned(),
            KeyDistribution::Correlated(p) => format!("Correlated{p}"),
        }
    }

    /// The distribution sweep the experiments report: Random plus four
    /// correlation factors.
    pub const SWEEP: [KeyDistribution; 5] = [
        KeyDistribution::Random,
        KeyDistribution::Correlated(0.25),
        KeyDistribution::Correlated(0.5),
        KeyDistribution::Correlated(0.75),
        KeyDistribution::Correlated(1.0),
    ];
}

/// Generate `cols` key columns of `rows` values each.
///
/// For `Correlated(P)`: column 0 is uniform over 128 values. For column
/// *C+1*, each row is either *tied to* column *C* (its value is a fixed
/// function of the column-*C* value) or drawn independently. Two rows equal
/// in *C* stay equal in *C+1* if both are tied (or collide by chance), so
/// the per-row tie probability `q` is calibrated as
/// `q = sqrt((P - 1/128) / (1 - 1/128))`, making the *pairwise* conditional
/// equality probability equal to `P` as the paper defines it.
pub fn key_columns(dist: KeyDistribution, rows: usize, cols: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x8d3c_5a1f_0042_77ee);
    match dist {
        KeyDistribution::Random => (0..cols)
            .map(|_| (0..rows).map(|_| rng.next_u32()).collect())
            .collect(),
        KeyDistribution::Correlated(p) => {
            let u = CORRELATED_UNIQUE_VALUES;
            let base = 1.0 / u as f64;
            let q = if p <= base {
                0.0
            } else {
                ((p - base) / (1.0 - base)).sqrt().min(1.0)
            };
            let mut out: Vec<Vec<u32>> = Vec::with_capacity(cols);
            let first: Vec<u32> = (0..rows).map(|_| rng.range(0, u)).collect();
            out.push(first);
            for c in 1..cols {
                let prev = &out[c - 1];
                let col: Vec<u32> = (0..rows)
                    .map(|r| {
                        if rng.chance(q) {
                            // Tied: a deterministic, value-scrambling
                            // function of the previous column's value.
                            prev[r].wrapping_mul(2654435761).wrapping_add(c as u32) % u
                        } else {
                            rng.range(0, u)
                        }
                    })
                    .collect();
                out.push(col);
            }
            out
        }
    }
}

/// The same workload as a [`DataChunk`] of UINTEGER columns.
pub fn key_chunk(dist: KeyDistribution, rows: usize, cols: usize, seed: u64) -> DataChunk {
    let columns = key_columns(dist, rows, cols, seed)
        .into_iter()
        .map(Vector::from_u32s)
        .collect();
    DataChunk::from_columns(columns).expect("equal-length columns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn random_has_virtually_no_duplicates() {
        let cols = key_columns(KeyDistribution::Random, 10_000, 2, 7);
        for col in &cols {
            let unique: HashSet<u32> = col.iter().copied().collect();
            assert!(unique.len() > 9_980, "{} unique", unique.len());
        }
    }

    #[test]
    fn correlated_has_128_unique_values() {
        let cols = key_columns(KeyDistribution::Correlated(0.5), 50_000, 3, 8);
        for col in &cols {
            let unique: HashSet<u32> = col.iter().copied().collect();
            assert!(unique.len() <= 128);
            assert!(unique.len() > 100, "most values should appear");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = key_columns(KeyDistribution::Correlated(0.5), 1000, 4, 42);
        let b = key_columns(KeyDistribution::Correlated(0.5), 1000, 4, 42);
        let c = key_columns(KeyDistribution::Correlated(0.5), 1000, 4, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    /// Empirically check the paper's definition: among pairs equal in
    /// column C, a fraction ~P is equal in column C+1.
    fn measure_conditional_equality(p: f64) -> f64 {
        let n = 30_000;
        let cols = key_columns(KeyDistribution::Correlated(p), n, 2, 123);
        let (c0, c1) = (&cols[0], &cols[1]);
        // Sample pairs rather than all O(n²).
        let mut rng_state = 99u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 33) as usize
        };
        let (mut eq_c, mut eq_both) = (0u64, 0u64);
        let mut trials = 0u64;
        while eq_c < 20_000 && trials < 40_000_000 {
            trials += 1;
            let (i, j) = (next() % n, next() % n);
            if i != j && c0[i] == c0[j] {
                eq_c += 1;
                if c1[i] == c1[j] {
                    eq_both += 1;
                }
            }
        }
        eq_both as f64 / eq_c as f64
    }

    #[test]
    fn correlation_parameter_is_calibrated() {
        for p in [0.25, 0.5, 0.75] {
            let measured = measure_conditional_equality(p);
            assert!(
                (measured - p).abs() < 0.06,
                "target {p}, measured {measured}"
            );
        }
    }

    #[test]
    fn correlation_one_is_fully_tied() {
        let measured = measure_conditional_equality(1.0);
        assert!(measured > 0.999, "measured {measured}");
    }

    #[test]
    fn chunk_has_right_shape() {
        let chunk = key_chunk(KeyDistribution::Random, 100, 3, 1);
        assert_eq!(chunk.len(), 100);
        assert_eq!(chunk.column_count(), 3);
    }

    #[test]
    fn labels() {
        assert_eq!(KeyDistribution::Random.label(), "Random");
        assert_eq!(KeyDistribution::Correlated(0.5).label(), "Correlated0.5");
    }
}

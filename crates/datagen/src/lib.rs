//! Workload generators for the paper's experiments.
//!
//! * [`micro`] — the §III micro-benchmark data: `Random` (uniform 32-bit,
//!   virtually no duplicates) and `Correlated(P)` (128 unique values per
//!   column; `P` is the probability that two tuples equal in column *C*
//!   are also equal in column *C+1*),
//! * [`endtoend`] — Figure 12's shuffled integers and uniform floats,
//! * [`tpcds`] — synthetic TPC-DS-like `catalog_sales` and `customer`
//!   tables with Table IV's cardinalities, matching the column domains the
//!   paper's §VII benchmarks sort on.
//!
//! Everything is seeded and deterministic, so experiments are reproducible
//! run to run.

pub mod endtoend;
pub mod micro;
pub mod tpcds;

pub use endtoend::{shuffled_integers, uniform_floats};
pub use micro::{key_chunk, key_columns, KeyDistribution};
pub use tpcds::NamedTable;

//! Perf-regression gate for the pipeline benchmark.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [--tolerance <pct>] [--trace <file.jsonl>]
//! ```
//!
//! * `baseline.json` — the checked-in `BENCH_pipeline.json`: either an
//!   object with an `"after"` report array (plus `"before"` for context)
//!   or a bare report array as written by the harness.
//! * `fresh.json` — a report just produced via `ROWSORT_BENCH_JSON`.
//!
//! For every bench id present in both files, prints the median ratio and
//! flags entries whose fresh median exceeds baseline by more than the
//! tolerance (default 25% — the CI boxes are single-core and noisy, so
//! the gate flags only gross regressions). Any flagged entry **fails the
//! run** (exit 1); set `ROWSORT_BENCH_WARN_ONLY=1` to demote regressions
//! back to advisory warnings (exit 0) — the escape hatch for known-noisy
//! machines or intentional trade-offs awaiting a baseline refresh.
//!
//! With `--trace`, also reads a `ROWSORT_TRACE` JSONL file (one
//! [`rowsort_core::SortProfile`] object per sort) and prints where the
//! traced sorts spent their time, phase by phase — so a regression the
//! gate flags comes with an attribution of *which* phase got slower.

use rowsort_core::metrics::Phase;
use rowsort_testkit::json::Json;

struct Entry {
    id: String,
    median_ns: f64,
}

fn entries(report: &Json, path: &str) -> Vec<Entry> {
    let Some(items) = report.as_arr() else {
        return Vec::new();
    };
    let out: Vec<Entry> = items
        .iter()
        .filter_map(|item| {
            Some(Entry {
                id: item.get("id")?.as_str()?.to_owned(),
                median_ns: item.get("median_ns")?.as_f64()?,
            })
        })
        .collect();
    // A zero (or NaN/negative) median would make every ratio inf/NaN and
    // the tolerance check silently pass — refuse to gate on such a file.
    for e in &out {
        if !e.median_ns.is_finite() || e.median_ns <= 0.0 {
            die(&format!(
                "{path}: bench '{}' has non-positive median_ns ({}) — \
                 the file holds no usable samples; regenerate it",
                e.id, e.median_ns
            ));
        }
    }
    out
}

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("bench_gate: {msg}");
    std::process::exit(2);
}

/// Aggregate a `ROWSORT_TRACE` JSONL file into a per-phase time summary.
fn trace_attribution(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read trace {path}: {e}")));
    let mut phase_ns = [0.0f64; Phase::COUNT];
    let mut total_ns = 0.0f64;
    let mut total_rows = 0.0f64;
    let mut sorts = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(line)
            .unwrap_or_else(|e| die(&format!("trace line {}: invalid JSON: {e}", i + 1)));
        let Some(phases) = obj.get("phases") else {
            continue; // foreign event kinds are skipped, not fatal
        };
        sorts += 1;
        total_ns += obj.get("total_ns").and_then(Json::as_f64).unwrap_or(0.0);
        total_rows += obj.get("rows").and_then(Json::as_f64).unwrap_or(0.0);
        for (slot, phase) in phase_ns.iter_mut().zip(Phase::ALL) {
            *slot += phases
                .get(phase.name())
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
        }
    }
    if sorts == 0 {
        println!("bench_gate: trace {path} holds no sort events");
        return;
    }
    println!(
        "bench_gate: trace attribution ({sorts} sorts, {total_rows:.0} rows, \
         {:.2}ms total)",
        total_ns / 1e6
    );
    for (ns, phase) in phase_ns.iter().zip(Phase::ALL) {
        if *ns > 0.0 {
            println!(
                "  {:<16} {:>10.2}ms  ({:>5.1}%)",
                phase.name(),
                ns / 1e6,
                100.0 * ns / total_ns
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance_pct = 25.0;
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            tolerance_pct = it
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or_else(|| die("--tolerance needs a numeric percentage"));
        } else if arg == "--trace" {
            trace_path = Some(
                it.next()
                    .unwrap_or_else(|| die("--trace needs a JSONL file path"))
                    .clone(),
            );
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        die("usage: bench_gate <baseline.json> <fresh.json> [--tolerance <pct>] [--trace <file>]");
    };

    let baseline_doc = load(baseline_path);
    // BENCH_pipeline.json nests the reference run under "after"; a bare
    // harness report array is accepted too.
    let baseline = entries(
        baseline_doc.get("after").unwrap_or(&baseline_doc),
        baseline_path,
    );
    let fresh = entries(&load(fresh_path), fresh_path);
    if baseline.is_empty() {
        die(&format!("no bench entries in {baseline_path}"));
    }
    if fresh.is_empty() {
        die(&format!("no bench entries in {fresh_path}"));
    }

    let mut compared = 0usize;
    let mut regressions = 0usize;
    println!("bench_gate: fresh vs baseline (tolerance +{tolerance_pct:.0}%)");
    for f in &fresh {
        let Some(b) = baseline.iter().find(|b| b.id == f.id) else {
            println!("  {:<32} (no baseline entry — skipped)", f.id);
            continue;
        };
        compared += 1;
        let ratio = f.median_ns / b.median_ns;
        let verdict = if ratio > 1.0 + tolerance_pct / 100.0 {
            regressions += 1;
            "REGRESSION: slower than baseline"
        } else {
            "ok"
        };
        println!(
            "  {:<32} {:>10.2}ms vs {:>10.2}ms  ({:.2}x)  {}",
            f.id,
            f.median_ns / 1e6,
            b.median_ns / 1e6,
            ratio,
            verdict
        );
    }

    // `ROWSORT_BENCH_WARN_ONLY=1` restores the old advisory behavior
    // (shared spelling convention via testkit's env helper).
    let warn_only = rowsort_testkit::env::env_flag("ROWSORT_BENCH_WARN_ONLY", false);
    if compared == 0 {
        println!("bench_gate: no overlapping bench ids; nothing compared");
    } else if regressions > 0 {
        if warn_only {
            println!(
                "bench_gate: {regressions}/{compared} benches exceeded tolerance \
                 (ROWSORT_BENCH_WARN_ONLY set — not failing the build)"
            );
        } else {
            println!(
                "bench_gate: {regressions}/{compared} benches exceeded tolerance — \
                 failing (set ROWSORT_BENCH_WARN_ONLY=1 to demote to a warning)"
            );
        }
    } else {
        println!("bench_gate: all {compared} benches within tolerance");
    }

    if let Some(path) = trace_path {
        trace_attribution(&path);
    }

    if compared > 0 && regressions > 0 && !warn_only {
        std::process::exit(1);
    }
}

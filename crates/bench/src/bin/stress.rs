//! Differential spill-stress runner.
//!
//! ```text
//! stress --iters 50 --seed 0xR0WS0RT [--report target/perf/stress_report.json]
//! ```
//!
//! Runs the seeded fault-injection loop from [`rowsort_bench::stress`]:
//! each iteration sorts a random relation through the external sorter
//! under a random fault schedule and checks it against an in-memory
//! oracle. Prints one summary line per run, writes the JSON report when
//! asked, and exits non-zero if any invariant was violated — with the
//! per-iteration seed in the message, so a failure reproduces with
//! `--iters 1 --seed <that seed>`.

use rowsort_bench::stress::{parse_seed, run, StressConfig};

fn die(msg: &str) -> ! {
    eprintln!("stress: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut iters: u64 = 50;
    let mut seed_text = "0xR0WS0RT".to_owned();
    let mut report_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--iters" => {
                iters = value("--iters")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --iters: {e}")))
            }
            "--seed" => seed_text = value("--seed"),
            "--report" => report_path = Some(value("--report")),
            "--help" | "-h" => {
                println!("usage: stress [--iters N] [--seed S] [--report PATH]");
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let config = StressConfig {
        iters,
        seed: parse_seed(&seed_text),
        seed_text,
    };
    let report = run(&config);

    println!(
        "stress: {} iterations (seed {}): {} survived, {} failed typed-io, {} failed \
         typed-corrupt, {} degraded, {} faults fired, {} cleanup failures, {} violations",
        report.iters,
        config.seed_text,
        report.survived,
        report.failed_io,
        report.failed_corrupt,
        report.degraded,
        report.faults_fired,
        report.cleanup_failures,
        report.violations.len(),
    );

    if let Some(path) = &report_path {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, report.to_json(&config).render())
            .unwrap_or_else(|e| die(&format!("cannot write report {path}: {e}")));
        println!("stress: report written to {path}");
    }

    if !report.violations.is_empty() {
        for v in &report.violations {
            eprintln!("stress: VIOLATION: {v}");
        }
        eprintln!("stress: re-run a single failing iteration with --iters 1 --seed <seed above>");
        std::process::exit(1);
    }
}

//! A deliberately naive reference executor used as test-suite ground truth.
//!
//! It runs the same logical plans over boxed [`Value`] rows with obvious
//! row-at-a-time code and a stable comparison sort. Anything the vectorized
//! executor produces must match this (up to ordering within ties).

use crate::catalog::Catalog;
use crate::plan::{LogicalPlan, ResolvedPredicate};
use crate::sql::CmpOp;
use crate::{EngineError, Result};
use rowsort_vector::Value;
use std::cmp::Ordering;

/// Execute `plan` row-at-a-time, returning boxed rows.
pub fn execute_reference(plan: &LogicalPlan, catalog: &Catalog) -> Result<Vec<Vec<Value>>> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = catalog
                .get(table)
                .ok_or_else(|| EngineError::UnknownTable(table.clone()))?;
            Ok(t.data.to_rows())
        }
        LogicalPlan::Filter { input, predicates } => {
            let rows = execute_reference(input, catalog)?;
            Ok(rows
                .into_iter()
                .filter(|r| predicates.iter().all(|p| matches(r, p)))
                .collect())
        }
        LogicalPlan::Project { input, columns } => {
            let rows = execute_reference(input, catalog)?;
            Ok(rows
                .into_iter()
                .map(|r| columns.iter().map(|&c| r[c].clone()).collect())
                .collect())
        }
        LogicalPlan::Sort { input, order } => {
            let mut rows = execute_reference(input, catalog)?;
            rows.sort_by(|a, b| order.compare_rows(a, b));
            Ok(rows)
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let rows = execute_reference(input, catalog)?;
            let it = rows.into_iter().skip(*offset as usize);
            Ok(match limit {
                Some(l) => it.take(*l as usize).collect(),
                None => it.collect(),
            })
        }
        LogicalPlan::TopN {
            input,
            order,
            limit,
            offset,
        } => {
            let mut rows = execute_reference(input, catalog)?;
            rows.sort_by(|a, b| order.compare_rows(a, b));
            Ok(rows
                .into_iter()
                .skip(*offset as usize)
                .take(*limit as usize)
                .collect())
        }
        LogicalPlan::CountStar { input } => {
            let rows = execute_reference(input, catalog)?;
            Ok(vec![vec![Value::Int64(rows.len() as i64)]])
        }
        LogicalPlan::SortMergeJoin {
            left,
            right,
            left_col,
            right_col,
            ..
        } => {
            // Ground truth: a nested-loop join.
            let l = execute_reference(left, catalog)?;
            let r = execute_reference(right, catalog)?;
            let mut out = Vec::new();
            for lr in &l {
                if lr[*left_col].is_null() {
                    continue;
                }
                for rr in &r {
                    if rr[*right_col].is_null() {
                        continue;
                    }
                    if lr[*left_col].compare_non_null(&rr[*right_col]) == Ordering::Equal {
                        let mut row = lr.clone();
                        row.extend(rr.iter().cloned());
                        out.push(row);
                    }
                }
            }
            Ok(out)
        }
        LogicalPlan::WindowRowNumber { input, order } => {
            let mut rows = execute_reference(input, catalog)?;
            rows.sort_by(|a, b| order.compare_rows(a, b));
            Ok(rows
                .into_iter()
                .enumerate()
                .map(|(i, mut row)| {
                    row.push(Value::Int64(i as i64 + 1));
                    row
                })
                .collect())
        }
    }
}

fn matches(row: &[Value], p: &ResolvedPredicate) -> bool {
    match p {
        ResolvedPredicate::IsNull { column, negated } => row[*column].is_null() != *negated,
        ResolvedPredicate::Compare { column, op, value } => {
            let v = &row[*column];
            if v.is_null() {
                return false;
            }
            let ord = v.compare_non_null(value);
            match op {
                CmpOp::Eq => ord == Ordering::Equal,
                CmpOp::Ne => ord != Ordering::Equal,
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
            }
        }
    }
}

//! The logical (SQL-level) type system.

/// SQL-level data types supported by the workspace.
///
/// The paper's micro-benchmarks use unsigned 32-bit integers, and its
/// end-to-end benchmarks add signed integers, floats, and VARCHAR
/// (TPC-DS `customer` names). We support the full fixed-width integer
/// family plus floats, dates, timestamps, and variable-length strings so the
/// row layout and normalized-key encodings are exercised across widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalType {
    /// `BOOLEAN`.
    Boolean,
    /// `TINYINT`, signed 8-bit.
    Int8,
    /// `SMALLINT`, signed 16-bit.
    Int16,
    /// `INTEGER`, signed 32-bit.
    Int32,
    /// `BIGINT`, signed 64-bit.
    Int64,
    /// Unsigned 8-bit.
    UInt8,
    /// Unsigned 16-bit.
    UInt16,
    /// Unsigned 32-bit (the paper's micro-benchmark key type).
    UInt32,
    /// Unsigned 64-bit.
    UInt64,
    /// `REAL`, IEEE-754 binary32.
    Float32,
    /// `DOUBLE`, IEEE-754 binary64.
    Float64,
    /// `DATE`, days since the UNIX epoch, signed 32-bit.
    Date,
    /// `TIMESTAMP`, microseconds since the UNIX epoch, signed 64-bit.
    Timestamp,
    /// `VARCHAR`, UTF-8 string of arbitrary length.
    Varchar,
}

impl LogicalType {
    /// Width in bytes of the in-memory fixed-size representation, or `None`
    /// for variable-length types.
    ///
    /// This is the width of the value itself; NULL tracking is external
    /// (a [`crate::Validity`] in DSM, a flag byte in the NSM row layout).
    pub const fn fixed_width(self) -> Option<usize> {
        match self {
            LogicalType::Boolean | LogicalType::Int8 | LogicalType::UInt8 => Some(1),
            LogicalType::Int16 | LogicalType::UInt16 => Some(2),
            LogicalType::Int32 | LogicalType::UInt32 | LogicalType::Float32 | LogicalType::Date => {
                Some(4)
            }
            LogicalType::Int64
            | LogicalType::UInt64
            | LogicalType::Float64
            | LogicalType::Timestamp => Some(8),
            LogicalType::Varchar => None,
        }
    }

    /// Whether the type is stored inline at a fixed width.
    pub const fn is_fixed_width(self) -> bool {
        self.fixed_width().is_some()
    }

    /// Whether the type is numeric (integer or float).
    pub const fn is_numeric(self) -> bool {
        matches!(
            self,
            LogicalType::Int8
                | LogicalType::Int16
                | LogicalType::Int32
                | LogicalType::Int64
                | LogicalType::UInt8
                | LogicalType::UInt16
                | LogicalType::UInt32
                | LogicalType::UInt64
                | LogicalType::Float32
                | LogicalType::Float64
        )
    }

    /// Whether the type is an integer (signed or unsigned).
    pub const fn is_integer(self) -> bool {
        self.is_numeric() && !matches!(self, LogicalType::Float32 | LogicalType::Float64)
    }

    /// The width of this type's normalized-key body in bytes, excluding the
    /// leading NULL byte. Variable-length types contribute a prefix whose
    /// length is chosen at plan time; `prefix_len` caps it.
    pub const fn norm_key_body_width(self, prefix_len: usize) -> usize {
        match self.fixed_width() {
            Some(w) => w,
            None => prefix_len,
        }
    }

    /// Human-readable SQL-ish name.
    pub const fn name(self) -> &'static str {
        match self {
            LogicalType::Boolean => "BOOLEAN",
            LogicalType::Int8 => "TINYINT",
            LogicalType::Int16 => "SMALLINT",
            LogicalType::Int32 => "INTEGER",
            LogicalType::Int64 => "BIGINT",
            LogicalType::UInt8 => "UTINYINT",
            LogicalType::UInt16 => "USMALLINT",
            LogicalType::UInt32 => "UINTEGER",
            LogicalType::UInt64 => "UBIGINT",
            LogicalType::Float32 => "REAL",
            LogicalType::Float64 => "DOUBLE",
            LogicalType::Date => "DATE",
            LogicalType::Timestamp => "TIMESTAMP",
            LogicalType::Varchar => "VARCHAR",
        }
    }

    /// Parse a SQL type name (case-insensitive). Returns `None` if unknown.
    pub fn parse(name: &str) -> Option<LogicalType> {
        let upper = name.to_ascii_uppercase();
        Some(match upper.as_str() {
            "BOOLEAN" | "BOOL" => LogicalType::Boolean,
            "TINYINT" | "INT1" => LogicalType::Int8,
            "SMALLINT" | "INT2" => LogicalType::Int16,
            "INTEGER" | "INT" | "INT4" => LogicalType::Int32,
            "BIGINT" | "INT8" => LogicalType::Int64,
            "UTINYINT" => LogicalType::UInt8,
            "USMALLINT" => LogicalType::UInt16,
            "UINTEGER" | "UINT" => LogicalType::UInt32,
            "UBIGINT" => LogicalType::UInt64,
            "REAL" | "FLOAT4" | "FLOAT" => LogicalType::Float32,
            "DOUBLE" | "FLOAT8" => LogicalType::Float64,
            "DATE" => LogicalType::Date,
            "TIMESTAMP" => LogicalType::Timestamp,
            "VARCHAR" | "TEXT" | "STRING" => LogicalType::Varchar,
            _ => return None,
        })
    }

    /// All types, in a stable order. Useful for exhaustive tests.
    pub const ALL: [LogicalType; 14] = [
        LogicalType::Boolean,
        LogicalType::Int8,
        LogicalType::Int16,
        LogicalType::Int32,
        LogicalType::Int64,
        LogicalType::UInt8,
        LogicalType::UInt16,
        LogicalType::UInt32,
        LogicalType::UInt64,
        LogicalType::Float32,
        LogicalType::Float64,
        LogicalType::Date,
        LogicalType::Timestamp,
        LogicalType::Varchar,
    ];
}

impl std::fmt::Display for LogicalType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_widths_match_rust_types() {
        assert_eq!(LogicalType::Boolean.fixed_width(), Some(1));
        assert_eq!(LogicalType::Int8.fixed_width(), Some(1));
        assert_eq!(LogicalType::Int16.fixed_width(), Some(2));
        assert_eq!(LogicalType::Int32.fixed_width(), Some(4));
        assert_eq!(LogicalType::Int64.fixed_width(), Some(8));
        assert_eq!(LogicalType::UInt32.fixed_width(), Some(4));
        assert_eq!(LogicalType::Float32.fixed_width(), Some(4));
        assert_eq!(LogicalType::Float64.fixed_width(), Some(8));
        assert_eq!(LogicalType::Date.fixed_width(), Some(4));
        assert_eq!(LogicalType::Timestamp.fixed_width(), Some(8));
        assert_eq!(LogicalType::Varchar.fixed_width(), None);
    }

    #[test]
    fn varchar_is_variable_width() {
        assert!(!LogicalType::Varchar.is_fixed_width());
        assert!(!LogicalType::Varchar.is_numeric());
        assert_eq!(LogicalType::Varchar.norm_key_body_width(12), 12);
    }

    #[test]
    fn classification() {
        assert!(LogicalType::UInt32.is_integer());
        assert!(LogicalType::Float64.is_numeric());
        assert!(!LogicalType::Float64.is_integer());
        assert!(!LogicalType::Boolean.is_numeric());
        assert!(!LogicalType::Date.is_numeric());
    }

    #[test]
    fn parse_round_trips_name() {
        for ty in LogicalType::ALL {
            assert_eq!(LogicalType::parse(ty.name()), Some(ty), "{ty}");
            assert_eq!(
                LogicalType::parse(&ty.name().to_lowercase()),
                Some(ty),
                "{ty} lowercase"
            );
        }
        assert_eq!(LogicalType::parse("no_such_type"), None);
    }

    #[test]
    fn parse_aliases() {
        assert_eq!(LogicalType::parse("int"), Some(LogicalType::Int32));
        assert_eq!(LogicalType::parse("text"), Some(LogicalType::Varchar));
        assert_eq!(LogicalType::parse("bool"), Some(LogicalType::Boolean));
        assert_eq!(LogicalType::parse("float"), Some(LogicalType::Float32));
    }

    #[test]
    fn norm_key_body_width_fixed_ignores_prefix() {
        assert_eq!(LogicalType::Int64.norm_key_body_width(3), 8);
        assert_eq!(LogicalType::UInt8.norm_key_body_width(99), 1);
    }
}

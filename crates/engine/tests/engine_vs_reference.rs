//! Differential tests: the vectorized executor vs. the naive reference
//! executor, over generated TPC-DS-like data and randomized queries.

use rowsort_core::systems::SystemProfile;
use rowsort_engine::reference::execute_reference;
use rowsort_engine::{plan, sql, Engine, Table};
use rowsort_testkit::prop;
use rowsort_testkit::prop::{full_bool, option_of, vec_of};
use rowsort_vector::Value;
use std::cmp::Ordering;

fn tpcds_engine() -> Engine {
    let mut e = Engine::new();
    let cs = rowsort_datagen::tpcds::catalog_sales(2_000, 10.0, 7);
    let names = cs.columns.iter().map(|(n, _)| n.clone()).collect();
    e.register_table(Table::new(cs.name.clone(), names, cs.data.clone()));
    let cust = rowsort_datagen::tpcds::customer(2_000, 7);
    let names = cust.columns.iter().map(|(n, _)| n.clone()).collect();
    e.register_table(Table::new(cust.name.clone(), names, cust.data.clone()));
    e
}

/// Compare results, tolerating different orders within tie groups: both
/// sides must be sorted under the plan's output ordering, and be equal as
/// multisets.
fn assert_equivalent(
    got: Vec<Vec<Value>>,
    expected: Vec<Vec<Value>>,
    order: Option<&rowsort_vector::OrderBy>,
    context: &str,
) {
    assert_eq!(got.len(), expected.len(), "{context}: row counts");
    if let Some(ob) = order {
        for w in got.windows(2) {
            assert_ne!(
                ob.compare_rows(&w[0], &w[1]),
                Ordering::Greater,
                "{context}: engine output out of order"
            );
        }
    }
    let canon = |mut rows: Vec<Vec<Value>>| {
        let mut v: Vec<String> = rows.drain(..).map(|r| format!("{r:?}")).collect();
        v.sort();
        v
    };
    assert_eq!(canon(got), canon(expected), "{context}: multiset");
}

fn run_case(e: &Engine, sql_text: &str) {
    let ast = sql::parse(sql_text).unwrap();
    let logical = plan::build(&ast, e.catalog()).unwrap();
    let expected = execute_reference(&logical, e.catalog()).unwrap();
    // Extract the top-level ordering (if the plan's result is ordered).
    fn output_order(p: &plan::LogicalPlan) -> Option<rowsort_vector::OrderBy> {
        match p {
            plan::LogicalPlan::Sort { order, .. } => Some(order.clone()),
            plan::LogicalPlan::TopN { order, .. } => Some(order.clone()),
            plan::LogicalPlan::Project { input, .. } => {
                // Ordering refers to pre-projection columns; skip check.
                let _ = input;
                None
            }
            plan::LogicalPlan::Limit { input, .. } => output_order(input),
            _ => None,
        }
    }
    let order = output_order(&logical);
    let got = e.query(sql_text).unwrap().to_rows();
    assert_equivalent(got, expected, order.as_ref(), sql_text);
}

#[test]
fn catalog_sales_order_by_sweeps() {
    let e = tpcds_engine();
    let keys = [
        "cs_warehouse_sk",
        "cs_warehouse_sk, cs_ship_mode_sk",
        "cs_warehouse_sk, cs_ship_mode_sk, cs_promo_sk",
        "cs_warehouse_sk, cs_ship_mode_sk, cs_promo_sk, cs_quantity",
    ];
    for k in keys {
        run_case(
            &e,
            &format!("SELECT cs_item_sk FROM catalog_sales ORDER BY {k}"),
        );
    }
}

#[test]
fn customer_string_and_int_sorts() {
    let e = tpcds_engine();
    run_case(
        &e,
        "SELECT c_customer_sk FROM customer ORDER BY c_birth_year, c_birth_month, c_birth_day",
    );
    run_case(
        &e,
        "SELECT c_customer_sk FROM customer ORDER BY c_last_name, c_first_name",
    );
    run_case(
        &e,
        "SELECT c_customer_sk FROM customer \
         ORDER BY c_last_name DESC NULLS LAST, c_birth_year ASC NULLS FIRST",
    );
}

#[test]
fn benchmark_query_counts_match() {
    let e = tpcds_engine();
    let r = e
        .query(
            "SELECT count(*) FROM (SELECT cs_item_sk FROM catalog_sales \
             ORDER BY cs_warehouse_sk OFFSET 1) t",
        )
        .unwrap();
    assert_eq!(r.row(0), vec![Value::Int64(1_999)]);
}

#[test]
fn filters_and_limits_against_reference() {
    let e = tpcds_engine();
    for sql_text in [
        "SELECT * FROM catalog_sales WHERE cs_quantity >= 90",
        "SELECT cs_item_sk FROM catalog_sales WHERE cs_warehouse_sk IS NULL",
        "SELECT cs_item_sk FROM catalog_sales WHERE cs_warehouse_sk IS NOT NULL AND cs_quantity < 5",
        "SELECT c_customer_sk FROM customer WHERE c_last_name = 'Smith' ORDER BY c_customer_sk",
        "SELECT c_customer_sk FROM customer ORDER BY c_customer_sk DESC LIMIT 10",
        "SELECT c_customer_sk FROM customer ORDER BY c_customer_sk LIMIT 7 OFFSET 3",
        "SELECT count(*) FROM customer WHERE c_birth_year > 1980",
    ] {
        run_case(&e, sql_text);
    }
}

#[test]
fn every_system_profile_equals_reference() {
    for p in SystemProfile::ALL {
        let mut e = tpcds_engine();
        e.options_mut().profile = p;
        e.options_mut().threads = 2;
        run_case(
            &e,
            "SELECT cs_item_sk FROM catalog_sales \
             ORDER BY cs_warehouse_sk, cs_ship_mode_sk, cs_promo_sk, cs_quantity",
        );
        run_case(
            &e,
            "SELECT c_customer_sk FROM customer ORDER BY c_last_name, c_first_name",
        );
    }
}

prop! {
    #![cases(64)]

    fn random_order_by_queries_match_reference(
        key_cols in vec_of(0usize..5, 1..4),
        descs in vec_of(full_bool(), 3..=3),
        limit in option_of(0u64..50),
        offset in option_of(0u64..20),
    ) {
        let cols = [
            "cs_item_sk",
            "cs_warehouse_sk",
            "cs_ship_mode_sk",
            "cs_promo_sk",
            "cs_quantity",
        ];
        let order_items: Vec<String> = key_cols
            .iter()
            .zip(descs.iter().cycle())
            .map(|(&c, &d)| format!("{} {}", cols[c], if d { "DESC" } else { "ASC" }))
            .collect();
        let mut sql_text = format!(
            "SELECT cs_item_sk FROM catalog_sales ORDER BY {}",
            order_items.join(", ")
        );
        if let Some(l) = limit {
            sql_text.push_str(&format!(" LIMIT {l}"));
        }
        if let Some(o) = offset {
            sql_text.push_str(&format!(" OFFSET {o}"));
        }
        let e = tpcds_engine();
        run_case(&e, &sql_text);
    }
}

//! Hermetic test infrastructure for the rowsort workspace.
//!
//! Everything the workspace's tests and benches previously pulled from
//! crates.io (`rand`, `proptest`, `criterion`) lives here instead, with no
//! dependencies outside `std`, so `cargo build && cargo test` succeeds with
//! the registry unreachable:
//!
//! * [`rng`] — a deterministic xoshiro256** PRNG ([`Rng`]) with the
//!   distribution helpers the workload generators and property tests need:
//!   uniform integers and floats, biased coin flips, Zipfian sampling,
//!   shuffles, and string/byte-vector generation.
//! * [`prop`] — a mini property-testing harness: [`prop!`] declares
//!   `#[test]` functions over [`prop::Gen`] value generators, runs a
//!   configurable number of cases from a deterministic (env-overridable)
//!   seed, and on failure greedily shrinks the input (halving numerics,
//!   truncating vectors and strings) before printing the minimal failing
//!   value together with a re-runnable seed.
//! * [`bench`] — a small wall-clock benchmark harness in the shape of
//!   criterion's API (groups, `iter`/`iter_batched`, warmup,
//!   median-of-N samples) that reports results as text and JSON.
//! * [`hash`] — a hand-rolled streaming xxHash64 ([`hash::XxHash64`]),
//!   pinned to the reference test vectors; the checksum behind spill-file
//!   integrity verification.
//! * [`env`] — the one parsing convention for `ROWSORT_*` environment
//!   knobs (boolean spellings, numeric counts), shared by core, the
//!   benches, and the tools so no knob drifts its own dialect again.
//! * [`faultfs`] — a deterministic fault-injecting in-memory filesystem
//!   ([`faultfs::FaultFs`]) that replays seeded [`faultfs::FaultSchedule`]s
//!   (write errors, ENOSPC, short reads, bit flips, delete faults) against
//!   the spill I/O surface.
//!
//! # Reproducing a failure
//!
//! A failing property prints its run seed:
//!
//! ```text
//! property 'typed_sorts_agree_with_std' failed (case 17 of 128, seed 0x92d68ca2)
//! ...
//! rerun: TESTKIT_SEED=0x92d68ca2 cargo test -p <crate> typed_sorts_agree_with_std
//! ```
//!
//! Setting `TESTKIT_SEED` replays the identical case sequence. Without the
//! variable, the seed is derived from the property name, so CI runs are
//! fully deterministic; set `TESTKIT_SEED` to a fresh value (or
//! `TESTKIT_CASES` to a larger count) to explore new inputs.

pub mod alloc;
pub mod bench;
pub mod env;
pub mod faultfs;
pub mod hash;
pub mod json;
pub mod prop;
pub mod rng;

pub use prop::{Gen, PropResult, Runner};
pub use rng::{Rng, Zipf};

//! Self-fuzz smoke: the analyzer must never panic, whatever bytes it is
//! fed.
//!
//! rowsort-lint runs on every verify invocation, so a lexer/parser/
//! dataflow panic on weird-but-real source (half-deleted merge
//! conflicts, truncated files, non-UTF-8 replacement chars) would take
//! tier-1 down with it. The loss-tolerant parser is *designed* to
//! produce a best-effort AST from arbitrary token streams; this test
//! pins the "no panic, ever" half of that contract:
//!
//! 1. every `.rs` file of the lint crate itself, run through a seeded
//!    byte-level mutator (delete / duplicate / splice junk / punctuate /
//!    truncate) and then the full pipeline — token rules, AST, call
//!    graph, CFG + dataflow rules;
//! 2. pure random byte strings, analyzed both as `.rs` and as a
//!    `Cargo.toml` manifest.
//!
//! Everything derives from fixed seeds (testkit's splitmix64-seeded
//! PRNG), so a failure reproduces exactly: re-run with the printed file
//! and case index. No network, no wall-clock, no corpus files.

use lint::{rules, Config};
use rowsort_testkit::rng::Rng;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Mutated-source cases per input file. Each case applies 1–4 byte-level
/// edits, so ~6 cases per file covers every mutator arm several times
/// across the crate without dominating `cargo test -p lint` runtime.
const CASES_PER_FILE: usize = 6;
/// Pure-garbage cases (random byte strings up to 4 KiB).
const RANDOM_STRINGS: usize = 64;

/// The real workspace `lint.toml`, so scoped rules (hot paths, cast
/// strictness, taint sources) actually fire on the mutated sources.
fn workspace_config() -> Config {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let src = fs::read_to_string(root.join("lint.toml")).expect("workspace lint.toml");
    Config::parse(&src)
}

/// Run the full analysis pipeline over one in-memory file and report
/// whether it panicked. The file is presented under a `crates/core/src/`
/// path so the hot-path/cast-strict scoped rules are in play.
fn analyze_panics(rel: &str, src: &str, cfg: &Config) -> bool {
    catch_unwind(AssertUnwindSafe(|| {
        let mut n = lint::analyze_source(rel, src, cfg).len();
        let unit = vec![(rel.to_string(), src.to_string())];
        n += rules::analyze_unit(&unit, cfg).len();
        n
    }))
    .is_err()
}

/// Byte-level mutator: 1–4 random edits, then lossy UTF-8 decode (the
/// analyzer takes `&str`; replacement characters are part of the attack
/// surface). Growth is capped at 2× the original so splice/duplicate
/// arms cannot balloon the corpus.
fn mutate(src: &[u8], rng: &mut Rng) -> String {
    const PUNCT: &[u8] = b"{}()[]<>&|!=+-*/.,;:'\"#";
    let cap = src.len().max(64) * 2;
    let mut buf = src.to_vec();
    let edits = 1 + rng.below(4) as usize;
    for _ in 0..edits {
        if buf.is_empty() {
            let n = rng.below(256) as usize + 1;
            buf = rng.bytes(n);
            continue;
        }
        let at = rng.below(buf.len() as u64) as usize;
        let len = (rng.below(64) as usize + 1).min(buf.len() - at);
        match rng.below(5) {
            0 => {
                buf.drain(at..at + len);
            }
            1 => {
                let chunk: Vec<u8> = buf[at..at + len].to_vec();
                if buf.len() + chunk.len() <= cap {
                    let dst = rng.below(buf.len() as u64 + 1) as usize;
                    buf.splice(dst..dst, chunk);
                }
            }
            2 => {
                let junk = rng.bytes(len);
                if buf.len() + junk.len() <= cap {
                    buf.splice(at..at, junk);
                }
            }
            3 => {
                for b in &mut buf[at..at + len] {
                    *b = *rng.pick(PUNCT);
                }
            }
            _ => {
                buf.truncate(at);
            }
        }
    }
    String::from_utf8_lossy(&buf).into_owned()
}

/// The lint crate's own sources, sorted for a stable mutation order.
fn own_sources() -> Vec<PathBuf> {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut paths: Vec<PathBuf> = fs::read_dir(&src_dir)
        .expect("read lint src dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 8,
        "expected the lint crate sources as fuzz corpus, found {}",
        paths.len()
    );
    paths
}

#[test]
fn mutated_workspace_sources_never_panic() {
    let cfg = workspace_config();
    let mut rng = Rng::seed_from_u64(0x5EED_F0DD_5EED_F0DD);
    for path in own_sources() {
        let src = fs::read(&path).expect("read corpus file");
        for case in 0..CASES_PER_FILE {
            let mutated = mutate(&src, &mut rng);
            assert!(
                !analyze_panics("crates/core/src/fuzzed.rs", &mutated, &cfg),
                "analyzer panicked on mutated {} (case {case})",
                path.display()
            );
        }
    }
}

#[test]
fn random_byte_strings_never_panic() {
    let cfg = workspace_config();
    let mut rng = Rng::seed_from_u64(0xB17E_5);
    for case in 0..RANDOM_STRINGS {
        let n = rng.below(4096) as usize;
        let garbage = rng.bytes(n);
        let text = String::from_utf8_lossy(&garbage).into_owned();
        assert!(
            !analyze_panics("crates/core/src/fuzzed.rs", &text, &cfg),
            "analyzer panicked on random bytes (case {case})"
        );
        let manifest_panicked = catch_unwind(AssertUnwindSafe(|| {
            rules::check_manifest("crates/core/Cargo.toml", &text).len()
        }))
        .is_err();
        assert!(
            !manifest_panicked,
            "manifest audit panicked on random bytes (case {case})"
        );
    }
}

//! Workload generators for the paper's experiments.
//!
//! * [`micro`] — the §III micro-benchmark data: `Random` (uniform 32-bit,
//!   virtually no duplicates) and `Correlated(P)` (128 unique values per
//!   column; `P` is the probability that two tuples equal in column *C*
//!   are also equal in column *C+1*),
//! * [`endtoend`] — Figure 12's shuffled integers and uniform floats,
//! * [`tpcds`] — synthetic TPC-DS-like `catalog_sales` and `customer`
//!   tables with Table IV's cardinalities, matching the column domains the
//!   paper's §VII benchmarks sort on.
//!
//! Everything is seeded and deterministic, so experiments are reproducible
//! run to run.
//!
//! # Seed scheme
//!
//! Random numbers come from [`rowsort_testkit::Rng`] (xoshiro256**), so
//! generation needs nothing outside the workspace and a given seed yields
//! the same dataset on every platform and run. Each generator XORs the
//! caller's seed with a distinct per-generator constant before seeding its
//! PRNG (e.g. `key_columns` uses `seed ^ 0x8d3c_5a1f_0042_77ee`, while
//! `shuffled_integers` uses `seed ^ 0x00c0_ffee_1234_5678`), so passing the
//! same seed to different generators still produces independent streams —
//! experiments can reuse one top-level seed everywhere without accidental
//! correlation between datasets. Changing the seed changes every dataset;
//! keeping it fixed pins them all bit-for-bit.

pub mod endtoend;
pub mod micro;
pub mod tpcds;

pub use endtoend::{shuffled_integers, uniform_floats};
pub use micro::{key_chunk, key_columns, KeyDistribution};
pub use tpcds::NamedTable;

//! Baseline mechanism: findings recorded in `lint-baseline.json` are
//! reported as warnings instead of errors, so a new rule can land before
//! the codebase is fully clean. The goal state is an **empty** baseline —
//! a test asserts that is the case today.
//!
//! The checked-in format is written by `rowsort-lint --write-baseline` via
//! [`render`]; [`parse`] is a tiny purpose-built JSON reader (testkit's
//! `json` module is writer-only) that accepts exactly the shape we emit:
//!
//! ```json
//! {"findings":[{"rule":"R002","path":"crates/x.rs","line":10}]}
//! ```
//!
//! A baseline entry matches a finding on `(rule, path, line)`.

use crate::rules::Finding;
use rowsort_testkit::json::Json;

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id, e.g. `R002`.
    pub rule: String,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
}

/// Does this finding appear in the baseline?
pub fn contains(baseline: &[BaselineEntry], f: &Finding) -> bool {
    baseline
        .iter()
        .any(|b| b.rule == f.rule && b.path == f.path && b.line == f.line)
}

/// Render already-parsed baseline entries back to a document (used by
/// `--prune-baseline` to rewrite the file without stale entries).
pub fn render_entries(entries: &[BaselineEntry]) -> String {
    let items: Vec<Json> = entries
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("rule", Json::str(e.rule.clone())),
                ("path", Json::str(e.path.clone())),
                ("line", Json::Num(e.line as f64)),
            ])
        })
        .collect();
    let mut text = Json::obj(vec![("findings", Json::Arr(items))]).render();
    text.push('\n');
    text
}

/// Render findings as a baseline document.
pub fn render(findings: &[Finding]) -> String {
    let entries: Vec<Json> = findings
        .iter()
        .map(|f| {
            Json::obj(vec![
                ("rule", Json::str(f.rule.clone())),
                ("path", Json::str(f.path.clone())),
                ("line", Json::Num(f.line as f64)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![("findings", Json::Arr(entries))]);
    let mut text = doc.render();
    text.push('\n');
    text
}

/// Parse a baseline document. Returns `Err` with a description on any
/// structural problem — a corrupt baseline must fail loudly, not silently
/// grandfather nothing.
pub fn parse(src: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut p = Parser {
        chars: src.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err("trailing content after JSON document".to_string());
    }
    let Value::Obj(pairs) = value else {
        return Err("baseline root must be an object".to_string());
    };
    let findings = pairs
        .into_iter()
        .find(|(k, _)| k == "findings")
        .map(|(_, v)| v)
        .ok_or("baseline missing `findings` key")?;
    let Value::Arr(items) = findings else {
        return Err("`findings` must be an array".to_string());
    };
    let mut out = Vec::new();
    for item in items {
        let Value::Obj(fields) = item else {
            return Err("each baseline entry must be an object".to_string());
        };
        let get = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("baseline entry missing `{name}`"))
        };
        let Value::Str(rule) = get("rule")? else {
            return Err("`rule` must be a string".to_string());
        };
        let Value::Str(path) = get("path")? else {
            return Err("`path` must be a string".to_string());
        };
        let Value::Num(line) = get("line")? else {
            return Err("`line` must be a number".to_string());
        };
        out.push(BaselineEntry {
            rule,
            path,
            line: line as u32,
        });
    }
    Ok(out)
}

/// Just the JSON subset the baseline uses.
#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Num(f64),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            other => Err(format!("expected `{c}`, found {other:?}")),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected character {other:?}")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Obj(pairs)),
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Arr(items)),
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| {
            c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-'
        }) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, path: &str, line: u32) -> Finding {
        Finding {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            col: 1,
            message: String::new(),
        }
    }

    #[test]
    fn round_trip() {
        let findings = vec![
            finding("R002", "crates/x.rs", 10),
            finding("R003", "a/b.rs", 7),
        ];
        let text = render(&findings);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(contains(&parsed, &findings[0]));
        assert!(contains(&parsed, &findings[1]));
        assert!(!contains(&parsed, &finding("R002", "crates/x.rs", 11)));
    }

    #[test]
    fn empty_baseline() {
        let parsed = parse("{\"findings\":[]}\n").unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn corrupt_baseline_is_an_error() {
        assert!(parse("").is_err());
        assert!(parse("[]").is_err());
        assert!(parse("{\"findings\":[{\"rule\":\"R002\"}]}").is_err());
        assert!(parse("{\"findings\":[]} extra").is_err());
    }

    #[test]
    fn escapes_survive() {
        let f = finding("R001", "weird \"path\"\n.rs", 1);
        let parsed = parse(&render(&[f.clone()])).unwrap();
        assert!(contains(&parsed, &f));
    }
}

//! End-to-end experiments: Figures 12–14.
//!
//! Each measurement runs the paper's §VII-A benchmark query
//!
//! ```sql
//! SELECT count(*) FROM (SELECT <payload> FROM <table>
//!                       ORDER BY <keys> OFFSET 1) t
//! ```
//!
//! through the engine with the sort operator configured as each of the
//! five system profiles. Data sizes are scaled by environment (see
//! [`crate::Scale`]); the paper's absolute sizes need a 384 GB machine.

use crate::{fmt_secs, time_median, ExperimentResult, Scale};
use rowsort_core::systems::SystemProfile;
use rowsort_datagen::tpcds::{self, TpcdsTable};
use rowsort_datagen::{shuffled_integers, uniform_floats};
use rowsort_engine::{Engine, Table};
use rowsort_vector::{DataChunk, Value, Vector};
use std::time::Duration;

fn run_benchmark_query(
    profile: SystemProfile,
    table: &Table,
    payload: &str,
    keys: &str,
    threads: usize,
    reps: usize,
) -> Duration {
    let sql = format!(
        "SELECT count(*) FROM (SELECT {payload} FROM {} ORDER BY {keys} OFFSET 1) t",
        table.name
    );
    let mut engine = Engine::new();
    engine.options_mut().profile = profile;
    engine.options_mut().threads = threads;
    engine.register_table(table.clone());
    let expected = table.data.len() as i64 - 1;
    time_median(
        reps,
        || (),
        |()| {
            let r = engine.query(&sql).expect("benchmark query executes");
            assert_eq!(r.row(0), vec![Value::Int64(expected)], "count sanity");
        },
    )
}

fn profile_header() -> Vec<String> {
    let mut h = vec!["workload".into(), "rows".into()];
    h.extend(SystemProfile::ALL.iter().map(|p| p.label().to_owned()));
    h
}

fn profile_row(
    workload: &str,
    table: &Table,
    payload: &str,
    keys: &str,
    scale: &Scale,
) -> Vec<String> {
    let mut row = vec![workload.to_owned(), table.data.len().to_string()];
    for p in SystemProfile::ALL {
        let d = run_benchmark_query(p, table, payload, keys, scale.threads, scale.reps);
        row.push(fmt_secs(d));
    }
    row
}

/// Figure 12: sorting 1×–10× `e2e_rows` random integers and floats.
pub fn fig_12(scale: &Scale) -> ExperimentResult {
    let mut rows = Vec::new();
    for step in 1..=10usize {
        let n = scale.e2e_rows * step;
        let ints =
            DataChunk::from_columns(vec![Vector::from_i32s(shuffled_integers(n, step as u64))])
                .unwrap();
        let t = Table::new("ints", vec!["v".into()], ints);
        rows.push(profile_row(&format!("int32 x{step}"), &t, "v", "v", scale));
    }
    for step in 1..=10usize {
        let n = scale.e2e_rows * step;
        let floats = DataChunk::from_columns(vec![Vector::from_f32s(uniform_floats(
            n,
            100 + step as u64,
        ))])
        .unwrap();
        let t = Table::new("floats", vec!["v".into()], floats);
        rows.push(profile_row(
            &format!("float32 x{step}"),
            &t,
            "v",
            "v",
            scale,
        ));
    }
    ExperimentResult {
        id: "fig12".into(),
        title: format!(
            "end-to-end single-key sort of random integers/floats ({}–{} rows)",
            scale.e2e_rows,
            scale.e2e_rows * 10
        ),
        header: profile_header(),
        rows,
        notes: vec![
            "paper (Fig. 12): the columnar single-threaded system is far slower; the \
             columnar multi-threaded system degrades fastest with size; the three \
             row-based systems scale best, with the normalized-key system sorting \
             floats as fast as ints (radix over encoded keys)"
                .into(),
        ],
    }
}

fn named_to_table(t: &tpcds::NamedTable) -> Table {
    Table::new(
        t.name.clone(),
        t.columns.iter().map(|(n, _)| n.clone()).collect(),
        t.data.clone(),
    )
}

/// Figure 13: TPC-DS catalog_sales, 1–4 key columns, two scale factors.
pub fn fig_13(scale: &Scale) -> ExperimentResult {
    let keys_sweep = [
        "cs_warehouse_sk",
        "cs_warehouse_sk, cs_ship_mode_sk",
        "cs_warehouse_sk, cs_ship_mode_sk, cs_promo_sk",
        "cs_warehouse_sk, cs_ship_mode_sk, cs_promo_sk, cs_quantity",
    ];
    let mut rows = Vec::new();
    for sf in [10.0, 100.0] {
        let n =
            (tpcds::cardinality(TpcdsTable::CatalogSales, sf) as f64 * scale.sf_fraction) as usize;
        let table = named_to_table(&tpcds::catalog_sales(n.max(10), sf, 42));
        for (k, keys) in keys_sweep.iter().enumerate() {
            rows.push(profile_row(
                &format!("SF{sf} {}key", k + 1),
                &table,
                "cs_item_sk",
                keys,
                scale,
            ));
        }
    }
    ExperimentResult {
        id: "fig13".into(),
        title: format!(
            "catalog_sales ORDER BY 1..4 key columns (SF 10/100 at fraction {})",
            scale.sf_fraction
        ),
        header: profile_header(),
        rows,
        notes: vec![
            "paper (Fig. 13): the columnar system is competitive at 1 key (radix) but \
             ~4x slower at 2+ keys; row-based systems lose much less with added keys \
             (~1.5x for normalized keys)"
                .into(),
        ],
    }
}

/// Figure 14: TPC-DS customer, integer keys vs string keys.
pub fn fig_14(scale: &Scale) -> ExperimentResult {
    let mut rows = Vec::new();
    for sf in [100.0, 300.0] {
        let n = (tpcds::cardinality(TpcdsTable::Customer, sf) as f64 * scale.sf_fraction) as usize;
        let table = named_to_table(&tpcds::customer(n.max(10), 7));
        rows.push(profile_row(
            &format!("SF{sf} integer"),
            &table,
            "c_customer_sk",
            "c_birth_year, c_birth_month, c_birth_day",
            scale,
        ));
        rows.push(profile_row(
            &format!("SF{sf} string"),
            &table,
            "c_customer_sk",
            "c_last_name, c_first_name",
            scale,
        ));
    }
    ExperimentResult {
        id: "fig14".into(),
        title: format!(
            "customer ORDER BY integers vs strings (SF 100/300 at fraction {})",
            scale.sf_fraction
        ),
        header: profile_header(),
        rows,
        notes: vec![
            "paper (Fig. 14): strings are slower than integers for every system; ~3x \
             for the columnar systems, much less for the row-based ones"
                .into(),
        ],
    }
}

/// Beyond the paper: §IX graceful degradation. Sort a fixed input under
/// shrinking memory budgets with the external sorter and record the
/// slowdown relative to fully in-memory.
pub fn external_degradation(scale: &Scale) -> ExperimentResult {
    use rowsort_core::external::{ExternalSortOptions, ExternalSorter};
    use rowsort_vector::OrderBy;

    let n = scale.e2e_rows;
    let chunk = DataChunk::from_columns(vec![Vector::from_i32s(shuffled_integers(n, 77))]).unwrap();
    let order = OrderBy::ascending(1);
    let mut rows = Vec::new();
    let mut in_memory_secs = None;
    for fraction in [1.0f64, 0.5, 0.25, 0.125, 0.0625] {
        let budget = ((n as f64 * fraction) as usize).max(1);
        let d = time_median(
            scale.reps,
            || (),
            |()| {
                let sorter = ExternalSorter::new(
                    chunk.types(),
                    order.clone(),
                    ExternalSortOptions {
                        memory_limit_rows: budget,
                        ..Default::default()
                    },
                );
                let out = sorter.sort(&chunk).expect("external sort");
                assert_eq!(out.len(), n);
            },
        );
        let secs = d.as_secs_f64();
        let base = *in_memory_secs.get_or_insert(secs);
        rows.push(vec![
            format!("{:.0}%", fraction * 100.0),
            budget.to_string(),
            fmt_secs(d),
            format!("{:.2}x", secs / base),
        ]);
    }
    ExperimentResult {
        id: "external".into(),
        title: format!("graceful degradation: external sort of {n} ints under memory budgets"),
        header: vec![
            "memory budget".into(),
            "rows in memory".into(),
            "time".into(),
            "slowdown vs in-memory".into(),
        ],
        rows,
        notes: vec![
            "beyond the paper (its §IX future work): spilling sorted runs and streaming \
             the merge keeps the slowdown at a small constant factor instead of failing \
             or falling off a cliff"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_degradation_smoke() {
        let mut scale = Scale::tiny();
        scale.e2e_rows = 2_000;
        let r = external_degradation(&scale);
        assert_eq!(r.rows.len(), 5);
    }

    #[test]
    fn fig12_smoke() {
        let mut scale = Scale::tiny();
        scale.e2e_rows = 500;
        let r = fig_12(&scale);
        assert_eq!(r.rows.len(), 20);
        assert_eq!(r.header.len(), 2 + 5);
    }

    #[test]
    fn fig13_smoke() {
        let r = fig_13(&Scale::tiny());
        assert_eq!(r.rows.len(), 8, "2 SFs x 4 key counts");
    }

    #[test]
    fn fig14_smoke() {
        let r = fig_14(&Scale::tiny());
        assert_eq!(r.rows.len(), 4, "2 SFs x {{int,string}}");
    }
}

//! Control-flow graphs lowered from the loss-tolerant AST.
//!
//! One [`Cfg`] per function (or closure) body, at statement granularity:
//! each basic block holds straight-line [`Instr`]s and ends in a
//! [`Term`]. Lowering models what the dataflow rules need — `if`/`else`
//! diamonds, `loop`/`while`/`for` back edges, `match` fan-out, and the
//! early exits (`return`, `break`, `continue`, `?`-free early returns) —
//! and approximates the rest conservatively: an expression it cannot
//! model structurally becomes a single instruction whose uses are the
//! expression's leaves.
//!
//! `assert!`/`debug_assert!` invocations whose first argument is a
//! comparison become *guard* instructions: the dataflow engine refines
//! facts across them exactly as it does across a taken branch, so
//! `debug_assert!(i < self.len)` dominates the pointer arithmetic that
//! follows it just like an `if` would.

use crate::ast::{Block, Expr, FnItem, JumpKind, Stmt};

/// One lowered instruction.
#[derive(Debug)]
pub struct Instr<'a> {
    /// Local defined here: a `let` binding or a simple-identifier
    /// (compound-)assignment target. `None` for pure-effect statements.
    pub def: Option<&'a str>,
    /// The defining / evaluated expression.
    pub value: Option<&'a Expr>,
    /// An asserted condition (`assert!`, `debug_assert!`): downstream
    /// facts may assume it holds.
    pub guard: Option<&'a Expr>,
    /// The instruction sits lexically inside an `unsafe { … }` block.
    pub in_unsafe: bool,
    /// 1-based source line (best effort).
    pub line: u32,
}

/// Block terminator.
#[derive(Debug)]
pub enum Term<'a> {
    /// Unconditional edge.
    Goto(usize),
    /// Two-way branch on `cond`; the dataflow engine refines facts on
    /// each outgoing edge from the comparison structure of `cond`.
    Branch {
        /// Branch condition.
        cond: &'a Expr,
        /// Successor when `cond` holds.
        then_bb: usize,
        /// Successor when `cond` fails.
        else_bb: usize,
    },
    /// `match` fan-out — no per-edge refinement.
    Switch(Vec<usize>),
    /// Function exit.
    Return,
}

/// A basic block.
#[derive(Debug)]
pub struct Bb<'a> {
    /// Straight-line instructions.
    pub instrs: Vec<Instr<'a>>,
    /// Terminator.
    pub term: Term<'a>,
}

/// A function body lowered to blocks. Block 0 is the entry.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Bb<'a>>,
    /// Parameter names, in declaration order (placeholders may be empty).
    pub params: Vec<String>,
}

impl<'a> Cfg<'a> {
    /// Lower a function item. Returns `None` for bodiless functions.
    pub fn from_fn(f: &'a FnItem) -> Option<Cfg<'a>> {
        let body = f.body.as_ref()?;
        let mut b = Builder::new(f.params.clone());
        b.lower_block(body);
        Some(b.finish())
    }

    /// Lower a closure: its parameter list plus its body expression.
    pub fn from_closure(params: &[String], body: &'a Expr) -> Cfg<'a> {
        let mut b = Builder::new(params.to_vec());
        b.lower_expr(body);
        b.finish()
    }

    /// Predecessors of every block (computed on demand; CFGs are small).
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, bb) in self.blocks.iter().enumerate() {
            let mut add = |s: usize| {
                if !preds[s].contains(&i) {
                    preds[s].push(i);
                }
            };
            match &bb.term {
                Term::Goto(s) => add(*s),
                Term::Branch {
                    then_bb, else_bb, ..
                } => {
                    add(*then_bb);
                    add(*else_bb);
                }
                Term::Switch(ts) => {
                    for s in ts {
                        add(*s);
                    }
                }
                Term::Return => {}
            }
        }
        preds
    }
}

struct Builder<'a> {
    blocks: Vec<Bb<'a>>,
    cur: usize,
    /// `(head, after)` of every enclosing loop, innermost last.
    loop_stack: Vec<(usize, usize)>,
    unsafe_depth: u32,
    /// The current block already ended in a jump; emit nothing more here.
    sealed: bool,
    params: Vec<String>,
}

impl<'a> Builder<'a> {
    fn new(params: Vec<String>) -> Builder<'a> {
        Builder {
            blocks: vec![Bb {
                instrs: Vec::new(),
                term: Term::Return,
            }],
            cur: 0,
            loop_stack: Vec::new(),
            unsafe_depth: 0,
            sealed: false,
            params,
        }
    }

    fn finish(self) -> Cfg<'a> {
        Cfg {
            blocks: self.blocks,
            params: self.params,
        }
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Bb {
            instrs: Vec::new(),
            term: Term::Return,
        });
        self.blocks.len() - 1
    }

    fn set_term(&mut self, term: Term<'a>) {
        if !self.sealed {
            self.blocks[self.cur].term = term;
            self.sealed = true;
        }
    }

    fn start(&mut self, bb: usize) {
        self.cur = bb;
        self.sealed = false;
    }

    fn emit(&mut self, instr: Instr<'a>) {
        if !self.sealed {
            self.blocks[self.cur].instrs.push(instr);
        }
    }

    fn lower_block(&mut self, block: &'a Block) {
        for stmt in &block.stmts {
            if self.sealed {
                break; // unreachable code after `return`/`break`/`continue`
            }
            match stmt {
                Stmt::Let {
                    name, init, line, ..
                } => {
                    if let Some(e) = init {
                        self.lower_value_effects(e);
                    }
                    self.emit(Instr {
                        def: name.as_deref(),
                        value: init.as_ref(),
                        guard: None,
                        in_unsafe: self.unsafe_depth > 0,
                        line: *line,
                    });
                }
                Stmt::Expr { expr, .. } => self.lower_expr(expr),
                Stmt::Item(_) => {}
            }
        }
    }

    /// Lower one statement-position expression: control flow becomes
    /// blocks and edges, everything else becomes one instruction.
    fn lower_expr(&mut self, e: &'a Expr) {
        match e {
            Expr::If { cond, then, els } => {
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.set_term(Term::Branch {
                    cond,
                    then_bb,
                    else_bb,
                });
                self.start(then_bb);
                self.lower_block(then);
                self.set_term(Term::Goto(join));
                self.start(else_bb);
                if let Some(els) = els {
                    self.lower_expr(els);
                }
                self.set_term(Term::Goto(join));
                self.start(join);
            }
            Expr::Loop { head, body } => {
                let head_bb = self.new_block();
                let body_bb = self.new_block();
                let after = self.new_block();
                self.set_term(Term::Goto(head_bb));
                self.start(head_bb);
                match head.first() {
                    // `while cond` / `for pat in iter`: the head decides
                    // whether another iteration runs. For `for` loops the
                    // "condition" is the iterator expression — no
                    // comparison structure, so no edge refinement, which
                    // is the conservative reading.
                    Some(cond) => self.set_term(Term::Branch {
                        cond,
                        then_bb: body_bb,
                        else_bb: after,
                    }),
                    // `loop`: only `break` leaves.
                    None => self.set_term(Term::Goto(body_bb)),
                }
                self.loop_stack.push((head_bb, after));
                self.start(body_bb);
                self.lower_block(body);
                self.set_term(Term::Goto(head_bb));
                self.loop_stack.pop();
                self.start(after);
            }
            Expr::Match(items) => {
                let mut parts = items.iter();
                if let Some(scrut) = parts.next() {
                    self.lower_value_effects(scrut);
                    self.emit(Instr {
                        def: None,
                        value: Some(scrut),
                        guard: None,
                        in_unsafe: self.unsafe_depth > 0,
                        line: 0,
                    });
                }
                let arms: Vec<&'a Expr> = parts.collect();
                if arms.is_empty() {
                    return;
                }
                let join = self.new_block();
                let mut targets = Vec::new();
                let from = self.cur;
                let sealed_before = self.sealed;
                for arm in arms {
                    let bb = self.new_block();
                    targets.push(bb);
                    self.start(bb);
                    self.lower_expr(arm);
                    self.set_term(Term::Goto(join));
                }
                self.cur = from;
                self.sealed = sealed_before;
                self.set_term(Term::Switch(targets));
                self.start(join);
            }
            Expr::Block(b) => self.lower_block(b),
            Expr::Unsafe { block, .. } => {
                self.unsafe_depth += 1;
                self.lower_block(block);
                self.unsafe_depth -= 1;
            }
            Expr::Jump { kind, value, .. } => {
                if let Some(v) = value {
                    self.lower_value_effects(v);
                    self.emit(Instr {
                        def: None,
                        value: Some(v),
                        guard: None,
                        in_unsafe: self.unsafe_depth > 0,
                        line: 0,
                    });
                }
                match kind {
                    JumpKind::Return => self.set_term(Term::Return),
                    JumpKind::Break => match self.loop_stack.last() {
                        Some(&(_, after)) => self.set_term(Term::Goto(after)),
                        None => self.set_term(Term::Return),
                    },
                    JumpKind::Continue => match self.loop_stack.last() {
                        Some(&(head, _)) => self.set_term(Term::Goto(head)),
                        None => self.set_term(Term::Return),
                    },
                }
                // Anything after an unconditional jump is dead; open a
                // fresh unreachable block so lowering can continue.
                let dead = self.new_block();
                self.start(dead);
                self.sealed = false;
            }
            Expr::Macro { name, args, line, .. }
                if (name == "assert" || name == "debug_assert") && !args.is_empty() =>
            {
                self.emit(Instr {
                    def: None,
                    value: Some(e),
                    guard: Some(&args[0]),
                    in_unsafe: self.unsafe_depth > 0,
                    line: *line,
                });
            }
            // Simple-identifier assignment / compound assignment.
            Expr::Bin { ops, args } if is_assignment(ops) => {
                let target = match args.first() {
                    Some(Expr::Path { path }) if !path.contains("::") => Some(path.as_str()),
                    _ => None,
                };
                if let [_, rhs] = args.as_slice() {
                    self.lower_value_effects(rhs);
                }
                self.emit(Instr {
                    def: target,
                    value: Some(e),
                    guard: None,
                    in_unsafe: self.unsafe_depth > 0,
                    line: expr_line(e),
                });
            }
            other => {
                self.lower_value_effects(other);
                self.emit(Instr {
                    def: None,
                    value: Some(other),
                    guard: None,
                    in_unsafe: self.unsafe_depth > 0,
                    line: expr_line(other),
                });
            }
        }
    }

    /// Lower the control-flow *structure* nested inside a value position
    /// (`let x = if c { … } else { … };`): branches and their effects are
    /// modeled, and the caller then records the whole expression as the
    /// defined value, joining over everything the branches touched.
    fn lower_value_effects(&mut self, e: &'a Expr) {
        match e {
            Expr::If { .. } | Expr::Match(_) | Expr::Loop { .. } => self.lower_expr(e),
            Expr::Block(b) => {
                // All but the tail run for effect; the tail is the value.
                self.lower_block(b);
            }
            Expr::Unsafe { block, .. } => {
                self.unsafe_depth += 1;
                self.lower_block(block);
                self.unsafe_depth -= 1;
            }
            _ => {}
        }
    }
}

/// `ops` spell an assignment: a bare `=` or a compound `+=`-family
/// operator in the first position.
fn is_assignment(ops: &[String]) -> bool {
    ops.first().is_some_and(|op| {
        op == "="
            || (op.len() >= 2
                && op.ends_with('=')
                && !matches!(op.as_str(), "==" | "!=" | "<=" | ">="))
    })
}

/// Best-effort source line for anchoring an instruction.
pub fn expr_line(e: &Expr) -> u32 {
    let mut line = 0u32;
    e.walk(&mut |x| {
        if line != 0 {
            return;
        }
        line = match x {
            Expr::Call { line, .. }
            | Expr::Method { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Index { line, .. }
            | Expr::Unsafe { line, .. }
            | Expr::Jump { line, .. } => *line,
            _ => 0,
        };
    });
    line
}

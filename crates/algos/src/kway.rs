//! K-way merge with a loser tree — the merge structure used by the
//! ClickHouse- and HyPer-style system profiles (paper §VII).
//!
//! A loser tree performs ⌈log₂ k⌉ comparisons per output element, matching
//! the `n·log(k)` merge-phase comparison count the paper's §II analysis
//! assumes.

/// A tournament (loser) tree over `k` input cursors.
///
/// Internal node `x` stores the *loser* of the match played at `x`; the
/// overall winner is kept in a dedicated field. After the winner's head
/// element is consumed, [`LoserTree::replay`] walks only the winner's root
/// path: ⌈log₂ k⌉ matches. Inputs are padded to a power of two with
/// virtual always-exhausted leaves; exhausted inputs lose every match, and
/// ties break toward the lower input index so merges are stable.
pub struct LoserTree {
    /// `tree[1..cap]`: losers of each internal match. Leaf for input `i`
    /// is virtual node `cap + i`. Slot 0 is unused.
    tree: Vec<usize>,
    /// The input that won the whole tournament (smallest current head).
    winner: usize,
    cap: usize,
    k: usize,
}

impl LoserTree {
    /// Build the tree with a full bottom-up tournament.
    ///
    /// `is_exhausted(i)` reports whether input `i < k` is empty;
    /// `leaf_less(a, b)` compares the current heads of two non-exhausted
    /// inputs.
    pub fn new<E, L>(k: usize, mut is_exhausted: E, mut leaf_less: L) -> LoserTree
    where
        E: FnMut(usize) -> bool,
        L: FnMut(usize, usize) -> bool,
    {
        assert!(k > 0, "loser tree needs at least one input");
        let cap = k.next_power_of_two();
        let mut round = vec![0usize; 2 * cap];
        for i in 0..cap {
            round[cap + i] = i;
        }
        let mut tree = vec![0usize; cap];
        let mut beats = |a: usize, b: usize| -> bool {
            Self::beats_impl(a, b, k, &mut is_exhausted, &mut leaf_less)
        };
        for node in (1..cap).rev() {
            let (a, b) = (round[2 * node], round[2 * node + 1]);
            let (w, l) = if beats(a, b) { (a, b) } else { (b, a) };
            round[node] = w;
            tree[node] = l;
        }
        // The root match's winner is the champion; with a single input
        // (cap == 1) no match was played and input 0 wins by default.
        let winner = round.get(1).copied().unwrap_or(0);
        LoserTree {
            tree,
            winner,
            cap,
            k,
        }
    }

    /// The input whose head is currently smallest.
    pub fn winner(&self) -> usize {
        self.winner
    }

    /// Replay the path from input `leaf`'s position to the root after its
    /// head changed (was consumed or its run advanced).
    pub fn replay<E, L>(&mut self, leaf: usize, is_exhausted: &mut E, leaf_less: &mut L)
    where
        E: FnMut(usize) -> bool,
        L: FnMut(usize, usize) -> bool,
    {
        let mut contender = leaf;
        let mut node = (self.cap + leaf) / 2;
        while node >= 1 {
            let resident = self.tree[node];
            if Self::beats_impl(resident, contender, self.k, is_exhausted, leaf_less) {
                self.tree[node] = contender;
                contender = resident;
            }
            node /= 2;
        }
        self.winner = contender;
    }

    fn beats_impl<E, L>(
        a: usize,
        b: usize,
        k: usize,
        is_exhausted: &mut E,
        leaf_less: &mut L,
    ) -> bool
    where
        E: FnMut(usize) -> bool,
        L: FnMut(usize, usize) -> bool,
    {
        let a_done = a >= k || is_exhausted(a);
        let b_done = b >= k || is_exhausted(b);
        match (a_done, b_done) {
            (true, _) => false,
            (false, true) => true,
            (false, false) => {
                if leaf_less(a, b) {
                    true
                } else if leaf_less(b, a) {
                    false
                } else {
                    a < b
                }
            }
        }
    }
}

/// Merge `k` sorted runs into one, stably (ties resolve toward
/// lower-indexed runs). Comparisons per output element: ⌈log₂ k⌉.
pub fn kway_merge<T, F>(runs: &[&[T]], is_less: &mut F) -> Vec<T>
where
    T: Clone,
    F: FnMut(&T, &T) -> bool,
{
    let k = runs.len();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    if k == 0 {
        return out;
    }
    let mut pos = vec![0usize; k];
    let mut tree = {
        let pos_ref = &pos;
        LoserTree::new(
            k,
            |i| pos_ref[i] >= runs[i].len(),
            |a, b| is_less(&runs[a][pos_ref[a]], &runs[b][pos_ref[b]]),
        )
    };
    for _ in 0..total {
        let w = tree.winner();
        // lint:allow(R003): this clone is the merge's output emission —
        // one per emitted element, required for generic `T: Clone`.
        out.push(runs[w][pos[w]].clone());
        pos[w] += 1;
        let pos_ref = &pos;
        tree.replay(w, &mut |i| pos_ref[i] >= runs[i].len(), &mut |a, b| {
            is_less(&runs[a][pos_ref[a]], &runs[b][pos_ref[b]])
        });
    }
    out
}

/// Merge `k` sorted runs of fixed-width byte rows, stably.
pub fn kway_merge_rows<F>(runs: &[&[u8]], width: usize, is_less: &mut F) -> Vec<u8>
where
    F: FnMut(&[u8], &[u8]) -> bool,
{
    let k = runs.len();
    let total: usize = runs.iter().map(|r| r.len() / width).sum();
    let mut out = Vec::with_capacity(total * width);
    if k == 0 {
        return out;
    }
    let lens: Vec<usize> = runs.iter().map(|r| r.len() / width).collect();
    let mut pos = vec![0usize; k];
    let row = |i: usize, p: usize| &runs[i][p * width..(p + 1) * width];
    let mut tree = {
        let pos_ref = &pos;
        LoserTree::new(
            k,
            |i| pos_ref[i] >= lens[i],
            |a, b| is_less(row(a, pos_ref[a]), row(b, pos_ref[b])),
        )
    };
    for _ in 0..total {
        let w = tree.winner();
        out.extend_from_slice(row(w, pos[w]));
        pos[w] += 1;
        let pos_ref = &pos;
        tree.replay(w, &mut |i| pos_ref[i] >= lens[i], &mut |a, b| {
            is_less(row(a, pos_ref[a]), row(b, pos_ref[b]))
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_basic() {
        let a = vec![1u32, 4, 7];
        let b = vec![2u32, 5, 8];
        let c = vec![3u32, 6, 9];
        let out = kway_merge(&[&a, &b, &c], &mut |x, y| x < y);
        assert_eq!(out, (1..=9).collect::<Vec<u32>>());
    }

    #[test]
    fn merges_k1() {
        let a = vec![1u32, 2, 3];
        let out = kway_merge(&[&a], &mut |x, y| x < y);
        assert_eq!(out, a);
    }

    #[test]
    fn merges_empty_runs() {
        let a: Vec<u32> = vec![];
        let b = vec![1u32];
        let c: Vec<u32> = vec![];
        let out = kway_merge(&[&a, &b, &c], &mut |x, y| x < y);
        assert_eq!(out, vec![1]);
        let out: Vec<u32> = kway_merge::<u32, _>(&[], &mut |x, y| x < y);
        assert!(out.is_empty());
    }

    #[test]
    fn merges_unbalanced_lengths() {
        let a: Vec<u32> = (0..100).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..7).map(|i| i * 50).collect();
        let c: Vec<u32> = vec![500];
        let mut expected: Vec<u32> = a.iter().chain(&b).chain(&c).copied().collect();
        expected.sort_unstable();
        let out = kway_merge(&[&a, &b, &c], &mut |x, y| x < y);
        assert_eq!(out, expected);
    }

    #[test]
    fn stability_toward_lower_run() {
        let a = vec![(5u32, 'a')];
        let b = vec![(5u32, 'b')];
        let out = kway_merge(&[&a, &b], &mut |x, y| x.0 < y.0);
        assert_eq!(out, vec![(5, 'a'), (5, 'b')]);
        let out = kway_merge(&[&b, &a], &mut |x, y| x.0 < y.0);
        assert_eq!(out, vec![(5, 'b'), (5, 'a')]);
    }

    #[test]
    fn merges_many_runs_non_power_of_two() {
        for k in [2usize, 3, 5, 7, 13, 16, 17] {
            let runs: Vec<Vec<u32>> = (0..k)
                .map(|r| (0..40).map(|i| (i * k + r) as u32).collect())
                .collect();
            let refs: Vec<&[u32]> = runs.iter().map(|r| r.as_slice()).collect();
            let out = kway_merge(&refs, &mut |x, y| x < y);
            assert_eq!(out, (0..40 * k as u32).collect::<Vec<u32>>(), "k={k}");
        }
    }

    #[test]
    fn merge_of_random_runs_matches_sort() {
        let mut state = 5u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32 % 1000
        };
        let runs: Vec<Vec<u32>> = (0..9)
            .map(|i| {
                let mut r: Vec<u32> = (0..(i * 13 + 1)).map(|_| next()).collect();
                r.sort_unstable();
                r
            })
            .collect();
        let refs: Vec<&[u32]> = runs.iter().map(|r| r.as_slice()).collect();
        let out = kway_merge(&refs, &mut |x, y| x < y);
        let mut expected: Vec<u32> = runs.iter().flatten().copied().collect();
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn rows_kway_merge() {
        let mk = |keys: &[u8]| -> Vec<u8> { keys.iter().flat_map(|&k| [k, k ^ 0xFF]).collect() };
        let a = mk(&[1, 5, 9]);
        let b = mk(&[2, 6]);
        let c = mk(&[3, 4, 7, 8]);
        let out = kway_merge_rows(&[&a, &b, &c], 2, &mut |x, y| x[0] < y[0]);
        let keys: Vec<u8> = out.chunks(2).map(|r| r[0]).collect();
        assert_eq!(keys, (1..=9).collect::<Vec<u8>>());
        for r in out.chunks(2) {
            assert_eq!(r[1], r[0] ^ 0xFF, "payload stayed attached");
        }
    }
}

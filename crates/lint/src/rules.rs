//! The rule engine: R001–R006 over token streams and Cargo manifests.
//!
//! | rule | scope (from `lint.toml`) | invariant |
//! |------|--------------------------|-----------|
//! | R001 | every `.rs` file         | `unsafe` block/fn is immediately preceded by a `// SAFETY:` comment |
//! | R002 | `[hot-paths]` globs      | no `unwrap()` / `expect()` / `panic!` / slice-indexing-by-literal |
//! | R003 | `[hot-paths]` globs      | no allocation calls (`Vec::new`, `Box::new`, `to_vec`, `clone()`, `collect()`, `format!`) inside loop bodies |
//! | R004 | `[cast-strict]` globs    | no bare `as` numeric casts (use `to_be_bytes`/`try_into`/`cast_unsigned`) |
//! | R005 | every `Cargo.toml`       | all dependencies are `path`/`workspace` references |
//! | R006 | every `.rs` file         | no `std::process::exit` / `unsafe impl Send/Sync` outside allowlists |
//!
//! `#[cfg(test)]` modules and `#[test]` functions are exempt from R002–R004:
//! the invariants guard the measured hot paths, not test scaffolding.
//! Findings are suppressed by `// lint:allow(R00X): reason` on the same or
//! the preceding line; a suppression **must** carry a reason, or the
//! suppression itself becomes a finding (R000).

use crate::config::Config;
use crate::lexer::{lex, Tok, TokKind};
use crate::toml_scan;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `R002`.
    pub rule: String,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    fn new(rule: &str, path: &str, tok: &Tok, message: impl Into<String>) -> Finding {
        Finding {
            rule: rule.to_string(),
            path: path.to_string(),
            line: tok.line,
            col: tok.col,
            message: message.into(),
        }
    }
}

/// Numeric primitive types for R004.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

struct FileCtx<'a> {
    path: &'a str,
    toks: &'a [Tok],
    /// Token-index ranges belonging to `#[cfg(test)]` mods / `#[test]` fns.
    test_ranges: Vec<(usize, usize)>,
}

impl<'a> FileCtx<'a> {
    fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// Index of the previous non-comment token.
    fn prev_sig(&self, idx: usize) -> Option<usize> {
        (0..idx).rev().find(|&j| !self.toks[j].is_comment())
    }

    /// Index of the next non-comment token.
    fn next_sig(&self, idx: usize) -> Option<usize> {
        (idx + 1..self.toks.len()).find(|&j| !self.toks[j].is_comment())
    }
}

/// A parsed `lint:allow` suppression.
#[derive(Debug)]
struct Suppression {
    rules: Vec<String>,
    /// Source line this suppression covers.
    covers_line: u32,
    has_reason: bool,
    /// Line of the comment itself (for R000 reporting).
    comment_line: u32,
    comment_col: u32,
}

/// Analyze one Rust source file. `path` must be repo-relative with `/`
/// separators; scoped rules consult `cfg` to decide applicability.
pub fn analyze_rust(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let toks = lex(src);
    let ctx = FileCtx {
        path,
        toks: &toks,
        test_ranges: test_ranges(&toks),
    };

    let mut findings = Vec::new();
    let suppressions = collect_suppressions(&ctx, &mut findings);

    rule_r001(&ctx, &mut findings);
    if Config::matches(&cfg.hot_paths, path) {
        rule_r002(&ctx, &mut findings);
        rule_r003(&ctx, &mut findings);
    }
    if Config::matches(&cfg.cast_strict, path) {
        rule_r004(&ctx, &mut findings);
    }
    rule_r006(&ctx, cfg, &mut findings);

    findings.retain(|f| {
        f.rule == "R000"
            || !suppressions
                .iter()
                .any(|s| s.has_reason && s.covers_line == f.line && s.rules.contains(&f.rule))
    });
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Token-index ranges covered by `#[cfg(test)] mod … { … }` and
/// `#[test] fn … { … }`. Attributes like `#[cfg(not(test))]` do not count.
fn test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Consume `#[ … ]` with bracket depth.
        let Some(open) = next_sig_from(toks, i) else { break };
        if !toks[open].is_punct('[') {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut j = open;
        let mut attr_words: Vec<&str> = Vec::new();
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokKind::Ident {
                attr_words.push(&t.text);
            }
            j += 1;
        }
        let is_test_attr = attr_words.contains(&"test") && !attr_words.contains(&"not");
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip further attributes and visibility to the item keyword.
        let mut k = j + 1;
        let mut item = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_comment() {
                k += 1;
            } else if t.is_punct('#') {
                // Nested attribute: skip its brackets.
                let mut d = 0i32;
                k += 1;
                while k < toks.len() {
                    if toks[k].is_punct('[') {
                        d += 1;
                    } else if toks[k].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                k += 1;
            } else if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "pub" | "crate" | "super" | "self" | "async")
                || t.is_punct('(')
                || t.is_punct(')')
            {
                k += 1;
            } else if t.kind == TokKind::Ident && (t.text == "mod" || t.text == "fn") {
                item = Some(k);
                break;
            } else {
                break;
            }
        }
        let Some(item_idx) = item else {
            i = j + 1;
            continue;
        };
        // Find the body `{ … }` and mark the whole span.
        let mut b = item_idx;
        let mut open_brace = None;
        while b < toks.len() {
            if toks[b].is_punct('{') {
                open_brace = Some(b);
                break;
            }
            if toks[b].is_punct(';') {
                break; // `mod name;` — no body here
            }
            b += 1;
        }
        if let Some(ob) = open_brace {
            let mut d = 0i32;
            let mut e = ob;
            while e < toks.len() {
                if toks[e].is_punct('{') {
                    d += 1;
                } else if toks[e].is_punct('}') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                e += 1;
            }
            ranges.push((attr_start, e + 1));
            i = e + 1;
        } else {
            i = b + 1;
        }
    }
    ranges
}

fn next_sig_from(toks: &[Tok], idx: usize) -> Option<usize> {
    (idx + 1..toks.len()).find(|&j| !toks[j].is_comment())
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Parse `// lint:allow(R002): reason` comments. A suppression on its own
/// line covers the next line holding code; a trailing suppression covers
/// its own line. Missing reasons are reported as R000 findings.
fn collect_suppressions(ctx: &FileCtx, findings: &mut Vec<Finding>) -> Vec<Suppression> {
    // Lines that contain at least one non-comment token.
    let code_lines: Vec<u32> = {
        let mut v: Vec<u32> = ctx
            .toks
            .iter()
            .filter(|t| !t.is_comment())
            .map(|t| t.line)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut out = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        // Anchor the directive at the start of the comment (after the
        // `//`/`//!`/`/*` sigils) so prose *mentioning* lint:allow — docs
        // like this file's — is not mistaken for a suppression.
        let body = t.text.trim_start_matches(['/', '!', '*']).trim_start();
        let Some(after) = body.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = after.find(')') else {
            findings.push(Finding::new(
                "R000",
                ctx.path,
                t,
                "malformed lint:allow — missing ')'",
            ));
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() || !rules.iter().all(|r| valid_rule_id(r)) {
            findings.push(Finding::new(
                "R000",
                ctx.path,
                t,
                format!("lint:allow names unknown rule id(s): `{}`", &after[..close]),
            ));
            continue;
        }
        let tail = after[close + 1..].trim_start();
        let has_reason = tail
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        if !has_reason {
            findings.push(Finding::new(
                "R000",
                ctx.path,
                t,
                format!(
                    "lint:allow({}) requires a reason: `// lint:allow({}): why this is sound`",
                    rules.join(","),
                    rules.join(",")
                ),
            ));
        }
        // Trailing (code earlier on the same line) covers its own line;
        // a standalone comment covers the next code line.
        let trailing = ctx
            .toks
            .iter()
            .take(i)
            .any(|p| !p.is_comment() && p.line == t.line);
        let covers_line = if trailing {
            t.line
        } else {
            code_lines
                .iter()
                .copied()
                .find(|&l| l > t.line)
                .unwrap_or(t.line)
        };
        out.push(Suppression {
            rules,
            covers_line,
            has_reason,
            comment_line: t.line,
            comment_col: t.col,
        });
    }
    // Silence "unused field" pedantry without widening the API.
    let _ = out.first().map(|s| (s.comment_line, s.comment_col));
    out
}

fn valid_rule_id(r: &str) -> bool {
    matches!(r, "R001" | "R002" | "R003" | "R004" | "R005" | "R006")
}

// ---------------------------------------------------------------------------
// R001 — unsafe requires SAFETY comment
// ---------------------------------------------------------------------------

fn rule_r001(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    use std::collections::HashSet;
    // Which source lines are covered by comments / SAFETY comments
    // (multi-line block comments cover every line they span), and which
    // lines are attributes (`#[…]`) — allowed between comment and item.
    let mut comment_lines: HashSet<u32> = HashSet::new();
    let mut safety_lines: HashSet<u32> = HashSet::new();
    let mut attr_lines: HashSet<u32> = HashSet::new();
    let mut first_sig_on_line: HashSet<u32> = HashSet::new();
    for t in ctx.toks {
        if t.is_comment() {
            let span = t.text.matches('\n').count() as u32;
            for l in t.line..=t.line + span {
                comment_lines.insert(l);
                if t.text.contains("SAFETY:") {
                    safety_lines.insert(l);
                }
            }
        } else if first_sig_on_line.insert(t.line) && t.is_punct('#') {
            attr_lines.insert(t.line);
        }
    }

    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // `unsafe impl` is R006's domain.
        if ctx
            .next_sig(i)
            .is_some_and(|n| ctx.toks[n].is_ident("impl"))
        {
            continue;
        }
        // Documented iff a SAFETY comment touches the `unsafe` line itself
        // or the contiguous run of comment/attribute lines directly above.
        let mut documented = safety_lines.contains(&t.line);
        let mut l = t.line;
        while !documented && l > 1 {
            l -= 1;
            if safety_lines.contains(&l) {
                documented = true;
            } else if !comment_lines.contains(&l) && !attr_lines.contains(&l) {
                break;
            }
        }
        if !documented {
            findings.push(Finding::new(
                "R001",
                ctx.path,
                t,
                "`unsafe` without an immediately preceding `// SAFETY:` comment \
                 documenting why the invariants hold",
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// R002 — no panics in hot paths
// ---------------------------------------------------------------------------

fn rule_r002(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test(i) || t.kind != TokKind::Ident && !t.is_punct('[') {
            continue;
        }
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && ctx.prev_sig(i).is_some_and(|p| ctx.toks[p].is_punct('.'))
            && ctx.next_sig(i).is_some_and(|n| ctx.toks[n].is_punct('('))
        {
            findings.push(Finding::new(
                "R002",
                ctx.path,
                t,
                format!(
                    "`.{}()` in a hot-path module — return a Result or use checked access",
                    t.text
                ),
            ));
        } else if t.is_ident("panic")
            && ctx.next_sig(i).is_some_and(|n| ctx.toks[n].is_punct('!'))
        {
            findings.push(Finding::new(
                "R002",
                ctx.path,
                t,
                "`panic!` in a hot-path module — return a Result instead",
            ));
        } else if t.is_punct('[') {
            // `expr[<int literal>]`: prev token ends an expression, the
            // bracket holds exactly one numeric literal.
            let expr_before = ctx.prev_sig(i).is_some_and(|p| {
                let pt = &ctx.toks[p];
                pt.kind == TokKind::Ident && !is_keyword_nonexpr(&pt.text)
                    || pt.is_punct(')')
                    || pt.is_punct(']')
            });
            let lit_inside = ctx.next_sig(i).is_some_and(|n| {
                ctx.toks[n].kind == TokKind::Num
                    && ctx
                        .next_sig(n)
                        .is_some_and(|m| ctx.toks[m].is_punct(']'))
            });
            if expr_before && lit_inside {
                findings.push(Finding::new(
                    "R002",
                    ctx.path,
                    t,
                    "slice indexed by integer literal in a hot-path module — \
                     use `first()`/`split_first()`/pattern matching",
                ));
            }
        }
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [..]`, `break [..]`, `in [..]`, …).
fn is_keyword_nonexpr(word: &str) -> bool {
    matches!(
        word,
        "return" | "break" | "in" | "if" | "else" | "match" | "while" | "loop" | "move" | "mut"
    )
}

// ---------------------------------------------------------------------------
// R003 — no allocation inside loop bodies in hot paths
// ---------------------------------------------------------------------------

fn rule_r003(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    #[derive(PartialEq)]
    enum Brace {
        Plain,
        Loop,
    }
    let mut stack: Vec<Brace> = Vec::new();
    let mut loop_depth = 0usize;
    let mut paren_depth = 0i32;
    let mut pending_loop: Option<i32> = None;
    let mut pending_impl = false;

    for (i, t) in ctx.toks.iter().enumerate() {
        if t.is_comment() {
            continue;
        }
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "impl" => pending_impl = true,
                "for" => {
                    let hrtb = ctx
                        .next_sig(i)
                        .is_some_and(|n| ctx.toks[n].is_punct('<'));
                    if !pending_impl && !hrtb {
                        pending_loop = Some(paren_depth);
                    }
                    pending_impl = false;
                }
                "while" | "loop" => pending_loop = Some(paren_depth),
                _ => {}
            },
            TokKind::Punct => match t.text.as_str() {
                "(" | "[" => paren_depth += 1,
                ")" | "]" => paren_depth -= 1,
                "{" => {
                    if pending_loop == Some(paren_depth) {
                        stack.push(Brace::Loop);
                        loop_depth += 1;
                        pending_loop = None;
                    } else {
                        stack.push(Brace::Plain);
                    }
                    pending_impl = false;
                }
                "}" => {
                    if stack.pop() == Some(Brace::Loop) {
                        loop_depth -= 1;
                    }
                }
                _ => {}
            },
            _ => {}
        }
        if loop_depth == 0 || ctx.in_test(i) || t.kind != TokKind::Ident {
            continue;
        }
        let method_call = |name: &str| -> bool {
            t.is_ident(name)
                && ctx.prev_sig(i).is_some_and(|p| ctx.toks[p].is_punct('.'))
                && ctx.next_sig(i).is_some_and(|n| ctx.toks[n].is_punct('('))
        };
        let assoc_new = t.is_ident("new")
            && ctx.prev_sig(i).is_some_and(|p| {
                ctx.toks[p].is_punct(':')
                    && ctx.prev_sig(p).is_some_and(|q| {
                        ctx.toks[q].is_punct(':')
                            && ctx.prev_sig(q).is_some_and(|r| {
                                ctx.toks[r].is_ident("Vec") || ctx.toks[r].is_ident("Box")
                            })
                    })
            });
        let offending = if t.is_ident("format")
            && ctx.next_sig(i).is_some_and(|n| ctx.toks[n].is_punct('!'))
        {
            Some("format! allocates")
        } else if assoc_new {
            Some("Vec::new/Box::new allocates")
        } else if method_call("to_vec") || method_call("clone") || method_call("collect") {
            Some("per-iteration allocation")
        } else {
            None
        };
        if let Some(why) = offending {
            findings.push(Finding::new(
                "R003",
                ctx.path,
                t,
                format!(
                    "`{}` inside a loop body in a hot-path module ({why}) — \
                     hoist the allocation out of the loop",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// R004 — no bare `as` numeric casts in order-preserving encodings
// ---------------------------------------------------------------------------

fn rule_r004(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test(i) || !t.is_ident("as") {
            continue;
        }
        let Some(n) = ctx.next_sig(i) else { continue };
        let target = &ctx.toks[n];
        if target.kind == TokKind::Ident && NUMERIC_TYPES.contains(&target.text.as_str()) {
            findings.push(Finding::new(
                "R004",
                ctx.path,
                t,
                format!(
                    "bare `as {}` cast in an order-preserving encoding — use \
                     `to_be_bytes`/`from_be_bytes`/`try_into`/`cast_unsigned` so the \
                     conversion is explicit and lossless",
                    target.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// R005 — path-only dependency closure
// ---------------------------------------------------------------------------

/// Section-name check: is this a dependency-declaring section, and if it is
/// the dotted per-dependency form, what is the dependency's name?
fn dep_section(section: &str) -> Option<Option<String>> {
    let segs = toml_scan::split_dotted(section);
    let dep_pos = segs.iter().position(|s| {
        matches!(
            s.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        )
    })?;
    match segs.len() - 1 - dep_pos {
        0 => Some(None),                         // `[dependencies]`
        1 => Some(Some(segs[dep_pos + 1].clone())), // `[dependencies.foo]`
        _ => None,
    }
}

/// Check one `Cargo.toml`: every dependency must be a `path` or
/// `workspace = true` reference; `version`/`git`/`registry` keys are
/// rejected even alongside `path`, so nothing can fall back to a registry.
pub fn check_manifest(path: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let items = toml_scan::scan(src);
    let finding = |line: u32, msg: String| Finding {
        rule: "R005".to_string(),
        path: path.to_string(),
        line,
        col: 1,
        message: msg,
    };

    // Inline form: `foo = "1.0"`, `foo = { … }`, or the dotted-key form
    // `foo.workspace = true` under `[…dependencies]`.
    for item in &items {
        match dep_section(&item.section) {
            Some(None) => {
                let key_segs = toml_scan::split_dotted(&item.key);
                let v = item.value.trim();
                if key_segs.len() == 2 {
                    // `foo.workspace = true` / `foo.version = "1"` etc.
                    let entries = vec![(key_segs[1].clone(), v.to_string())];
                    findings.extend(audit_dep_entries(
                        &entries,
                        &key_segs[0],
                        item.line,
                        &finding,
                    ));
                } else if v.starts_with('{') {
                    let entries = toml_scan::inline_table_entries(v);
                    findings.extend(audit_dep_entries(&entries, &item.key, item.line, &finding));
                } else {
                    findings.push(finding(
                        item.line,
                        format!(
                            "dependency `{}` is a registry version (`{}`) — only path/workspace \
                             dependencies are allowed",
                            item.key, v
                        ),
                    ));
                }
            }
            Some(Some(_)) | None => {}
        }
    }

    // Dotted-table form: `[dependencies.foo]` with keys as separate items.
    let mut tables: Vec<(String, String, u32, Vec<(String, String)>)> = Vec::new();
    for item in &items {
        if let Some(Some(dep)) = dep_section(&item.section) {
            match tables.iter_mut().find(|(s, _, _, _)| s == &item.section) {
                Some((_, _, _, entries)) => entries.push((item.key.clone(), item.value.clone())),
                None => tables.push((
                    item.section.clone(),
                    dep,
                    item.line,
                    vec![(item.key.clone(), item.value.clone())],
                )),
            }
        }
    }
    for (_, dep, line, entries) in &tables {
        findings.extend(audit_dep_entries(entries, dep, *line, &finding));
    }
    findings
}

fn audit_dep_entries(
    entries: &[(String, String)],
    dep: &str,
    line: u32,
    finding: &impl Fn(u32, String) -> Finding,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let has_path = entries.iter().any(|(k, _)| k == "path");
    let has_workspace = entries
        .iter()
        .any(|(k, v)| k == "workspace" && v.trim() == "true");
    if !has_path && !has_workspace {
        out.push(finding(
            line,
            format!(
                "dependency `{dep}` has neither `path` nor `workspace = true` — only \
                 path/workspace dependencies are allowed"
            ),
        ));
    }
    for (k, _) in entries {
        if matches!(k.as_str(), "version" | "git" | "registry" | "branch" | "rev" | "tag") {
            out.push(finding(
                line,
                format!(
                    "dependency `{dep}` declares `{k}` — registry/git fallback is not allowed \
                     in a hermetic workspace"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R006 — process::exit / unsafe impl Send/Sync outside allowlists
// ---------------------------------------------------------------------------

fn rule_r006(ctx: &FileCtx, cfg: &Config, findings: &mut Vec<Finding>) {
    let exit_allowed = Config::matches(&cfg.exit_allow, ctx.path);
    let unsafe_impl_allowed = Config::matches(&cfg.unsafe_impl_allow, ctx.path);
    for (i, t) in ctx.toks.iter().enumerate() {
        if !exit_allowed && t.is_ident("exit") {
            let from_process = ctx.prev_sig(i).is_some_and(|p| {
                ctx.toks[p].is_punct(':')
                    && ctx.prev_sig(p).is_some_and(|q| {
                        ctx.toks[q].is_punct(':')
                            && ctx
                                .prev_sig(q)
                                .is_some_and(|r| ctx.toks[r].is_ident("process"))
                    })
            });
            if from_process {
                findings.push(Finding::new(
                    "R006",
                    ctx.path,
                    t,
                    "`std::process::exit` outside the CLI allowlist — return an error \
                     so callers (and tests) keep control",
                ));
            }
        }
        if !unsafe_impl_allowed
            && t.is_ident("unsafe")
            && ctx
                .next_sig(i)
                .is_some_and(|n| ctx.toks[n].is_ident("impl"))
        {
            // Scan the impl header for Send/Sync.
            let mut j = i + 1;
            let mut target = None;
            while j < ctx.toks.len() {
                let h = &ctx.toks[j];
                if h.is_punct('{') || h.is_punct(';') {
                    break;
                }
                if h.is_ident("Send") || h.is_ident("Sync") {
                    target = Some(h.text.clone());
                }
                j += 1;
            }
            if let Some(which) = target {
                findings.push(Finding::new(
                    "R006",
                    ctx.path,
                    t,
                    format!(
                        "`unsafe impl {which}` outside the allowlist — hand-written \
                         thread-safety claims need explicit review"
                    ),
                ));
            }
        }
    }
}

//! Property tests: the sort pipeline and every system profile produce a
//! correctly ordered permutation of arbitrary typed inputs.

use rowsort_core::pipeline::{SortOptions, SortPipeline};
use rowsort_core::systems::{sort_with_system, SystemProfile};
use rowsort_testkit::prop::{
    full, full_bool, select, string_from, vec_of, weighted, BoxedGen, GenExt, Just, PropResult,
};
use rowsort_testkit::{prop, prop_assert_eq, prop_assert_ne};
use rowsort_vector::{
    DataChunk, LogicalType, NullOrder, OrderBy, OrderByColumn, SortOrder, SortSpec, Value,
};
use std::cmp::Ordering;

fn value_gen(ty: LogicalType) -> BoxedGen<Value> {
    let non_null: BoxedGen<Value> = match ty {
        LogicalType::Int32 => (-50i32..50).prop_map(Value::Int32).boxed(),
        LogicalType::Int64 => full::<i64>().prop_map(Value::Int64).boxed(),
        LogicalType::UInt32 => (0u32..40).prop_map(Value::UInt32).boxed(),
        LogicalType::Float64 => (-4i32..4)
            .prop_map(|v| Value::Float64(v as f64 * 1.5))
            .boxed(),
        LogicalType::Varchar => string_from("abc", 0..=14).prop_map(Value::Varchar).boxed(),
        _ => unreachable!("generator only draws from the five types below"),
    };
    weighted(vec![(1, Just(Value::Null).boxed()), (5, non_null)]).boxed()
}

fn schema_gen() -> BoxedGen<Vec<LogicalType>> {
    vec_of(
        select(vec![
            LogicalType::Int32,
            LogicalType::Int64,
            LogicalType::UInt32,
            LogicalType::Float64,
            LogicalType::Varchar,
        ]),
        1..=3,
    )
    .boxed()
}

fn spec_gen() -> BoxedGen<SortSpec> {
    (full_bool(), full_bool())
        .prop_map(|(d, nf)| {
            SortSpec::new(
                if d {
                    SortOrder::Descending
                } else {
                    SortOrder::Ascending
                },
                if nf {
                    NullOrder::NullsFirst
                } else {
                    NullOrder::NullsLast
                },
            )
        })
        .boxed()
}

#[derive(Debug, Clone)]
struct Case {
    chunk: DataChunk,
    order: OrderBy,
}

fn case_gen() -> BoxedGen<Case> {
    schema_gen()
        .prop_flat_map(|types| {
            let ncols = types.len();
            let row_gen: Vec<BoxedGen<Value>> = types.iter().map(|&t| value_gen(t)).collect();
            let rows = vec_of(row_gen, 0..120);
            let specs = vec_of(spec_gen(), 1..=ncols);
            (rows, specs, Just(types)).prop_map(|(rows, specs, types)| {
                let mut chunk = DataChunk::new(&types);
                for r in &rows {
                    chunk.push_row(r).unwrap();
                }
                let order = OrderBy::new(
                    specs
                        .into_iter()
                        .enumerate()
                        .map(|(i, spec)| OrderByColumn { column: i, spec })
                        .collect(),
                );
                Case { chunk, order }
            })
        })
        .boxed()
}

fn float_safe(v: &Value) -> String {
    // NaN != NaN under PartialEq; compare via debug of bits for floats.
    match v {
        Value::Float64(f) => format!("f64:{:016x}", f.to_bits()),
        other => format!("{other:?}"),
    }
}

fn check_sorted_permutation(got: &DataChunk, case: &Case) -> PropResult {
    let got_rows = got.to_rows();
    prop_assert_eq!(got_rows.len(), case.chunk.len());
    for w in got_rows.windows(2) {
        prop_assert_ne!(
            case.order.compare_rows(&w[0], &w[1]),
            Ordering::Greater,
            "out of order: {:?} then {:?}",
            &w[0],
            &w[1]
        );
    }
    let canon = |rows: Vec<Vec<Value>>| {
        let mut v: Vec<String> = rows
            .iter()
            .map(|r| r.iter().map(float_safe).collect::<Vec<_>>().join("|"))
            .collect();
        v.sort();
        v
    };
    prop_assert_eq!(canon(got_rows), canon(case.chunk.to_rows()));
    Ok(())
}

prop! {
    #![cases(64)]

    fn pipeline_sorts_arbitrary_input(case in case_gen(), run_rows in 1usize..64, threads in 1usize..4) {
        let pipeline = SortPipeline::new(
            case.chunk.types(),
            case.order.clone(),
            SortOptions { threads, run_rows, ..SortOptions::default() },
        );
        let got = pipeline.sort(&case.chunk);
        check_sorted_permutation(&got, &case)?;
    }

    fn system_profiles_sort_arbitrary_input(case in case_gen()) {
        for p in SystemProfile::ALL {
            let got = sort_with_system(p, &case.chunk, &case.order, 2);
            check_sorted_permutation(&got, &case)?;
        }
    }

    // Pool recycling must be invisible: sorting through a warmed-up
    // pipeline (second sort reuses pooled buffers) yields the same row
    // bytes as a fresh pipeline's first sort.
    fn pooled_buffers_do_not_change_output(case in case_gen(), run_rows in 1usize..64, threads in 1usize..4) {
        let options = SortOptions { threads, run_rows, ..SortOptions::default() };
        let warmed = SortPipeline::new(case.chunk.types(), case.order.clone(), options);
        drop(warmed.sort_rows(&case.chunk)); // populate the pool
        let pooled = warmed.sort_rows(&case.chunk);

        let fresh_pipeline = SortPipeline::new(case.chunk.types(), case.order.clone(), options);
        let fresh = fresh_pipeline.sort_rows(&case.chunk);

        match (pooled.payload(), fresh.payload()) {
            (None, None) => {}
            (Some(p), Some(f)) => {
                prop_assert_eq!(p.data(), f.data(), "payload rows differ after pooling");
                prop_assert_eq!(p.heap(), f.heap(), "heap bytes differ after pooling");
            }
            _ => prop_assert_eq!(pooled.len(), fresh.len()),
        }
    }

    // Determinism across parallelism: morsel-indexed run slots make the
    // output — including tie order — bit-identical for any thread count.
    fn output_identical_for_any_thread_count(case in case_gen(), run_rows in 1usize..64) {
        let reference_pipeline = SortPipeline::new(
            case.chunk.types(),
            case.order.clone(),
            SortOptions { threads: 1, run_rows, ..SortOptions::default() },
        );
        let reference = reference_pipeline.sort_rows(&case.chunk);
        for threads in [2usize, 4] {
            let pipeline = SortPipeline::new(
                case.chunk.types(),
                case.order.clone(),
                SortOptions { threads, run_rows, ..SortOptions::default() },
            );
            let got = pipeline.sort_rows(&case.chunk);
            match (got.payload(), reference.payload()) {
                (None, None) => {}
                (Some(g), Some(r)) => {
                    prop_assert_eq!(g.data(), r.data(), "rows differ at threads={}", threads);
                    prop_assert_eq!(g.heap(), r.heap(), "heap differs at threads={}", threads);
                }
                _ => prop_assert_eq!(got.len(), reference.len()),
            }
        }
    }
}

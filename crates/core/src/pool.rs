//! Size-classed buffer pool: the allocation backbone of the steady-state
//! sort pipeline.
//!
//! Every large transient buffer the pipeline needs — normalized-key runs,
//! `RowBlock` row areas and string heaps, the radix scatter scratch, merge
//! output buffers — is acquired from and returned to one of these pools,
//! so after a warm-up sort the pipeline performs **zero** heap allocations
//! (pinned by `tests/zero_alloc.rs`). Polyntsov et al. (PAPERS.md) measure
//! exactly this class of overhead dominating external-sort runtime once
//! the algorithm is fixed; pooling removes it without touching the
//! algorithms.
//!
//! Buffers are binned by power-of-two capacity class. `get_bytes(n)` pops
//! a buffer whose capacity is at least `n` from the smallest class that
//! guarantees it (`ceil(log2(n))`); `put_bytes` files a buffer under
//! `floor(log2(capacity))`, so a pooled buffer always satisfies any
//! request routed to its class. Free lists are preallocated to a fixed
//! slot count, so the pool itself allocates nothing in steady state; a
//! `put` into a full class simply drops the buffer.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, CounterRegistry};

/// Smallest pooled capacity: `1 << MIN_SHIFT` bytes. Anything smaller is
/// dropped on `put` — recycling tiny buffers saves nothing.
const MIN_SHIFT: usize = 6;

/// Largest pooled class: `1 << MAX_SHIFT` bytes (16 GiB). Requests beyond
/// this fall through to plain allocation.
const MAX_SHIFT: usize = 34;

/// Retained buffers per size class. Each run/merge round holds only a
/// handful of buffers per class, so this bounds pool memory while keeping
/// steady-state hit rates at 100%.
const SLOTS_PER_CLASS: usize = 64;

/// A size-classed free list of `Vec<u8>` buffers.
///
/// ```
/// use rowsort_core::pool::BufferPool;
///
/// let pool = BufferPool::new();
/// let mut buf = pool.get_bytes(1000);
/// assert!(buf.capacity() >= 1000);
/// buf.resize(1000, 0); // within capacity: no allocation
/// pool.put_bytes(buf);
/// let again = pool.get_bytes(900); // same class: recycled, not allocated
/// assert!(again.capacity() >= 1024);
/// ```
pub struct BufferPool {
    classes: Vec<Mutex<Vec<Vec<u8>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    metrics: Option<Arc<CounterRegistry>>,
}

impl BufferPool {
    /// An empty pool. Free-list backbones are allocated up front so that
    /// `get`/`put` traffic never grows them.
    pub fn new() -> BufferPool {
        let nclasses = MAX_SHIFT - MIN_SHIFT + 1;
        let mut classes = Vec::with_capacity(nclasses);
        for _ in 0..nclasses {
            classes.push(Mutex::new(Vec::with_capacity(SLOTS_PER_CLASS)));
        }
        BufferPool {
            classes,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            metrics: None,
        }
    }

    /// A pool that mirrors hit/miss traffic into `metrics`
    /// ([`Counter::PoolHits`] / [`Counter::PoolMisses`]), so per-sort
    /// profiles can attribute pool behaviour.
    pub fn with_metrics(metrics: Arc<CounterRegistry>) -> BufferPool {
        let mut pool = BufferPool::new();
        pool.metrics = Some(metrics);
        pool
    }

    fn record(&self, counter: Counter) {
        if let Some(metrics) = &self.metrics {
            metrics.add(counter, 1);
        }
    }

    /// Class index that *guarantees* capacity `n` (round up).
    fn class_for_request(n: usize) -> Option<usize> {
        let shift = usize::BITS as usize - (n.max(1) - 1).leading_zeros() as usize;
        let shift = shift.max(MIN_SHIFT);
        (shift <= MAX_SHIFT).then(|| shift - MIN_SHIFT)
    }

    /// Class index a buffer of `capacity` belongs to (round down).
    fn class_for_buffer(capacity: usize) -> Option<usize> {
        if capacity < (1 << MIN_SHIFT) {
            return None;
        }
        let shift = (usize::BITS - 1 - capacity.leading_zeros()) as usize;
        Some(shift.min(MAX_SHIFT) - MIN_SHIFT)
    }

    /// An empty `Vec<u8>` with capacity ≥ `min_capacity`, recycled when the
    /// matching class has one, freshly allocated otherwise.
    pub fn get_bytes(&self, min_capacity: usize) -> Vec<u8> {
        let Some(class) = Self::class_for_request(min_capacity) else {
            // Beyond the largest class (> 16 GiB): plain allocation.
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.record(Counter::PoolMisses);
            return Vec::with_capacity(min_capacity);
        };
        let mut list = self.classes[class]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(buf) = list.pop() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.record(Counter::PoolHits);
            buf
        } else {
            drop(list);
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.record(Counter::PoolMisses);
            Vec::with_capacity(1usize << (class + MIN_SHIFT))
        }
    }

    /// Return a buffer to its class. The buffer is cleared; it is dropped
    /// instead if it is tiny or its class is already full.
    pub fn put_bytes(&self, mut buf: Vec<u8>) {
        let Some(class) = Self::class_for_buffer(buf.capacity()) else {
            return;
        };
        buf.clear();
        let mut list = self.classes[class]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if list.len() < SLOTS_PER_CLASS {
            list.push(buf);
        }
        // else: class full; `buf` drops here.
    }

    /// Requests served from a free list.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that fell through to a fresh allocation.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_requested_capacity() {
        let pool = BufferPool::new();
        for n in [1, 63, 64, 65, 1000, 1 << 20] {
            let buf = pool.get_bytes(n);
            assert!(buf.capacity() >= n, "requested {n}");
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn put_then_get_recycles() {
        let pool = BufferPool::new();
        let mut buf = pool.get_bytes(4096);
        buf.extend_from_slice(&[7u8; 100]);
        let ptr = buf.as_ptr();
        pool.put_bytes(buf);
        let again = pool.get_bytes(4096);
        assert_eq!(again.as_ptr(), ptr, "same backing buffer");
        assert!(again.is_empty(), "recycled buffers come back cleared");
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn class_rounding_guarantees_capacity() {
        // A buffer put at capacity c must satisfy any get routed to the
        // class it lands in: put rounds down, get rounds up.
        let pool = BufferPool::new();
        let mut buf = Vec::with_capacity(1500); // class floor(log2(1500)) = 10
        buf.push(1u8);
        pool.put_bytes(buf);
        // get(1024) routes to class ceil(log2(1024)) = 10 → recycled.
        let got = pool.get_bytes(1024);
        assert!(got.capacity() >= 1024);
        assert_eq!(pool.hits(), 1);
        // get(1025) routes to class 11 → miss (the pooled buffer could not
        // have satisfied it).
        let fresh = pool.get_bytes(1025);
        assert!(fresh.capacity() >= 1025);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn tiny_buffers_are_dropped() {
        let pool = BufferPool::new();
        pool.put_bytes(Vec::with_capacity(8));
        assert_eq!(
            pool.get_bytes(8).capacity(),
            64,
            "not recycled; class minimum"
        );
        assert_eq!(pool.hits(), 0);
    }

    #[test]
    fn full_class_drops_excess() {
        let pool = BufferPool::new();
        for _ in 0..SLOTS_PER_CLASS + 10 {
            pool.put_bytes(Vec::with_capacity(256));
        }
        for _ in 0..SLOTS_PER_CLASS + 10 {
            let _ = pool.get_bytes(256);
        }
        assert_eq!(
            pool.hits(),
            SLOTS_PER_CLASS,
            "only the retained slots recycle"
        );
    }

    #[test]
    fn concurrent_get_put() {
        let pool = std::sync::Arc::new(BufferPool::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = std::sync::Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..1000 {
                        let buf = pool.get_bytes(64 + (i % 5) * 1000);
                        pool.put_bytes(buf);
                    }
                });
            }
        });
        assert_eq!(pool.hits() + pool.misses(), 4000);
    }
}

// Known-bad fixture for R003 (no allocation in hot loop bodies).

struct Wrapper(Vec<u32>);

impl Iterator for Wrapper {
    // `for` in an impl header must not be mistaken for a loop.
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        self.0.pop()
    }
}

fn cold() -> Vec<u32> {
    let v: Vec<u32> = Vec::new();
    v.clone()
}

fn hot(rows: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for r in rows {
        let copy = r.clone();
        let twice = r.to_vec();
        let label = format!("{}", r.len());
        let fresh: Vec<u32> = Vec::new();
        let gathered: Vec<u32> = r.iter().copied().collect();
        let _ = (twice, label, fresh, gathered);
        out.push(copy);
    }
    let mut i = 0;
    while i < rows.len() {
        let b = Box::new(i);
        i += *b + 1;
    }
    out
}

fn hrtb(f: impl for<'a> Fn(&'a u32) -> u32) -> u32 {
    // `for<'a>` is a binder, not a loop — the call below is fine.
    f(&3)
}

//! Tuple comparators over NSM rows.
//!
//! The paper's §V distinction: a *compiled* engine generates one fused,
//! type-specialized comparison function per query, while a *vectorized
//! interpreted* engine must either interpret types inside the comparator or
//! pay a dynamic function call per key column
//! ([`DynamicRowComparator`]) — overhead incurred on **every** comparison.
//! [`FusedRowComparator`] plays the compiled role: a single call that walks
//! an embedded column descriptor table with no per-column indirection.

use rowsort_row::RowLayout;
use rowsort_vector::{LogicalType, NullOrder, OrderBy, SortOrder, SortSpec};
use std::cmp::Ordering;

/// Compare one key column of two rows: `(row_a, heap_a, row_b, heap_b)`.
pub type ColumnCompareFn = Box<dyn Fn(&[u8], &[u8], &[u8], &[u8]) -> Ordering + Send + Sync>;

#[inline]
fn null_order(a_null: bool, b_null: bool, nulls: NullOrder) -> Option<Ordering> {
    match (a_null, b_null) {
        (false, false) => None,
        (true, true) => Some(Ordering::Equal),
        (true, false) => Some(match nulls {
            NullOrder::NullsFirst => Ordering::Less,
            NullOrder::NullsLast => Ordering::Greater,
        }),
        (false, true) => Some(match nulls {
            NullOrder::NullsFirst => Ordering::Greater,
            NullOrder::NullsLast => Ordering::Less,
        }),
    }
}

/// Read a fixed-width array out of a row slice. Infallible by type: the
/// width comes from the const parameter, so there is no `try_into` to
/// fail — bounds are enforced by the slice operation itself.
#[inline]
fn read_array<const W: usize>(row: &[u8], off: usize) -> [u8; W] {
    let mut buf = [0u8; W];
    buf.copy_from_slice(&row[off..off + W]);
    buf
}

macro_rules! read_le {
    ($t:ty, $row:expr, $off:expr) => {
        <$t>::from_le_bytes(read_array($row, $off))
    };
}

#[inline]
fn compare_slot(
    ty: LogicalType,
    a: &[u8],
    heap_a: &[u8],
    b: &[u8],
    heap_b: &[u8],
    off: usize,
) -> Ordering {
    match ty {
        LogicalType::Boolean | LogicalType::UInt8 => a[off].cmp(&b[off]),
        LogicalType::Int8 => (a[off] as i8).cmp(&(b[off] as i8)),
        LogicalType::Int16 => read_le!(i16, a, off).cmp(&read_le!(i16, b, off)),
        LogicalType::Int32 | LogicalType::Date => read_le!(i32, a, off).cmp(&read_le!(i32, b, off)),
        LogicalType::Int64 | LogicalType::Timestamp => {
            read_le!(i64, a, off).cmp(&read_le!(i64, b, off))
        }
        LogicalType::UInt16 => read_le!(u16, a, off).cmp(&read_le!(u16, b, off)),
        LogicalType::UInt32 => read_le!(u32, a, off).cmp(&read_le!(u32, b, off)),
        LogicalType::UInt64 => read_le!(u64, a, off).cmp(&read_le!(u64, b, off)),
        LogicalType::Float32 => read_le!(f32, a, off).total_cmp(&read_le!(f32, b, off)),
        LogicalType::Float64 => read_le!(f64, a, off).total_cmp(&read_le!(f64, b, off)),
        LogicalType::Varchar => {
            let sa = {
                let o = read_le!(u32, a, off) as usize;
                let l = read_le!(u32, a, off + 4) as usize;
                &heap_a[o..o + l]
            };
            let sb = {
                let o = read_le!(u32, b, off) as usize;
                let l = read_le!(u32, b, off + 4) as usize;
                &heap_b[o..o + l]
            };
            sa.cmp(sb)
        }
    }
}

/// Descriptor of one key column within a row layout.
#[derive(Debug, Clone, Copy)]
struct KeyDesc {
    ty: LogicalType,
    offset: usize,
    null_offset: usize,
    spec: SortSpec,
}

fn key_descs(layout: &RowLayout, order: &OrderBy) -> Vec<KeyDesc> {
    order
        .keys
        .iter()
        .map(|k| KeyDesc {
            ty: layout.types()[k.column],
            offset: layout.offset(k.column),
            null_offset: layout.null_offset(k.column),
            spec: k.spec,
        })
        .collect()
}

#[inline]
fn compare_key(d: &KeyDesc, a: &[u8], heap_a: &[u8], b: &[u8], heap_b: &[u8]) -> Ordering {
    let (a_null, b_null) = (a[d.null_offset] != 0, b[d.null_offset] != 0);
    if let Some(ord) = null_order(a_null, b_null, d.spec.nulls) {
        return ord;
    }
    d.spec
        .order
        .apply(compare_slot(d.ty, a, heap_a, b, heap_b, d.offset))
}

/// The *interpreted* comparator: one boxed function per key column, called
/// through a dynamic dispatch on every comparison — the §V-B overhead the
/// paper measures in Figure 6.
pub struct DynamicRowComparator {
    columns: Vec<ColumnCompareFn>,
}

impl DynamicRowComparator {
    /// Build one boxed compare function per ORDER BY column.
    pub fn new(layout: &RowLayout, order: &OrderBy) -> DynamicRowComparator {
        let columns = key_descs(layout, order)
            .into_iter()
            .map(|d| {
                let f: ColumnCompareFn =
                    Box::new(move |a: &[u8], heap_a: &[u8], b: &[u8], heap_b: &[u8]| {
                        compare_key(&d, a, heap_a, b, heap_b)
                    });
                f
            })
            .collect();
        DynamicRowComparator { columns }
    }

    /// Compare two full rows: a dynamic call per key column until the first
    /// difference.
    #[inline(never)] // keep the call overhead honest
    pub fn compare(&self, a: &[u8], heap_a: &[u8], b: &[u8], heap_b: &[u8]) -> Ordering {
        for f in &self.columns {
            let ord = f(a, heap_a, b, heap_b);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

/// The *compiled-style* comparator: a single function over an embedded
/// descriptor table, no per-column indirect calls. Rust monomorphization
/// plus inlining plays the role of query compilation here (the paper's
/// compiled engines generate exactly this shape of code per query).
pub struct FusedRowComparator {
    descs: Vec<KeyDesc>,
}

impl FusedRowComparator {
    /// Build the descriptor table.
    pub fn new(layout: &RowLayout, order: &OrderBy) -> FusedRowComparator {
        FusedRowComparator {
            descs: key_descs(layout, order),
        }
    }

    /// Compare two full rows in one fused pass.
    #[inline]
    pub fn compare(&self, a: &[u8], heap_a: &[u8], b: &[u8], heap_b: &[u8]) -> Ordering {
        for d in &self.descs {
            let ord = compare_key(d, a, heap_a, b, heap_b);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

/// Statically-typed comparison of fixed u32 key tuples — the micro-
/// benchmark "compiled engine" kernel (an `OrderKey` struct in the paper's
/// C++). `N` is the number of key columns, monomorphized at compile time.
#[inline]
pub fn static_tuple_less<const N: usize>(a: &[u32; N], b: &[u32; N]) -> bool {
    // Fully unrolled by the compiler for each N.
    for c in 0..N {
        if a[c] != b[c] {
            return a[c] < b[c];
        }
    }
    false
}

/// Ascending `SortSpec` helper used across tests and benches.
pub fn asc() -> SortSpec {
    SortSpec::new(SortOrder::Ascending, NullOrder::NullsLast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowsort_row::RowBlock;
    use rowsort_vector::{DataChunk, OrderByColumn, Value};
    use std::sync::Arc;

    fn block_from_rows(types: &[LogicalType], rows: &[Vec<Value>]) -> RowBlock {
        let mut chunk = DataChunk::new(types);
        for r in rows {
            chunk.push_row(r).unwrap();
        }
        let layout = Arc::new(RowLayout::new(types));
        let mut block = RowBlock::new(layout);
        block.append_chunk(&chunk);
        block
    }

    fn cmp_both(block: &RowBlock, order: &OrderBy, i: usize, j: usize) -> (Ordering, Ordering) {
        let dynamic = DynamicRowComparator::new(block.layout(), order);
        let fused = FusedRowComparator::new(block.layout(), order);
        let (a, b) = (block.row(i), block.row(j));
        (
            dynamic.compare(a, block.heap(), b, block.heap()),
            fused.compare(a, block.heap(), b, block.heap()),
        )
    }

    #[test]
    fn dynamic_and_fused_agree_on_integers() {
        let types = [LogicalType::Int32, LogicalType::Int32];
        let block = block_from_rows(
            &types,
            &[
                vec![Value::Int32(1), Value::Int32(9)],
                vec![Value::Int32(1), Value::Int32(3)],
                vec![Value::Int32(-5), Value::Int32(0)],
            ],
        );
        let order = OrderBy::ascending(2);
        for i in 0..3 {
            for j in 0..3 {
                let (d, f) = cmp_both(&block, &order, i, j);
                assert_eq!(d, f, "rows {i},{j}");
            }
        }
        let (d, _) = cmp_both(&block, &order, 0, 1);
        assert_eq!(d, Ordering::Greater, "tie on col 0, col 1 decides");
        let (d, _) = cmp_both(&block, &order, 2, 0);
        assert_eq!(d, Ordering::Less);
    }

    #[test]
    fn comparators_match_reference_on_all_types() {
        use rowsort_vector::Value as V;
        let cases: Vec<(LogicalType, Vec<Value>)> = vec![
            (
                LogicalType::Boolean,
                vec![V::Boolean(false), V::Boolean(true), V::Null],
            ),
            (LogicalType::Int8, vec![V::Int8(-5), V::Int8(5), V::Null]),
            (
                LogicalType::Int16,
                vec![V::Int16(-300), V::Int16(300), V::Null],
            ),
            (
                LogicalType::Int32,
                vec![V::Int32(i32::MIN), V::Int32(0), V::Null],
            ),
            (
                LogicalType::Int64,
                vec![V::Int64(i64::MAX), V::Int64(-1), V::Null],
            ),
            (
                LogicalType::UInt8,
                vec![V::UInt8(0), V::UInt8(255), V::Null],
            ),
            (
                LogicalType::UInt16,
                vec![V::UInt16(9), V::UInt16(65535), V::Null],
            ),
            (
                LogicalType::UInt32,
                vec![V::UInt32(7), V::UInt32(u32::MAX), V::Null],
            ),
            (
                LogicalType::UInt64,
                vec![V::UInt64(1), V::UInt64(u64::MAX), V::Null],
            ),
            (
                LogicalType::Float32,
                vec![V::Float32(-1.5), V::Float32(f32::NAN), V::Null],
            ),
            (
                LogicalType::Float64,
                vec![V::Float64(0.0), V::Float64(-0.0), V::Null],
            ),
            (LogicalType::Date, vec![V::Date(-10), V::Date(10), V::Null]),
            (
                LogicalType::Timestamp,
                vec![V::Timestamp(5), V::Timestamp(-5), V::Null],
            ),
            (
                LogicalType::Varchar,
                vec![V::from("GERMANY"), V::from("NETHERLANDS"), V::Null],
            ),
        ];
        for (ty, values) in cases {
            let rows: Vec<Vec<Value>> = values.iter().map(|v| vec![v.clone()]).collect();
            let block = block_from_rows(&[ty], &rows);
            for spec in [
                SortSpec::new(SortOrder::Ascending, NullOrder::NullsLast),
                SortSpec::new(SortOrder::Descending, NullOrder::NullsFirst),
            ] {
                let order = OrderBy::new(vec![OrderByColumn { column: 0, spec }]);
                for i in 0..rows.len() {
                    for j in 0..rows.len() {
                        let expected = order.compare_rows(&rows[i], &rows[j]);
                        let (d, f) = cmp_both(&block, &order, i, j);
                        assert_eq!(d, expected, "{ty} dynamic {i},{j} {spec:?}");
                        assert_eq!(f, expected, "{ty} fused {i},{j} {spec:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn varchar_heap_comparison() {
        let types = [LogicalType::Varchar];
        let block = block_from_rows(
            &types,
            &[
                vec![Value::from("abc")],
                vec![Value::from("abcd")],
                vec![Value::from("")],
            ],
        );
        let order = OrderBy::ascending(1);
        let (d, f) = cmp_both(&block, &order, 0, 1);
        assert_eq!(d, Ordering::Less);
        assert_eq!(f, Ordering::Less);
        let (d, _) = cmp_both(&block, &order, 2, 0);
        assert_eq!(d, Ordering::Less, "empty string sorts first");
    }

    #[test]
    fn static_tuple_comparator() {
        assert!(static_tuple_less(&[1u32, 2], &[1, 3]));
        assert!(!static_tuple_less(&[1u32, 3], &[1, 3]));
        assert!(!static_tuple_less(&[2u32], &[1]));
        assert!(static_tuple_less(&[1u32, 1, 1, 1], &[1, 1, 1, 2]));
    }

    #[test]
    fn order_by_subset_of_columns() {
        // Key is column 1 only; column 0 must not affect the ordering.
        let types = [LogicalType::Int32, LogicalType::Int32];
        let block = block_from_rows(
            &types,
            &[
                vec![Value::Int32(100), Value::Int32(1)],
                vec![Value::Int32(0), Value::Int32(2)],
            ],
        );
        let order = OrderBy::new(vec![OrderByColumn::asc(1)]);
        let (d, f) = cmp_both(&block, &order, 0, 1);
        assert_eq!(d, Ordering::Less);
        assert_eq!(f, Ordering::Less);
    }
}

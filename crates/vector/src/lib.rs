//! Columnar (DSM) substrate for the `rowsort` workspace.
//!
//! Analytical query engines with a vectorized interpreted execution model
//! (DuckDB, VectorWise) move data between operators as *data chunks*: small
//! batches of column vectors, each [`VECTOR_SIZE`] rows long at most. This
//! crate provides that representation:
//!
//! * [`LogicalType`] — the SQL-level type system supported by the workspace,
//! * [`Value`] — a single (nullable) cell, used at API boundaries and in tests,
//! * [`Validity`] — a bit mask tracking NULLs,
//! * [`Vector`] — one column of values (the Decomposition Storage Model, DSM),
//! * [`DataChunk`] — a batch of equal-length vectors,
//! * [`SortSpec`]/[`OrderBy`] — ORDER BY semantics (ASC/DESC, NULLS FIRST/LAST).
//!
//! Everything downstream — row (NSM) conversion, normalized keys, the sort
//! operator itself — is built on these types.

pub mod chunk;
pub mod sort;
pub mod strings;
pub mod types;
pub mod validity;
pub mod value;
pub mod vector;

pub use chunk::{DataChunk, VECTOR_SIZE};
pub use sort::{NullOrder, OrderBy, OrderByColumn, SortOrder, SortSpec};
pub use strings::StringVec;
pub use types::LogicalType;
pub use validity::Validity;
pub use value::Value;
pub use vector::{Vector, VectorData};

/// Errors produced by the vector substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectorError {
    /// A value of one type was pushed into a vector of another type.
    TypeMismatch {
        /// Type of the vector.
        expected: LogicalType,
        /// Type of the offending value.
        got: String,
    },
    /// Vectors within a chunk must share one length.
    LengthMismatch {
        /// Length of the first column.
        expected: usize,
        /// Length of the offending column.
        got: usize,
    },
    /// Index past the end of a vector or chunk.
    OutOfBounds {
        /// Requested index.
        index: usize,
        /// Container length.
        len: usize,
    },
}

impl std::fmt::Display for VectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VectorError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: vector holds {expected}, got {got}")
            }
            VectorError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
            VectorError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
        }
    }
}

impl std::error::Error for VectorError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, VectorError>;

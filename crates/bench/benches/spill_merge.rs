//! Spilled-run merge bench: the range-partitioned parallel merge against
//! its single-threaded twin on the same spilled runs.
//!
//! Two workloads, mirroring the pipeline bench's shapes:
//!
//! * `u32` — random u32 keys, the cheap-comparison case where merge cost
//!   is dominated by record movement and run-file I/O.
//! * `widekey` — three VARCHAR key columns with long shared prefixes and
//!   offset-value coding, the comparator-bound case.
//!
//! Each workload runs with `merge_threads` 1 and 4 over the same input
//! and budget (16 runs), so the `_t4` / `_t1` ratio is the merge-phase
//! parallel speedup on the host. `scripts/verify.sh` gates the medians
//! against `BENCH_spill_merge.json`. Override row counts with
//! `ROWSORT_SPILL_ROWS=100000,400000` for a quicker smoke.

use rowsort_core::external::{ExternalSortOptions, ExternalSorter};
use rowsort_testkit::bench::{BenchmarkId, Harness};
use rowsort_testkit::rng::Rng;
use rowsort_testkit::{bench_group, bench_main};
use rowsort_vector::{DataChunk, OrderBy, OrderByColumn, Value, Vector};
use std::time::Duration;

fn u32_chunk(n: usize, seed: u64) -> DataChunk {
    let mut rng = Rng::seed_from_u64(seed);
    let keys: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
    let payload: Vec<u32> = keys
        .iter()
        .map(|k| k.wrapping_mul(7).wrapping_add(1))
        .collect();
    DataChunk::from_columns(vec![Vector::from_u32s(keys), Vector::from_u32s(payload)]).unwrap()
}

fn wide_key_chunk(n: usize, seed: u64) -> DataChunk {
    let mut rng = Rng::seed_from_u64(seed);
    let mut chunk = DataChunk::new(&[
        rowsort_vector::LogicalType::Varchar,
        rowsort_vector::LogicalType::Varchar,
        rowsort_vector::LogicalType::Varchar,
    ]);
    for i in 0..n {
        let region = Value::from(if rng.chance(0.9) {
            "warehouse_eu"
        } else {
            "warehouse_us"
        });
        let segment = Value::from(format!("segment_{:02}", rng.below(8)));
        let id = Value::from(format!("{:012}", (i as u64) ^ (seed << 16)));
        chunk.push_row(&[region, segment, id]).unwrap();
    }
    chunk
}

fn sizes() -> Vec<usize> {
    std::env::var("ROWSORT_SPILL_ROWS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![400_000])
}

fn bench_spill_merge(c: &mut Harness) {
    let mut group = c.benchmark_group("spill_merge");
    group
        .sample_size(5)
        .measurement_time(Duration::from_secs(2));

    for &n in &sizes() {
        let budget = (n / 16).max(1);

        let chunk = u32_chunk(n, 0x5B11 ^ n as u64);
        let order = OrderBy::ascending(1);
        for (tag, threads) in [("u32_t1", 1usize), ("u32_t4", 4)] {
            let sorter = ExternalSorter::new(
                chunk.types(),
                order.clone(),
                ExternalSortOptions {
                    memory_limit_rows: budget,
                    merge_threads: threads,
                    ..Default::default()
                },
            );
            group.bench_function(BenchmarkId::new(tag, n), |b| {
                b.iter(|| sorter.sort(&chunk).expect("spill sort succeeds"))
            });
        }

        let chunk = wide_key_chunk(n, 0x5B12);
        let order = OrderBy::new(vec![
            OrderByColumn::asc(0),
            OrderByColumn::asc(1),
            OrderByColumn::asc(2),
        ]);
        for (tag, threads) in [("widekey_t1", 1usize), ("widekey_t4", 4)] {
            let sorter = ExternalSorter::new(
                chunk.types(),
                order.clone(),
                ExternalSortOptions {
                    memory_limit_rows: budget,
                    ovc: true,
                    merge_threads: threads,
                    ..Default::default()
                },
            );
            group.bench_function(BenchmarkId::new(tag, n), |b| {
                b.iter(|| sorter.sort(&chunk).expect("spill sort succeeds"))
            });
        }
    }
    group.finish();
}

bench_group!(benches, bench_spill_merge);
bench_main!(benches);

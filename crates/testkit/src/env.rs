//! One convention for environment-variable knobs across the workspace.
//!
//! The knobs grew up independently and drifted: `ROWSORT_OVC` recognized
//! only lowercase `0`/`false`/`off`, `ROWSORT_TRACE` only `1`/`true`, and
//! `ROWSORT_BENCH_WARN_ONLY` accepted `1` plus case-insensitive `true`.
//! Every boolean knob now routes through [`parse_flag`] / [`env_flag`],
//! and every numeric knob through [`parse_count`] / [`env_count`], so one
//! table of spellings applies everywhere:
//!
//! | value (trimmed, case-insensitive) | meaning            |
//! |-----------------------------------|--------------------|
//! | `1`, `true`, `on`, `yes`          | enabled            |
//! | `0`, `false`, `off`, `no`         | disabled           |
//! | empty / unset / anything else     | the knob's default |
//!
//! Unrecognized spellings fall back to the default instead of silently
//! enabling (or disabling) a feature the user thought they had switched.

/// Spellings that disable a flag (compared trimmed, ASCII-case-insensitive).
const FALSE_WORDS: [&str; 4] = ["0", "false", "off", "no"];

/// Spellings that enable a flag (compared trimmed, ASCII-case-insensitive).
const TRUE_WORDS: [&str; 4] = ["1", "true", "on", "yes"];

/// Interpret one boolean knob value under the shared convention.
/// `None` (unset) and unrecognized spellings yield `default`.
pub fn parse_flag(value: Option<&str>, default: bool) -> bool {
    let Some(raw) = value else {
        return default;
    };
    let v = raw.trim();
    if FALSE_WORDS.iter().any(|w| v.eq_ignore_ascii_case(w)) {
        return false;
    }
    if TRUE_WORDS.iter().any(|w| v.eq_ignore_ascii_case(w)) {
        return true;
    }
    default
}

/// [`parse_flag`] applied to the environment variable `name`.
pub fn env_flag(name: &str, default: bool) -> bool {
    parse_flag(std::env::var(name).ok().as_deref(), default)
}

/// Interpret one numeric knob value: trimmed decimal `usize`, or `None`
/// when unset or unparseable (callers apply their own default/clamp).
pub fn parse_count(value: Option<&str>) -> Option<usize> {
    value?.trim().parse::<usize>().ok()
}

/// [`parse_count`] applied to the environment variable `name`.
pub fn env_count(name: &str) -> Option<usize> {
    parse_count(std::env::var(name).ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabling_spellings_all_work() {
        for v in ["0", "false", "off", "no", "OFF", "False", "NO", " off ", "\t0\n"] {
            assert!(!parse_flag(Some(v), true), "{v:?} should disable");
            assert!(!parse_flag(Some(v), false), "{v:?} should disable");
        }
    }

    #[test]
    fn enabling_spellings_all_work() {
        for v in ["1", "true", "on", "yes", "TRUE", "On", "YES", " 1 "] {
            assert!(parse_flag(Some(v), false), "{v:?} should enable");
            assert!(parse_flag(Some(v), true), "{v:?} should enable");
        }
    }

    #[test]
    fn empty_and_garbage_fall_back_to_the_default() {
        for v in ["", "   ", "maybe", "2", "-1", "offf", "tru", "0x1"] {
            assert!(parse_flag(Some(v), true), "{v:?} should keep default true");
            assert!(!parse_flag(Some(v), false), "{v:?} should keep default false");
        }
    }

    #[test]
    fn unset_falls_back_to_the_default() {
        assert!(parse_flag(None, true));
        assert!(!parse_flag(None, false));
    }

    #[test]
    fn counts_parse_trimmed_decimals_only() {
        assert_eq!(parse_count(Some("4")), Some(4));
        assert_eq!(parse_count(Some(" 16 ")), Some(16));
        assert_eq!(parse_count(Some("0")), Some(0));
        for v in ["", "four", "-1", "1.5", "0x10"] {
            assert_eq!(parse_count(Some(v)), None, "{v:?}");
        }
        assert_eq!(parse_count(None), None);
    }
}

//! Fixture-based rule tests: each fixture under `tests/fixtures/` holds
//! known-bad (and known-good) snippets; the assertions pin the exact
//! finding counts and locations, so lexer or rule regressions show up as
//! off-by-one line numbers or missing/extra findings.

use lint::{analyze_source, baseline, rules, Config};
use std::path::Path;

fn cfg() -> Config {
    Config {
        // Fixtures are analyzed under virtual paths: `hot/…` is in the
        // R002/R003 scope, `enc/…` in the R004 scope.
        hot_paths: vec!["hot/**".to_string()],
        cast_strict: vec!["enc/**".to_string()],
        ..Config::default()
    }
}

/// `(rule, line)` pairs of all findings, in source order.
fn findings(path: &str, src: &str) -> Vec<(String, u32)> {
    analyze_source(path, src, &cfg())
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn r001_unsafe_without_safety_comment() {
    let got = findings("any/r001.rs", include_str!("fixtures/r001.rs"));
    assert_eq!(
        got,
        vec![("R001".to_string(), 14), ("R001".to_string(), 27)],
        "undocumented unsafe block and fn; documented ones pass, and \
         `unsafe` inside strings, raw strings, or nested comments is text"
    );
}

#[test]
fn r002_panics_and_literal_indexing_in_hot_paths() {
    let got = findings("hot/r002.rs", include_str!("fixtures/r002.rs"));
    let r002: Vec<u32> = got.iter().map(|(_, l)| *l).collect();
    assert!(got.iter().all(|(r, _)| r == "R002"), "{got:?}");
    assert_eq!(
        r002,
        vec![4, 5, 7, 9, 12],
        "unwrap, expect, panic!, v[0], e[1]; variable indexes, array \
         literals, #[cfg(test)] code, strings and comments are exempt"
    );
}

#[test]
fn r002_does_not_apply_outside_hot_paths() {
    assert!(findings("cold/r002.rs", include_str!("fixtures/r002.rs")).is_empty());
}

#[test]
fn r003_allocations_in_hot_loop_bodies() {
    let got = findings("hot/r003.rs", include_str!("fixtures/r003.rs"));
    assert!(got.iter().all(|(r, _)| r == "R003"), "{got:?}");
    let lines: Vec<u32> = got.iter().map(|(_, l)| *l).collect();
    assert_eq!(
        lines,
        vec![21, 22, 23, 24, 25, 31],
        "clone/to_vec/format!/Vec::new/collect in a for body and Box::new \
         in a while body; allocations outside loops, `impl … for`, and \
         `for<'a>` binders are exempt"
    );
}

#[test]
fn r004_bare_numeric_casts_in_cast_strict_paths() {
    let got = findings("enc/r004.rs", include_str!("fixtures/r004.rs"));
    assert_eq!(
        got,
        vec![("R004".to_string(), 4), ("R004".to_string(), 5)],
        "`as u32` and `as usize` flagged; `use … as Name` is not a cast"
    );
    assert!(findings("other/r004.rs", include_str!("fixtures/r004.rs")).is_empty());
}

#[test]
fn r006_exit_and_unsafe_impl() {
    let got = findings("any/r006.rs", include_str!("fixtures/r006.rs"));
    assert_eq!(
        got,
        vec![
            ("R006".to_string(), 7),
            ("R006".to_string(), 9),
            ("R006".to_string(), 12),
        ],
        "unsafe impl Send, unsafe impl Sync, process::exit; an unsafe impl \
         of another trait is not R006's concern"
    );
}

#[test]
fn r006_respects_allowlists() {
    let mut config = cfg();
    config.exit_allow = vec!["cli/**".to_string()];
    config.unsafe_impl_allow = vec!["cli/**".to_string()];
    let got = analyze_source("cli/r006.rs", include_str!("fixtures/r006.rs"), &config);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn suppressions_need_reasons() {
    let got = findings("hot/suppress.rs", include_str!("fixtures/suppress.rs"));
    assert_eq!(
        got,
        vec![("R000".to_string(), 7), ("R002".to_string(), 8)],
        "reasoned suppressions (standalone and trailing) silence their \
         line; a reason-less lint:allow is itself a finding and does not \
         suppress"
    );
}

#[test]
fn r005_manifest_audit() {
    let got: Vec<(String, u32)> = analyze_source(
        "crates/fixture/Cargo.toml",
        include_str!("fixtures/r005_bad.toml"),
        &cfg(),
    )
    .into_iter()
    .map(|f| (f.rule, f.line))
    .collect();
    assert!(got.iter().all(|(r, _)| r == "R005"), "{got:?}");
    let mut lines: Vec<u32> = got.iter().map(|(_, l)| *l).collect();
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![8, 9, 9, 12, 12, 12, 15, 15, 21],
        "registry versions, inline `version`/`git`/`branch` keys, dotted \
         tables, and target-specific sections are all caught; `path` and \
         `workspace = true` deps pass"
    );
}

#[test]
fn non_rust_non_manifest_files_are_ignored() {
    assert!(analyze_source("README.md", "v[0].unwrap()", &cfg()).is_empty());
}

#[test]
fn checked_in_baseline_is_empty() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let entries = lint::load_baseline(&root).expect("baseline parses");
    assert!(
        entries.is_empty(),
        "lint-baseline.json must stay empty — fix findings instead of \
         grandfathering them: {entries:?}"
    );
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = lint::load_config(&root).expect("lint.toml loads");
    let grandfathered = lint::load_baseline(&root).expect("baseline loads");
    let report = lint::run_workspace(&root, &config, &grandfathered).expect("scan runs");
    assert!(
        report.errors.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .errors
            .iter()
            .map(|f| format!(
                "  [{}] {}:{}:{} {}",
                f.rule, f.path, f.line, f.col, f.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "walk found the workspace");
}

#[test]
fn baseline_grandfathers_findings_as_warnings() {
    let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let all = analyze_source("hot/g.rs", src, &cfg());
    assert_eq!(all.len(), 1);
    let grandfathered = vec![baseline::BaselineEntry {
        rule: "R002".to_string(),
        path: "hot/g.rs".to_string(),
        line: 1,
    }];
    assert!(baseline::contains(&grandfathered, &all[0]));
    let other = rules::Finding {
        rule: "R002".to_string(),
        path: "hot/g.rs".to_string(),
        line: 2,
        col: 1,
        message: String::new(),
    };
    assert!(!baseline::contains(&grandfathered, &other));
}

// ---------------------------------------------------------------------------
// Deep rules (R010–R013): AST + call-graph analysis over a crate unit.
// ---------------------------------------------------------------------------

/// Run the unit pass over virtual `(path, source)` files.
fn unit_findings(files: &[(&str, &str)], cfg: &Config) -> Vec<rules::Finding> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    rules::analyze_unit(&owned, cfg)
}

#[test]
fn r010_diamond_call_graph_reports_shortest_chain_once() {
    // entry -> {left, right} -> sink; sink panics. One finding, via the
    // BFS-shortest chain, anchored at the panic site's exact line/col.
    let src = "fn entry() { left(); right(); }\n\
               fn left() { sink(); }\n\
               fn right() { left(); sink(); }\n\
               fn sink(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";
    let mut cfg = Config::default();
    cfg.hot_entries = vec![("unit/diamond.rs".to_string(), "entry".to_string())];
    let got = unit_findings(&[("unit/diamond.rs", src)], &cfg);
    assert_eq!(got.len(), 1, "{got:?}");
    let f = &got[0];
    assert_eq!(
        (f.rule.as_str(), f.path.as_str(), f.line, f.col),
        ("R010", "unit/diamond.rs", 5, 7)
    );
    assert!(
        f.message.contains("entry -> left -> sink"),
        "chain must render the shortest path: {}",
        f.message
    );
}

#[test]
fn r010_recursive_graph_terminates_and_reports() {
    let src = "fn entry() { step(0); }\n\
               fn step(n: u32) { if n > 0 { step(n - 1); } boom(); }\n\
               fn boom() { panic!(\"x\"); }\n";
    let mut cfg = Config::default();
    cfg.hot_entries = vec![("unit/rec.rs".to_string(), "entry".to_string())];
    let got = unit_findings(&[("unit/rec.rs", src)], &cfg);
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].line, 3);
    assert!(
        got[0].message.contains("entry -> step -> boom"),
        "{}",
        got[0].message
    );
}

#[test]
fn r010_trait_method_chain_crosses_files_within_a_unit() {
    // The entry calls `.step()`; conservative method resolution reaches
    // the impl in the other file of the same unit.
    let a = "pub fn entry(x: crate::b::A) { x.step(); }\n";
    let b = "pub struct A;\n\
             impl A {\n    pub fn step(&self) { helper(); }\n}\n\
             fn helper(v: Vec<u32>) -> u32 {\n    v[0]\n}\n";
    let mut cfg = Config::default();
    cfg.hot_entries = vec![("unit/a.rs".to_string(), "entry".to_string())];
    let got = unit_findings(&[("unit/a.rs", a), ("unit/b.rs", b)], &cfg);
    assert_eq!(got.len(), 1, "{got:?}");
    let f = &got[0];
    assert_eq!((f.path.as_str(), f.line), ("unit/b.rs", 6));
    assert!(
        f.message.contains("entry -> A::step -> helper"),
        "{}",
        f.message
    );
}

#[test]
fn r011_relaxed_ordering_flagged_unless_allowlisted() {
    let src = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    let cfg = Config::default();
    let got = unit_findings(&[("unit/atomics.rs", src)], &cfg);
    assert_eq!(got.len(), 1);
    assert_eq!((got[0].rule.as_str(), got[0].line), ("R011", 1));
    let mut allowed = Config::default();
    allowed.atomic_relaxed_allow = vec!["unit/**".to_string()];
    assert!(unit_findings(&[("unit/atomics.rs", src)], &allowed).is_empty());
}

#[test]
fn r012_discarded_spill_result_needs_a_counter() {
    let bad = "impl Spill {\n\
               fn cleanup(&self) -> Result<(), SpillError> { Ok(()) }\n\
               fn close(&self) {\n    let _ = self.cleanup();\n}\n}\n";
    let good = "impl Spill {\n\
               fn cleanup(&self) -> Result<(), SpillError> { Ok(()) }\n\
               fn close(&self, m: &Metrics) {\n    let _ = self.cleanup();\n    m.add(Counter::SpillCleanupFailed, 1);\n}\n}\n";
    let cfg = Config::default();
    let got = unit_findings(&[("unit/spill.rs", bad)], &cfg);
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!((got[0].rule.as_str(), got[0].line), ("R012", 4));
    assert!(unit_findings(&[("unit/spill.rs", good)], &cfg).is_empty());
}

#[test]
fn r013_unsafe_budget_and_safety_mentions() {
    // 9 statements > default budget of 8, and the SAFETY comment names
    // neither `p` (deref) nor `buf` (pointer-producing call receiver).
    let over = "fn f(p: *const u8, buf: &mut [u8]) {\n\
                // SAFETY: fine, trust me.\n\
                unsafe {\n\
                let a = 1; let b = 2; let c = 3; let d = 4; let e = 5;\n\
                let g = 6; let h = 7; let i = 8;\n\
                let v = *p;\n\
                }\n}\n";
    let cfg = Config::default();
    let got = unit_findings(&[("unit/unsafe.rs", over)], &cfg);
    let rules_hit: Vec<&str> = got.iter().map(|f| f.rule.as_str()).collect();
    assert!(rules_hit.contains(&"R013"), "{got:?}");
    assert!(
        got.iter()
            .any(|f| f.message.contains("at most 8 statements") || f.message.contains("`p`")),
        "budget or mention finding expected: {got:?}"
    );
    let ok = "fn f(p: *const u8) {\n\
              // SAFETY: `p` is valid for reads, promised by the caller.\n\
              unsafe {\n    let v = *p;\n}\n}\n";
    assert!(unit_findings(&[("unit/unsafe_ok.rs", ok)], &cfg).is_empty());
}

#[test]
fn test_paths_exempt_deep_rules_but_not_token_rules() {
    let src = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    let mut cfg = Config::default();
    cfg.test_paths = vec!["unit/tests/**".to_string()];
    assert!(unit_findings(&[("unit/tests/helper.rs", src)], &cfg).is_empty());
    // The same file outside [test-paths] is flagged.
    assert_eq!(unit_findings(&[("unit/src/helper.rs", src)], &cfg).len(), 1);
}

#[test]
fn severity_warn_keeps_exit_clean_but_reports() {
    let mut cfg = Config::default();
    cfg.severity = vec![("R011".to_string(), "warn".to_string())];
    assert_eq!(cfg.severity_of("R011"), lint::config::Severity::Warn);
    assert_eq!(cfg.severity_of("R010"), lint::config::Severity::Deny);
}

#[test]
fn stale_baseline_entries_are_reported() {
    use std::fs;
    let dir = std::env::temp_dir().join(format!("lint-stale-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("src")).unwrap();
    fs::write(dir.join("lint.toml"), "").unwrap();
    fs::write(dir.join("src/lib.rs"), "pub fn ok() {}\n").unwrap();
    fs::write(
        dir.join("lint-baseline.json"),
        "{\"findings\":[{\"rule\":\"R002\",\"path\":\"src/gone.rs\",\"line\":3}]}\n",
    )
    .unwrap();
    let config = lint::load_config(&dir).unwrap();
    let grandfathered = lint::load_baseline(&dir).unwrap();
    let report = lint::run_workspace(&dir, &config, &grandfathered).unwrap();
    assert_eq!(report.stale_baseline.len(), 1);
    assert_eq!(report.stale_baseline[0].path, "src/gone.rs");
    assert!(report.errors.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn explain_covers_every_rule_id() {
    for rule in [
        "R000", "R001", "R002", "R003", "R004", "R005", "R006", "R010", "R011", "R012", "R013",
    ] {
        assert!(
            rules::explain(rule).is_some(),
            "missing --explain text for {rule}"
        );
    }
    assert!(rules::explain("R999").is_none());
}

// ---------------------------------------------------------------------------
// Dataflow rules (R020–R023): CFG + abstract-state analysis.
// ---------------------------------------------------------------------------

/// Findings of one rule only, as `(path, line, col)` triples.
fn rule_findings(files: &[(&str, &str)], cfg: &Config, rule: &str) -> Vec<(String, u32, u32)> {
    unit_findings(files, cfg)
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.path.clone(), f.line, f.col))
        .collect()
}

fn taint_cfg() -> Config {
    let mut cfg = Config::default();
    cfg.taint_sources = vec![".read_exact".to_string(), "Self::fill".to_string()];
    cfg
}

#[test]
fn r020_unbounded_pointer_offset_flagged_with_chain() {
    let src = "fn bad(p: *mut u8, a: usize, b: usize) {\n\
               let idx = a + b;\n\
               // SAFETY: reviewed.\n\
               unsafe { p.add(idx).write(1); }\n}\n";
    let got = unit_findings(&[("unit/r020.rs", src)], &Config::default());
    let r020: Vec<_> = got.iter().filter(|f| f.rule == "R020").collect();
    assert_eq!(r020.len(), 1, "{got:?}");
    assert_eq!((r020[0].line, r020[0].col), (4, 12));
    assert!(
        r020[0].message.contains("`idx` = `a + b` (line 2)"),
        "finding must render the def-use chain: {}",
        r020[0].message
    );
}

#[test]
fn r020_len_derived_and_guarded_offsets_pass() {
    // Three justified shapes: derived from `.len()`, dominated by a
    // `debug_assert!` guard, and dominated by a branch on every path.
    let src = "fn ok(p: *mut u8, v: &[u8], i: usize) {\n\
               let n = v.len();\n\
               // SAFETY: n and i are in bounds of v.\n\
               unsafe { p.add(n).write(0); }\n\
               debug_assert!(i < v.len());\n\
               // SAFETY: asserted above.\n\
               unsafe { p.add(i).write(0); }\n\
               if i < v.len() {\n\
               // SAFETY: branch-guarded.\n\
               unsafe { p.add(i).write(0); }\n\
               }\n}\n";
    let got = rule_findings(&[("unit/r020ok.rs", src)], &Config::default(), "R020");
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn r020_guard_on_one_branch_does_not_cover_the_merge() {
    // Diamond: the bound holds on the then-edge only; after the merge
    // the offset is unguarded again.
    let src = "fn diamond(p: *mut u8, v: &[u8], i: usize, flip: bool) {\n\
               if flip {\n\
               if i >= v.len() { return; }\n\
               }\n\
               // SAFETY: reviewed.\n\
               unsafe { p.add(i).write(0); }\n}\n";
    let got = rule_findings(&[("unit/r020d.rs", src)], &Config::default(), "R020");
    assert_eq!(got, vec![("unit/r020d.rs".to_string(), 6, 12)]);
}

#[test]
fn r021_unsanitized_spill_length_reaches_resize() {
    // The exact shape of a spill segment decode, minus the cap.
    let src = "impl Reader {\n\
               fn advance(&mut self) -> Result<(), E> {\n\
               let mut len_buf = [0u8; 4];\n\
               self.inner.read_exact(&mut len_buf)?;\n\
               let seg_len = u32::from_le_bytes(len_buf) as usize;\n\
               self.heap.resize(seg_len, 0);\n\
               Ok(())\n}\n}\n";
    let got = rule_findings(&[("unit/r021.rs", src)], &taint_cfg(), "R021");
    assert_eq!(got, vec![("unit/r021.rs".to_string(), 6, 11)]);
}

#[test]
fn r021_cap_guard_and_min_sanitizer_launder_the_length() {
    // Same decode, but (a) guarded by a constant cap with an early
    // return, (b) clamped with `.min`. Both must come out clean.
    let guarded = "impl Reader {\n\
               fn advance(&mut self) -> Result<(), E> {\n\
               let mut len_buf = [0u8; 4];\n\
               self.inner.read_exact(&mut len_buf)?;\n\
               let seg_len = u32::from_le_bytes(len_buf) as usize;\n\
               if seg_len > MAX_SEG_BYTES { return Err(E::Corrupt); }\n\
               self.heap.resize(seg_len, 0);\n\
               Ok(())\n}\n}\n";
    let clamped = "impl Reader {\n\
               fn advance(&mut self) -> Result<(), E> {\n\
               let mut len_buf = [0u8; 4];\n\
               self.inner.read_exact(&mut len_buf)?;\n\
               let seg_len = (u32::from_le_bytes(len_buf) as usize).min(MAX_SEG_BYTES);\n\
               self.heap.resize(seg_len, 0);\n\
               Ok(())\n}\n}\n";
    for (name, src) in [("guarded", guarded), ("clamped", clamped)] {
        let got = rule_findings(&[("unit/r021ok.rs", src)], &taint_cfg(), "R021");
        assert!(got.is_empty(), "{name}: {got:?}");
    }
}

#[test]
fn r021_dynamic_source_wrapper_is_discovered() {
    // `read_len` returns tainted data; the fixed point promotes it to a
    // source, so its caller's unsanitized use is flagged.
    let src = "impl Reader {\n\
               fn read_len(&mut self) -> usize {\n\
               let mut b = [0u8; 4];\n\
               self.inner.read_exact(&mut b);\n\
               u32::from_le_bytes(b) as usize\n}\n\
               fn load(&mut self) {\n\
               let n = self.read_len();\n\
               self.buf.reserve(n);\n}\n}\n";
    let got = rule_findings(&[("unit/r021dyn.rs", src)], &taint_cfg(), "R021");
    assert_eq!(got, vec![("unit/r021dyn.rs".to_string(), 9, 10)]);
}

#[test]
fn r021_tainted_slice_index_flagged() {
    let src = "impl Reader {\n\
               fn pick(&mut self, v: &[u8]) -> u8 {\n\
               let mut b = [0u8; 4];\n\
               self.inner.read_exact(&mut b);\n\
               let i = u32::from_le_bytes(b) as usize;\n\
               v[i]\n}\n}\n";
    let got = rule_findings(&[("unit/r021ix.rs", src)], &taint_cfg(), "R021");
    assert_eq!(got, vec![("unit/r021ix.rs".to_string(), 6, 2)]);
}

#[test]
fn r022_broadcast_closure_offsets_by_worker_id_pass() {
    // Inline closure, closure behind a local, and a call one hop down:
    // all offsets derive from the id parameter or a fetch_add ticket.
    let src = "fn helper(dst: *mut u8, w: usize) {\n\
               // SAFETY: caller passes a worker-private index.\n\
               unsafe { dst.add(w).write(1); }\n}\n\
               fn run(pool: &WorkerPool, dst: *mut u8, tickets: &AtomicUsize) {\n\
               let body = |w: usize| {\n\
               let t = tickets.fetch_add(1, Ordering::Relaxed);\n\
               // SAFETY: ticket-disjoint.\n\
               unsafe { dst.add(t).write(0); }\n\
               helper(dst, w);\n\
               };\n\
               pool.broadcast(&body);\n}\n";
    let got = rule_findings(&[("unit/r022ok.rs", src)], &Config::default(), "R022");
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn r022_non_id_offset_in_broadcast_closure_flagged() {
    let src = "fn run(pool: &WorkerPool, dst: *mut u8, k: usize) {\n\
               pool.broadcast(&|w: usize| {\n\
               // SAFETY: reviewed.\n\
               unsafe { dst.add(k).write(0); }\n\
               });\n}\n";
    let got = rule_findings(&[("unit/r022.rs", src)], &Config::default(), "R022");
    assert_eq!(got, vec![("unit/r022.rs".to_string(), 4, 14)]);
}

#[test]
fn r022_interprocedural_hop_reports_in_the_callee() {
    // The closure forwards a non-id value into `helper`'s id-seeded
    // position? No — it forwards the id into one param and a plain
    // capture into the pointer math: the finding lands inside `helper`.
    let src = "fn helper(dst: *mut u8, w: usize, k: usize) {\n\
               // SAFETY: reviewed.\n\
               unsafe { dst.add(k).write(1); }\n}\n\
               fn run(pool: &WorkerPool, dst: *mut u8, k: usize) {\n\
               pool.broadcast(&|w: usize| helper(dst, w, k));\n}\n";
    let got = rule_findings(&[("unit/r022hop.rs", src)], &Config::default(), "R022");
    assert_eq!(got, vec![("unit/r022hop.rs".to_string(), 3, 14)]);
}

#[test]
fn r023_guard_lost_at_merge_flagged_diamond() {
    let src = "fn pick(v: &[u8], i: usize) -> u8 {\n\
               let mut x = 0;\n\
               if i < v.len() {\n\
               x = v[i];\n\
               }\n\
               x + v[i]\n}\n";
    let got = rule_findings(&[("unit/r023.rs", src)], &Config::default(), "R023");
    assert_eq!(got, vec![("unit/r023.rs".to_string(), 6, 6)]);
}

#[test]
fn r023_loop_carried_index_with_head_guard_passes() {
    // `i` is loop-carried (0 on entry, incremented on the backedge); the
    // head refinement re-establishes `i < v.len()` every iteration.
    let src = "fn sum(v: &[u8]) -> u32 {\n\
               let mut acc = 0u32;\n\
               let mut i = 0;\n\
               while i < v.len() {\n\
               acc += v[i] as u32;\n\
               i += 1;\n\
               }\n\
               acc\n}\n";
    let got = rule_findings(&[("unit/r023loop.rs", src)], &Config::default(), "R023");
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn r023_conjunction_guard_refines_both_comparisons() {
    // `i < a.len() && j < b.len()` arrives as one flattened chain; both
    // indexes inside the branch are covered, both after it are not.
    let src = "fn merge(a: &[u8], b: &[u8], i: usize, j: usize) -> u8 {\n\
               let mut x = 0;\n\
               if i < a.len() && j < b.len() {\n\
               x = a[i] + b[j];\n\
               }\n\
               x + a[i] + b[j]\n}\n";
    let got = rule_findings(&[("unit/r023and.rs", src)], &Config::default(), "R023");
    assert_eq!(
        got,
        vec![
            ("unit/r023and.rs".to_string(), 6, 6),
            ("unit/r023and.rs".to_string(), 6, 13)
        ]
    );
}

#[test]
fn dataflow_rules_are_suppressible_and_explained() {
    let src = "fn bad(p: *mut u8, a: usize) {\n\
               // SAFETY: reviewed.\n\
               // lint:allow(R020): offset proven in the caller's contract.\n\
               unsafe { p.add(a).write(1); }\n}\n";
    let got = rule_findings(&[("unit/r020sup.rs", src)], &Config::default(), "R020");
    assert!(got.is_empty(), "{got:?}");
    for rule in ["R020", "R021", "R022", "R023"] {
        let text = rules::explain(rule).expect(rule);
        assert!(text.starts_with(rule), "{text}");
    }
}

//! Differential property tests for offset-value coding (DESIGN.md §10):
//! OVC is a pure optimization, so enabling it must change *nothing*
//! observable — the pipeline's output bytes are bit-identical for every
//! key type × NULL order × direction × thread count, and the external
//! sorter's output rows are identical for every spill budget.

use rowsort_core::external::{ExternalSortOptions, ExternalSorter};
use rowsort_core::pipeline::{SortOptions, SortPipeline};
use rowsort_testkit::prop::{
    full, full_bool, select, string_from, vec_of, weighted, BoxedGen, GenExt, Just,
};
use rowsort_testkit::{prop, prop_assert_eq};
use rowsort_vector::{
    DataChunk, LogicalType, NullOrder, OrderBy, OrderByColumn, SortOrder, SortSpec, Value,
};

fn value_gen(ty: LogicalType) -> BoxedGen<Value> {
    let non_null: BoxedGen<Value> = match ty {
        LogicalType::Int32 => (-50i32..50).prop_map(Value::Int32).boxed(),
        LogicalType::Int64 => full::<i64>().prop_map(Value::Int64).boxed(),
        LogicalType::UInt32 => (0u32..40).prop_map(Value::UInt32).boxed(),
        LogicalType::Float64 => (-4i32..4)
            .prop_map(|v| Value::Float64(v as f64 * 1.5))
            .boxed(),
        // Shared prefixes on purpose: long equal key prefixes are the
        // workload OVC exists for, and where a coding bug would bite.
        LogicalType::Varchar => weighted(vec![
            (
                2,
                string_from("ab", 0..=14).prop_map(Value::Varchar).boxed(),
            ),
            (
                1,
                string_from("xyz", 0..=6)
                    .prop_map(|s| Value::Varchar(format!("shared_prefix_{s}")))
                    .boxed(),
            ),
        ])
        .boxed(),
        _ => unreachable!("generator only draws from the five types below"),
    };
    weighted(vec![(1, Just(Value::Null).boxed()), (5, non_null)]).boxed()
}

fn schema_gen() -> BoxedGen<Vec<LogicalType>> {
    vec_of(
        select(vec![
            LogicalType::Int32,
            LogicalType::Int64,
            LogicalType::UInt32,
            LogicalType::Float64,
            LogicalType::Varchar,
        ]),
        1..=3,
    )
    .boxed()
}

fn spec_gen() -> BoxedGen<SortSpec> {
    (full_bool(), full_bool())
        .prop_map(|(d, nf)| {
            SortSpec::new(
                if d {
                    SortOrder::Descending
                } else {
                    SortOrder::Ascending
                },
                if nf {
                    NullOrder::NullsFirst
                } else {
                    NullOrder::NullsLast
                },
            )
        })
        .boxed()
}

#[derive(Debug, Clone)]
struct Case {
    chunk: DataChunk,
    order: OrderBy,
}

fn case_gen() -> BoxedGen<Case> {
    schema_gen()
        .prop_flat_map(|types| {
            let ncols = types.len();
            let row_gen: Vec<BoxedGen<Value>> = types.iter().map(|&t| value_gen(t)).collect();
            let rows = vec_of(row_gen, 0..120);
            let specs = vec_of(spec_gen(), 1..=ncols);
            (rows, specs, Just(types)).prop_map(|(rows, specs, types)| {
                let mut chunk = DataChunk::new(&types);
                for r in &rows {
                    chunk.push_row(r).unwrap();
                }
                let order = OrderBy::new(
                    specs
                        .into_iter()
                        .enumerate()
                        .map(|(i, spec)| OrderByColumn { column: i, spec })
                        .collect(),
                );
                Case { chunk, order }
            })
        })
        .boxed()
}

fn make_pipeline(case: &Case, threads: usize, run_rows: usize, ovc: bool) -> SortPipeline {
    SortPipeline::new(
        case.chunk.types(),
        case.order.clone(),
        SortOptions {
            threads,
            run_rows,
            ovc,
        },
    )
}

prop! {
    #![cases(64)]

    // The tentpole correctness pin: for arbitrary schemas, directions,
    // NULL orders, thread counts, and run sizes, the OVC merge emits the
    // exact bytes the plain merge does.
    fn pipeline_ovc_on_off_bit_identical(case in case_gen(), run_rows in 1usize..64, threads in 1usize..4) {
        let plain_pipeline = make_pipeline(&case, threads, run_rows, false);
        let coded_pipeline = make_pipeline(&case, threads, run_rows, true);
        let plain = plain_pipeline.sort_rows(&case.chunk);
        let coded = coded_pipeline.sort_rows(&case.chunk);
        match (coded.payload(), plain.payload()) {
            (None, None) => {}
            (Some(c), Some(p)) => {
                prop_assert_eq!(c.data(), p.data(), "payload rows differ with OVC on");
                prop_assert_eq!(c.heap(), p.heap(), "heap bytes differ with OVC on");
            }
            _ => prop_assert_eq!(coded.len(), plain.len()),
        }
    }

    // The spilled OVC column and the OVC-aware loser tree must likewise
    // be invisible in the external sorter's output, at every spill
    // budget (many small runs through a single in-memory run).
    fn external_ovc_on_off_identical(case in case_gen(), budget in 1usize..200) {
        let sort = |ovc: bool| -> DataChunk {
            ExternalSorter::new(
                case.chunk.types(),
                case.order.clone(),
                ExternalSortOptions {
                    memory_limit_rows: budget,
                    ovc,
                    ..Default::default()
                },
            )
            .sort(&case.chunk)
            .expect("external sort succeeds")
        };
        let plain = sort(false);
        let coded = sort(true);
        prop_assert_eq!(coded.to_rows(), plain.to_rows(), "budget {}", budget);
    }
}

//! Fixture-based rule tests: each fixture under `tests/fixtures/` holds
//! known-bad (and known-good) snippets; the assertions pin the exact
//! finding counts and locations, so lexer or rule regressions show up as
//! off-by-one line numbers or missing/extra findings.

use lint::{analyze_source, baseline, rules, Config};
use std::path::Path;

fn cfg() -> Config {
    Config {
        // Fixtures are analyzed under virtual paths: `hot/…` is in the
        // R002/R003 scope, `enc/…` in the R004 scope.
        hot_paths: vec!["hot/**".to_string()],
        cast_strict: vec!["enc/**".to_string()],
        ..Config::default()
    }
}

/// `(rule, line)` pairs of all findings, in source order.
fn findings(path: &str, src: &str) -> Vec<(String, u32)> {
    analyze_source(path, src, &cfg())
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn r001_unsafe_without_safety_comment() {
    let got = findings("any/r001.rs", include_str!("fixtures/r001.rs"));
    assert_eq!(
        got,
        vec![("R001".to_string(), 14), ("R001".to_string(), 27)],
        "undocumented unsafe block and fn; documented ones pass, and \
         `unsafe` inside strings, raw strings, or nested comments is text"
    );
}

#[test]
fn r002_panics_and_literal_indexing_in_hot_paths() {
    let got = findings("hot/r002.rs", include_str!("fixtures/r002.rs"));
    let r002: Vec<u32> = got.iter().map(|(_, l)| *l).collect();
    assert!(got.iter().all(|(r, _)| r == "R002"), "{got:?}");
    assert_eq!(
        r002,
        vec![4, 5, 7, 9, 12],
        "unwrap, expect, panic!, v[0], e[1]; variable indexes, array \
         literals, #[cfg(test)] code, strings and comments are exempt"
    );
}

#[test]
fn r002_does_not_apply_outside_hot_paths() {
    assert!(findings("cold/r002.rs", include_str!("fixtures/r002.rs")).is_empty());
}

#[test]
fn r003_allocations_in_hot_loop_bodies() {
    let got = findings("hot/r003.rs", include_str!("fixtures/r003.rs"));
    assert!(got.iter().all(|(r, _)| r == "R003"), "{got:?}");
    let lines: Vec<u32> = got.iter().map(|(_, l)| *l).collect();
    assert_eq!(
        lines,
        vec![21, 22, 23, 24, 25, 31],
        "clone/to_vec/format!/Vec::new/collect in a for body and Box::new \
         in a while body; allocations outside loops, `impl … for`, and \
         `for<'a>` binders are exempt"
    );
}

#[test]
fn r004_bare_numeric_casts_in_cast_strict_paths() {
    let got = findings("enc/r004.rs", include_str!("fixtures/r004.rs"));
    assert_eq!(
        got,
        vec![("R004".to_string(), 4), ("R004".to_string(), 5)],
        "`as u32` and `as usize` flagged; `use … as Name` is not a cast"
    );
    assert!(findings("other/r004.rs", include_str!("fixtures/r004.rs")).is_empty());
}

#[test]
fn r006_exit_and_unsafe_impl() {
    let got = findings("any/r006.rs", include_str!("fixtures/r006.rs"));
    assert_eq!(
        got,
        vec![
            ("R006".to_string(), 7),
            ("R006".to_string(), 9),
            ("R006".to_string(), 12),
        ],
        "unsafe impl Send, unsafe impl Sync, process::exit; an unsafe impl \
         of another trait is not R006's concern"
    );
}

#[test]
fn r006_respects_allowlists() {
    let mut config = cfg();
    config.exit_allow = vec!["cli/**".to_string()];
    config.unsafe_impl_allow = vec!["cli/**".to_string()];
    let got = analyze_source("cli/r006.rs", include_str!("fixtures/r006.rs"), &config);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn suppressions_need_reasons() {
    let got = findings("hot/suppress.rs", include_str!("fixtures/suppress.rs"));
    assert_eq!(
        got,
        vec![("R000".to_string(), 7), ("R002".to_string(), 8)],
        "reasoned suppressions (standalone and trailing) silence their \
         line; a reason-less lint:allow is itself a finding and does not \
         suppress"
    );
}

#[test]
fn r005_manifest_audit() {
    let got: Vec<(String, u32)> = analyze_source(
        "crates/fixture/Cargo.toml",
        include_str!("fixtures/r005_bad.toml"),
        &cfg(),
    )
    .into_iter()
    .map(|f| (f.rule, f.line))
    .collect();
    assert!(got.iter().all(|(r, _)| r == "R005"), "{got:?}");
    let mut lines: Vec<u32> = got.iter().map(|(_, l)| *l).collect();
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![8, 9, 9, 12, 12, 12, 15, 15, 21],
        "registry versions, inline `version`/`git`/`branch` keys, dotted \
         tables, and target-specific sections are all caught; `path` and \
         `workspace = true` deps pass"
    );
}

#[test]
fn non_rust_non_manifest_files_are_ignored() {
    assert!(analyze_source("README.md", "v[0].unwrap()", &cfg()).is_empty());
}

#[test]
fn checked_in_baseline_is_empty() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let entries = lint::load_baseline(&root).expect("baseline parses");
    assert!(
        entries.is_empty(),
        "lint-baseline.json must stay empty — fix findings instead of \
         grandfathering them: {entries:?}"
    );
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = lint::load_config(&root).expect("lint.toml loads");
    let grandfathered = lint::load_baseline(&root).expect("baseline loads");
    let report = lint::run_workspace(&root, &config, &grandfathered).expect("scan runs");
    assert!(
        report.errors.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .errors
            .iter()
            .map(|f| format!(
                "  [{}] {}:{}:{} {}",
                f.rule, f.path, f.line, f.col, f.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "walk found the workspace");
}

#[test]
fn baseline_grandfathers_findings_as_warnings() {
    let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let all = analyze_source("hot/g.rs", src, &cfg());
    assert_eq!(all.len(), 1);
    let grandfathered = vec![baseline::BaselineEntry {
        rule: "R002".to_string(),
        path: "hot/g.rs".to_string(),
        line: 1,
    }];
    assert!(baseline::contains(&grandfathered, &all[0]));
    let other = rules::Finding {
        rule: "R002".to_string(),
        path: "hot/g.rs".to_string(),
        line: 2,
        col: 1,
        message: String::new(),
    };
    assert!(!baseline::contains(&grandfathered, &other));
}

// ---------------------------------------------------------------------------
// Deep rules (R010–R013): AST + call-graph analysis over a crate unit.
// ---------------------------------------------------------------------------

/// Run the unit pass over virtual `(path, source)` files.
fn unit_findings(files: &[(&str, &str)], cfg: &Config) -> Vec<rules::Finding> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    rules::analyze_unit(&owned, cfg)
}

#[test]
fn r010_diamond_call_graph_reports_shortest_chain_once() {
    // entry -> {left, right} -> sink; sink panics. One finding, via the
    // BFS-shortest chain, anchored at the panic site's exact line/col.
    let src = "fn entry() { left(); right(); }\n\
               fn left() { sink(); }\n\
               fn right() { left(); sink(); }\n\
               fn sink(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";
    let mut cfg = Config::default();
    cfg.hot_entries = vec![("unit/diamond.rs".to_string(), "entry".to_string())];
    let got = unit_findings(&[("unit/diamond.rs", src)], &cfg);
    assert_eq!(got.len(), 1, "{got:?}");
    let f = &got[0];
    assert_eq!(
        (f.rule.as_str(), f.path.as_str(), f.line, f.col),
        ("R010", "unit/diamond.rs", 5, 7)
    );
    assert!(
        f.message.contains("entry -> left -> sink"),
        "chain must render the shortest path: {}",
        f.message
    );
}

#[test]
fn r010_recursive_graph_terminates_and_reports() {
    let src = "fn entry() { step(0); }\n\
               fn step(n: u32) { if n > 0 { step(n - 1); } boom(); }\n\
               fn boom() { panic!(\"x\"); }\n";
    let mut cfg = Config::default();
    cfg.hot_entries = vec![("unit/rec.rs".to_string(), "entry".to_string())];
    let got = unit_findings(&[("unit/rec.rs", src)], &cfg);
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].line, 3);
    assert!(
        got[0].message.contains("entry -> step -> boom"),
        "{}",
        got[0].message
    );
}

#[test]
fn r010_trait_method_chain_crosses_files_within_a_unit() {
    // The entry calls `.step()`; conservative method resolution reaches
    // the impl in the other file of the same unit.
    let a = "pub fn entry(x: crate::b::A) { x.step(); }\n";
    let b = "pub struct A;\n\
             impl A {\n    pub fn step(&self) { helper(); }\n}\n\
             fn helper(v: Vec<u32>) -> u32 {\n    v[0]\n}\n";
    let mut cfg = Config::default();
    cfg.hot_entries = vec![("unit/a.rs".to_string(), "entry".to_string())];
    let got = unit_findings(&[("unit/a.rs", a), ("unit/b.rs", b)], &cfg);
    assert_eq!(got.len(), 1, "{got:?}");
    let f = &got[0];
    assert_eq!((f.path.as_str(), f.line), ("unit/b.rs", 6));
    assert!(
        f.message.contains("entry -> A::step -> helper"),
        "{}",
        f.message
    );
}

#[test]
fn r011_relaxed_ordering_flagged_unless_allowlisted() {
    let src = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    let cfg = Config::default();
    let got = unit_findings(&[("unit/atomics.rs", src)], &cfg);
    assert_eq!(got.len(), 1);
    assert_eq!((got[0].rule.as_str(), got[0].line), ("R011", 1));
    let mut allowed = Config::default();
    allowed.atomic_relaxed_allow = vec!["unit/**".to_string()];
    assert!(unit_findings(&[("unit/atomics.rs", src)], &allowed).is_empty());
}

#[test]
fn r012_discarded_spill_result_needs_a_counter() {
    let bad = "impl Spill {\n\
               fn cleanup(&self) -> Result<(), SpillError> { Ok(()) }\n\
               fn close(&self) {\n    let _ = self.cleanup();\n}\n}\n";
    let good = "impl Spill {\n\
               fn cleanup(&self) -> Result<(), SpillError> { Ok(()) }\n\
               fn close(&self, m: &Metrics) {\n    let _ = self.cleanup();\n    m.add(Counter::SpillCleanupFailed, 1);\n}\n}\n";
    let cfg = Config::default();
    let got = unit_findings(&[("unit/spill.rs", bad)], &cfg);
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!((got[0].rule.as_str(), got[0].line), ("R012", 4));
    assert!(unit_findings(&[("unit/spill.rs", good)], &cfg).is_empty());
}

#[test]
fn r013_unsafe_budget_and_safety_mentions() {
    // 9 statements > default budget of 8, and the SAFETY comment names
    // neither `p` (deref) nor `buf` (pointer-producing call receiver).
    let over = "fn f(p: *const u8, buf: &mut [u8]) {\n\
                // SAFETY: fine, trust me.\n\
                unsafe {\n\
                let a = 1; let b = 2; let c = 3; let d = 4; let e = 5;\n\
                let g = 6; let h = 7; let i = 8;\n\
                let v = *p;\n\
                }\n}\n";
    let cfg = Config::default();
    let got = unit_findings(&[("unit/unsafe.rs", over)], &cfg);
    let rules_hit: Vec<&str> = got.iter().map(|f| f.rule.as_str()).collect();
    assert!(rules_hit.contains(&"R013"), "{got:?}");
    assert!(
        got.iter()
            .any(|f| f.message.contains("at most 8 statements") || f.message.contains("`p`")),
        "budget or mention finding expected: {got:?}"
    );
    let ok = "fn f(p: *const u8) {\n\
              // SAFETY: `p` is valid for reads, promised by the caller.\n\
              unsafe {\n    let v = *p;\n}\n}\n";
    assert!(unit_findings(&[("unit/unsafe_ok.rs", ok)], &cfg).is_empty());
}

#[test]
fn test_paths_exempt_deep_rules_but_not_token_rules() {
    let src = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    let mut cfg = Config::default();
    cfg.test_paths = vec!["unit/tests/**".to_string()];
    assert!(unit_findings(&[("unit/tests/helper.rs", src)], &cfg).is_empty());
    // The same file outside [test-paths] is flagged.
    assert_eq!(unit_findings(&[("unit/src/helper.rs", src)], &cfg).len(), 1);
}

#[test]
fn severity_warn_keeps_exit_clean_but_reports() {
    let mut cfg = Config::default();
    cfg.severity = vec![("R011".to_string(), "warn".to_string())];
    assert_eq!(cfg.severity_of("R011"), lint::config::Severity::Warn);
    assert_eq!(cfg.severity_of("R010"), lint::config::Severity::Deny);
}

#[test]
fn stale_baseline_entries_are_reported() {
    use std::fs;
    let dir = std::env::temp_dir().join(format!("lint-stale-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("src")).unwrap();
    fs::write(dir.join("lint.toml"), "").unwrap();
    fs::write(dir.join("src/lib.rs"), "pub fn ok() {}\n").unwrap();
    fs::write(
        dir.join("lint-baseline.json"),
        "{\"findings\":[{\"rule\":\"R002\",\"path\":\"src/gone.rs\",\"line\":3}]}\n",
    )
    .unwrap();
    let config = lint::load_config(&dir).unwrap();
    let grandfathered = lint::load_baseline(&dir).unwrap();
    let report = lint::run_workspace(&dir, &config, &grandfathered).unwrap();
    assert_eq!(report.stale_baseline.len(), 1);
    assert_eq!(report.stale_baseline[0].path, "src/gone.rs");
    assert!(report.errors.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn explain_covers_every_rule_id() {
    for rule in [
        "R000", "R001", "R002", "R003", "R004", "R005", "R006", "R010", "R011", "R012", "R013",
    ] {
        assert!(
            rules::explain(rule).is_some(),
            "missing --explain text for {rule}"
        );
    }
    assert!(rules::explain("R999").is_none());
}

//! Regression tests for the truncated-VARCHAR mis-sort (ROADMAP known
//! bug, fixed by the continuation marker byte + per-column tie
//! detection in the normalized-key layout).
//!
//! Under `ORDER BY s, n`, rows `("x"*44, 44)` and `("x"*12, 72)` used to
//! encode identical 12-byte prefixes for `s`, so `n`'s key bytes decided
//! the comparison before the truncation tie was detected and the pair
//! sorted backwards. The fix must hold on every sort path — in-memory
//! (single- and multi-threaded cascades), spilled, and the
//! range-partitioned spill merge — with offset-value coding on and off.

use rowsort_core::external::{ExternalSortOptions, ExternalSorter};
use rowsort_core::pipeline::{SortOptions, SortPipeline};
use rowsort_vector::{DataChunk, LogicalType, OrderBy, OrderByColumn, SortSpec, Value};
use std::cmp::Ordering;

fn pseudo_random(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        })
        .collect()
}

/// `ORDER BY s ASC, n ASC` — `n` is unique, so the ordering is total and
/// the expected row sequence is exact.
fn order_s_n() -> OrderBy {
    OrderBy::new(vec![
        OrderByColumn {
            column: 0,
            spec: SortSpec::ASC,
        },
        OrderByColumn::asc(1),
    ])
}

/// The ROADMAP repro pair plus adversarial neighbors: strings that agree
/// on the first 12 bytes but differ in length/suffix (fits-vs-truncated
/// and truncated-vs-truncated), strings with embedded NULs, and short
/// unique strings — with a unique `n` whose *key bytes* would invert
/// many of the pairs if they still leaked into the comparison.
fn tricky_chunk(rows: usize, seed: u64) -> DataChunk {
    let mut chunk = DataChunk::new(&[LogicalType::Varchar, LogicalType::Int32]);
    chunk
        .push_row(&[Value::from("x".repeat(44).as_str()), Value::Int32(44)])
        .unwrap();
    chunk
        .push_row(&[Value::from("x".repeat(12).as_str()), Value::Int32(72)])
        .unwrap();
    for (i, r) in pseudo_random(rows, seed).into_iter().enumerate() {
        let s = match r % 8 {
            0 => Value::Null,
            1 => Value::from(""),
            2 => Value::from("x".repeat(12 + (r % 40) as usize)),
            3 => Value::from(format!("x{}", "\u{0}".repeat((r % 20) as usize))),
            4 => Value::from(format!("{}{}", "x".repeat(13), r % 5)),
            _ => Value::from(format!("key_{}", r % 3)),
        };
        chunk.push_row(&[s, Value::Int32(i as i32 + 100)]).unwrap();
    }
    chunk
}

fn expected_rows(chunk: &DataChunk, order: &OrderBy) -> Vec<Vec<Value>> {
    let mut rows = chunk.to_rows();
    rows.sort_by(|a, b| order.compare_rows(a, b));
    rows
}

fn assert_exact(got: &[Vec<Value>], expected: &[Vec<Value>], what: &str) {
    assert_eq!(got.len(), expected.len(), "{what}: row count");
    for (i, (g, e)) in got.iter().zip(expected).enumerate() {
        assert_eq!(
            order_s_n().compare_rows(g, e),
            Ordering::Equal,
            "{what}: row {i} differs: got {g:?}, expected {e:?}"
        );
        assert_eq!(g, e, "{what}: row {i} differs: got {g:?}, expected {e:?}");
    }
}

#[test]
fn roadmap_pair_sorts_correctly_in_memory() {
    // The minimal repro: just the two rows from the ROADMAP entry.
    let mut chunk = DataChunk::new(&[LogicalType::Varchar, LogicalType::Int32]);
    chunk
        .push_row(&[Value::from("x".repeat(44).as_str()), Value::Int32(44)])
        .unwrap();
    chunk
        .push_row(&[Value::from("x".repeat(12).as_str()), Value::Int32(72)])
        .unwrap();
    let sorted = SortPipeline::new(chunk.types(), order_s_n(), SortOptions::default())
        .sort(&chunk)
        .to_rows();
    assert_eq!(
        sorted[0],
        vec![Value::from("x".repeat(12).as_str()), Value::Int32(72)],
        "'x'*12 must sort before 'x'*44 regardless of the second key"
    );
}

#[test]
fn in_memory_paths_match_reference() {
    let chunk = tricky_chunk(600, 7);
    let order = order_s_n();
    let expected = expected_rows(&chunk, &order);
    for ovc in [true, false] {
        for threads in [1usize, 4] {
            let options = SortOptions {
                threads,
                run_rows: 100, // several runs: exercises the merge cascade
                ovc,
            };
            let got = SortPipeline::new(chunk.types(), order.clone(), options)
                .sort(&chunk)
                .to_rows();
            assert_exact(&got, &expected, &format!("pipeline ovc={ovc} t={threads}"));
        }
    }
}

#[test]
fn spill_path_matches_reference() {
    let chunk = tricky_chunk(400, 11);
    let order = order_s_n();
    let expected = expected_rows(&chunk, &order);
    for ovc in [true, false] {
        let sorter = ExternalSorter::new(
            chunk.types(),
            order.clone(),
            ExternalSortOptions {
                memory_limit_rows: 64, // forces several spilled runs
                ovc,
                merge_threads: 1,
                ..Default::default()
            },
        );
        let got = sorter.sort(&chunk).expect("spill sort succeeds").to_rows();
        assert_exact(&got, &expected, &format!("spill ovc={ovc}"));
    }
}

#[test]
fn partitioned_spill_merge_matches_reference() {
    // Enough rows that plan_parts actually partitions (>= 256 rows per
    // range) and several runs so the seam scan and ranged cursors run.
    let chunk = tricky_chunk(1600, 13);
    let order = order_s_n();
    let expected = expected_rows(&chunk, &order);
    for ovc in [true, false] {
        let sorter = ExternalSorter::new(
            chunk.types(),
            order.clone(),
            ExternalSortOptions {
                memory_limit_rows: 300,
                ovc,
                merge_threads: 4,
                ..Default::default()
            },
        );
        let got = sorter
            .sort(&chunk)
            .expect("partitioned spill sort succeeds")
            .to_rows();
        assert_exact(&got, &expected, &format!("partitioned ovc={ovc}"));
    }
}

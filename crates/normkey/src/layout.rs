//! Normalized-key shape computation.

use rowsort_vector::{LogicalType, SortSpec};

/// Default maximum VARCHAR prefix length, matching DuckDB's cap of 12 bytes.
pub const DEFAULT_MAX_PREFIX: usize = 12;

/// One key column's contribution to the normalized key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyColumn {
    /// Value type.
    pub ty: LogicalType,
    /// ASC/DESC and NULLS FIRST/LAST.
    pub spec: SortSpec,
    /// Encoded prefix length for variable-length types (ignored for
    /// fixed-width types). Chosen at plan time from string statistics,
    /// capped at [`DEFAULT_MAX_PREFIX`] by [`KeyColumn::varchar`].
    pub prefix_len: usize,
    /// Whether strings longer than `prefix_len` can occur (from the
    /// statistics handed to [`KeyColumn::varchar`]). A non-truncatable
    /// VARCHAR encodes *exactly* — its prefix plus the continuation
    /// marker byte determine the full value — so it is radix-sortable
    /// and never needs tie resolution.
    pub truncatable: bool,
}

impl KeyColumn {
    /// A fixed-width key column.
    pub fn fixed(ty: LogicalType, spec: SortSpec) -> KeyColumn {
        assert!(
            ty.is_fixed_width(),
            "KeyColumn::fixed on variable-length type {ty}"
        );
        KeyColumn {
            ty,
            spec,
            prefix_len: 0,
            truncatable: false,
        }
    }

    /// A VARCHAR key column. `max_len_stat` is the maximum string byte
    /// length known from statistics (it must be a true upper bound over
    /// the rows this column will encode); the encoded prefix is
    /// `min(max_len_stat, 12)`, as in the paper's DuckDB implementation.
    pub fn varchar(spec: SortSpec, max_len_stat: usize) -> KeyColumn {
        let prefix_len = max_len_stat.clamp(1, DEFAULT_MAX_PREFIX);
        KeyColumn {
            ty: LogicalType::Varchar,
            spec,
            prefix_len,
            truncatable: max_len_stat > prefix_len,
        }
    }

    /// Bytes this column contributes to the key. Fixed-width types:
    /// NULL byte + body. VARCHAR: NULL byte + prefix + the DuckDB-style
    /// continuation marker byte (`min(len, prefix_len + 1)`), which
    /// makes "shorter string" vs "padding zeros" vs "truncated" compare
    /// correctly byte-wise (see `encoding::continuation_marker`).
    pub fn encoded_width(&self) -> usize {
        if self.ty == LogicalType::Varchar {
            1 + self.prefix_len + 1
        } else {
            1 + self.ty.norm_key_body_width(self.prefix_len)
        }
    }

    /// Whether two rows with equal encoded bytes may still differ on this
    /// column: only a *truncated* VARCHAR prefix can hide a difference —
    /// with the continuation marker, a VARCHAR whose values all fit the
    /// prefix encodes exactly.
    pub fn tie_possible(&self) -> bool {
        self.ty == LogicalType::Varchar && self.truncatable
    }
}

/// The shape of a full normalized key: the concatenation of all key
/// columns' encodings.
///
/// Keys are fixed-width so they can be swapped in place and radix-sorted;
/// the caller typically appends a row-id suffix after `width()` bytes to
/// link keys back to payload rows (and to make sorting stable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormKeyLayout {
    columns: Vec<KeyColumn>,
    offsets: Vec<usize>,
    width: usize,
    tie_possible: bool,
}

impl NormKeyLayout {
    /// Compute the layout from per-column specs.
    ///
    /// The encoded key stops at the first truncatable column: bytes of
    /// any later column could decide a comparison *before* the earlier
    /// column's truncation tie is detected (the ROADMAP `ORDER BY s, n`
    /// mis-sort), so those columns are excluded from the key entirely —
    /// per-column tie detection by construction. Byte-equal keys are
    /// then resolved by the caller's full-tuple comparator, which orders
    /// the dropped columns correctly.
    pub fn new(mut columns: Vec<KeyColumn>) -> NormKeyLayout {
        if let Some(first_truncatable) = columns.iter().position(KeyColumn::tie_possible) {
            columns.truncate(first_truncatable + 1);
        }
        let mut offsets = Vec::with_capacity(columns.len());
        let mut width = 0usize;
        let mut tie_possible = false;
        for c in &columns {
            offsets.push(width);
            width += c.encoded_width();
            tie_possible |= c.tie_possible();
        }
        NormKeyLayout {
            columns,
            offsets,
            width,
            tie_possible,
        }
    }

    /// The key columns.
    pub fn columns(&self) -> &[KeyColumn] {
        &self.columns
    }

    /// Number of key columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Byte offset of column `i`'s encoding within the key.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Total encoded key width in bytes (excluding any row-id suffix).
    pub fn width(&self) -> usize {
        self.width
    }

    /// `true` iff equal key bytes do not prove equal tuples (some VARCHAR
    /// prefix was truncated), so the caller must break ties against the
    /// full values.
    pub fn tie_possible(&self) -> bool {
        self.tie_possible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowsort_vector::LogicalType as T;

    #[test]
    fn fixed_widths_accumulate() {
        // 4 u32 keys: 4 * (1 + 4) = 20 bytes.
        let cols = vec![KeyColumn::fixed(T::UInt32, SortSpec::ASC); 4];
        let l = NormKeyLayout::new(cols);
        assert_eq!(l.width(), 20);
        assert_eq!(l.offset(0), 0);
        assert_eq!(l.offset(1), 5);
        assert_eq!(l.offset(3), 15);
        assert!(!l.tie_possible());
    }

    #[test]
    fn varchar_prefix_from_statistics() {
        let c = KeyColumn::varchar(SortSpec::ASC, 7);
        assert_eq!(c.prefix_len, 7);
        let capped = KeyColumn::varchar(SortSpec::ASC, 100);
        assert_eq!(capped.prefix_len, DEFAULT_MAX_PREFIX);
        let min = KeyColumn::varchar(SortSpec::ASC, 0);
        assert_eq!(min.prefix_len, 1);
    }

    #[test]
    fn truncatable_varchar_makes_ties_possible() {
        let l = NormKeyLayout::new(vec![
            KeyColumn::fixed(T::Int32, SortSpec::ASC),
            KeyColumn::varchar(SortSpec::DESC, 44),
        ]);
        assert!(l.tie_possible());
        // int (null + 4) then varchar (null + 12-byte prefix + marker).
        assert_eq!(l.width(), (1 + 4) + (1 + 12 + 1));
    }

    #[test]
    fn fitting_varchar_encodes_exactly() {
        // Statistics say every string fits the prefix: the marker byte
        // makes the encoding exact, so no ties and no column dropping.
        let l = NormKeyLayout::new(vec![
            KeyColumn::varchar(SortSpec::ASC, 12),
            KeyColumn::fixed(T::Int32, SortSpec::ASC),
        ]);
        assert!(!l.tie_possible());
        assert_eq!(l.column_count(), 2);
        assert_eq!(l.width(), (1 + 12 + 1) + (1 + 4));
    }

    #[test]
    fn key_stops_at_first_truncatable_column() {
        // ORDER BY s, n with a truncatable s: n's bytes must not be able
        // to decide a comparison before s's truncation tie is detected,
        // so the key ends at s and n is left to the tie comparator.
        let l = NormKeyLayout::new(vec![
            KeyColumn::varchar(SortSpec::ASC, 44),
            KeyColumn::fixed(T::Int32, SortSpec::ASC),
        ]);
        assert!(l.tie_possible());
        assert_eq!(l.column_count(), 1);
        assert_eq!(l.width(), 1 + 12 + 1);
    }

    #[test]
    fn mixed_type_offsets() {
        let l = NormKeyLayout::new(vec![
            KeyColumn::fixed(T::Int64, SortSpec::ASC),
            KeyColumn::fixed(T::UInt8, SortSpec::DESC),
        ]);
        assert_eq!(l.offset(0), 0);
        assert_eq!(l.offset(1), 9);
        assert_eq!(l.width(), 11);
        assert_eq!(l.column_count(), 2);
    }

    #[test]
    #[should_panic(expected = "variable-length")]
    fn fixed_constructor_rejects_varchar() {
        let _ = KeyColumn::fixed(T::Varchar, SortSpec::ASC);
    }
}

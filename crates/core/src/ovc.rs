//! Offset-value coding over normalized keys (Do & Graefe, *Robust and
//! Efficient Sorting with Offset-Value Coding*; DESIGN.md §10).
//!
//! A key's code relative to a *base* key that sorts at-or-before it packs
//! "where the two keys diverge" and "what the key holds there" into one
//! `u64`:
//!
//! ```text
//!   code = (arity − offset) << 32 | next_word        (descending offset)
//! ```
//!
//! where `arity` is the key's word count, `offset` the number of leading
//! 4-byte words shared with the base, and `next_word` the key's first
//! differing word (big-endian, so byte order and integer order agree).
//! `code == 0` iff the key equals its base. For two keys coded against the
//! **same** base, code order equals key order — a larger code means the
//! key diverges from the base earlier, or diverges with a bigger word —
//! so most merge comparisons resolve on a single `u64` compare and never
//! touch key bytes. On a code tie the keys share their base prefix *and*
//! the coded word, so the comparison restarts past the coded word, and
//! its outcome re-codes the loser relative to the winner for free: codes
//! stay current as a by-product of merging.
//!
//! Everything here is panic-free (R010: these kernels are reachable from
//! the hot merge entry points): tail words are zero-padded by a bounded
//! loader, and offsets decoded from untrusted spill files are clamped
//! before use.

use std::cmp::Ordering;

/// Code granularity: keys are compared word-at-a-time in 4-byte units.
pub const WORD_BYTES: usize = 4;

/// Number of coding words covering a `key_width`-byte normalized key
/// (the final word is zero-padded when `key_width % 4 != 0`).
#[inline]
pub fn word_count(key_width: usize) -> usize {
    key_width.div_ceil(WORD_BYTES)
}

/// Big-endian word `j` of `key`, zero-padded past the end of the slice.
/// Keys in one sort share a width, so the padding never changes an
/// ordering decision — it only rounds the tail up to a full word.
#[inline]
fn word_at(key: &[u8], j: usize) -> u32 {
    let start = j.saturating_mul(WORD_BYTES);
    // Fast path: a fully in-bounds word is one 4-byte big-endian load —
    // this is every word but the (possibly partial) last one, and it is
    // what the merge-loop suffix scans and `fill_run_codes` hit.
    if let Some(Ok(w)) = key
        .get(start..start.saturating_add(WORD_BYTES))
        .map(<[u8; WORD_BYTES]>::try_from)
    {
        return u32::from_be_bytes(w);
    }
    let mut buf = [0u8; WORD_BYTES];
    let end = key.len().min(start.saturating_add(WORD_BYTES));
    if start < end {
        if let (Some(dst), Some(src)) = (buf.get_mut(..end - start), key.get(start..end)) {
            dst.copy_from_slice(src);
        }
    }
    u32::from_be_bytes(buf)
}

/// Pack an offset-value code: the key diverges from its base at word
/// `offset` where it holds `value`. Stored as a *descending* offset
/// (`arity − offset`) so codes compare directly as `u64`s.
#[inline]
fn pack(arity: usize, offset: usize, value: u32) -> u64 {
    ((arity.saturating_sub(offset) as u64) << 32) | u64::from(value)
}

/// Big-endian 8-byte load at byte `off`, `None` past the end.
#[inline]
fn be64_at(key: &[u8], off: usize) -> Option<u64> {
    match key.get(off..off.saturating_add(8)).map(<[u8; 8]>::try_from) {
        Some(Ok(b)) => Some(u64::from_be_bytes(b)),
        _ => None,
    }
}

/// First word index in `start_word..arity` where `key` and `base`
/// differ, with both differing words, or `None` when the keys agree
/// through word `arity − 1`. Scans two words (8 bytes) per step — the
/// big-endian load keeps byte order and integer order aligned, so the
/// leading zeros of the XOR locate the first differing byte directly.
#[inline]
fn first_diff_from(
    key: &[u8],
    base: &[u8],
    start_word: usize,
    arity: usize,
) -> Option<(usize, u32, u32)> {
    let mut off = start_word.saturating_mul(WORD_BYTES);
    while let (Some(a), Some(b)) = (be64_at(key, off), be64_at(base, off)) {
        if a != b {
            let byte = off + ((a ^ b).leading_zeros() / 8) as usize;
            let j = byte / WORD_BYTES;
            if j >= arity {
                return None;
            }
            return Some((j, word_at(key, j), word_at(base, j)));
        }
        off += 8;
    }
    // Tail: fewer than 8 in-bounds bytes left on one side — finish with
    // zero-padded word loads.
    let mut j = off / WORD_BYTES;
    while j < arity {
        let (wa, wb) = (word_at(key, j), word_at(base, j));
        if wa != wb {
            return Some((j, wa, wb));
        }
        j += 1;
    }
    None
}

/// The code of a run's first key, i.e. relative to a virtual "minus
/// infinity" base that shares nothing: offset 0, value = word 0. All run
/// heads carry this form, which is what makes their codes mutually
/// comparable before a single row has been emitted.
#[inline]
pub fn initial_code(key: &[u8], arity: usize) -> u64 {
    pack(arity, 0, word_at(key, 0))
}

/// Code `key` relative to `base`, where `base` sorts at-or-before `key`
/// (e.g. its predecessor in a sorted run). Returns 0 when the keys are
/// byte-equal.
#[inline]
pub fn code_rel(key: &[u8], base: &[u8], arity: usize) -> u64 {
    match first_diff_from(key, base, 0, arity) {
        Some((j, w, _)) => pack(arity, j, w),
        None => 0,
    }
}

/// Outcome of one same-base compare-and-update (see [`compare_update`]).
#[derive(Debug, Clone, Copy)]
pub struct OvcCmp {
    /// Key order. `Equal` means the keys are **byte-equal** (callers with
    /// truncated-prefix ties still need their tie-break comparator).
    pub ord: Ordering,
    /// The loser's code relative to the winner. Whichever side the caller
    /// does *not* emit/advance must adopt this code; the winner's own
    /// code is unchanged. On `Equal` the caller may pick either side as
    /// winner (ties broken externally) — byte-equal keys code to 0
    /// relative to each other regardless.
    pub loser_code: u64,
    /// The comparison was decided by the code compare alone (no key
    /// bytes were read).
    pub resolved: bool,
    /// Key bytes examined by the post-tie suffix scan (both sides).
    pub key_bytes: u64,
}

/// Compare two keys whose codes `ca`, `cb` are relative to the **same**
/// base, updating the loser's code to be relative to the winner.
///
/// * Codes differ → key order is code order; the loser's code is already
///   correct relative to the winner (when codes differ, the loser's
///   divergence point and word against the base and against the winner
///   coincide), so `loser_code` is just its current code.
/// * Codes tie at 0 → both keys equal the base, hence each other.
/// * Codes tie at `(arity − o) << 32 | w` → both keys share words
///   `..= o` (their base prefix plus the coded word), so the scan
///   resumes at word `o + 1`; the first difference yields the order and
///   the loser's fresh code relative to the winner.
#[inline]
pub fn compare_update(ka: &[u8], ca: u64, kb: &[u8], cb: u64, arity: usize) -> OvcCmp {
    if ca != cb {
        return OvcCmp {
            ord: ca.cmp(&cb),
            loser_code: ca.max(cb),
            resolved: true,
            key_bytes: 0,
        };
    }
    if ca == 0 {
        return OvcCmp {
            ord: Ordering::Equal,
            loser_code: 0,
            resolved: true,
            key_bytes: 0,
        };
    }
    // Shared divergence word o = arity − d; `min` clamps codes decoded
    // from untrusted spill bytes (d > arity is impossible for codes we
    // produce, and checksum verification will reject the run — but the
    // kernel itself must stay in bounds and panic-free meanwhile).
    let d = ((ca >> 32) as usize).min(arity);
    let o = arity - d;
    match first_diff_from(ka, kb, o + 1, arity) {
        Some((j, wa, wb)) => {
            let (ord, lw) = if wa < wb {
                (Ordering::Less, wb)
            } else {
                (Ordering::Greater, wa)
            };
            OvcCmp {
                ord,
                loser_code: pack(arity, j, lw),
                resolved: false,
                key_bytes: ((j - o) * 2 * WORD_BYTES) as u64,
            }
        }
        None => OvcCmp {
            ord: Ordering::Equal,
            loser_code: 0,
            resolved: false,
            key_bytes: (arity.saturating_sub(o + 1) * 2 * WORD_BYTES) as u64,
        },
    }
}

/// Compute the per-row code column of a sorted run: row 0 gets the
/// [`initial_code`], row `i > 0` its code relative to row `i − 1`. Codes
/// are written to `out` as little-endian `u64`s (8 bytes per row); `out`
/// must hold `8 * (keys.len() / key_width)` bytes.
pub fn fill_run_codes(keys: &[u8], key_width: usize, out: &mut [u8]) {
    if key_width == 0 {
        return;
    }
    let arity = word_count(key_width);
    let rows = keys.len() / key_width;
    let mut prev: Option<&[u8]> = None;
    for i in 0..rows {
        let key = match keys.get(i * key_width..(i + 1) * key_width) {
            Some(k) => k,
            None => break,
        };
        let code = match prev {
            Some(base) => code_rel(key, base, arity),
            None => initial_code(key, arity),
        };
        if let Some(slot) = out.get_mut(i * 8..(i + 1) * 8) {
            slot.copy_from_slice(&code.to_le_bytes());
        }
        prev = Some(key);
    }
}

/// Read row `i`'s code from a run's code column (the inverse of
/// [`fill_run_codes`]'s encoding). Returns 0 past the end — callers index
/// in-bounds by construction; the total function keeps the kernel
/// panic-free.
#[inline]
pub fn read_code(ovc: &[u8], i: usize) -> u64 {
    match ovc
        .get(i.saturating_mul(8)..i.saturating_mul(8).saturating_add(8))
        .map(<[u8; 8]>::try_from)
    {
        Some(Ok(src)) => u64::from_le_bytes(src),
        _ => 0,
    }
}

/// `true` iff `code` could have been produced by this module for a key of
/// `arity` words: the decoded descending offset is in range and a zero
/// offset field implies a fully-zero code. Spill readers reject runs
/// whose stored codes fail this (DESIGN.md §10.4).
#[inline]
pub fn code_plausible(code: u64, arity: usize) -> bool {
    let d = code >> 32;
    d <= arity as u64 && (d != 0 || code == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(bytes: &[u8]) -> Vec<u8> {
        bytes.to_vec()
    }

    #[test]
    fn word_at_pads_tail_with_zeros() {
        let k = key(&[0xAA, 0xBB, 0xCC, 0xDD, 0xEE]);
        assert_eq!(word_at(&k, 0), 0xAABBCCDD);
        assert_eq!(word_at(&k, 1), 0xEE000000);
        assert_eq!(word_at(&k, 2), 0);
    }

    #[test]
    fn code_rel_matches_definition() {
        let a = word_count(9);
        let base = key(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(code_rel(&base, &base, a), 0);
        // Diverges in word 1.
        let k = key(&[1, 2, 3, 4, 5, 6, 9, 9, 9]);
        assert_eq!(code_rel(&k, &base, a), ((a as u64 - 1) << 32) | 0x05060909);
        // Diverges in word 0.
        let k0 = key(&[2, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(code_rel(&k0, &base, a), ((a as u64) << 32) | 0x02020304);
        // Diverges only in the padded tail word.
        let kt = key(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_eq!(code_rel(&kt, &base, a), ((a as u64 - 2) << 32) | 0x0A000000);
    }

    #[test]
    fn initial_code_is_code_rel_smaller_everything() {
        let a = word_count(6);
        let k = key(&[9, 8, 7, 6, 5, 4]);
        assert_eq!(initial_code(&k, a), ((a as u64) << 32) | 0x09080706);
    }

    #[test]
    fn codes_are_order_isomorphic_same_base() {
        // Exhaustive 3-byte keys over a small alphabet, all coded against
        // one base: code order must equal key order whenever codes differ.
        let alpha = [0u8, 1, 7, 255];
        let base = key(&[1, 7, 1]);
        let arity = word_count(3);
        let mut keys = Vec::new();
        for &x in &alpha {
            for &y in &alpha {
                for &z in &alpha {
                    let k = key(&[x, y, z]);
                    if k >= base {
                        keys.push(k);
                    }
                }
            }
        }
        for ka in &keys {
            for kb in &keys {
                let (ca, cb) = (code_rel(ka, &base, arity), code_rel(kb, &base, arity));
                if ca != cb {
                    assert_eq!(ca.cmp(&cb), ka.cmp(kb), "ka={ka:?} kb={kb:?}");
                }
            }
        }
    }

    #[test]
    fn compare_update_full_oracle() {
        // Every pair of 5-byte keys (small alphabet) against every valid
        // base: order matches the byte oracle and the loser's refreshed
        // code matches code_rel against the winner.
        let alpha = [0u8, 3, 200];
        let mut keys = Vec::new();
        for &a in &alpha {
            for &b in &alpha {
                for &c in &alpha {
                    keys.push(key(&[a, 1, b, 2, c]));
                }
            }
        }
        let arity = word_count(5);
        for base in &keys {
            for ka in &keys {
                for kb in &keys {
                    if ka < base || kb < base {
                        continue;
                    }
                    let ca = code_rel(ka, base, arity);
                    let cb = code_rel(kb, base, arity);
                    let r = compare_update(ka, ca, kb, cb, arity);
                    assert_eq!(r.ord, ka.cmp(kb), "base={base:?} ka={ka:?} kb={kb:?}");
                    let (winner, loser) = match r.ord {
                        Ordering::Greater => (kb, ka),
                        _ => (ka, kb),
                    };
                    assert_eq!(
                        r.loser_code,
                        code_rel(loser, winner, arity),
                        "stale loser code: base={base:?} ka={ka:?} kb={kb:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn equal_keys_resolve_to_zero() {
        let arity = word_count(8);
        let k = key(&[5; 8]);
        let base = key(&[1; 8]);
        let c = code_rel(&k, &base, arity);
        let r = compare_update(&k, c, &k, c, arity);
        assert_eq!(r.ord, Ordering::Equal);
        assert_eq!(r.loser_code, 0);
    }

    #[test]
    fn fill_and_read_roundtrip() {
        let kw = 5;
        let rows: Vec<Vec<u8>> = vec![
            key(&[0, 0, 0, 0, 1]),
            key(&[0, 0, 0, 0, 1]),
            key(&[0, 0, 0, 2, 0]),
            key(&[9, 0, 0, 0, 0]),
        ];
        let mut keys = Vec::new();
        for r in &rows {
            keys.extend_from_slice(r);
        }
        let mut ovc = vec![0u8; rows.len() * 8];
        fill_run_codes(&keys, kw, &mut ovc);
        let arity = word_count(kw);
        assert_eq!(read_code(&ovc, 0), initial_code(&rows[0], arity));
        assert_eq!(read_code(&ovc, 1), 0);
        assert_eq!(read_code(&ovc, 2), code_rel(&rows[2], &rows[1], arity));
        assert_eq!(read_code(&ovc, 3), code_rel(&rows[3], &rows[2], arity));
        assert_eq!(read_code(&ovc, 4), 0, "past-the-end read is total");
    }

    #[test]
    fn plausibility_rejects_corrupt_codes() {
        let arity = word_count(12); // 3 words
        assert!(code_plausible(0, arity));
        assert!(code_plausible((3 << 32) | 7, arity));
        assert!(!code_plausible(4 << 32, arity), "offset out of range");
        assert!(!code_plausible(77, arity), "nonzero value at zero offset");
    }

    #[test]
    fn clamped_corrupt_code_stays_in_bounds() {
        // A hostile code with an impossible offset must not read out of
        // bounds or panic — order may be wrong (the checksum rejects the
        // run), memory safety may not.
        let k = key(&[1, 2, 3]);
        let arity = word_count(3);
        let evil = (u64::from(u32::MAX)) << 32 | 5;
        let r = compare_update(&k, evil, &k, evil, arity);
        let _ = r.ord;
    }
}

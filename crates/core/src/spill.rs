//! Spill I/O abstraction and error taxonomy for the external sorter.
//!
//! [`ExternalSorter`](crate::external::ExternalSorter) talks to storage
//! only through the [`SpillIo`] trait — create, write/flush (via the
//! returned writer), read, delete of run files. Production uses
//! [`StdFs`] (plain `std::fs`); tests and the `stress` binary swap in
//! [`rowsort_testkit::faultfs::FaultFs`] to deterministically inject
//! write errors, ENOSPC, short reads, and corruption from a seeded
//! schedule.
//!
//! Failures surface as [`SpillError`] — a typed, cloneable error that
//! keeps the spill operation, the run-file path, and the underlying
//! [`io::ErrorKind`], so callers (and `EngineError`) can report *which*
//! file failed doing *what* instead of a bare `io::Error`. Corruption
//! detected by checksum verification is its own variant: it must never
//! be confused with an I/O failure, because the degradation ladder
//! treats them differently (I/O errors may be retried or absorbed;
//! corrupt data is fatal for that sort).

use std::fmt;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use rowsort_testkit::faultfs::FaultFs;

use crate::metrics::{Counter, CounterRegistry};
use crate::pool::BufferPool;

/// Which spill operation failed. Carried inside [`SpillError::Io`] so
/// error messages name the phase (`create`, `write`, …) without parsing
/// strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillOp {
    /// Creating/truncating a run file.
    Create,
    /// Writing run bytes.
    Write,
    /// Flushing buffered run bytes.
    Flush,
    /// Opening or reading a run file back.
    Read,
    /// Deleting a run file.
    Delete,
}

impl fmt::Display for SpillOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SpillOp::Create => "create",
            SpillOp::Write => "write",
            SpillOp::Flush => "flush",
            SpillOp::Read => "read",
            SpillOp::Delete => "delete",
        })
    }
}

/// A typed spill failure: what went wrong, on which file, doing what.
///
/// Stores the [`io::ErrorKind`] plus the error's rendered detail rather
/// than the `io::Error` itself so the type stays `Clone + PartialEq +
/// Eq` (and can thread through `EngineError`, which is both).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillError {
    /// An I/O operation on a run file failed.
    Io {
        /// The operation that failed.
        op: SpillOp,
        /// The run file involved.
        path: String,
        /// The underlying error kind (drives retry/degradation policy).
        kind: io::ErrorKind,
        /// The underlying error's message.
        detail: String,
    },
    /// A run file read back with contents that fail verification
    /// (checksum mismatch, truncation, or a structurally impossible
    /// record).
    Corrupt {
        /// The run file involved.
        path: String,
        /// What the verifier saw.
        detail: String,
    },
}

impl SpillError {
    /// Wrap an `io::Error` from `op` on `path`.
    pub fn io(op: SpillOp, path: &Path, err: &io::Error) -> SpillError {
        SpillError::Io {
            op,
            path: path.display().to_string(),
            kind: err.kind(),
            detail: err.to_string(),
        }
    }

    /// A corruption error for `path`.
    pub fn corrupt(path: &Path, detail: impl Into<String>) -> SpillError {
        SpillError::Corrupt {
            path: path.display().to_string(),
            detail: detail.into(),
        }
    }

    /// The run-file path this error refers to.
    pub fn path(&self) -> &str {
        match self {
            SpillError::Io { path, .. } | SpillError::Corrupt { path, .. } => path,
        }
    }

    /// True for error kinds worth a bounded retry: the write may succeed
    /// if simply attempted again.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SpillError::Io {
                kind: io::ErrorKind::Interrupted
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::TimedOut,
                ..
            }
        )
    }

    /// True when spill space is exhausted: retrying is pointless, but the
    /// sorter can degrade to keeping runs in memory.
    pub fn is_no_space(&self) -> bool {
        matches!(
            self,
            SpillError::Io {
                kind: io::ErrorKind::StorageFull | io::ErrorKind::QuotaExceeded,
                ..
            }
        )
    }
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io {
                op,
                path,
                kind,
                detail,
            } => write!(f, "spill {op} failed on {path}: {detail} ({kind:?})"),
            SpillError::Corrupt { path, detail } => {
                write!(f, "spill file corrupt: {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for SpillError {}

/// The storage surface the external sorter needs. Object-safe so the
/// sorter can hold an `Arc<dyn SpillIo>` and tests can swap backends.
pub trait SpillIo: Send + Sync {
    /// Create (truncating) a run file and return its writer. Writes and
    /// flushes go through the returned handle; dropping it closes the
    /// file.
    fn create(&self, path: &Path) -> io::Result<Box<dyn Write + Send>>;

    /// Open a run file for sequential reading.
    fn open(&self, path: &Path) -> io::Result<Box<dyn Read + Send>>;

    /// Open a run file positioned at byte `offset` — the seam seek the
    /// partitioned merge uses to start each worker's cursor at its range
    /// boundary. The default implementation opens and discards `offset`
    /// bytes, which is correct for any backend; backends with real seek
    /// support (like [`StdFs`]) override it.
    fn open_at(&self, path: &Path, offset: u64) -> io::Result<Box<dyn Read + Send>> {
        let mut reader = self.open(path)?;
        let mut remaining = offset;
        let mut scratch = [0u8; 4096];
        while remaining > 0 {
            let want = scratch.len().min(remaining as usize);
            match reader.read(&mut scratch[..want]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("seek to {offset} ran past end of file"),
                    ));
                }
                Ok(n) => remaining -= n as u64,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(reader)
    }

    /// Delete a run file.
    fn delete(&self, path: &Path) -> io::Result<()>;
}

/// The default backend: plain `std::fs`, buffered on both sides.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl SpillIo for StdFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn Write + Send>> {
        let file = std::fs::File::create(path)?;
        Ok(Box::new(io::BufWriter::new(file)))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn Read + Send>> {
        let file = std::fs::File::open(path)?;
        Ok(Box::new(io::BufReader::new(file)))
    }

    fn open_at(&self, path: &Path, offset: u64) -> io::Result<Box<dyn Read + Send>> {
        let mut file = std::fs::File::open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        Ok(Box::new(io::BufReader::new(file)))
    }

    fn delete(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// The fault-injecting in-memory backend ([`FaultFs`]) speaks the same
/// interface, keyed by the path's string form.
impl SpillIo for FaultFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn Write + Send>> {
        FaultFs::create(self, &path.display().to_string()).map(|w| Box::new(w) as _)
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn Read + Send>> {
        FaultFs::open(self, &path.display().to_string()).map(|r| Box::new(r) as _)
    }

    fn delete(&self, path: &Path) -> io::Result<()> {
        FaultFs::delete(self, &path.display().to_string())
    }
}

/// Double-buffered read-ahead over a spill reader.
///
/// Decode in the merge loop consumes small records (tens of bytes); going
/// through the boxed `dyn Read` for each one costs a virtual call and, for
/// `StdFs`, a `BufReader` bounds check per field. `ReadAhead` amortizes
/// that by pulling [`ReadAhead::BLOCK`]-sized chunks into two pooled
/// buffers: the *front* block serves decode while the *back* block holds
/// the next chunk, so a worker draining its range touches the underlying
/// reader once per 64 KiB instead of once per field. Both blocks come from
/// the [`BufferPool`] and return to it on drop, keeping the steady-state
/// merge at zero allocations; reads served without refilling are counted
/// into [`Counter::SpillReadaheadHits`] when the wrapper drops.
pub struct ReadAhead<'a> {
    inner: Box<dyn Read + Send + 'a>,
    front: Vec<u8>,
    back: Vec<u8>,
    pos: usize,
    /// The inner reader returned EOF; `back` holds the final partial block.
    eof: bool,
    /// `back` has never been primed (distinct from "drained to empty").
    primed: bool,
    hits: u64,
    pool: Arc<BufferPool>,
    metrics: Arc<CounterRegistry>,
}

impl<'a> ReadAhead<'a> {
    /// Bytes fetched per block. Two blocks in flight per run cursor.
    pub const BLOCK: usize = 64 * 1024;

    /// Wrap `inner`, borrowing buffers from `pool`. No I/O happens until
    /// the first read, so construction cannot fail or leak pool buffers.
    pub fn new(
        inner: Box<dyn Read + Send + 'a>,
        pool: &Arc<BufferPool>,
        metrics: &Arc<CounterRegistry>,
    ) -> ReadAhead<'a> {
        ReadAhead {
            inner,
            front: pool.get_bytes(Self::BLOCK),
            back: pool.get_bytes(Self::BLOCK),
            pos: 0,
            eof: false,
            primed: false,
            hits: 0,
            pool: Arc::clone(pool),
            metrics: Arc::clone(metrics),
        }
    }

    /// Fill `buf` with up to [`Self::BLOCK`] bytes from `inner`. Returns
    /// the number filled; fewer than a full block means EOF was reached.
    fn fill_block(inner: &mut dyn Read, buf: &mut Vec<u8>) -> io::Result<usize> {
        buf.resize(Self::BLOCK, 0);
        let mut filled = 0;
        while filled < Self::BLOCK {
            match inner.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    buf.truncate(0);
                    return Err(e);
                }
            }
        }
        buf.truncate(filled);
        Ok(filled)
    }
}

impl Read for ReadAhead<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut refilled = false;
        loop {
            if self.pos < self.front.len() {
                let n = (self.front.len() - self.pos).min(out.len());
                out[..n].copy_from_slice(&self.front[self.pos..self.pos + n]);
                self.pos += n;
                if !refilled {
                    self.hits += 1;
                }
                return Ok(n);
            }
            if self.primed && self.back.is_empty() && self.eof {
                return Ok(0);
            }
            refilled = true;
            if !self.primed {
                // First read: prime the front block directly, then fall
                // through to prefetch the back block below.
                self.primed = true;
                let n = Self::fill_block(self.inner.as_mut(), &mut self.front)?;
                self.pos = 0;
                if n < Self::BLOCK {
                    self.eof = true;
                    self.back.truncate(0);
                    continue;
                }
            } else {
                std::mem::swap(&mut self.front, &mut self.back);
                self.pos = 0;
                self.back.truncate(0);
                if self.eof {
                    continue;
                }
            }
            if !self.eof {
                let n = Self::fill_block(self.inner.as_mut(), &mut self.back)?;
                if n < Self::BLOCK {
                    self.eof = true;
                }
            }
        }
    }
}

impl Drop for ReadAhead<'_> {
    fn drop(&mut self) {
        self.metrics.add(Counter::SpillReadaheadHits, self.hits);
        self.pool.put_bytes(std::mem::take(&mut self.front));
        self.pool.put_bytes(std::mem::take(&mut self.back));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowsort_testkit::faultfs::FaultSchedule;
    use std::path::PathBuf;

    #[test]
    fn spill_error_carries_op_path_and_kind() {
        let path = PathBuf::from("/tmp/run-3.run");
        let io_err = io::Error::new(io::ErrorKind::TimedOut, "slow disk");
        let err = SpillError::io(SpillOp::Write, &path, &io_err);
        assert_eq!(err.path(), "/tmp/run-3.run");
        assert!(err.is_transient());
        assert!(!err.is_no_space());
        let text = err.to_string();
        assert!(text.contains("write"), "{text}");
        assert!(text.contains("/tmp/run-3.run"), "{text}");
        assert!(text.contains("slow disk"), "{text}");
    }

    #[test]
    fn no_space_kinds_are_not_transient() {
        let path = PathBuf::from("r.run");
        for kind in [io::ErrorKind::StorageFull, io::ErrorKind::QuotaExceeded] {
            let err = SpillError::io(SpillOp::Write, &path, &io::Error::new(kind, "full"));
            assert!(err.is_no_space());
            assert!(!err.is_transient());
        }
    }

    #[test]
    fn corrupt_is_neither_transient_nor_no_space() {
        let err = SpillError::corrupt(&PathBuf::from("r.run"), "checksum mismatch");
        assert!(!err.is_transient());
        assert!(!err.is_no_space());
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn errors_compare_equal_by_value() {
        let path = PathBuf::from("x.run");
        let a = SpillError::io(
            SpillOp::Read,
            &path,
            &io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        let b = SpillError::io(
            SpillOp::Read,
            &path,
            &io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn std_fs_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rowsort-spill-test-{}.run", std::process::id()));
        let fs = StdFs;
        let mut w = fs.create(&path).unwrap();
        w.write_all(b"spill bytes").unwrap();
        w.flush().unwrap();
        drop(w);
        let mut got = Vec::new();
        fs.open(&path).unwrap().read_to_end(&mut got).unwrap();
        assert_eq!(got, b"spill bytes");
        fs.delete(&path).unwrap();
        assert!(fs.open(&path).is_err());
    }

    #[test]
    fn open_at_skips_to_the_requested_offset() {
        // FaultFs has no native seek, so it exercises the default
        // skip-loop implementation of `open_at`.
        let fs = FaultFs::new(FaultSchedule::none());
        let io: &dyn SpillIo = &fs;
        let path = PathBuf::from("seek-0.run");
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut w = io.create(&path).unwrap();
        w.write_all(&payload).unwrap();
        drop(w);
        for offset in [0u64, 1, 4095, 4096, 4097, 9_999, 10_000] {
            let mut got = Vec::new();
            io.open_at(&path, offset)
                .unwrap()
                .read_to_end(&mut got)
                .unwrap();
            assert_eq!(got, payload[offset as usize..], "offset {offset}");
        }
        let err = io
            .open_at(&path, 10_001)
            .err()
            .expect("offset past EOF must fail");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn std_fs_open_at_seeks() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rowsort-openat-test-{}.run", std::process::id()));
        let fs = StdFs;
        let mut w = fs.create(&path).unwrap();
        w.write_all(b"0123456789").unwrap();
        w.flush().unwrap();
        drop(w);
        let mut got = Vec::new();
        fs.open_at(&path, 4).unwrap().read_to_end(&mut got).unwrap();
        assert_eq!(got, b"456789");
        fs.delete(&path).unwrap();
    }

    #[test]
    fn readahead_preserves_the_byte_stream() {
        let pool = Arc::new(BufferPool::new());
        let metrics = Arc::new(CounterRegistry::new());
        // Cross several block boundaries with a pattern that detects any
        // misalignment, reading in awkward chunk sizes.
        let payload: Vec<u8> = (0..3 * ReadAhead::BLOCK + 777)
            .map(|i| (i % 253) as u8)
            .collect();
        let reader: Box<dyn Read + Send> = Box::new(io::Cursor::new(payload.clone()));
        let mut ra = ReadAhead::new(reader, &pool, &metrics);
        let mut got = Vec::new();
        let mut chunk = [0u8; 1013];
        loop {
            match ra.read(&mut chunk).unwrap() {
                0 => break,
                n => got.extend_from_slice(&chunk[..n]),
            }
        }
        drop(ra);
        assert_eq!(got, payload);
        assert!(
            metrics.snapshot().counter(Counter::SpillReadaheadHits) > 0,
            "buffered reads should register as read-ahead hits"
        );
        // Both blocks went back to the pool: the next two requests recycle.
        let before = pool.hits();
        let a = pool.get_bytes(ReadAhead::BLOCK);
        let b = pool.get_bytes(ReadAhead::BLOCK);
        assert_eq!(pool.hits(), before + 2, "blocks were returned on drop");
        pool.put_bytes(a);
        pool.put_bytes(b);
    }

    #[test]
    fn readahead_handles_empty_and_tiny_inputs() {
        let pool = Arc::new(BufferPool::new());
        let metrics = Arc::new(CounterRegistry::new());
        for payload in [Vec::new(), vec![42u8], vec![7u8; 100]] {
            let reader: Box<dyn Read + Send> = Box::new(io::Cursor::new(payload.clone()));
            let mut ra = ReadAhead::new(reader, &pool, &metrics);
            let mut got = Vec::new();
            ra.read_to_end(&mut got).unwrap();
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn faultfs_speaks_spill_io() {
        let fs = FaultFs::new(FaultSchedule::none());
        let io: &dyn SpillIo = &fs;
        let path = PathBuf::from("mem-0.run");
        let mut w = io.create(&path).unwrap();
        w.write_all(b"abc").unwrap();
        drop(w);
        let mut got = Vec::new();
        io.open(&path).unwrap().read_to_end(&mut got).unwrap();
        assert_eq!(got, b"abc");
        io.delete(&path).unwrap();
        assert!(fs.live_files().is_empty());
    }
}

//! Set-associative LRU cache model.

/// Geometry of a simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Line size in bytes (a power of two).
    pub line_size: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Model a next-line prefetcher: every miss also installs the
    /// following line. Sequential scans then miss (almost) never while
    /// random access is unaffected — sharpening the very locality contrast
    /// the paper's DSM-vs-NSM argument rests on. Off by default so counter
    /// experiments stay comparable to the recorded runs.
    pub next_line_prefetch: bool,
}

impl CacheConfig {
    /// The paper's Xeon Platinum 8259CL L1-D: 32 KiB, 64-byte lines, 8-way.
    pub const L1D: CacheConfig = CacheConfig {
        capacity: 32 * 1024,
        line_size: 64,
        ways: 8,
        next_line_prefetch: false,
    };

    /// The same geometry with the next-line prefetcher enabled.
    pub const L1D_PREFETCH: CacheConfig = CacheConfig {
        next_line_prefetch: true,
        ..CacheConfig::L1D
    };

    /// Number of sets implied by the geometry.
    pub const fn sets(&self) -> usize {
        self.capacity / (self.line_size * self.ways)
    }
}

/// A set-associative cache with true-LRU replacement and write-allocate
/// policy. Tracks access and miss counts.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    line_bits: u32,
    set_mask: u64,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags` (higher = more recent).
    stamps: Vec<u64>,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl CacheSim {
    /// Build a cache with the given geometry.
    pub fn new(config: CacheConfig) -> CacheSim {
        assert!(config.line_size.is_power_of_two(), "line size power of two");
        let sets = config.sets();
        assert!(sets.is_power_of_two() && sets > 0, "set count power of two");
        CacheSim {
            config,
            line_bits: config.line_size.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            tags: vec![u64::MAX; sets * config.ways],
            stamps: vec![0; sets * config.ways],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Touch one byte address. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr >> self.line_bits;
        let hit = self.touch_line(line);
        if !hit {
            self.misses += 1;
        }
        if self.config.next_line_prefetch {
            // Install the following line without counting an access or a
            // miss — a streaming prefetcher keeps running ahead of both
            // hits and misses (triggering only on misses would still leave
            // every other line of a sequential scan cold).
            self.touch_line(line + 1);
        }
        hit
    }

    /// Look up `line`, installing it (LRU eviction) on miss. Returns hit.
    fn touch_line(&mut self, line: u64) -> bool {
        self.clock += 1;
        let set = (line & self.set_mask) as usize;
        let ways = self.config.ways;
        let base = set * ways;
        for way in 0..ways {
            if self.tags[base + way] == line {
                self.stamps[base + way] = self.clock;
                return true;
            }
        }
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for way in 0..ways {
            if self.tags[base + way] == u64::MAX {
                victim = way;
                break;
            }
            if self.stamps[base + way] < oldest {
                oldest = self.stamps[base + way];
                victim = way;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Touch a byte range, accessing each cache line it spans once.
    pub fn access_range(&mut self, addr: u64, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let first = addr >> self.line_bits;
        let last = (addr + bytes as u64 - 1) >> self.line_bits;
        for line in first..=last {
            self.access(line << self.line_bits);
        }
    }

    /// Total line accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Reset counters (cache contents are kept).
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::L1D.sets(), 64);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(CacheConfig::L1D);
        assert!(!c.access(0x1000), "cold miss");
        assert!(c.access(0x1000), "warm hit");
        assert!(c.access(0x1004), "same line hit");
        assert_eq!(c.misses(), 1);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut c = CacheSim::new(CacheConfig::L1D);
        for addr in (0..8192u64).step_by(4) {
            c.access(addr);
        }
        assert_eq!(c.misses(), 8192 / 64, "one miss per 64-byte line");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = CacheSim::new(CacheConfig::L1D);
        // 64 KiB working set in a 32 KiB cache, strided to hit every line,
        // looped twice: second pass misses too (LRU evicted everything).
        for _ in 0..2 {
            for addr in (0..65536u64).step_by(64) {
                c.access(addr);
            }
        }
        assert_eq!(c.misses(), 2 * 1024, "every line access misses");
    }

    #[test]
    fn working_set_fitting_in_cache_hits_after_warmup() {
        let mut c = CacheSim::new(CacheConfig::L1D);
        for _ in 0..2 {
            for addr in (0..16384u64).step_by(64) {
                c.access(addr);
            }
        }
        assert_eq!(c.misses(), 256, "only the cold pass misses");
    }

    #[test]
    fn associativity_conflicts() {
        let mut c = CacheSim::new(CacheConfig {
            capacity: 1024,
            line_size: 64,
            ways: 2,
            next_line_prefetch: false,
        });
        // 8 sets; addresses 0, 8*64, 16*64 all map to set 0; 2 ways.
        let stride = 8 * 64u64;
        for _ in 0..3 {
            for k in 0..3u64 {
                c.access(k * stride);
            }
        }
        // 3 lines in a 2-way set with LRU + round-robin access: always miss.
        assert_eq!(c.misses(), 9);
    }

    #[test]
    fn access_range_spans_lines() {
        let mut c = CacheSim::new(CacheConfig::L1D);
        c.access_range(60, 8); // crosses the 64-byte boundary
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.misses(), 2);
        c.access_range(0, 0);
        assert_eq!(c.accesses(), 2, "zero-byte range touches nothing");
    }

    #[test]
    fn prefetcher_hides_sequential_misses() {
        let mut plain = CacheSim::new(CacheConfig::L1D);
        let mut pf = CacheSim::new(CacheConfig::L1D_PREFETCH);
        for addr in (0..32_768u64).step_by(64) {
            plain.access(addr);
            pf.access(addr);
        }
        assert_eq!(plain.misses(), 512, "one miss per line without prefetch");
        assert!(
            pf.misses() <= 2,
            "next-line prefetch hides a sequential scan, got {}",
            pf.misses()
        );
    }

    #[test]
    fn prefetcher_does_not_help_random_access() {
        let mut pf = CacheSim::new(CacheConfig::L1D_PREFETCH);
        // Pseudo-random lines over a 16 MiB region: far larger than cache.
        let mut state = 1u64;
        let mut misses_expected = 0u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (state >> 20) % (16 << 20);
            pf.access(addr);
            misses_expected += 1;
        }
        // Nearly every access misses (collision chance is tiny).
        assert!(
            pf.misses() as f64 > 0.95 * misses_expected as f64,
            "{} of {}",
            pf.misses(),
            misses_expected
        );
    }

    #[test]
    fn reset_counters_keeps_contents() {
        let mut c = CacheSim::new(CacheConfig::L1D);
        c.access(0);
        c.reset_counters();
        assert_eq!(c.misses(), 0);
        assert!(c.access(0), "line still resident");
    }
}
